"""Shared test/bench helpers, importable as a real module.

Historically these lived in ``tests/conftest.py`` and were imported
with ``from conftest import ...`` — which resolves to whichever
``conftest.py`` pytest put on ``sys.path`` first and breaks collection
from the repository root. Living under :mod:`repro` makes them
importable from tests, benchmarks and examples alike.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import ArpPathConfig
from repro.frames.ipv4 import IPv4Address
from repro.frames.mac import MAC
from repro.topology.builder import Network


def ping_once(net: Network, src: str, dst: str,
              timeout: float = 2.0) -> Optional[float]:
    """Ping from *src* to *dst*; returns the RTT or None on loss."""
    rtts = []
    source = net.host(src)
    target = net.host(dst)
    source.ping(target.ip, on_reply=lambda seq, rtt: rtts.append(rtt))
    net.run(timeout)
    return rtts[0] if rtts else None


def mac(index: int) -> MAC:
    """Shorthand: a unicast test MAC."""
    return MAC(0x02_00_00_00_10_00 + index)


def ip(index: int) -> IPv4Address:
    """Shorthand: a test IP."""
    return IPv4Address(0x0A000000 + 0x100 + index)


def fast_config(**overrides) -> ArpPathConfig:
    """An ArpPathConfig with quick timers for unit tests."""
    base = dict(lock_timeout=0.1, learnt_timeout=10.0, guard_timeout=0.2,
                hello_interval=0.5, hello_hold=1.75,
                repair_retry_timeout=0.05)
    base.update(overrides)
    return ArpPathConfig(**base)
