"""Shortest-path bridging baseline: link-state control plane at layer 2."""

from repro.spb import codec as _codec  # registers the LSP wire format
from repro.spb.bridge import (DEFAULT_HELLO_HOLD, DEFAULT_HELLO_INTERVAL,
                              DEFAULT_HOST_AGING, DEFAULT_LSP_MAX_AGE,
                              DEFAULT_LSP_REFRESH, SpbBridge, SpbCounters)
from repro.spb.codec import decode_spb, encode_spb
from repro.spb.lsp import (Adjacency, LinkStatePacket, SPB_MULTICAST,
                           SpbHello)

__all__ = [
    "DEFAULT_HELLO_HOLD", "DEFAULT_HELLO_INTERVAL", "DEFAULT_HOST_AGING",
    "DEFAULT_LSP_MAX_AGE", "DEFAULT_LSP_REFRESH", "SpbBridge", "SpbCounters",
    "decode_spb", "encode_spb",
    "Adjacency", "LinkStatePacket", "SPB_MULTICAST", "SpbHello",
]
