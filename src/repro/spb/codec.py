"""Wire format for the SPB baseline's control messages.

A compact TLV-free layout (this is a research baseline, not IS-IS):
one type byte distinguishes hellos from LSPs; LSPs carry counted lists
of adjacencies and hosts. Registered with the frame codec on import so
pcap captures of SPB runs decode.
"""

from __future__ import annotations

import struct

from repro.frames import codec as frame_codec
from repro.frames.codec import CodecError
from repro.frames.ethernet import ETHERTYPE_LSP
from repro.frames.mac import MAC
from repro.spb.lsp import Adjacency, LinkStatePacket, SpbHello

TYPE_HELLO = 1
TYPE_LSP = 2

_HELLO = struct.Struct("!B6sI")
_LSP_HEAD = struct.Struct("!B6sIHH")
_ADJ = struct.Struct("!6sf")


def encode_spb(message) -> bytes:
    """Serialise an SpbHello or LinkStatePacket."""
    if isinstance(message, SpbHello):
        return _HELLO.pack(TYPE_HELLO, message.origin.to_bytes(),
                           message.seq & 0xFFFFFFFF)
    if not isinstance(message, LinkStatePacket):
        raise CodecError(f"not an SPB message: {type(message).__name__}")
    parts = [_LSP_HEAD.pack(TYPE_LSP, message.origin.to_bytes(),
                            message.seq & 0xFFFFFFFF,
                            len(message.adjacencies), len(message.hosts))]
    for adjacency in message.adjacencies:
        parts.append(_ADJ.pack(adjacency.neighbor.to_bytes(),
                               adjacency.cost))
    for host in message.hosts:
        parts.append(host.to_bytes())
    return b"".join(parts)


def decode_spb(data: bytes):
    """Parse SPB control bytes back into the message object."""
    if not data:
        raise CodecError("empty SPB message")
    kind = data[0]
    if kind == TYPE_HELLO:
        if len(data) < _HELLO.size:
            raise CodecError(f"SPB hello too short: {len(data)} bytes")
        _kind, origin, seq = _HELLO.unpack_from(data)
        return SpbHello(origin=MAC(origin), seq=seq)
    if kind != TYPE_LSP:
        raise CodecError(f"unknown SPB message type {kind}")
    if len(data) < _LSP_HEAD.size:
        raise CodecError(f"LSP too short: {len(data)} bytes")
    _kind, origin, seq, n_adj, n_hosts = _LSP_HEAD.unpack_from(data)
    offset = _LSP_HEAD.size
    needed = offset + n_adj * _ADJ.size + n_hosts * 6
    if len(data) < needed:
        raise CodecError(f"LSP truncated: {len(data)} < {needed} bytes")
    adjacencies = []
    for _ in range(n_adj):
        neighbor, cost = _ADJ.unpack_from(data, offset)
        offset += _ADJ.size
        adjacencies.append(Adjacency(neighbor=MAC(neighbor),
                                     cost=round(cost, 6)))
    hosts = []
    for _ in range(n_hosts):
        hosts.append(MAC(data[offset:offset + 6]))
        offset += 6
    return LinkStatePacket(origin=MAC(origin), seq=seq,
                           adjacencies=tuple(adjacencies),
                           hosts=tuple(hosts))


frame_codec.register_ethertype(ETHERTYPE_LSP, encode_spb, decode_spb)
