"""Link-state messages for the shortest-path bridging baseline.

The paper's introduction contrasts ARP-Path with SPB (802.1aq) and
TRILL, which "rely on a link-state routing protocol operating at layer
two". This package implements that style of control plane so the
complexity comparison is measurable: hellos for adjacency discovery and
flooded link-state packets carrying adjacencies plus attached hosts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.frames.mac import MAC

#: Link-local multicast address for SPB control frames.
SPB_MULTICAST = MAC("01:80:c2:00:00:10")

HELLO_WIRE_SIZE = 10
LSP_FIXED_SIZE = 14
LSP_NEIGHBOR_SIZE = 10
LSP_HOST_SIZE = 6


@dataclass(frozen=True)
class SpbHello:
    """A link-local adjacency hello."""

    origin: MAC
    seq: int

    @property
    def wire_size(self) -> int:
        return HELLO_WIRE_SIZE


@dataclass(frozen=True)
class Adjacency:
    """One reported bridge-to-bridge adjacency."""

    neighbor: MAC
    cost: float = 1.0

    def __post_init__(self):
        if self.cost <= 0:
            raise ValueError(f"adjacency cost must be positive: {self.cost}")


@dataclass(frozen=True)
class LinkStatePacket:
    """One bridge's view of itself: adjacencies and attached hosts.

    ``seq`` orders packets from the same origin; receivers keep only the
    newest. Costs are *administrative* (hop count by default) — a
    link-state control plane has no knowledge of actual queueing or
    propagation latency, which is precisely the gap the ARP-Path race
    exploits.
    """

    origin: MAC
    seq: int
    adjacencies: Tuple[Adjacency, ...] = ()
    hosts: Tuple[MAC, ...] = ()

    def __post_init__(self):
        if self.seq < 0:
            raise ValueError("LSP sequence must be non-negative")

    @property
    def wire_size(self) -> int:
        return (LSP_FIXED_SIZE + LSP_NEIGHBOR_SIZE * len(self.adjacencies)
                + LSP_HOST_SIZE * len(self.hosts))

    def newer_than(self, other: "LinkStatePacket") -> bool:
        """True when this packet supersedes *other* (same origin)."""
        return self.seq > other.seq

    def __str__(self) -> str:
        return (f"LSP origin={self.origin} seq={self.seq} "
                f"adj={len(self.adjacencies)} hosts={len(self.hosts)}")
