"""A shortest-path bridge: link-state control plane at layer two.

Implements the SPB/TRILL-style baseline: adjacency hellos, LSP flooding
with sequence numbers, Dijkstra SPF with symmetric (lowest-MAC)
tie-breaking, host attachment advertisement, and per-source shortest
path trees with reverse-path-forwarding checks for broadcast.

Everything ARP-Path gets for free — loop-free broadcast, unicast paths,
failure recovery — here requires explicit control machinery; the
broadcast/control overhead experiments quantify that difference.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.frames.ethernet import ETHERTYPE_LSP, EthernetFrame
from repro.frames.mac import MAC
from repro.netsim.engine import Simulator
from repro.netsim.node import Port
from repro.spb.lsp import (Adjacency, LinkStatePacket, SPB_MULTICAST,
                           SpbHello)
from repro.switching.base import (Bridge, BridgeFamily, Dataplane,
                                  FamilyOption, register_family)

DEFAULT_HELLO_INTERVAL = 1.0
DEFAULT_HELLO_HOLD = 3.5
DEFAULT_LSP_REFRESH = 10.0
DEFAULT_LSP_MAX_AGE = 60.0
DEFAULT_HOST_AGING = 300.0

#: The SPB pipeline: link-state frames (hellos + LSPs) are control.
SPB_DATAPLANE = Dataplane(control_ethertypes=(ETHERTYPE_LSP,))


@dataclass
class SpbCounters:
    hellos_sent: int = 0
    hellos_received: int = 0
    lsps_originated: int = 0
    lsps_flooded: int = 0
    lsps_received: int = 0
    lsps_stale: int = 0
    spf_runs: int = 0
    unknown_unicast_drops: int = 0
    unknown_source_drops: int = 0
    rpf_drops: int = 0


@dataclass
class _SpfResult:
    """Shortest-path tree from one root over the current LSDB."""

    dist: Dict[MAC, float]
    parent: Dict[MAC, Optional[MAC]]


class SpbBridge(Bridge):
    """A bridge running a link-state shortest-path control plane."""

    dataplane = SPB_DATAPLANE

    def __init__(self, sim: Simulator, name: str, mac: MAC,
                 hello_interval: float = DEFAULT_HELLO_INTERVAL,
                 hello_hold: float = DEFAULT_HELLO_HOLD,
                 lsp_refresh: float = DEFAULT_LSP_REFRESH,
                 lsp_max_age: float = DEFAULT_LSP_MAX_AGE,
                 host_aging: float = DEFAULT_HOST_AGING):
        super().__init__(sim, name, mac)
        self.hello_interval = hello_interval
        self.hello_hold = hello_hold
        self.lsp_refresh = lsp_refresh
        self.lsp_max_age = lsp_max_age
        self.host_aging = host_aging
        self.spb_counters = SpbCounters()
        #: Neighbour bridge MAC per port index, with hold deadline.
        self._neighbor: Dict[int, Tuple[MAC, float]] = {}
        #: Locally attached hosts: MAC -> (port, expiry).
        self._local_hosts: Dict[MAC, Tuple[Port, float]] = {}
        #: The link-state database: origin -> (LSP, received time).
        self._lsdb: Dict[MAC, Tuple[LinkStatePacket, float]] = {}
        self._own_seq = 0
        self._hello_seq = 0
        self._version = 0
        self._spf_cache: Dict[MAC, Tuple[int, _SpfResult]] = {}
        self._hello_timer = None
        self._refresh_timer = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        super().start()
        self._send_hellos()
        self._originate_lsp()
        self._hello_timer = self.sim.schedule_periodic(
            self.hello_interval, self._on_hello_tick)
        self._refresh_timer = self.sim.schedule_periodic(
            self.lsp_refresh, self._originate_lsp)

    def stop(self) -> None:
        """Stop periodic processes."""
        if self._hello_timer is not None:
            self._hello_timer.stop()
            self._hello_timer = None
        if self._refresh_timer is not None:
            self._refresh_timer.stop()
            self._refresh_timer = None

    def reset_state(self) -> None:
        """Power-cycle wipe: adjacencies, attached hosts, the LSDB.

        ``_own_seq`` survives on purpose — a restarted router that
        remembers its sequence number re-floods an LSP its neighbours
        accept immediately, instead of being shadowed by its own stale
        LSP until max-age expiry.
        """
        self._neighbor.clear()
        self._local_hosts.clear()
        self._lsdb.clear()
        self._spf_cache.clear()
        self._bump_version()

    def _on_hello_tick(self) -> None:
        self._send_hellos()
        self._age_out()

    def _age_out(self) -> None:
        now = self.sim.now
        changed = False
        for index, (_mac, deadline) in list(self._neighbor.items()):
            if deadline <= now:
                del self._neighbor[index]
                changed = True
        for mac, (_port, deadline) in list(self._local_hosts.items()):
            if deadline <= now:
                del self._local_hosts[mac]
                changed = True
        for origin, (_lsp, received) in list(self._lsdb.items()):
            if origin != self.mac and received + self.lsp_max_age <= now:
                del self._lsdb[origin]
                self._bump_version()
        if changed:
            self._originate_lsp()

    def link_state_changed(self, port: Port, up: bool) -> None:
        if up:
            if self.started:
                self._send_hellos()
            return
        if port.index in self._neighbor:
            del self._neighbor[port.index]
            self._originate_lsp()
        stale = [mac for mac, (hport, _exp) in self._local_hosts.items()
                 if hport is port]
        if stale:
            for mac in stale:
                del self._local_hosts[mac]
            self._originate_lsp()

    # -- port classification ----------------------------------------------

    def is_bridge_port(self, port: Port) -> bool:
        entry = self._neighbor.get(port.index)
        return entry is not None and entry[1] > self.sim.now

    def is_host_port(self, port: Port) -> bool:
        return port.is_attached and not self.is_bridge_port(port)

    def neighbor_on(self, port: Port) -> Optional[MAC]:
        entry = self._neighbor.get(port.index)
        if entry is None or entry[1] <= self.sim.now:
            return None
        return entry[0]

    def _port_for_neighbor(self, neighbor: MAC) -> Optional[Port]:
        now = self.sim.now
        for index, (mac, deadline) in self._neighbor.items():
            if mac == neighbor and deadline > now:
                return self.ports[index]
        return None

    # -- control plane -------------------------------------------------------

    def _send_hellos(self) -> None:
        self._hello_seq += 1
        hello = SpbHello(origin=self.mac, seq=self._hello_seq)
        for port in self.ports:
            if not port.is_up:
                continue
            self.spb_counters.hellos_sent += 1
            self.counters.control_sent += 1
            port.send(EthernetFrame(dst=SPB_MULTICAST, src=self.mac,
                                    ethertype=ETHERTYPE_LSP, payload=hello))

    def _originate_lsp(self) -> None:
        """Advertise our adjacencies and attached hosts to the network."""
        now = self.sim.now
        adjacencies = tuple(sorted(
            (Adjacency(neighbor=mac) for _idx, (mac, deadline)
             in self._neighbor.items() if deadline > now),
            key=lambda adj: adj.neighbor.value))
        hosts = tuple(sorted(
            (mac for mac, (_port, deadline) in self._local_hosts.items()
             if deadline > now), key=lambda mac: mac.value))
        self._own_seq += 1
        lsp = LinkStatePacket(origin=self.mac, seq=self._own_seq,
                              adjacencies=adjacencies, hosts=hosts)
        self._lsdb[self.mac] = (lsp, now)
        self._bump_version()
        self.spb_counters.lsps_originated += 1
        self._flood_lsp(lsp, exclude=None)

    def _flood_lsp(self, lsp: LinkStatePacket,
                   exclude: Optional[Port]) -> None:
        for port in self.ports:
            if port is exclude or not port.is_up:
                continue
            if not self.is_bridge_port(port):
                continue
            self.spb_counters.lsps_flooded += 1
            self.counters.control_sent += 1
            port.send(EthernetFrame(dst=SPB_MULTICAST, src=self.mac,
                                    ethertype=ETHERTYPE_LSP, payload=lsp))

    def _handle_hello(self, port: Port, hello: SpbHello) -> None:
        self.spb_counters.hellos_received += 1
        known = self._neighbor.get(port.index)
        self._neighbor[port.index] = (hello.origin,
                                      self.sim.now + self.hello_hold)
        if known is None or known[0] != hello.origin:
            # New adjacency: advertise it and bring the peer up to date.
            self._originate_lsp()
            self._send_database(port)

    def _send_database(self, port: Port) -> None:
        """Unicast-style LSDB sync to a new neighbour (flood our copy)."""
        for origin, (lsp, _received) in self._lsdb.items():
            if origin == self.mac:
                continue  # our own LSP was just flooded by _originate_lsp
            self.spb_counters.lsps_flooded += 1
            self.counters.control_sent += 1
            port.send(EthernetFrame(dst=SPB_MULTICAST, src=self.mac,
                                    ethertype=ETHERTYPE_LSP, payload=lsp))

    def _handle_lsp(self, port: Port, lsp: LinkStatePacket) -> None:
        self.spb_counters.lsps_received += 1
        if lsp.origin == self.mac:
            return
        held = self._lsdb.get(lsp.origin)
        if held is not None and not lsp.newer_than(held[0]):
            self.spb_counters.lsps_stale += 1
            return
        self._lsdb[lsp.origin] = (lsp, self.sim.now)
        self._bump_version()
        self._flood_lsp(lsp, exclude=port)

    def _bump_version(self) -> None:
        self._version += 1

    # -- SPF ---------------------------------------------------------------

    def _bidirectional_edges(self) -> Dict[MAC, List[Tuple[MAC, float]]]:
        """The adjacency graph, keeping only two-way-confirmed links."""
        reported: Dict[MAC, Dict[MAC, float]] = {}
        for origin, (lsp, _received) in self._lsdb.items():
            reported[origin] = {adj.neighbor: adj.cost
                                for adj in lsp.adjacencies}
        graph: Dict[MAC, List[Tuple[MAC, float]]] = {}
        for origin, neighbors in reported.items():
            for neighbor, cost in neighbors.items():
                back = reported.get(neighbor, {})
                if origin not in back:
                    continue
                graph.setdefault(origin, []).append(
                    (neighbor, max(cost, back[origin])))
        return graph

    def _spf(self, root: MAC) -> _SpfResult:
        """Dijkstra from *root* with deterministic lowest-MAC tie-breaks.

        Symmetric tie-breaking means every bridge computes the same tree
        for a given root — the property SPB relies on for congruent
        unicast/multicast paths (802.1aq's ECT tie-breaking).
        """
        cached = self._spf_cache.get(root)
        if cached is not None and cached[0] == self._version:
            return cached[1]
        self.spb_counters.spf_runs += 1
        graph = self._bidirectional_edges()
        dist: Dict[MAC, float] = {root: 0.0}
        parent: Dict[MAC, Optional[MAC]] = {root: None}
        # Heap entries: (distance, node MAC value, node) — the MAC value
        # makes pops deterministic; parents are chosen lowest-MAC-first.
        heap: List[Tuple[float, int, MAC]] = [(0.0, root.value, root)]
        done: Set[MAC] = set()
        while heap:
            d, _tie, node = heapq.heappop(heap)
            if node in done:
                continue
            done.add(node)
            for neighbor, cost in sorted(graph.get(node, []),
                                         key=lambda e: e[0].value):
                nd = d + cost
                old = dist.get(neighbor)
                better = old is None or nd < old
                same_but_lower = (old is not None and nd == old
                                  and parent[neighbor] is not None
                                  and node.value < parent[neighbor].value)
                if better or same_but_lower:
                    dist[neighbor] = nd
                    parent[neighbor] = node
                    heapq.heappush(heap, (nd, neighbor.value, neighbor))
        result = _SpfResult(dist=dist, parent=parent)
        self._spf_cache[root] = (self._version, result)
        return result

    def _first_hop(self, toward: MAC) -> Optional[MAC]:
        """The neighbour on our shortest path toward bridge *toward*."""
        spf = self._spf(self.mac)
        if toward not in spf.dist:
            return None
        node = toward
        while spf.parent.get(node) is not None \
                and spf.parent[node] != self.mac:
            node = spf.parent[node]
        if spf.parent.get(node) != self.mac:
            return None
        return node

    def attachment_bridge(self, host: MAC) -> Optional[MAC]:
        """The bridge advertising *host*, per the LSDB."""
        if host in self._local_hosts:
            port, deadline = self._local_hosts[host]
            if deadline > self.sim.now:
                return self.mac
        for origin, (lsp, _received) in self._lsdb.items():
            if host in lsp.hosts:
                return origin
        return None

    # -- data plane ----------------------------------------------------------

    def on_control(self, port: Port, frame: EthernetFrame) -> None:
        payload = frame.payload
        if isinstance(payload, SpbHello):
            self._handle_hello(port, payload)
        elif isinstance(payload, LinkStatePacket):
            self._handle_lsp(port, payload)

    def admit_data(self, port: Port, frame: EthernetFrame) -> bool:
        if self.is_host_port(port):
            self._learn_local_host(frame.src, port)
        return True

    def _learn_local_host(self, mac: MAC, port: Port) -> None:
        if mac.is_multicast:
            return
        known = self._local_hosts.get(mac)
        self._local_hosts[mac] = (port, self.sim.now + self.host_aging)
        if known is None or known[0] is not port:
            self._originate_lsp()

    def on_unicast(self, port: Port, frame: EthernetFrame) -> None:
        local = self._local_hosts.get(frame.dst)
        if local is not None and local[1] > self.sim.now:
            if local[0] is port:
                self.filter_frame()
            else:
                self.forward(local[0], frame)
            return
        attachment = self.attachment_bridge(frame.dst)
        if attachment is None or attachment == self.mac:
            self.spb_counters.unknown_unicast_drops += 1
            return
        next_hop = self._first_hop(attachment)
        out_port = (self._port_for_neighbor(next_hop)
                    if next_hop is not None else None)
        if out_port is None or not out_port.is_up:
            self.spb_counters.unknown_unicast_drops += 1
            return
        self.forward(out_port, frame)

    def on_broadcast(self, port: Port, frame: EthernetFrame) -> None:
        """Forward along the per-source shortest path tree.

        The tree is rooted at the source host's attachment bridge; we
        accept the frame only from the RPF direction and forward it to
        neighbours whose tree parent is this bridge, plus host ports.
        """
        if self.is_host_port(port):
            root = self.mac
        else:
            root = self.attachment_bridge(frame.src)
            if root is None:
                self.spb_counters.unknown_source_drops += 1
                return
            expected_hop = self._first_hop(root)
            ingress_neighbor = self.neighbor_on(port)
            if expected_hop is None or ingress_neighbor != expected_hop:
                self.spb_counters.rpf_drops += 1
                return
        spf = self._spf(root)
        copies = 0
        now = self.sim.now
        for out_port in self.ports:
            if out_port is port or not out_port.is_up:
                continue
            neighbor = self.neighbor_on(out_port)
            if neighbor is None:
                copies += 1
                out_port.send(frame)  # host port: always deliver
                continue
            if spf.parent.get(neighbor) == self.mac:
                copies += 1
                out_port.send(frame)
        self.counters.flooded_frames += 1
        self.counters.flooded_copies += copies

    # -- introspection -----------------------------------------------------

    def lsdb_summary(self) -> Dict[str, dict]:
        """Origin → {seq, adjacency count, host count} (diagnostics)."""
        return {str(origin): {"seq": lsp.seq,
                              "adjacencies": len(lsp.adjacencies),
                              "hosts": len(lsp.hosts)}
                for origin, (lsp, _received) in self._lsdb.items()}

    def state_entries(self, now: Optional[float] = None) -> int:
        """LSDB entries plus advertised hosts — the state a link-state
        control plane must replicate on every bridge."""
        total = 0
        for _origin, (lsp, _received) in self._lsdb.items():
            total += 1 + len(lsp.hosts)
        return total

    def protocol_counters(self) -> Dict[str, int]:
        return {
            "lsps_originated": self.spb_counters.lsps_originated,
            "lsps_flooded": self.spb_counters.lsps_flooded,
            "spf_runs": self.spb_counters.spf_runs,
            "rpf_drops": self.spb_counters.rpf_drops,
        }

    def __repr__(self) -> str:
        return (f"<SpbBridge {self.name} lsdb={len(self._lsdb)} "
                f"hosts={len(self._local_hosts)}>")


def _spb_factory(**kwargs):
    """A bridge factory producing link-state shortest-path bridges."""

    def build(sim: Simulator, name: str, mac: MAC) -> SpbBridge:
        return SpbBridge(sim, name, mac, **kwargs)

    return build


register_family(BridgeFamily(
    name="spb",
    title="SPB/TRILL-style link-state shortest path bridging",
    factory=_spb_factory,
    warmup=8.0,
    loop_safe=True,
    order=30,
    control_ethertypes=(ETHERTYPE_LSP,),
    options=(
        FamilyOption("hello_interval", "float", DEFAULT_HELLO_INTERVAL,
                     "adjacency hello period (seconds)"),
        FamilyOption("hello_hold", "float", DEFAULT_HELLO_HOLD,
                     "adjacency hold time before expiry (seconds)"),
        FamilyOption("lsp_refresh", "float", DEFAULT_LSP_REFRESH,
                     "periodic LSP re-origination interval (seconds)"),
        FamilyOption("lsp_max_age", "float", DEFAULT_LSP_MAX_AGE,
                     "LSDB entry lifetime without refresh (seconds)"),
        FamilyOption("host_aging", "float", DEFAULT_HOST_AGING,
                     "advertised-host aging time (seconds)"),
    ),
))
