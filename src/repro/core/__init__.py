"""ARP-Path (FastPath) bridging — the paper's primary contribution.

The public surface is :class:`ArpPathBridge` plus its configuration; the
supporting pieces (locked table, repair manager, ARP proxy) are exported
for tests and experiments that inspect protocol state.
"""

from repro.core.bridge import (ARPPATH_DATAPLANE, ArpPathBridge,
                               ArpPathCounters)
from repro.core.config import ArpPathConfig, DEFAULT_CONFIG
from repro.core.proxy import ArpProxy, ProxyBinding, ProxyCounters
from repro.core.repair import RepairCounters, RepairManager, RepairState
from repro.core.table import (EntryState, LockedAddressTable, PathEntry,
                              TableCounters)

__all__ = [
    "ARPPATH_DATAPLANE", "ArpPathBridge", "ArpPathCounters",
    "ArpPathConfig", "DEFAULT_CONFIG",
    "ArpProxy", "ProxyBinding", "ProxyCounters",
    "RepairCounters", "RepairManager", "RepairState",
    "EntryState", "LockedAddressTable", "PathEntry", "TableCounters",
]
