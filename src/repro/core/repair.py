"""Path Repair bookkeeping (paper §2.1.4).

The repair protocol "emulates an ARP exchange": when a bridge cannot
forward a unicast frame (entry expired, link or bridge failed) it sends
**PathFail** back towards the source; the source's edge bridge then
broadcasts **PathRequest**, whose flooded copies race through the
network exactly like an ARP Request; the target's edge bridge answers
**PathReply**, which travels the winning path re-creating the entries.

This module holds the per-edge-bridge state machine: one pending repair
per lost destination, with bounded frame buffering and retry budget.
The bridge drives it (it owns the simulator clock and the ports).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

from repro.frames.ethernet import EthernetFrame
from repro.frames.mac import MAC


@dataclass
class RepairCounters:
    started: int = 0
    passive_started: int = 0
    activated: int = 0
    completed: int = 0
    abandoned: int = 0
    retries: int = 0
    frames_buffered: int = 0
    buffer_overflow: int = 0
    fails_sent: int = 0
    fails_relayed: int = 0
    fails_unroutable: int = 0
    requests_answered: int = 0
    stale_replies: int = 0


@dataclass
class RepairState:
    """One in-progress repair for a lost destination.

    An *active* repair was opened by the source edge bridge: it owns
    the PathRequest race and its retries. A *passive* repair exists at
    a non-edge bridge that detected the failure (or relayed PathFail):
    it only parks in-flight frames, hoping the PathReply passes through
    and re-creates the entry — no control traffic of its own.
    """

    target: MAC
    source: MAC
    seq: int
    retries_left: int
    started_at: float
    buffer: Deque[EthernetFrame]
    retry_event: object = None
    passive: bool = False

    def cancel_timer(self) -> None:
        if self.retry_event is not None:
            self.retry_event.cancel()
            self.retry_event = None


class RepairManager:
    """Pending repairs at one bridge, keyed by lost destination MAC."""

    def __init__(self, buffer_size: int, retry_budget: int):
        self.buffer_size = buffer_size
        self.retry_budget = retry_budget
        self._pending: Dict[MAC, RepairState] = {}
        self.counters = RepairCounters()
        #: Completed repair durations (seconds) — the headline number of
        #: the Fig. 3 experiment.
        self.repair_times: List[float] = []

    def is_pending(self, target: MAC) -> bool:
        return target in self._pending

    def get(self, target: MAC) -> Optional[RepairState]:
        return self._pending.get(target)

    def start(self, target: MAC, source: MAC, seq: int, now: float,
              passive: bool = False) -> RepairState:
        """Open a repair for *target* (caller arms the retry timer)."""
        if target in self._pending:
            raise ValueError(f"repair already pending for {target}")
        state = RepairState(target=target, source=source, seq=seq,
                            retries_left=self.retry_budget, started_at=now,
                            buffer=deque(), passive=passive)
        self._pending[target] = state
        if passive:
            self.counters.passive_started += 1
        else:
            self.counters.started += 1
        return state

    def activate(self, state: RepairState, seq: int) -> None:
        """Promote a passive repair to active (caller re-arms timers)."""
        state.cancel_timer()
        state.passive = False
        state.seq = seq
        state.retries_left = self.retry_budget
        self.counters.activated += 1

    def buffer_frame(self, target: MAC, frame: EthernetFrame) -> bool:
        """Park a data frame until the repair for *target* completes.

        Returns False (frame lost) when no repair is pending or the
        buffer is full.
        """
        state = self._pending.get(target)
        if state is None:
            return False
        if len(state.buffer) >= self.buffer_size:
            self.counters.buffer_overflow += 1
            return False
        state.buffer.append(frame)
        self.counters.frames_buffered += 1
        return True

    def note_retry(self, target: MAC) -> Optional[RepairState]:
        """Consume one retry; returns the state or None when exhausted."""
        state = self._pending.get(target)
        if state is None:
            return None
        if state.retries_left <= 0:
            return None
        state.retries_left -= 1
        self.counters.retries += 1
        return state

    def complete(self, target: MAC, now: float) -> List[EthernetFrame]:
        """Close the repair; returns the buffered frames to re-forward."""
        state = self._pending.pop(target, None)
        if state is None:
            return []
        state.cancel_timer()
        self.counters.completed += 1
        self.repair_times.append(now - state.started_at)
        return list(state.buffer)

    def reset(self) -> int:
        """Abandon every pending repair (bridge restart).

        Cancels all retry timers and returns the total number of
        buffered frames dropped.
        """
        dropped = 0
        for target in self.pending_targets:
            dropped += self.abandon(target)
        return dropped

    def abandon(self, target: MAC) -> int:
        """Give up on *target*; returns the number of frames dropped."""
        state = self._pending.pop(target, None)
        if state is None:
            return 0
        state.cancel_timer()
        self.counters.abandoned += 1
        return len(state.buffer)

    @property
    def pending_targets(self) -> List[MAC]:
        return list(self._pending)

    def __len__(self) -> int:
        return len(self._pending)
