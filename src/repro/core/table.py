"""The ARP-Path locked address table.

This is the data structure the paper's whole mechanism rests on
(§2.1.1): the first copy of a discovery broadcast **locks** the source
address to its ingress port; later copies arriving on other ports are
*discarded*, because they travelled a slower path. Unicast frames that
then flow over the chosen path **confirm** entries into a long-lived
LEARNT state.

Unlike a classic 802.1 filtering database (``repro.switching.table``),
an entry here answers two different questions:

* data-plane lookup — *which port reaches this address?* (same as FDB);
* discovery filter — *on which port do I accept broadcasts from this
  address?* (this is what makes flooding loop-free without STP).

Non-path broadcasts (§2.1.3) are filtered by separate short-lived
*guard* entries that never serve unicast lookups and never create
paths.

Both entry kinds age through a shared :class:`repro.netsim.aging
.AgingStore`: lookups reap lazily (the correctness mechanism — no
behaviour may depend on when memory is reclaimed) and, when the table
is built with a simulator, expired entries are reclaimed promptly by
timer-wheel timers instead of a periodic sweep.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, TYPE_CHECKING

from repro.frames.mac import MAC
from repro.netsim.aging import AgingStore
from repro.netsim.node import Port

if TYPE_CHECKING:
    from repro.netsim.engine import Simulator


class EntryState(enum.Enum):
    """Lifecycle of a locked-table entry."""

    #: Created by the first copy of a discovery broadcast; short timer.
    LOCKED = "locked"
    #: Confirmed by unicast traffic along the path; long, refreshed timer.
    LEARNT = "learnt"


@dataclass(slots=True)
class PathEntry:
    """One address → port association.

    Slotted: bridges hold one of these per active conversation
    endpoint, so at population scale the per-entry ``__dict__`` would
    triple the table's footprint for nothing.

    ``race_until`` marks the end of the discovery race that created the
    entry: while armed, discovery broadcasts from this address arriving
    on *other* ports are losers of that race and must be discarded —
    even after a unicast has already confirmed the entry to LEARNT
    (the confirmation can arrive long before the slowest race copy).
    """

    mac: MAC
    port: Port
    state: EntryState
    created: float
    expires: float
    race_until: float = 0.0

    @property
    def is_locked(self) -> bool:
        return self.state is EntryState.LOCKED

    @property
    def is_learnt(self) -> bool:
        return self.state is EntryState.LEARNT

    def race_active(self, now: float) -> bool:
        """True while the discovery race that set this entry is running."""
        return self.race_until > now


@dataclass(slots=True)
class GuardEntry:
    """A broadcast first-arrival guard (paper §2.1.3); never a path."""

    port: Port
    expires: float


@dataclass
class TableCounters:
    locks: int = 0
    relocks: int = 0
    learns: int = 0
    confirms: int = 0
    refreshes: int = 0
    expiries: int = 0
    port_flushes: int = 0
    blocked_moves: int = 0


class LockedAddressTable:
    """MAC → (port, state) with the ARP-Path locking semantics.

    Pass the owning *sim* to let the engine's timer wheel reclaim
    expired entries; without one the table works standalone with lazy
    reaping plus the explicit :meth:`expire` sweep.
    """

    def __init__(self, lock_timeout: float, learnt_timeout: float,
                 guard_timeout: float, sim: Optional["Simulator"] = None):
        self.lock_timeout = lock_timeout
        self.learnt_timeout = learnt_timeout
        self.guard_timeout = guard_timeout
        self.counters = TableCounters()
        self._entries = AgingStore(sim, on_reap=self._note_expiry)
        self._guards = AgingStore(sim)

    def _note_expiry(self, mac: MAC, entry: PathEntry) -> None:
        self.counters.expiries += 1

    # -- path entries ----------------------------------------------------

    def get(self, mac: MAC, now: float) -> Optional[PathEntry]:
        """The live entry for *mac*, or None (expired entries are reaped)."""
        return self._entries.get(mac, now)

    def lock(self, mac: MAC, port: Port, now: float) -> PathEntry:
        """Lock *mac* to *port* (first copy of a discovery broadcast).

        Replaces any existing entry: a fresh discovery race always
        starts from the winning copy's port. Loop-freedom within one
        race is guaranteed by the LOCKED state, not by history.
        """
        if mac in self._entries:
            self.counters.relocks += 1
        else:
            self.counters.locks += 1
        entry = PathEntry(mac=mac, port=port, state=EntryState.LOCKED,
                          created=now, expires=now + self.lock_timeout,
                          race_until=now + self.lock_timeout)
        return self._entries.put(mac, entry)

    def learn(self, mac: MAC, port: Port, now: float) -> PathEntry:
        """Learn/refresh *mac* on *port* in LEARNT state (unicast source).

        If a live entry exists on a *different* port it is preserved
        (paths are sticky until they expire or fail); the attempt is
        counted as a blocked move and the existing entry returned.
        """
        existing = self.get(mac, now)
        if existing is not None and existing.port is not port:
            self.counters.blocked_moves += 1
            return existing
        if existing is not None:
            if existing.is_locked:
                self.counters.confirms += 1
            else:
                self.counters.refreshes += 1
        else:
            self.counters.learns += 1
        entry = PathEntry(mac=mac, port=port, state=EntryState.LEARNT,
                          created=existing.created if existing else now,
                          expires=now + self.learnt_timeout,
                          race_until=existing.race_until if existing else 0.0)
        return self._entries.put(mac, entry)

    def confirm(self, mac: MAC, now: float) -> Optional[PathEntry]:
        """Upgrade a LOCKED entry to LEARNT (unicast travelled the path).

        This is the §2.1.2 step: the ARP Reply converts the temporary
        reverse path into an established one. Refreshes LEARNT entries.
        """
        entry = self.get(mac, now)
        if entry is None:
            return None
        if entry.is_locked:
            self.counters.confirms += 1
        else:
            self.counters.refreshes += 1
        entry.state = EntryState.LEARNT
        entry.expires = now + self.learnt_timeout
        return entry

    def refresh_lock(self, mac: MAC, now: float) -> Optional[PathEntry]:
        """Re-arm the timer of an entry hit by a same-port broadcast."""
        entry = self.get(mac, now)
        if entry is None:
            return None
        self.counters.refreshes += 1
        timeout = self.lock_timeout if entry.is_locked else self.learnt_timeout
        entry.expires = now + timeout
        entry.race_until = now + self.lock_timeout
        return entry

    def remove(self, mac: MAC) -> bool:
        """Erase the entry for *mac* (PathFail handling). True if present."""
        return self._entries.pop(mac) is not None

    # -- broadcast guards --------------------------------------------------

    def guard_port(self, mac: MAC, now: float) -> Optional[Port]:
        """The accept-port for non-path broadcasts from *mac*, if any."""
        guard = self._guards.get(mac, now)
        return guard.port if guard is not None else None

    def set_guard(self, mac: MAC, port: Port, now: float) -> None:
        """Guard broadcasts from *mac* to *port* for guard_timeout."""
        self._guards.put(mac, GuardEntry(port=port,
                                         expires=now + self.guard_timeout))

    # -- maintenance ---------------------------------------------------------

    def flush_port(self, port: Port) -> int:
        """Erase every entry and guard on *port* (carrier lost)."""
        flushed = self._entries.pop_matching(
            lambda mac, entry: entry.port is port)
        self.counters.port_flushes += flushed
        self._guards.pop_matching(lambda mac, guard: guard.port is port)
        return flushed

    def flush(self) -> None:
        self._entries.clear()
        self._guards.clear()

    def expire(self, now: float) -> int:
        """Reap every expired entry (lazy reaping happens on access too)."""
        stale = self._entries.reap(now)
        self._guards.reap(now)
        return stale

    def entries(self, now: Optional[float] = None) -> List[PathEntry]:
        """All entries, filtered to live ones when *now* is given."""
        if now is None:
            return list(self._entries.values())
        return list(self._entries.live_values(now))

    def occupancy(self, now: float) -> Dict[str, int]:
        """Live entry counts by state (table-size experiments)."""
        locked = learnt = 0
        for entry in self._entries.live_values(now):
            if entry.is_locked:
                locked += 1
            else:
                learnt += 1
        return {"locked": locked, "learnt": learnt,
                "guards": self._guards.live_count(now)}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, mac: MAC) -> bool:
        return mac in self._entries
