"""Tunable parameters of the ARP-Path bridge.

Defaults follow the published implementations: a short *lock* timer
(just long enough for the ARP Reply round trip) and a long refreshable
*learnt* timer for confirmed path entries. Every knob here is exercised
by an ablation experiment (see DESIGN.md EXP-A3).
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class ArpPathConfig:
    """Configuration for :class:`repro.core.bridge.ArpPathBridge`."""

    #: Seconds a LOCKED entry (created by a discovery broadcast) lives.
    lock_timeout: float = 0.8
    #: Seconds a LEARNT entry (confirmed by unicast traffic) lives;
    #: refreshed by every frame that uses it.
    learnt_timeout: float = 120.0
    #: Seconds a broadcast-guard entry (non-ARP broadcast first-arrival
    #: filter, paper §2.1.3) lives.
    guard_timeout: float = 1.0

    #: Send neighbour-discovery hellos (classifies ports as
    #: bridge-facing vs host-facing).
    hello_enabled: bool = True
    hello_interval: float = 1.0
    #: Seconds after the last hello a port still counts as bridge-facing.
    hello_hold: float = 3.5

    #: Enable the Path Repair protocol (paper §2.1.4).
    repair_enabled: bool = True
    #: PathRequest retransmissions before a repair is abandoned.
    repair_retries: int = 3
    #: Seconds to wait for a PathReply before retrying.
    repair_retry_timeout: float = 0.25
    #: Frames buffered per destination while a repair is pending.
    repair_buffer_size: int = 32
    #: Answer PathRequests from any valid table entry for the target,
    #: not only when the target sits on a local host port. Needed when
    #: hellos are disabled (port roles unknown).
    repair_reply_from_cache: bool = False

    #: Enable the ARP-Proxy broadcast suppression (paper §2.2, citing
    #: EtherProxy).
    proxy_enabled: bool = False
    #: Seconds a proxied IP→MAC binding stays valid.
    proxy_timeout: float = 60.0

    #: Hop budget stamped on generated control frames.
    control_ttl: int = 64

    def __post_init__(self):
        if self.lock_timeout <= 0:
            raise ValueError("lock_timeout must be positive")
        if self.learnt_timeout <= 0:
            raise ValueError("learnt_timeout must be positive")
        if self.guard_timeout <= 0:
            raise ValueError("guard_timeout must be positive")
        if self.hello_interval <= 0:
            raise ValueError("hello_interval must be positive")
        if self.hello_hold < self.hello_interval:
            raise ValueError("hello_hold must cover at least one interval")
        if self.repair_retries < 0:
            raise ValueError("repair_retries must be non-negative")
        if self.repair_retry_timeout <= 0:
            raise ValueError("repair_retry_timeout must be positive")
        if self.repair_buffer_size < 0:
            raise ValueError("repair_buffer_size must be non-negative")
        if self.control_ttl <= 0:
            raise ValueError("control_ttl must be positive")

    def with_overrides(self, **kwargs) -> "ArpPathConfig":
        """A copy with the given fields replaced."""
        return replace(self, **kwargs)


#: The library-wide default configuration.
DEFAULT_CONFIG = ArpPathConfig()
