"""The ARP-Path bridge — the paper's primary contribution.

An ARP-Path bridge (paper §2) is a transparent Ethernet bridge that
needs neither a spanning tree nor a link-state protocol:

* **Discovery** (§2.1.1): the first copy of a broadcast ARP Request from
  host S *locks* S's address to its ingress port; copies arriving later
  on other ports travelled slower paths and are discarded. The chain of
  locked ports is a temporary minimum-latency reverse path to S.
* **Confirmation** (§2.1.2): the unicast ARP Reply travels that reverse
  path and converts it into a long-lived LEARNT path, while its own
  source address establishes the forward direction. Paths are symmetric.
* **Loop-free broadcast** (§2.1.3): non-discovery broadcast/multicast
  frames are accepted from a given source only at the port where the
  first such frame arrived; they never create paths.
* **Path Repair** (§2.1.4): a unicast frame that misses the table (entry
  expired, link or bridge failed) triggers a PathFail back to the source
  edge bridge, which floods a PathRequest that races through the network
  like an ARP Request; the target's edge bridge answers with a PathReply
  carrying the target's own source address, re-creating the path.
* **ARP Proxy** (§2.2): optional broadcast suppression — the bridge
  answers ARP Requests from a snooped IP→MAC cache.

Port roles (bridge-facing vs host-facing) are discovered with periodic
link-local Hello frames, keeping the paper's zero-configuration claim;
static role assignment is also supported (the NetFPGA implementation
used static roles).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.config import ArpPathConfig, DEFAULT_CONFIG
from repro.core.proxy import ArpProxy
from repro.core.repair import RepairManager, RepairState
from repro.core.table import LockedAddressTable
from repro.frames import control as ctl_proto
from repro.frames.arp import ArpPacket
from repro.frames.control import ArpPathControl, HELLO_MULTICAST
from repro.frames.ethernet import (ETHERTYPE_ARP, ETHERTYPE_ARPPATH,
                                   EthernetFrame)
from repro.frames.mac import BROADCAST, MAC
from repro.netsim.engine import Simulator
from repro.netsim.node import Port
from repro.switching.base import (Bridge, BridgeFamily, Dataplane,
                                  FamilyOption, register_family)

#: The ARP-Path classification pipeline: control frames are ARP-Path
#: control messages on their experimental ethertype; everything else is
#: classified by the shared dataplane ladder.
ARPPATH_DATAPLANE = Dataplane(control_ethertypes=(ETHERTYPE_ARPPATH,),
                              control_payload=ArpPathControl)


class ArpPathCounters:
    """Protocol-level counters specific to the ARP-Path bridge.

    Hand-written ``__slots__`` (the frames idiom, PR 4): several of
    these are bumped per delivered frame on the discovery hot path.
    """

    _FIELDS = ("discovery_frames", "discovery_filtered",
               "broadcast_guard_filtered", "unicast_misses",
               "drops_no_repair", "drops_buffer", "proxy_suppressed",
               "hellos_sent", "hellos_received", "path_requests_seen",
               "path_replies_seen", "path_fails_seen", "ttl_drops")

    __slots__ = _FIELDS

    def __init__(self) -> None:
        for field in self._FIELDS:
            setattr(self, field, 0)

    def snapshot(self) -> dict:
        return {field: getattr(self, field) for field in self._FIELDS}


class ArpPathBridge(Bridge):
    """A low-latency transparent bridge implementing ARP-Path.

    Parameters
    ----------
    sim:
        The discrete-event simulator the bridge lives in.
    name:
        Human-readable identifier (used in traces and reports).
    mac:
        The bridge's own MAC identity, used as the origin of control
        frames (never as a forwarding destination).
    config:
        Protocol knobs; see :class:`repro.core.config.ArpPathConfig`.
    """

    dataplane = ARPPATH_DATAPLANE

    def __init__(self, sim: Simulator, name: str, mac: MAC,
                 config: ArpPathConfig = DEFAULT_CONFIG):
        super().__init__(sim, name, mac)
        self.config = config
        self.table = LockedAddressTable(lock_timeout=config.lock_timeout,
                                        learnt_timeout=config.learnt_timeout,
                                        guard_timeout=config.guard_timeout,
                                        sim=sim)
        self.repair = RepairManager(buffer_size=config.repair_buffer_size,
                                    retry_budget=config.repair_retries)
        self.proxy: Optional[ArpProxy] = (
            ArpProxy(timeout=config.proxy_timeout)
            if config.proxy_enabled else None)
        self.apc = ArpPathCounters()
        #: Bridge MAC heard on each port index (hello neighbour cache).
        self.neighbors: Dict[int, MAC] = {}
        self._neighbor_until: Dict[int, float] = {}
        #: Static port roles (True = host-facing); overrides hellos.
        self._static_host_role: Dict[int, bool] = {}
        self._hello_seq = 0
        self._control_seq = 0
        self._hello_timer = None

    # -- port roles ------------------------------------------------------

    def mark_host_port(self, port: Port) -> None:
        """Statically declare *port* as host-facing (NetFPGA-style)."""
        self._static_host_role[port.index] = True

    def mark_bridge_port(self, port: Port) -> None:
        """Statically declare *port* as bridge-facing."""
        self._static_host_role[port.index] = False

    def is_bridge_port(self, port: Port) -> bool:
        """True when *port* is known to face another bridge."""
        static = self._static_host_role.get(port.index)
        if static is not None:
            return not static
        return self._neighbor_until.get(port.index, 0.0) > self.sim.now

    def is_host_port(self, port: Port) -> bool:
        """True when *port* is believed to face an end host.

        With hellos enabled, any attached port that has not heard a
        Hello recently is a host port (the zero-configuration rule).
        With hellos disabled and no static role the bridge cannot tell,
        and conservatively answers False.
        """
        static = self._static_host_role.get(port.index)
        if static is not None:
            return static
        if not self.config.hello_enabled:
            return False
        return port.is_attached and not self.is_bridge_port(port)

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        super().start()
        if self.config.hello_enabled:
            self._send_hellos()
            self._hello_timer = self.sim.schedule_periodic(
                self.config.hello_interval, self._send_hellos)

    def stop(self) -> None:
        """Stop periodic processes (used when tearing a bridge down)."""
        if self._hello_timer is not None:
            self._hello_timer.stop()
            self._hello_timer = None

    def reset_state(self) -> None:
        """Power-cycle wipe: locked table, repairs, neighbours, proxy.

        The NetFPGA loses its whole locked table on reboot — paths
        through a restarted bridge must be re-discovered (or repaired)
        from scratch, which is exactly what churn experiments measure.
        """
        self.table.flush()
        self.apc.drops_buffer += self.repair.reset()
        self.neighbors.clear()
        self._neighbor_until.clear()
        if self.proxy is not None:
            self.proxy.clear()

    def _send_hellos(self) -> None:
        self._hello_seq += 1
        hello = ctl_proto.make_hello(self.mac, seq=self._hello_seq)
        # One frame per round: fan-out is copy-on-write, so every port
        # shares the template object (and its uid) exactly like a
        # flood — 1 allocation per round, 0 per port.
        frame = EthernetFrame(dst=HELLO_MULTICAST, src=self.mac,
                              ethertype=ETHERTYPE_ARPPATH, payload=hello)
        for port in self.ports:
            # port.is_up inlined: two hello rounds per bridge per
            # warm-up make the property call measurable at scale.
            link = port.link
            if link is None or not link.up:
                continue
            self.apc.hellos_sent += 1
            self.counters.control_sent += 1
            frame._shared = True
            link.transmit(port, frame)

    def link_state_changed(self, port: Port, up: bool) -> None:
        if up:
            # Re-announce immediately so the neighbour reclassifies the
            # port without waiting a full hello interval.
            if self.config.hello_enabled and self.started:
                self._send_hellos()
            return
        # Carrier lost: every path through this port is dead. Flushing
        # makes the next unicast miss, which triggers Path Repair.
        self.table.flush_port(port)
        self._neighbor_until.pop(port.index, None)
        self.neighbors.pop(port.index, None)

    def _next_seq(self) -> int:
        self._control_seq += 1
        return self._control_seq

    # -- dataplane admission ----------------------------------------------

    def admit_frame(self, port: Port, frame: EthernetFrame) -> bool:
        """Copies of our own control floods returning over loops die here.

        Integer compare on the raw address value: this gate runs once
        per delivered frame, and a ``MAC.__eq__`` call is measurable
        there.
        """
        return frame.src._value != self.mac._value

    # -- discovery (paper §2.1.1) ----------------------------------------

    def _accept_discovery(self, port: Port, src: MAC) -> bool:
        """Apply the locking rule to one copy of a discovery broadcast.

        Returns True when this copy won and must be processed further;
        False when it travelled a slower path and must be discarded.

        The rule (paper §2.1.1): while the entry's discovery race is
        still running (its *race guard* is armed — a unicast confirm
        may already have upgraded the entry to LEARNT while slow race
        copies are in flight), copies arriving on other ports lose.
        After the race window a discovery broadcast on a different port
        is a *new* race and re-locks the entry — which is what lets a
        retransmitted ARP Request or a repair PathRequest route around
        entries left behind by a failed path. Loop-freedom holds
        because each re-lock re-arms the guard, so later copies of the
        same race are discarded for a full lock timeout.
        """
        now = self.sim.now
        entry = self.table.get(src, now)
        if entry is None:
            self.table.lock(src, port, now)
            return True
        if entry.port is port:
            self.table.refresh_lock(src, now)
            return True
        if entry.is_locked or entry.race_active(now):
            return False
        self.table.lock(src, port, now)
        return True

    def on_arp(self, port: Port, frame: EthernetFrame) -> None:
        """A broadcast ARP frame: the path-discovery race probe."""
        self.apc.discovery_frames += 1
        pkt: ArpPacket = frame.payload
        if self.proxy is not None:
            self.proxy.snoop(pkt, self.sim.now)
        if not self._accept_discovery(port, frame.src):
            self.apc.discovery_filtered += 1
            self.filter_frame()
            return
        if self.proxy is not None:
            answer = self.proxy.answer(pkt, self.sim.now)
            if answer is not None:
                # Broadcast suppressed: impersonate the target exactly
                # like EtherProxy. The reply's source address rebuilds
                # the target's path along the way back to the asker.
                self.apc.proxy_suppressed += 1
                self.counters.control_sent += 1
                port.send(EthernetFrame(dst=pkt.sha, src=answer.sha,
                                        ethertype=ETHERTYPE_ARP,
                                        payload=answer))
                return
        self.flood_data(frame, exclude=port)

    # -- non-discovery broadcast (paper §2.1.3) ----------------------------

    def on_broadcast(self, port: Port, frame: EthernetFrame) -> None:
        """Loop-free flooding of broadcast/multicast data frames.

        Frames from a source are accepted only at the port that received
        the first such frame (or at the source's established path port
        when one exists); they never create or modify path entries.
        """
        now = self.sim.now
        entry = self.table.get(frame.src, now)
        accept_port = entry.port if entry is not None \
            else self.table.guard_port(frame.src, now)
        if accept_port is not None and accept_port is not port:
            self.apc.broadcast_guard_filtered += 1
            self.filter_frame()
            return
        if entry is None:
            self.table.set_guard(frame.src, port, now)
        self.flood_data(frame, exclude=port)

    # -- unicast data plane (paper §2.1.2) --------------------------------

    def on_unicast(self, port: Port, frame: EthernetFrame) -> None:
        now = self.sim.now
        # The frame's source travelled to here: establish/confirm the
        # reverse direction in LEARNT state.
        self.table.learn(frame.src, port, now)
        if self.proxy is not None and frame.ethertype == ETHERTYPE_ARP \
                and isinstance(frame.payload, ArpPacket):
            self.proxy.snoop(frame.payload, now)
        if frame.dst == self.mac:
            return
        entry = self.table.get(frame.dst, now)
        if entry is not None and entry.port.is_up:
            if entry.port is port:
                self.filter_frame()
                return
            # Using the path keeps it alive (and upgrades LOCKED entries
            # created by the discovery broadcast — the §2.1.2 step).
            self.table.confirm(frame.dst, now)
            self.forward(entry.port, frame)
            return
        self._unicast_miss(port, frame)

    def _unicast_miss(self, port: Port, frame: EthernetFrame) -> None:
        """No usable entry for the destination: invoke Path Repair."""
        self.apc.unicast_misses += 1
        if not self.config.repair_enabled:
            self.apc.drops_no_repair += 1
            return
        if self.repair.is_pending(frame.dst):
            if not self.repair.buffer_frame(frame.dst, frame):
                self.apc.drops_buffer += 1
            return
        if self._is_source_edge(port, frame.src):
            self._start_repair(frame.src, frame.dst, first_frame=frame)
        else:
            self._send_path_fail(frame)
            self._start_passive_repair(frame)

    def _is_source_edge(self, ingress: Port, source: MAC) -> bool:
        """Is this bridge the ingress edge bridge for *source*?"""
        if self.is_host_port(ingress):
            return True
        entry = self.table.get(source, self.sim.now)
        return entry is not None and self.is_host_port(entry.port)

    # -- Path Repair (paper §2.1.4) -----------------------------------------

    def _send_path_fail(self, frame: EthernetFrame) -> None:
        """Notify the source edge bridge that the destination was lost.

        PathFail travels hop-by-hop along the (still valid) entries for
        the frame's source — the same chain the frame just used, in
        reverse. When no route back exists the bridge repairs locally as
        a fallback, so the conversation still recovers.
        """
        now = self.sim.now
        fail = ctl_proto.make_path_fail(self.mac, frame.src, frame.dst,
                                        self._next_seq())
        entry = self.table.get(frame.src, now)
        if entry is None or not entry.port.is_up:
            self.repair.counters.fails_unroutable += 1
            self._start_repair(frame.src, frame.dst)
            return
        self.repair.counters.fails_sent += 1
        self.counters.control_sent += 1
        entry.port.send(EthernetFrame(dst=frame.src, src=self.mac,
                                      ethertype=ETHERTYPE_ARPPATH,
                                      payload=fail))

    def _start_repair(self, source: MAC, target: MAC,
                      first_frame: Optional[EthernetFrame] = None) -> None:
        state = self.repair.get(target)
        if state is not None and not state.passive:
            if first_frame is not None \
                    and not self.repair.buffer_frame(target, first_frame):
                self.apc.drops_buffer += 1
            return
        if state is not None:
            # A passive buffer already exists here; take over the race.
            self.repair.activate(state, self._next_seq())
        else:
            state = self.repair.start(target, source, self._next_seq(),
                                      self.sim.now)
        if first_frame is not None \
                and not self.repair.buffer_frame(target, first_frame):
            self.apc.drops_buffer += 1
        self._broadcast_path_request(state)
        state.retry_event = self.sim.schedule(
            self.config.repair_retry_timeout, self._repair_timeout, target)

    def _start_passive_repair(self, frame: EthernetFrame) -> None:
        """Park in-flight frames at a non-edge bridge during a repair.

        No control traffic is generated: if the PathReply of the edge
        bridge's race passes through here, the buffered frames follow
        it out; otherwise a hold timer abandons them. Bounded loss
        either way, zero loss on path-preserving repairs.
        """
        if self.repair.is_pending(frame.dst):
            if not self.repair.buffer_frame(frame.dst, frame):
                self.apc.drops_buffer += 1
            return
        state = self.repair.start(frame.dst, frame.src, self._next_seq(),
                                  self.sim.now, passive=True)
        if not self.repair.buffer_frame(frame.dst, frame):
            self.apc.drops_buffer += 1
        hold = self.config.repair_retry_timeout \
            * (self.config.repair_retries + 1)
        state.retry_event = self.sim.schedule(
            hold, self._passive_timeout, frame.dst)

    def _passive_timeout(self, target: MAC) -> None:
        state = self.repair.get(target)
        if state is None or not state.passive:
            return
        self.apc.drops_buffer += self.repair.abandon(target)

    def _broadcast_path_request(self, state: RepairState) -> None:
        """Flood a PathRequest that races exactly like an ARP Request.

        The Ethernet source is the *end host* S, not the bridge: that is
        what makes every bridge lock S's address during the race, so the
        winning copy leaves a minimum-latency reverse path behind it.

        Before flooding, the originator arms the race guard on its own
        entry for S — it plays the role the ingress lock plays for a
        host-sent ARP Request. Without it, copies of our own flood
        arriving back over fabric loops would count as a *new* race,
        re-lock, and re-flood forever.
        """
        self.table.refresh_lock(state.source, self.sim.now)
        request = ArpPathControl(op=ctl_proto.OP_PATH_REQUEST,
                                 origin=self.mac, source=state.source,
                                 target=state.target, seq=state.seq,
                                 ttl=self.config.control_ttl)
        frame = EthernetFrame(dst=BROADCAST, src=state.source,
                              ethertype=ETHERTYPE_ARPPATH, payload=request)
        self.counters.control_sent += 1
        self.flood_data(frame)

    def _repair_timeout(self, target: MAC) -> None:
        state = self.repair.note_retry(target)
        if state is None:
            dropped = self.repair.abandon(target)
            self.apc.drops_buffer += dropped
            return
        state.seq = self._next_seq()
        self._broadcast_path_request(state)
        state.retry_event = self.sim.schedule(
            self.config.repair_retry_timeout, self._repair_timeout, target)

    # -- control-plane receive -------------------------------------------

    def on_control(self, port: Port, frame: EthernetFrame) -> None:
        self.counters.control_received += 1
        ctl: ArpPathControl = frame.payload
        if ctl.is_hello:
            self._handle_hello(port, ctl)
        elif ctl.is_path_request:
            self._handle_path_request(port, frame, ctl)
        elif ctl.is_path_reply:
            self._handle_path_reply(port, frame, ctl)
        elif ctl.is_path_fail:
            self._handle_path_fail(port, frame, ctl)

    def _handle_hello(self, port: Port, ctl: ArpPathControl) -> None:
        self.apc.hellos_received += 1
        self.neighbors[port.index] = ctl.origin
        self._neighbor_until[port.index] = \
            self.sim.now + self.config.hello_hold

    def _handle_path_request(self, port: Port, frame: EthernetFrame,
                             ctl: ArpPathControl) -> None:
        """A flooded repair probe: lock like an ARP Request, answer if we
        are the target's edge bridge, otherwise relay the race."""
        self.apc.path_requests_seen += 1
        now = self.sim.now
        if not self._accept_discovery(port, frame.src):
            self.apc.discovery_filtered += 1
            self.filter_frame()
            return
        tentry = self.table.get(ctl.target, now)
        if tentry is not None and tentry.port.is_up \
                and self._can_answer_repair(tentry.port):
            self.repair.counters.requests_answered += 1
            self._send_path_reply(port, ctl)
            return
        if ctl.ttl <= 1:
            self.apc.ttl_drops += 1
            return
        self.flood_data(frame.with_payload(ctl.relayed()), exclude=port)

    def _can_answer_repair(self, entry_port: Port) -> bool:
        if self.config.repair_reply_from_cache:
            return True
        return self.is_host_port(entry_port)

    def _send_path_reply(self, request_port: Port,
                         ctl: ArpPathControl) -> None:
        """Answer a PathRequest on behalf of the locally attached target.

        The reply is sent with the *target's* MAC as Ethernet source, so
        every bridge along the way back learns the target in LEARNT
        state — re-creating the path exactly like an ARP Reply would.
        """
        reply = ArpPathControl(op=ctl_proto.OP_PATH_REPLY, origin=self.mac,
                               source=ctl.source, target=ctl.target,
                               seq=ctl.seq, ttl=self.config.control_ttl)
        self.table.confirm(ctl.source, self.sim.now)
        self.counters.control_sent += 1
        request_port.send(EthernetFrame(dst=ctl.source, src=ctl.target,
                                        ethertype=ETHERTYPE_ARPPATH,
                                        payload=reply))

    def _handle_path_reply(self, port: Port, frame: EthernetFrame,
                           ctl: ArpPathControl) -> None:
        self.apc.path_replies_seen += 1
        now = self.sim.now
        # The reply's source IS the repaired target: learn it.
        self.table.learn(frame.src, port, now)
        if self.repair.is_pending(ctl.target):
            self._complete_repair(ctl.target)
        entry = self.table.get(frame.dst, now)
        if entry is None or not entry.port.is_up or entry.port is port:
            return
        if self.is_host_port(entry.port):
            # We are the source's edge bridge: the repair is done, hosts
            # never see ARP-Path control traffic.
            return
        if ctl.ttl <= 1:
            self.apc.ttl_drops += 1
            return
        self.table.confirm(frame.dst, now)
        self.forward(entry.port, frame.with_payload(ctl.relayed()))

    def _complete_repair(self, target: MAC) -> None:
        """Flush the repair buffer along the freshly re-created path."""
        now = self.sim.now
        buffered = self.repair.complete(target, now)
        if not buffered:
            return
        entry = self.table.get(target, now)
        if entry is None or not entry.port.is_up:
            # Reply raced with another failure; frames are lost.
            self.apc.drops_buffer += len(buffered)
            return
        for parked in buffered:
            self.table.confirm(target, now)
            self.forward(entry.port, parked)

    def _handle_path_fail(self, port: Port, frame: EthernetFrame,
                          ctl: ArpPathControl) -> None:
        """Relay a PathFail toward the source edge, erasing the dead
        destination's entries as it goes; the edge bridge starts the
        repair race."""
        self.apc.path_fails_seen += 1
        now = self.sim.now
        self.table.remove(ctl.target)
        state = self.repair.get(ctl.target)
        if state is not None and not state.passive:
            # Already racing (duplicate PathFail); nothing more to do. A
            # passive buffer does NOT stop the relay — the notification
            # still has to reach the source edge bridge.
            return
        entry = self.table.get(ctl.source, now)
        if entry is None or not entry.port.is_up:
            self.repair.counters.fails_unroutable += 1
            self._start_repair(ctl.source, ctl.target)
            return
        if self.is_host_port(entry.port):
            self._start_repair(ctl.source, ctl.target)
            return
        if ctl.ttl <= 1:
            self.apc.ttl_drops += 1
            self._start_repair(ctl.source, ctl.target)
            return
        self.repair.counters.fails_relayed += 1
        self.counters.control_sent += 1
        entry.port.send(frame.with_payload(ctl.relayed()))

    # -- introspection -----------------------------------------------------

    def path_port_for(self, mac: MAC) -> Optional[Port]:
        """The current forwarding port for *mac*, or None (diagnostics)."""
        entry = self.table.get(mac, self.sim.now)
        return entry.port if entry is not None else None

    def host_ports(self) -> List[Port]:
        """Attached ports currently classified as host-facing."""
        return [port for port in self.attached_ports
                if self.is_host_port(port)]

    def state_entries(self, now: Optional[float] = None) -> int:
        """Locked-table entries live at *now* (locked + learnt)."""
        occ = self.table.occupancy(self.sim.now if now is None else now)
        return occ["locked"] + occ["learnt"]

    def repair_events(self) -> List[float]:
        """Completed Path Repair durations, in completion order."""
        return list(self.repair.repair_times)

    def protocol_counters(self) -> Dict[str, int]:
        return {
            "relocks": self.table.counters.relocks,
            "discovery_filtered": self.apc.discovery_filtered,
            "proxy_suppressed": self.apc.proxy_suppressed,
            "frames_buffered": self.repair.counters.frames_buffered,
            "drops_buffer": self.apc.drops_buffer,
            "repairs_completed": self.repair.counters.completed,
        }

    def __repr__(self) -> str:
        return (f"<ArpPathBridge {self.name} mac={self.mac} "
                f"entries={len(self.table)}>")


def _arppath_factory(config: ArpPathConfig = DEFAULT_CONFIG):
    """A bridge factory producing ARP-Path bridges with *config*."""

    def build(sim: Simulator, name: str, mac: MAC) -> ArpPathBridge:
        return ArpPathBridge(sim, name, mac, config=config)

    return build


register_family(BridgeFamily(
    name="arppath",
    title="ARP-Path: in-band shortest-path discovery, lock and repair "
          "(the paper's protocol)",
    factory=_arppath_factory,
    warmup=5.0,
    loop_safe=True,
    order=10,
    control_ethertypes=(ETHERTYPE_ARPPATH,),
    options=(
        FamilyOption("config", "object", None,
                     "ArpPathConfig: lock/learnt/guard timeouts, hello "
                     "and repair knobs (see repro.core.config)"),
    ),
))
