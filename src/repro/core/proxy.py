"""ARP-Proxy: broadcast suppression inside the bridges.

Paper §2.2 ("Scalability"): *"ARP broadcast traffic can be reduced
dramatically by implementing ARP Proxy function inside the switches"*,
citing EtherProxy (Elmeleegy & Cox, INFOCOM 2009). The bridge snoops
IP↔MAC bindings from every ARP packet it sees; when a host's ARP
Request arrives on a host-facing port and the answer is cached, the
bridge replies directly and the broadcast never enters the fabric.

Suppressed requests mean the data path to the target may not exist yet;
the first data frame then triggers the Path Repair machinery, which
builds it with a PathRequest race — preserving the minimum-latency
property.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.frames import arp as arp_proto
from repro.frames.arp import ArpPacket
from repro.frames.ipv4 import IPv4Address
from repro.frames.mac import MAC


@dataclass
class ProxyBinding:
    mac: MAC
    expires: float


@dataclass
class ProxyCounters:
    snooped: int = 0
    answered: int = 0
    misses: int = 0


class ArpProxy:
    """A snooping IP→MAC cache that can answer ARP Requests."""

    def __init__(self, timeout: float = 60.0):
        self.timeout = timeout
        self._bindings: Dict[IPv4Address, ProxyBinding] = {}
        self.counters = ProxyCounters()

    def snoop(self, pkt: ArpPacket, now: float) -> None:
        """Learn the sender binding from any ARP packet."""
        if int(pkt.spa) == 0 or pkt.sha.is_multicast:
            return
        self.counters.snooped += 1
        self._bindings[pkt.spa] = ProxyBinding(mac=pkt.sha,
                                               expires=now + self.timeout)

    def lookup(self, ip: IPv4Address, now: float) -> Optional[MAC]:
        binding = self._bindings.get(ip)
        if binding is None:
            return None
        if binding.expires <= now:
            del self._bindings[ip]
            return None
        return binding.mac

    def answer(self, request: ArpPacket, now: float) -> Optional[ArpPacket]:
        """The proxied ARP Reply for *request*, or None on cache miss.

        Gratuitous ARPs (target == sender) are never answered.
        """
        if not request.is_request or request.tpa == request.spa:
            return None
        mac = self.lookup(request.tpa, now)
        if mac is None:
            self.counters.misses += 1
            return None
        if mac == request.sha:
            return None
        self.counters.answered += 1
        return arp_proto.make_reply(mac, request.tpa, request.sha,
                                    request.spa)

    def invalidate(self, ip: IPv4Address) -> None:
        self._bindings.pop(ip, None)

    def clear(self) -> None:
        """Forget every snooped binding (bridge restart)."""
        self._bindings.clear()

    def __len__(self) -> int:
        return len(self._bindings)
