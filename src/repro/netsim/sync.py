"""Shard synchronization transport: frame packing and channel fabrics.

The sharded runtime (:mod:`repro.netsim.shard`) connects K cooperating
engines with an all-to-all mesh of point-to-point channels. Each round
of the conservative protocol, every worker sends every peer exactly one
message — ``(promise, done, frames)`` — and receives exactly one back,
so the mesh never deadlocks and never reorders (each channel is FIFO).

Frames crossing a shard boundary travel **by value**: the sender runs
the wire codec (:mod:`repro.frames.codec`) and ships bytes, the
receiver decodes a fresh frame object. That is deliberate even in
thread mode, where references would be cheaper — a single code path
means the parity guarantee ("sharded records are byte-identical to
single-process records") is exercised identically everywhere, and the
codec round-trip is precisely the serialisation a distributed run
would need. Two fields do not survive the wire codec and ride
alongside the bytes instead:

* the frame ``uid`` (a simulator-side identity, not an on-wire field),
* an application payload object buried under UDP (the codec encodes
  unknown payloads as opaque zeros of their wire size; the receiving
  host needs the real object — e.g. a ``VideoChunk`` — to account the
  stream). Such objects must be picklable and value-semantic.

BPDU and LSP ethertypes register their codecs at import of the
protocol modules, so this module imports both: a worker that receives
a control frame of either kind must be able to decode it.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_mod
from typing import Any, Dict, List, Tuple

from repro.frames.codec import decode_frame, encode_frame
from repro.frames.ethernet import EthernetFrame
from repro.frames.ipv4 import IPv4Packet
from repro.frames.udp import UdpDatagram

# Register the BPDU, LSP and controller ethertype codecs (import side
# effect).
import repro.stp.codec   # noqa: F401
import repro.spb.codec   # noqa: F401
import repro.switching.controller.codec   # noqa: F401


class ShardTransportError(RuntimeError):
    """A frame cannot be moved between shards losslessly."""


def pack_frame(frame: EthernetFrame) -> Tuple[bytes, int, Any]:
    """Serialise *frame* for the wire: ``(codec_bytes, uid, aux)``.

    *aux* carries the one payload layer the byte codec flattens to
    opaque zeros: an application object under UDP (``IPv4Packet`` →
    ``UdpDatagram`` → object). Every other payload the simulator ships
    round-trips losslessly through the codec (ICMP echo payloads are
    literal bytes; ARP, ARP-Path control, BPDU and LSP have exact
    codecs), so aux is None for them.
    """
    aux: Any = None
    payload = frame.payload
    if isinstance(payload, IPv4Packet):
        inner = payload.payload
        if isinstance(inner, UdpDatagram) \
                and not isinstance(inner.payload, (bytes, bytearray)):
            aux = inner.payload
    elif not isinstance(payload, (bytes, bytearray)):
        from repro.frames.codec import _ethertype_codecs
        if frame.ethertype not in _ethertype_codecs:
            raise ShardTransportError(
                f"cannot transport object payload of unregistered "
                f"ethertype 0x{frame.ethertype:04x} between shards: "
                f"{payload!r}")
    return encode_frame(frame), frame.uid, aux


def unpack_frame(data: bytes, uid: int, aux: Any) -> EthernetFrame:
    """Rebuild a frame shipped by :func:`pack_frame`.

    The decoded frame is a fresh, private object (not ``_shared``); the
    original uid is restored so broadcast-copy correlation in trace
    records survives the boundary, and *aux* is grafted back under the
    UDP layer the codec zeroed.
    """
    frame = decode_frame(data)
    frame.uid = uid
    if aux is not None:
        frame.payload.payload.payload = aux
    return frame


class Endpoint:
    """One worker's view of the all-to-all channel mesh.

    ``send(dst, message)`` never blocks (both fabrics buffer without
    bound) and ``recv(src)`` blocks until the peer's next message —
    safe under the lockstep round structure, where every worker sends
    to every peer before receiving from any.
    """

    def __init__(self, shard_id: int, senders: Dict[int, Any],
                 receivers: Dict[int, Any]):
        self.shard_id = shard_id
        self._senders = senders
        self._receivers = receivers
        #: Optional shared :class:`repro.netsim.shard.ProgressBoard`;
        #: :func:`repro.netsim.shard.run_sharded` installs one so its
        #: stall watchdog can observe every worker's protocol progress.
        self.progress: Any = None

    @property
    def peers(self) -> List[int]:
        return sorted(self._senders)

    def send(self, dst: int, message: Any) -> None:
        self._senders[dst].put(message)

    def recv(self, src: int) -> Any:
        return self._receivers[src].get()


def make_thread_fabric(shard_count: int) -> List[Endpoint]:
    """Endpoints wired over in-process queues (thread mode)."""
    channels = {(src, dst): queue_mod.SimpleQueue()
                for src in range(shard_count)
                for dst in range(shard_count) if src != dst}
    return [Endpoint(me,
                     senders={dst: channels[(me, dst)]
                              for dst in range(shard_count) if dst != me},
                     receivers={src: channels[(src, me)]
                                for src in range(shard_count) if src != me})
            for me in range(shard_count)]


def make_process_fabric(shard_count: int) -> List[Endpoint]:
    """Endpoints wired over multiprocessing queues (process mode).

    :class:`multiprocessing.Queue` (not a raw pipe) on purpose: its
    feeder thread makes ``put`` non-blocking regardless of message
    size, so a flood burst whose frame batch exceeds the OS pipe
    buffer cannot deadlock two workers that are both mid-send.
    """
    channels = {(src, dst): multiprocessing.Queue()
                for src in range(shard_count)
                for dst in range(shard_count) if src != dst}
    return [Endpoint(me,
                     senders={dst: channels[(me, dst)]
                              for dst in range(shard_count) if dst != me},
                     receivers={src: channels[(src, me)]
                                for src in range(shard_count) if src != me})
            for me in range(shard_count)]
