"""Shared aging infrastructure for address tables.

An :class:`AgingStore` is a key → entry map where every entry carries an
``expires`` deadline in simulation seconds. It is the common substrate
under both the ARP-Path locked table (:mod:`repro.core.table`) and the
802.1 filtering database (:mod:`repro.switching.table`), replacing the
per-bridge periodic expiry sweeps those tables used to run.

Two mechanisms cooperate, with a strict division of labour:

* **Lazy reap-on-lookup** — :meth:`AgingStore.get` treats an entry with
  ``expires <= now`` as absent and deletes it on the spot. This is the
  *only* mechanism correctness may rely on: protocol behaviour must be
  identical whether or not memory has been reclaimed yet.
* **Timer-wheel reclamation** — when a simulator is attached, each key
  arms at most one :meth:`~repro.netsim.engine.Simulator.schedule_timer`
  wheel timer at its entry's deadline. A refreshed entry does not
  re-arm eagerly; the timer fires at the *old* deadline, notices the
  entry still lives, and re-arms at the new one (kernel-style lazy
  re-arm). Prompt memory reclamation without any O(table) sweep.

Entries are any objects exposing a mutable ``expires`` attribute.
"""

from __future__ import annotations

from typing import (Any, Callable, Dict, Hashable, Iterable, Iterator, List,
                    Optional, Tuple, TYPE_CHECKING)

if TYPE_CHECKING:
    from repro.netsim.engine import Event, Simulator

#: Callback invoked as ``on_reap(key, entry)`` when an expired entry is
#: reclaimed (lazily, by sweep, or by a wheel timer).
ReapHook = Callable[[Hashable, Any], None]


class AgingStore:
    """Key → entry map with deadline-based expiry.

    Works standalone (pass ``sim=None``): lookups reap lazily and
    :meth:`reap` offers an explicit sweep — exactly what direct
    data-structure tests want. With a simulator attached, wheel timers
    reclaim expired entries promptly as simulated time passes.
    """

    __slots__ = ("_entries", "_timers", "_sim", "_on_reap")

    def __init__(self, sim: Optional["Simulator"] = None,
                 on_reap: Optional[ReapHook] = None):
        self._entries: Dict[Hashable, Any] = {}
        self._timers: Dict[Hashable, "Event"] = {}
        self._sim = sim
        self._on_reap = on_reap

    # -- lookups -------------------------------------------------------------

    def get(self, key: Hashable, now: float) -> Optional[Any]:
        """The live entry for *key*, or None (expired entries are reaped)."""
        entry = self._entries.get(key)
        if entry is None:
            return None
        if entry.expires <= now:
            del self._entries[key]
            if self._on_reap is not None:
                self._on_reap(key, entry)
            return None
        return entry

    def peek(self, key: Hashable) -> Optional[Any]:
        """The raw entry for *key* — expired or not, without reaping."""
        return self._entries.get(key)

    # -- mutation ------------------------------------------------------------

    def put(self, key: Hashable, entry: Any) -> Any:
        """Insert or replace the entry for *key* and arm its reclamation.

        At most one wheel timer is armed per key; replacing an entry
        whose timer is already pending leaves the timer alone (it
        re-arms lazily when it fires and finds the entry still alive).
        """
        self._entries[key] = entry
        sim = self._sim
        if sim is not None and key not in self._timers:
            self._timers[key] = sim.schedule_timer(
                max(entry.expires - sim.now, 0.0), self._timer_fired, key)
        return entry

    def pop(self, key: Hashable) -> Optional[Any]:
        """Remove and return the raw entry for *key* (None when absent).

        An explicit removal, not an expiry: the reap hook is NOT called.
        """
        timer = self._timers.pop(key, None)
        if timer is not None:
            timer.cancel()
        return self._entries.pop(key, None)

    def pop_matching(self, predicate: Callable[[Hashable, Any], bool]) -> int:
        """Remove every entry matching *predicate(key, entry)*; returns
        how many (explicit removal — no reap hook)."""
        stale = [key for key, entry in self._entries.items()
                 if predicate(key, entry)]
        for key in stale:
            self.pop(key)
        return len(stale)

    def clear(self) -> None:
        """Drop every entry and cancel every pending reclamation timer."""
        for timer in self._timers.values():
            timer.cancel()
        self._timers.clear()
        self._entries.clear()

    def reap(self, now: float) -> int:
        """Sweep every expired entry out immediately; returns how many.

        Kept for standalone use and introspection — simulation code
        never needs it (the wheel does this incrementally).
        """
        stale = [key for key, entry in self._entries.items()
                 if entry.expires <= now]
        for key in stale:
            entry = self._entries.pop(key)
            timer = self._timers.pop(key, None)
            if timer is not None:
                timer.cancel()
            if self._on_reap is not None:
                self._on_reap(key, entry)
        return len(stale)

    def _timer_fired(self, key: Hashable) -> None:
        self._timers.pop(key, None)
        entry = self._entries.get(key)
        if entry is None:
            return
        sim = self._sim
        now = sim.now
        if entry.expires <= now:
            del self._entries[key]
            if self._on_reap is not None:
                self._on_reap(key, entry)
        else:
            # Entry was refreshed since the timer was armed: re-arm at
            # the new deadline (lazy re-arm keeps timer churn at one
            # pending timer per key no matter how hot the entry is).
            self._timers[key] = sim.schedule_timer(
                entry.expires - now, self._timer_fired, key)

    # -- iteration / sizing ----------------------------------------------

    def items(self) -> Iterable[Tuple[Hashable, Any]]:
        """Raw (key, entry) pairs — may include expired entries."""
        return self._entries.items()

    def values(self) -> Iterable[Any]:
        """Raw entries — may include expired ones."""
        return self._entries.values()

    def live_values(self, now: float) -> Iterator[Any]:
        """Entries whose deadline has not passed at *now*."""
        return (entry for entry in self._entries.values()
                if entry.expires > now)

    def live_count(self, now: float) -> int:
        return sum(1 for entry in self._entries.values()
                   if entry.expires > now)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def __repr__(self) -> str:
        return (f"<AgingStore entries={len(self._entries)} "
                f"timers={len(self._timers)}>")
