"""The discrete-event simulation engine.

Two scheduling structures cooperate behind one deterministic clock:

* **Event heap** — the primary queue. Events fire in (time, priority,
  sequence) order, so two runs with the same seed replay identically —
  which the ARP-Path tests rely on, because path selection is literally
  a race between flooded frame copies.
* **Timer wheel** (:class:`TimerWheel`) — a two-level hierarchical
  wheel for the high-volume, frequently-cancelled short timers (table
  entry expiry, broadcast guards, hello holds). Wheel timers are bucketed
  by coarse time slot and only *poured* into the heap just before their
  bucket's window executes; a timer cancelled early therefore costs O(1)
  and never touches the heap at all. Pouring happens strictly before any
  event at or past the bucket's window fires, so the global
  (time, priority, sequence) order — and with it determinism — is
  preserved exactly as if every timer had been heap-scheduled.

The engine also keeps an O(1) :attr:`Simulator.pending_events` counter
(maintained incrementally on schedule/fire/cancel) and offers
:meth:`Simulator.schedule_bulk` for batched workload injection (one
O(n) heapify instead of n heap pushes).

Heap entries are ``(time, priority, seq, event)`` tuples rather than
bare :class:`Event` objects: heap sifts then compare machine floats and
ints in C instead of calling :meth:`Event.__lt__` per comparison, which
is the difference between O(log n) cheap comparisons and O(log n)
Python frames on every push/pop of the hot loop. ``seq`` is unique, so
a comparison never falls through to the event object itself.
"""

from __future__ import annotations

import heapq
import itertools
import random
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from repro.netsim.errors import SchedulingError
from repro.netsim.tracer import Tracer

#: Priority for ordinary data-plane events.
PRIORITY_NORMAL = 0
#: Priority for control-plane housekeeping that must run after the data
#: plane at the same instant (e.g. table entry reclamation).
PRIORITY_LATE = 10
#: Priority for events that must precede the data plane at the same
#: instant (e.g. carrier-loss notifications).
PRIORITY_EARLY = -10

_INF = float("inf")


class Event:
    """A scheduled callback. Returned by :meth:`Simulator.schedule`."""

    __slots__ = ("time", "priority", "seq", "callback", "args", "cancelled",
                 "_sim")

    def __init__(self, time: float, priority: int, seq: int,
                 callback: Callable[..., Any], args: tuple,
                 sim: Optional["Simulator"] = None):
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the event from firing (idempotent)."""
        if not self.cancelled:
            self.cancelled = True
            sim = self._sim
            if sim is not None:
                # The simulator clears its reference once the event has
                # fired, so a live reference means the event still counts
                # as pending.
                sim._pending -= 1
                self._sim = None

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        if self.priority != other.priority:
            return self.priority < other.priority
        return self.seq < other.seq

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.9f} prio={self.priority} {state}>"


class TimerWheel:
    """A two-level hierarchical timer wheel feeding the event heap.

    Timers land in *fine* buckets of ``resolution`` seconds when they
    are due within one wheel span (``resolution * slots``), otherwise in
    *coarse* buckets one span wide. As the clock approaches a bucket,
    coarse buckets cascade into fine ones and fine buckets pour their
    surviving timers into the simulator's heap, which restores the exact
    (time, priority, sequence) order.

    The payoff is the cancellation pattern of aging timers: an entry
    that is refreshed before it expires cancels its timer with a flag
    write — no heap traffic, no O(log n) anything. Only timers that
    actually come due ever reach the heap.
    """

    __slots__ = ("resolution", "span", "_fine", "_coarse", "_size",
                 "_next_due")

    def __init__(self, resolution: float = 0.25, slots: int = 64):
        if resolution <= 0:
            raise SchedulingError(
                f"wheel resolution must be > 0: {resolution}")
        if slots < 1:
            raise SchedulingError(f"wheel needs at least one slot: {slots}")
        self.resolution = resolution
        self.span = resolution * slots
        self._fine: Dict[int, List[Event]] = {}
        self._coarse: Dict[int, List[Event]] = {}
        #: Timers held (including cancelled ones not yet reaped).
        self._size = 0
        #: Earliest bucket start time, or inf when empty.
        self._next_due = _INF

    def __len__(self) -> int:
        return self._size

    @property
    def next_due(self) -> float:
        """Start of the earliest non-empty bucket (inf when empty)."""
        return self._next_due

    @staticmethod
    def _slot_for(time: float, width: float) -> int:
        """The bucket index for *time*, guaranteeing start <= time.

        Plain ``int(time / width)`` can round the quotient up when the
        boundary is not exactly representable (e.g. 1.7 / 0.1 == 17.0,
        but 17 * 0.1 > 1.7), which would file a timer in a bucket that
        starts after its own fire time — and pour() would then skip it
        at its exact deadline, breaking the global event order. Clamp
        the index down so every bucket contains only timers at or after
        its start.
        """
        slot = int(time / width)
        if slot * width > time:
            slot -= 1
        return slot

    def insert(self, event: Event, now: float) -> None:
        """File *event* into the wheel (no heap interaction)."""
        if event.time - now < self.span:
            slot = self._slot_for(event.time, self.resolution)
            start = slot * self.resolution
            bucket = self._fine.get(slot)
            if bucket is None:
                self._fine[slot] = [event]
            else:
                bucket.append(event)
        else:
            slot = self._slot_for(event.time, self.span)
            start = slot * self.span
            bucket = self._coarse.get(slot)
            if bucket is None:
                self._coarse[slot] = [event]
            else:
                bucket.append(event)
        self._size += 1
        if start < self._next_due:
            self._next_due = start

    def pour(self, horizon: float, queue: List[tuple]) -> None:
        """Move every timer that could fire by *horizon* into *queue*.

        Buckets whose window starts at or before *horizon* are drained;
        cancelled timers are discarded, live ones are heap-pushed (as
        the heap's ``(time, priority, seq, event)`` entries) so the
        caller sees them in exact global order. Coarse buckets cascade
        into fine buckets (or the heap) on the way.
        """
        resolution = self.resolution
        if self._coarse:
            span = self.span
            for slot in [s for s in self._coarse if s * span <= horizon]:
                for event in self._coarse.pop(slot):
                    if event.cancelled:
                        self._size -= 1
                        continue
                    fine_slot = self._slot_for(event.time, resolution)
                    if fine_slot * resolution <= horizon:
                        self._size -= 1
                        heapq.heappush(queue, (event.time, event.priority,
                                               event.seq, event))
                    else:
                        self._fine.setdefault(fine_slot, []).append(event)
        if self._fine:
            for slot in [s for s in self._fine if s * resolution <= horizon]:
                for event in self._fine.pop(slot):
                    self._size -= 1
                    if not event.cancelled:
                        heapq.heappush(queue, (event.time, event.priority,
                                               event.seq, event))
        self._recompute_next_due()

    def _recompute_next_due(self) -> None:
        due = _INF
        if self._fine:
            due = min(self._fine) * self.resolution
        if self._coarse:
            coarse_due = min(self._coarse) * self.span
            if coarse_due < due:
                due = coarse_due
        self._next_due = due

    def _iter_events(self) -> Iterable[Event]:
        for bucket in self._fine.values():
            yield from bucket
        for bucket in self._coarse.values():
            yield from bucket

    def __repr__(self) -> str:
        return (f"<TimerWheel size={self._size} "
                f"next_due={self._next_due:.3f}>")


class Periodic:
    """A repeating timer created by :meth:`Simulator.schedule_periodic`."""

    __slots__ = ("_sim", "_interval", "_callback", "_args", "_event",
                 "_stopped", "_jitter")

    def __init__(self, sim: "Simulator", interval: float,
                 callback: Callable[..., Any], args: tuple, jitter: float):
        if interval <= 0:
            raise SchedulingError(f"periodic interval must be > 0: {interval}")
        self._sim = sim
        self._interval = interval
        self._callback = callback
        self._args = args
        self._jitter = jitter
        self._stopped = False
        self._event = sim.schedule(self._next_delay(), self._fire)

    def _next_delay(self) -> float:
        if self._jitter:
            return self._interval + self._sim.rng.uniform(0, self._jitter)
        return self._interval

    def _fire(self) -> None:
        if self._stopped:
            return
        self._callback(*self._args)
        if not self._stopped:
            self._event = self._sim.schedule(self._next_delay(), self._fire)

    def stop(self) -> None:
        """Stop the timer (idempotent)."""
        self._stopped = True
        self._event.cancel()

    @property
    def interval(self) -> float:
        return self._interval


class Simulator:
    """A deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Seeds the simulator-owned :class:`random.Random`; all stochastic
        behaviour (jitter, workloads) must draw from :attr:`rng` so runs
        are reproducible.
    trace_hops:
        When true, frames accumulate per-hop trace records as they
        traverse nodes (used by path-measurement experiments).
    wheel_resolution / wheel_slots:
        Geometry of the timer wheel serving :meth:`schedule_timer`.
    """

    def __init__(self, seed: int = 0, trace_hops: bool = False,
                 keep_trace_records: bool = True,
                 wheel_resolution: float = 0.25, wheel_slots: int = 64):
        #: Heap of (time, priority, seq, Event) — see the module docs.
        self._queue: List[tuple] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._pending = 0
        self.rng = random.Random(seed)
        self.trace_hops = trace_hops
        self.tracer = Tracer(keep_records=keep_trace_records)
        self.events_processed = 0
        self.wheel = TimerWheel(resolution=wheel_resolution,
                                slots=wheel_slots)

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    # -- scheduling ----------------------------------------------------------

    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any,
                 priority: int = PRIORITY_NORMAL) -> Event:
        """Schedule *callback(\\*args)* to run *delay* seconds from now."""
        if delay < 0:
            raise SchedulingError(f"cannot schedule in the past: {delay}")
        time = self._now + delay
        seq = next(self._seq)
        # Event filled via __new__ + slot writes: this is the hottest
        # allocation site in the simulator (once per frame hop), and
        # skipping the __init__ call is worth the inelegance.
        event = Event.__new__(Event)
        event.time = time
        event.priority = priority
        event.seq = seq
        event.callback = callback
        event.args = args
        event.cancelled = False
        event._sim = self
        heapq.heappush(self._queue, (time, priority, seq, event))
        self._pending += 1
        return event

    def at(self, time: float, callback: Callable[..., Any], *args: Any,
           priority: int = PRIORITY_NORMAL) -> Event:
        """Schedule *callback* at absolute simulation *time*."""
        if time < self._now:
            raise SchedulingError(
                f"cannot schedule at {time} (now is {self._now})")
        seq = next(self._seq)
        event = Event(time, priority, seq, callback, args, self)
        heapq.heappush(self._queue, (time, priority, seq, event))
        self._pending += 1
        return event

    def schedule_timer(self, delay: float, callback: Callable[..., Any],
                       *args: Any, priority: int = PRIORITY_LATE) -> Event:
        """Schedule a wheel-managed timer *delay* seconds from now.

        Semantically identical to :meth:`schedule` — same determinism,
        same :class:`Event` handle — but filed on the timer wheel, which
        makes it the right call for short timers that are usually
        cancelled or re-armed before they fire (table aging, guard
        windows, protocol holds). Timers default to
        :data:`PRIORITY_LATE` so same-instant data-plane events run
        first.
        """
        if delay < 0:
            raise SchedulingError(f"cannot schedule in the past: {delay}")
        event = Event(self._now + delay, priority, next(self._seq),
                      callback, args, self)
        self.wheel.insert(event, self._now)
        self._pending += 1
        return event

    def call_soon(self, callback: Callable[..., Any], *args: Any,
                  priority: int = PRIORITY_NORMAL) -> Event:
        """Schedule *callback* at the current instant (after this event)."""
        return self.schedule(0.0, callback, *args, priority=priority)

    def schedule_periodic(self, interval: float, callback: Callable[..., Any],
                          *args: Any, jitter: float = 0.0) -> Periodic:
        """Run *callback* every *interval* seconds until stopped.

        A positive *jitter* adds a uniform random extra delay in
        ``[0, jitter)`` before each firing (drawn from :attr:`rng`).
        """
        return Periodic(self, interval, callback, args, jitter)

    def schedule_bulk(self, specs: Iterable[Sequence],
                      priority: int = PRIORITY_NORMAL) -> List[Event]:
        """Schedule a batch of callbacks in one shot.

        *specs* is an iterable of ``(delay, callback, *args)`` tuples.
        The whole batch is appended and heapified once — O(n + q) for n
        new events on a queue of q — instead of n individual O(log q)
        pushes, which is what bulk workload injection (traffic matrices,
        benchmark frame trains) wants. Returns the created events in
        input order.
        """
        now = self._now
        take_seq = self._seq
        events: List[Event] = []
        entries: List[tuple] = []
        for spec in specs:
            delay = spec[0]
            if delay < 0:
                raise SchedulingError(f"cannot schedule in the past: {delay}")
            time = now + delay
            seq = next(take_seq)
            event = Event(time, priority, seq, spec[1], tuple(spec[2:]),
                          self)
            events.append(event)
            entries.append((time, priority, seq, event))
        if events:
            self._queue.extend(entries)
            heapq.heapify(self._queue)
            self._pending += len(events)
        return events

    # -- execution -----------------------------------------------------------

    def step(self) -> bool:
        """Run the next pending event. Returns False when none remain."""
        queue = self._queue
        wheel = self.wheel
        while True:
            if wheel._size:
                horizon = queue[0][0] if queue else wheel._next_due
                if wheel._next_due <= horizon:
                    wheel.pour(horizon, queue)
                    if not queue:
                        # Pour made level-to-level progress (cascade or
                        # cancelled-timer discard) without reaching the
                        # heap; retry at the advanced next_due.
                        continue
            if not queue:
                return False
            event = heapq.heappop(queue)[3]
            if event.cancelled:
                continue
            self._now = event.time
            self.events_processed += 1
            self._pending -= 1
            event._sim = None
            event.callback(*event.args)
            return True

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        """Run events until the queue drains, *until* is reached, or
        *max_events* have fired.

        When *until* is given the clock is advanced to exactly *until*
        even if the queue drained earlier, so periodic processes see a
        consistent end time.
        """
        # Hot loop: local bindings avoid repeated attribute lookups, the
        # wheel is consulted with one float compare per iteration, and
        # events fire without any per-event allocation.
        queue = self._queue
        wheel = self.wheel
        heappop = heapq.heappop
        fired = 0
        while True:
            if wheel._size:
                horizon = queue[0][0] if queue else wheel._next_due
                if until is not None and horizon > until:
                    # Don't drag far-future wheel timers into the heap
                    # just because this slice ends: they would lose the
                    # wheel's O(1) cancellation.
                    horizon = until
                if wheel._next_due <= horizon:
                    wheel.pour(horizon, queue)
                    if not queue:
                        # Cascade/discard progressed without reaching
                        # the heap; retry at the advanced next_due.
                        continue
            if not queue:
                break
            event = queue[0][3]
            if event.cancelled:
                heappop(queue)
                continue
            if until is not None and event.time > until:
                break
            if max_events is not None and fired >= max_events:
                return
            heappop(queue)
            self._now = event.time
            self.events_processed += 1
            self._pending -= 1
            event._sim = None
            event.callback(*event.args)
            fired += 1
        if until is not None and self._now < until:
            self._now = until

    def run_for(self, duration: float) -> None:
        """Run for *duration* seconds of simulated time from now."""
        self.run(until=self._now + duration)

    def run_below(self, bound: float) -> None:
        """Run every event strictly before *bound*, then jump to *bound*.

        The open-interval twin of :meth:`run` (which is inclusive of
        *until*): this is the window primitive the sharded runtime
        (:mod:`repro.netsim.shard`) needs, because a conservative
        synchronization window guarantees knowledge of remote events
        *below* the safe time, not at it — an event at exactly the safe
        time may still be beaten by a remote frame arriving at that same
        instant with an earlier tie-break. Pours are likewise capped at
        *bound* so far-future wheel timers keep O(1) cancellation. A
        call with ``bound <= now`` is a no-op.
        """
        if bound <= self._now:
            return
        queue = self._queue
        wheel = self.wheel
        heappop = heapq.heappop
        while True:
            if wheel._size:
                horizon = queue[0][0] if queue else wheel._next_due
                if horizon > bound:
                    horizon = bound
                if wheel._next_due <= horizon:
                    wheel.pour(horizon, queue)
                    if not queue:
                        continue
            if not queue:
                break
            event = queue[0][3]
            if event.cancelled:
                heappop(queue)
                continue
            if event.time >= bound:
                break
            heappop(queue)
            self._now = event.time
            self.events_processed += 1
            self._pending -= 1
            event._sim = None
            event.callback(*event.args)
        self._now = bound

    @property
    def pending_events(self) -> int:
        """Number of queued, non-cancelled events — O(1).

        Maintained incrementally: schedule/at/schedule_timer/
        schedule_bulk increment, firing and :meth:`Event.cancel`
        decrement. :meth:`audit_pending_events` cross-checks the counter
        against a full scan.
        """
        return self._pending

    def next_event_time(self) -> float:
        """Earliest timestamp anything could fire at — O(1), conservative.

        The minimum of the heap head and the wheel's next due bucket;
        ``inf`` when both are empty. A cancelled heap head only makes
        the answer *earlier* than the true next event, which is the
        safe direction for its one consumer: the sharded runtime's
        per-window horizon (:mod:`repro.netsim.shard`), where a bound
        computed from an under-estimate is still a valid guarantee.
        """
        queue = self._queue
        head = queue[0][0] if queue else _INF
        if self.wheel._size and self.wheel._next_due < head:
            head = self.wheel._next_due
        return head

    def audit_pending_events(self) -> int:
        """O(n) debug scan of the heap and wheel; asserts it matches the
        incremental counter and returns the count."""
        scanned = sum(1 for entry in self._queue if not entry[3].cancelled)
        scanned += sum(1 for event in self.wheel._iter_events()
                       if not event.cancelled)
        assert scanned == self._pending, (
            f"pending_events counter drifted: counted {scanned}, "
            f"tracked {self._pending}")
        return scanned

    def __repr__(self) -> str:
        return (f"<Simulator t={self._now:.6f} queued={len(self._queue)} "
                f"wheel={self.wheel._size} "
                f"processed={self.events_processed}>")
