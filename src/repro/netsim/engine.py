"""The discrete-event simulation engine.

A deterministic heap-based scheduler: events fire in (time, priority,
sequence) order, so two runs with the same seed replay identically —
which the ARP-Path tests rely on, because path selection is literally a
race between flooded frame copies.
"""

from __future__ import annotations

import heapq
import itertools
import random
from typing import Any, Callable, List, Optional

from repro.netsim.errors import SchedulingError
from repro.netsim.tracer import Tracer

#: Priority for ordinary data-plane events.
PRIORITY_NORMAL = 0
#: Priority for control-plane housekeeping that must run after the data
#: plane at the same instant (e.g. table expiry sweeps).
PRIORITY_LATE = 10
#: Priority for events that must precede the data plane at the same
#: instant (e.g. carrier-loss notifications).
PRIORITY_EARLY = -10


class Event:
    """A scheduled callback. Returned by :meth:`Simulator.schedule`."""

    __slots__ = ("time", "priority", "seq", "callback", "args", "cancelled")

    def __init__(self, time: float, priority: int, seq: int,
                 callback: Callable[..., Any], args: tuple):
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing (idempotent)."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return ((self.time, self.priority, self.seq)
                < (other.time, other.priority, other.seq))

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.9f} prio={self.priority} {state}>"


class Periodic:
    """A repeating timer created by :meth:`Simulator.schedule_periodic`."""

    __slots__ = ("_sim", "_interval", "_callback", "_args", "_event",
                 "_stopped", "_jitter")

    def __init__(self, sim: "Simulator", interval: float,
                 callback: Callable[..., Any], args: tuple, jitter: float):
        if interval <= 0:
            raise SchedulingError(f"periodic interval must be > 0: {interval}")
        self._sim = sim
        self._interval = interval
        self._callback = callback
        self._args = args
        self._jitter = jitter
        self._stopped = False
        self._event = sim.schedule(self._next_delay(), self._fire)

    def _next_delay(self) -> float:
        if self._jitter:
            return self._interval + self._sim.rng.uniform(0, self._jitter)
        return self._interval

    def _fire(self) -> None:
        if self._stopped:
            return
        self._callback(*self._args)
        if not self._stopped:
            self._event = self._sim.schedule(self._next_delay(), self._fire)

    def stop(self) -> None:
        """Stop the timer (idempotent)."""
        self._stopped = True
        self._event.cancel()

    @property
    def interval(self) -> float:
        return self._interval


class Simulator:
    """A deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Seeds the simulator-owned :class:`random.Random`; all stochastic
        behaviour (jitter, workloads) must draw from :attr:`rng` so runs
        are reproducible.
    trace_hops:
        When true, frames accumulate per-hop trace records as they
        traverse nodes (used by path-measurement experiments).
    """

    def __init__(self, seed: int = 0, trace_hops: bool = False,
                 keep_trace_records: bool = True):
        self._queue: List[Event] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._running = False
        self.rng = random.Random(seed)
        self.trace_hops = trace_hops
        self.tracer = Tracer(keep_records=keep_trace_records)
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    # -- scheduling ----------------------------------------------------------

    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any,
                 priority: int = PRIORITY_NORMAL) -> Event:
        """Schedule *callback(\\*args)* to run *delay* seconds from now."""
        if delay < 0:
            raise SchedulingError(f"cannot schedule in the past: {delay}")
        event = Event(self._now + delay, priority, next(self._seq),
                      callback, args)
        heapq.heappush(self._queue, event)
        return event

    def at(self, time: float, callback: Callable[..., Any], *args: Any,
           priority: int = PRIORITY_NORMAL) -> Event:
        """Schedule *callback* at absolute simulation *time*."""
        if time < self._now:
            raise SchedulingError(
                f"cannot schedule at {time} (now is {self._now})")
        event = Event(time, priority, next(self._seq), callback, args)
        heapq.heappush(self._queue, event)
        return event

    def call_soon(self, callback: Callable[..., Any], *args: Any,
                  priority: int = PRIORITY_NORMAL) -> Event:
        """Schedule *callback* at the current instant (after this event)."""
        return self.schedule(0.0, callback, *args, priority=priority)

    def schedule_periodic(self, interval: float, callback: Callable[..., Any],
                          *args: Any, jitter: float = 0.0) -> Periodic:
        """Run *callback* every *interval* seconds until stopped.

        A positive *jitter* adds a uniform random extra delay in
        ``[0, jitter)`` before each firing (drawn from :attr:`rng`).
        """
        return Periodic(self, interval, callback, args, jitter)

    # -- execution -----------------------------------------------------------

    def step(self) -> bool:
        """Run the next pending event. Returns False when none remain."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            self.events_processed += 1
            event.callback(*event.args)
            return True
        return False

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        """Run events until the queue drains, *until* is reached, or
        *max_events* have fired.

        When *until* is given the clock is advanced to exactly *until*
        even if the queue drained earlier, so periodic processes see a
        consistent end time.
        """
        fired = 0
        while self._queue:
            event = self._queue[0]
            if event.cancelled:
                heapq.heappop(self._queue)
                continue
            if until is not None and event.time > until:
                break
            if max_events is not None and fired >= max_events:
                return
            heapq.heappop(self._queue)
            self._now = event.time
            self.events_processed += 1
            event.callback(*event.args)
            fired += 1
        if until is not None and self._now < until:
            self._now = until

    def run_for(self, duration: float) -> None:
        """Run for *duration* seconds of simulated time from now."""
        self.run(until=self._now + duration)

    @property
    def pending_events(self) -> int:
        """Number of queued, non-cancelled events (O(n) — diagnostics)."""
        return sum(1 for event in self._queue if not event.cancelled)

    def __repr__(self) -> str:
        return (f"<Simulator t={self._now:.6f} queued={len(self._queue)} "
                f"processed={self.events_processed}>")
