"""Nodes and ports.

A :class:`Node` is anything with Ethernet ports: a bridge or an end
host. Ports attach to :class:`repro.netsim.link.Link` objects; a node
receives frames through :meth:`Node.deliver` and reacts to carrier
changes through :meth:`Node.link_state_changed`.
"""

from __future__ import annotations

from typing import List, Optional, TYPE_CHECKING

from repro.frames.ethernet import EthernetFrame
from repro.netsim.engine import Simulator
from repro.netsim.errors import TopologyError

if TYPE_CHECKING:
    from repro.netsim.link import Link


class Port:
    """One Ethernet port of a node.

    Ports are created through :meth:`Node.add_port` and wired to links
    by the link constructor; sending through an unattached or downed
    port silently discards the frame, like a NIC with no carrier.
    """

    __slots__ = ("node", "index", "link")

    def __init__(self, node: "Node", index: int):
        self.node = node
        self.index = index
        self.link: Optional["Link"] = None

    @property
    def name(self) -> str:
        return f"{self.node.name}.p{self.index}"

    @property
    def is_attached(self) -> bool:
        return self.link is not None

    @property
    def is_up(self) -> bool:
        """True when attached to a link that currently has carrier."""
        return self.link is not None and self.link.up

    @property
    def peer(self) -> Optional["Port"]:
        """The port at the other end of the attached link, if any."""
        if self.link is None:
            return None
        return self.link.other(self)

    def send(self, frame: EthernetFrame) -> None:
        """Transmit a frame out of this port.

        The frame is cloned so the caller may reuse or re-send the same
        object out of several ports (flooding) — each copy then races
        through the network independently.
        """
        if self.link is None or not self.link.up:
            return
        self.link.transmit(self, frame.clone())

    def __repr__(self) -> str:
        return f"<Port {self.name}>"


class Node:
    """Base class for bridges and hosts."""

    def __init__(self, sim: Simulator, name: str):
        self.sim = sim
        self.name = name
        self.ports: List[Port] = []
        self.started = False

    def add_port(self) -> Port:
        """Create and return a new (unattached) port."""
        port = Port(self, len(self.ports))
        self.ports.append(port)
        return port

    def add_ports(self, count: int) -> List[Port]:
        """Create *count* ports at once."""
        return [self.add_port() for _ in range(count)]

    def free_port(self) -> Port:
        """An existing unattached port, or a freshly created one."""
        for port in self.ports:
            if not port.is_attached:
                return port
        return self.add_port()

    @property
    def attached_ports(self) -> List[Port]:
        return [port for port in self.ports if port.is_attached]

    def start(self) -> None:
        """Hook called once after the topology is wired.

        Subclasses start periodic processes (hellos, BPDUs) here.
        """
        self.started = True

    def deliver(self, port: Port, frame: EthernetFrame) -> None:
        """Entry point for frames arriving at *port* (called by links)."""
        if self.sim.trace_hops:
            frame.record_hop(self.name, port.index, self.sim.now)
        self.handle_frame(port, frame)

    def handle_frame(self, port: Port, frame: EthernetFrame) -> None:
        """Process a received frame. Subclasses must implement."""
        raise NotImplementedError

    def link_state_changed(self, port: Port, up: bool) -> None:
        """Hook invoked when the link at *port* gains or loses carrier."""

    def flood(self, frame: EthernetFrame, exclude: Optional[Port] = None) -> int:
        """Send *frame* out of every attached port except *exclude*.

        Returns the number of ports the frame was sent on.
        """
        count = 0
        for port in self.ports:
            if port is exclude or not port.is_attached:
                continue
            port.send(frame)
            count += 1
        return count

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name} ports={len(self.ports)}>"
