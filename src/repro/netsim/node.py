"""Nodes and ports.

A :class:`Node` is anything with Ethernet ports: a bridge or an end
host. Ports attach to :class:`repro.netsim.link.Link` objects; a node
receives frames through :meth:`Node.deliver` and reacts to carrier
changes through :meth:`Node.link_state_changed`.

Frame fan-out is copy-on-write (PR 5): :meth:`Port.send` does **not**
clone — it marks the frame shared and hands the same object to the
link, so flooding a frame out of *n* ports costs zero allocations. The
one per-copy mutation in the simulator, hop recording under
``trace_hops``, takes a lazy private clone in :meth:`Node.deliver`
before it appends, which keeps per-copy traces byte-identical to the
old eager-clone fan-out.
"""

from __future__ import annotations

from typing import List, Optional, TYPE_CHECKING

from repro.frames.ethernet import EthernetFrame
from repro.netsim.engine import Simulator
from repro.netsim.errors import TopologyError

if TYPE_CHECKING:
    from repro.netsim.link import Link


class Port:
    """One Ethernet port of a node.

    Ports are created through :meth:`Node.add_port` and wired to links
    by the link constructor; sending through an unattached or downed
    port silently discards the frame, like a NIC with no carrier.
    """

    __slots__ = ("node", "index", "link")

    def __init__(self, node: "Node", index: int):
        self.node = node
        self.index = index
        self.link: Optional["Link"] = None

    @property
    def name(self) -> str:
        return f"{self.node.name}.p{self.index}"

    @property
    def is_attached(self) -> bool:
        return self.link is not None

    @property
    def is_up(self) -> bool:
        """True when attached to a link that currently has carrier."""
        return self.link is not None and self.link.up

    @property
    def peer(self) -> Optional["Port"]:
        """The port at the other end of the attached link, if any."""
        if self.link is None:
            return None
        return self.link.other(self)

    def send(self, frame: EthernetFrame) -> None:
        """Transmit a frame out of this port.

        The frame object itself goes on the wire, marked shared
        (copy-on-write): the caller may still re-send the same object
        out of several ports (flooding) and each copy races through the
        network independently, because in-flight frames are immutable —
        the only mutation, hop tracing, clones lazily at delivery.
        """
        link = self.link
        if link is None or not link.up:
            return
        frame._shared = True
        link.transmit(self, frame)

    def __repr__(self) -> str:
        return f"<Port {self.name}>"


class Node:
    """Base class for bridges and hosts."""

    #: True on replica nodes owned by another shard in a sharded run
    #: (:mod:`repro.netsim.shard`): ghosts are built for topology
    #: bookkeeping but never started, so they schedule nothing.
    shard_ghost = False

    #: True on nodes that belong to an out-of-band control plane (the
    #: centralized controller): their links carry no fabric traffic and
    #: are excluded from topology oracles (:func:`repro.topology.builder
    #: .graph_of`), fabric link listings and churn link flaps.
    out_of_band = False

    def __init__(self, sim: Simulator, name: str):
        self.sim = sim
        self.name = name
        self.ports: List[Port] = []
        self.started = False
        self._attached_cache: Optional[List[Port]] = None
        #: trace_hops is fixed at Simulator construction; cached here so
        #: the per-delivery check is one attribute load, not two.
        self._trace_hops = sim.trace_hops

    def add_port(self) -> Port:
        """Create and return a new (unattached) port."""
        port = Port(self, len(self.ports))
        self.ports.append(port)
        self._attached_cache = None
        return port

    def add_ports(self, count: int) -> List[Port]:
        """Create *count* ports at once."""
        return [self.add_port() for _ in range(count)]

    def free_port(self) -> Port:
        """An existing unattached port, or a freshly created one."""
        for port in self.ports:
            if not port.is_attached:
                return port
        return self.add_port()

    @property
    def attached_ports(self) -> List[Port]:
        """The node's attached ports, cached.

        Attachment changes only when a link is constructed or a host is
        unplugged, so the list is rebuilt lazily after
        :meth:`invalidate_port_cache` instead of on every flood. The
        cached list is returned as-is — treat it as read-only.
        """
        cached = self._attached_cache
        if cached is None:
            cached = [port for port in self.ports if port.link is not None]
            self._attached_cache = cached
        return cached

    def invalidate_port_cache(self) -> None:
        """Drop the attached-port cache (called on attach/detach)."""
        self._attached_cache = None

    def start(self) -> None:
        """Hook called once after the topology is wired.

        Subclasses start periodic processes (hellos, BPDUs) here.
        """
        self.started = True

    def deliver(self, port: Port, frame: EthernetFrame) -> None:
        """Entry point for frames arriving at *port*.

        Links call this only when hop tracing is on (it owns the
        copy-on-write clone); with tracing off they dispatch straight
        to :meth:`handle_frame`, which is behaviourally identical and
        one call cheaper. Anything wrapping ``deliver`` per instance
        (the PathObserver) requires ``trace_hops=True``, so the fast
        path never bypasses a wrapper.
        """
        if self._trace_hops:
            if frame._shared:
                # Copy-on-write: the object may be in flight on other
                # links; take a private copy before mutating its trace.
                frame = frame.clone()
            frame.record_hop(self.name, port.index, self.sim.now)
        self.handle_frame(port, frame)

    def handle_frame(self, port: Port, frame: EthernetFrame) -> None:
        """Process a received frame. Subclasses must implement."""
        raise NotImplementedError

    def link_state_changed(self, port: Port, up: bool) -> None:
        """Hook invoked when the link at *port* gains or loses carrier."""

    def flood(self, frame: EthernetFrame, exclude: Optional[Port] = None) -> int:
        """Send *frame* out of every attached port except *exclude*.

        Returns the number of ports the frame was sent on. All copies
        share the one frame object (copy-on-write fan-out).
        """
        count = 0
        for port in self.attached_ports:
            if port is exclude:
                continue
            port.send(frame)
            count += 1
        return count

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name} ports={len(self.ports)}>"
