"""Exception hierarchy for the network simulator."""


class NetsimError(Exception):
    """Base class for simulator errors."""


class SchedulingError(NetsimError):
    """Raised for invalid event scheduling (negative delay, past time)."""


class TopologyError(NetsimError):
    """Raised when nodes/links/ports are wired inconsistently."""


class AddressError(NetsimError):
    """Raised when host addressing is inconsistent (duplicate MAC/IP)."""
