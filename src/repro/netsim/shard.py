"""Sharded parallel execution: one simulation across many engines.

One :class:`~repro.netsim.engine.Simulator` is single-threaded by
design; this module runs *one logical simulation* as K cooperating
engines (shards), one worker (process or thread) each, synchronized
with the classic conservative null-message protocol (Chandy–Misra–
Bryant): every cut link's propagation latency is *lookahead* — shard A
can promise shard B "nothing from me before ``t + lookahead``" — and
each shard only fires events strictly below the minimum promise it
holds from its peers.

The contract is exact, not approximate: a sharded run produces
**byte-identical experiment records** to the single-process run at any
shard count. The pieces that make that hold:

* **Deterministic partition** — :func:`repro.topology.partition
  .partition_network` is a pure function of the wiring; every worker
  computes the same plan without coordination.
* **Full replica topology** — every worker builds the *entire* network
  with the same builder calls (same names, MACs, IPs, link latencies);
  nodes owned by other shards are *ghosts*: present for bookkeeping,
  never started, so they schedule nothing.
* **Boundary export** — a frame transmitted into a cut link is handed
  to the owning peer as ``(send_time, deliver_time, bytes)`` instead of
  a local delivery event (:attr:`_Direction.export`); the receiver
  schedules the delivery on its own engine at the exact same instant
  the single-process run would have. One engine event per cross-shard
  hop, system-wide — the same event economy as a local hop.
* **Deterministic boundary ordering** — staged remote frames are
  released in ``(deliver_time, src_shard, src_seq)`` order, so
  same-instant boundary deliveries tie-break identically at any shard
  count. (Cross-shard vs local ties at the *exact* same instant remain
  a heap-sequence lottery, like the PR 5 measure-zero caveat; the
  experiment topologies jitter link latencies, which makes exact ties
  measure-zero.)
* **Per-shard RNG derivation** — worker k seeds its engine with
  :func:`derive_shard_seed` (identity at shard 0), so no two shards
  share an RNG stream yet shard 0 reproduces the single-process
  stream. Topology builders always get the *base* seed — wiring must
  be identical everywhere.

Lockstep rounds
---------------

Workers exchange one message with every peer per round — ``(horizon,
done, frames)`` — send-all-then-receive-all, so the mesh cannot
deadlock. A shard's *horizon* is the earliest instant anything it
still holds could fire: its next local event, its earliest staged
remote frame, or the earliest frame in the batches it is flushing in
that very message. Because the exchange is a barrier, channels are
empty between rounds, so every future event anywhere in the system
must chain from state some shard just counted — which makes
``min(all horizons)`` a floor on every future firing, and
``global_min + lookahead`` a floor on every future *input*. Each
round a shard releases staged frames and runs strictly below that
window; a quiet stretch costs one round (the window jumps straight to
the next event time — no null-message creep), a dense burst creeps by
one lookahead per round but fires many events each. When the window
clears the phase target T the shard runs inclusively to T and flags
``done`` — everything that closing slice exports provably lands beyond
T, so it stays staged for the next phase, exactly the single-process
semantics of ``run(until=T)`` leaving future events queued. All
workers observe the all-done round simultaneously, so every phase
costs the same number of rounds everywhere and channels never carry
cross-phase traffic.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_mod
import threading
import time
import traceback
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.netsim import tracer as trc
from repro.netsim.engine import Simulator
from repro.netsim.errors import TopologyError
from repro.netsim.link import Link
from repro.netsim.sync import (Endpoint, make_process_fabric,
                               make_thread_fabric, pack_frame, unpack_frame)
from repro.topology.builder import Network
from repro.topology.partition import ShardPlan

_INF = float("inf")

#: Golden-ratio multiplier (Weyl/Fibonacci hashing): spreads shard ids
#: across the 32-bit seed space so derived engine streams decorrelate.
_SEED_MIX = 0x9E3779B9


class ShardWorkerError(RuntimeError):
    """One or more shard workers failed; carries their tracebacks."""


class ShardStallError(ShardWorkerError):
    """The conservative protocol stopped advancing within the budget.

    Raised by :func:`run_sharded`'s watchdog when no shard's progress
    cell (horizon, local time, staged depth) changed for the stall
    budget — the signature of a deadlocked or wedged mesh (a worker
    blocked outside the protocol, a lost message, a cut-link lookahead
    bug). Carries ``snapshot``: the per-shard progress board at the
    moment of the abort, so CI logs show *where* the mesh wedged
    instead of a bare timeout.
    """

    def __init__(self, message: str,
                 snapshot: Dict[int, Dict[str, float]]):
        super().__init__(message)
        self.snapshot = snapshot


#: Default watchdog budget (seconds without observable progress before
#: a sharded run is declared stalled); REPRO_SHARD_STALL_S overrides.
_DEFAULT_STALL_S = 300.0

#: Floats per shard on the progress board: rounds, horizon, now,
#: staged. ``rounds`` is excluded from the stall fingerprint — a
#: livelocked mesh can spin rounds without the conservative minimum
#: moving, and that must still count as a stall.
_BOARD_FIELDS = 4


class ProgressBoard:
    """Per-shard protocol progress, shared with the parent watchdog.

    One flat float vector, ``_BOARD_FIELDS`` cells per shard, written
    lock-free by each worker from :meth:`ShardRuntime.run_until` (each
    shard owns its slice; the watchdog only ever reads, and a torn read
    merely delays or hastens one stall check by a round). Thread mode
    backs it with a plain list, process mode with a
    ``multiprocessing.Array`` the children inherit.
    """

    def __init__(self, shard_count: int, cells: Any = None):
        self.shard_count = shard_count
        self.cells = cells if cells is not None \
            else [0.0] * (_BOARD_FIELDS * shard_count)

    @classmethod
    def shared(cls, shard_count: int) -> "ProgressBoard":
        return cls(shard_count, multiprocessing.Array(
            "d", _BOARD_FIELDS * shard_count, lock=False))

    def update(self, shard_id: int, rounds: int, horizon: float,
               now: float, staged: int) -> None:
        base = _BOARD_FIELDS * shard_id
        cells = self.cells
        cells[base] = float(rounds)
        cells[base + 1] = float(horizon)
        cells[base + 2] = float(now)
        cells[base + 3] = float(staged)

    def fingerprint(self) -> Tuple[float, ...]:
        """Everything the stall check compares (rounds excluded)."""
        return tuple(value for index, value in enumerate(self.cells)
                     if index % _BOARD_FIELDS != 0)

    def snapshot(self) -> Dict[int, Dict[str, float]]:
        out: Dict[int, Dict[str, float]] = {}
        for shard_id in range(self.shard_count):
            base = _BOARD_FIELDS * shard_id
            out[shard_id] = {
                "rounds": int(self.cells[base]),
                "horizon": self.cells[base + 1],
                "now": self.cells[base + 2],
                "staged": int(self.cells[base + 3]),
            }
        return out


def _resolve_stall_budget(stall_budget: Optional[float]) -> float:
    if stall_budget is not None:
        return stall_budget
    raw = os.environ.get("REPRO_SHARD_STALL_S")
    if raw:
        try:
            return float(raw)
        except ValueError:
            pass
    return _DEFAULT_STALL_S


class _StallWatch:
    """Declare a stall when the board's fingerprint stops changing."""

    def __init__(self, board: ProgressBoard, budget: float):
        self.board = board
        self.budget = budget
        self._fingerprint = board.fingerprint()
        self._since = time.monotonic()

    def stalled(self) -> bool:
        fingerprint = self.board.fingerprint()
        now = time.monotonic()
        if fingerprint != self._fingerprint:
            self._fingerprint = fingerprint
            self._since = now
            return False
        return now - self._since > self.budget

    def error(self) -> ShardStallError:
        snapshot = self.board.snapshot()
        lines = [f"shard mesh stalled: no progress of the conservative "
                 f"global minimum within {self.budget:.1f}s"]
        for shard_id, cell in sorted(snapshot.items()):
            lines.append(
                f"  shard {shard_id}: rounds={cell['rounds']} "
                f"horizon={cell['horizon']} now={cell['now']} "
                f"staged={cell['staged']}")
        return ShardStallError("\n".join(lines), snapshot)


def derive_shard_seed(seed: int, shard_id: int) -> int:
    """The engine seed for *shard_id* of a run seeded with *seed*.

    Identity at shard 0 — the shard that plays the single-process
    engine's part reproduces its RNG stream bit-for-bit — and a
    golden-ratio XOR mix elsewhere so sibling shards never share a
    stream. Pinned by test: this derivation is part of the determinism
    contract (re-deriving differently would silently change any future
    experiment that draws from ``sim.rng``).
    """
    return seed ^ ((_SEED_MIX * shard_id) & 0xFFFFFFFF)


def migration_lookahead(net: Network) -> float:
    """Null-message lookahead for a run whose churn migrates hosts.

    A migration can turn *any* host's access link into a cut link, so
    the static plan's minimum-cut-latency lookahead is not a valid
    floor; the minimum over **all** link latencies is.
    """
    lookahead = min((wire.latency for wire in net.links.values()),
                    default=_INF)
    if lookahead <= 0.0:
        raise TopologyError(
            "cannot shard with migrations: a zero-latency link could "
            "become a cut link with no lookahead")
    return lookahead


class ShardRuntime:
    """One worker's half of the conservative protocol.

    Owns the shard's engine plus the boundary state: export hooks on
    cut-link directions, the staged remote frames not yet safe to
    release, the in-flight ledger the memory sampler consults, and the
    per-link carrier history the release-time drop rule replays.
    """

    def __init__(self, sim: Simulator, shard_id: int,
                 endpoint: Optional[Endpoint]):
        self.sim = sim
        self.shard_id = shard_id
        self.endpoint = endpoint
        self.net: Optional[Network] = None
        self.plan: Optional[ShardPlan] = None
        self.lookahead = _INF
        #: Staged remote frames: (t2, src_shard, src_seq, link_name,
        #: dir_key, t1, data, uid, aux). Sorted lazily at release.
        self._staged: List[tuple] = []
        #: Per-peer outgoing frame batches, flushed every round.
        self._outbox: Dict[int, List[tuple]] = {}
        #: Cut links by name — release resolves against the *current*
        #: object, so a link replaced under the same name (migration
        #: round trip) keeps working.
        self._links: Dict[str, Link] = {}
        #: Last carrier-loss instant per cut-link name. Keyed by name,
        #: not object, so the drop rule survives link replacement.
        self._down_at: Dict[str, float] = {}
        #: (link_name, dir_key) -> deliver times of frames this shard
        #: exported that are still in flight — the sender-side half of
        #: the sampler's pending-event accounting.
        self._ledger: Dict[Tuple[str, int], List[float]] = {}
        #: Live delivery events this shard scheduled for released
        #: remote frames — the receiver-side half (subtracted, because
        #: the sender's ledger already counts the in-flight frame).
        self._released: List[Any] = []
        self._export_seq = 0

    # -- adoption ------------------------------------------------------------

    def owns(self, name: str) -> bool:
        """Does this shard own the named node?"""
        return self.plan.shard_of(name) == self.shard_id

    def adopt(self, net: Network, plan: ShardPlan,
              lookahead: Optional[float] = None) -> None:
        """Take charge of *net* according to *plan*.

        Marks other shards' nodes as ghosts, installs boundary export
        hooks on every cut link (and, via ``Network._link_hook``, on
        any link created later — migrations), and fixes the protocol
        lookahead (*lookahead* overrides the plan's, e.g.
        :func:`migration_lookahead` when hosts will move).
        """
        self.net = net
        self.plan = plan
        self.lookahead = plan.lookahead if lookahead is None else lookahead
        if self.endpoint is not None:
            for peer in self.endpoint.peers:
                self._outbox[peer] = []
        for registry in (net.bridges, net.hosts, net.populations,
                         net.controllers):
            for name, node in registry.items():
                if plan.shard_of(name) != self.shard_id:
                    node.shard_ghost = True
        for wire in net.links.values():
            self._wire_link(wire)
        net._link_hook = self._wire_link

    def _wire_link(self, wire: Link) -> None:
        """Classify one link; install boundary hooks if it is cut."""
        plan = self.plan
        shard_a = plan.shard_of(wire.port_a.node.name)
        shard_b = plan.shard_of(wire.port_b.node.name)
        if shard_a == shard_b:
            return
        self._links[wire.name] = wire
        self._wrap_take_down(wire)
        for dir_key, (from_port, from_shard, to_shard) in enumerate(
                ((wire.port_a, shard_a, shard_b),
                 (wire.port_b, shard_b, shard_a))):
            if from_shard == self.shard_id:
                direction = wire._dirs[from_port]
                direction.export = self._make_export(wire.name, dir_key,
                                                     to_shard)

    def _wrap_take_down(self, wire: Link) -> None:
        """Record carrier-loss instants for the release-time drop rule.

        A cut link's in-flight frames live in *neither* engine's heap
        (they are bytes in a channel), so the single-process semantics
        "take_down cancels in-flight deliveries" must be replayed when
        the receiver stages them: drop iff the carrier was lost after
        the frame was sent and before it would have arrived.
        """
        original = wire.take_down
        runtime = self

        def take_down() -> None:
            if wire.up:
                runtime._down_at[wire.name] = runtime.sim._now
                # Exported in-flight frames die with the carrier — the
                # receiving shard replays the drop; stop counting them.
                runtime._ledger.pop((wire.name, 0), None)
                runtime._ledger.pop((wire.name, 1), None)
            original()

        wire.take_down = take_down

    def _make_export(self, link_name: str, dir_key: int,
                     dst_shard: int) -> Callable[[float, float, Any], None]:
        runtime = self

        def export(send_time: float, deliver_time: float, frame) -> None:
            data, uid, aux = pack_frame(frame)
            runtime._export_seq += 1
            runtime._outbox[dst_shard].append(
                (link_name, dir_key, send_time, deliver_time, data, uid,
                 aux, runtime._export_seq))
            runtime._ledger.setdefault((link_name, dir_key),
                                       []).append(deliver_time)

        return export

    # -- sampler hook --------------------------------------------------------

    def pending_adjust(self) -> Tuple[int, int]:
        """``(pending_delta, wheel_delta)`` for the memory sampler.

        A frame in flight across the boundary is one pending delivery
        event in the single-process run. Here it is either bytes in a
        channel (counted by the sender's ledger until its deliver time
        passes) or an already-scheduled event on the receiver (counted
        by the receiver's engine **and** still by the sender's ledger —
        so the receiver subtracts its live released events). Summing
        both shards' samples at one instant therefore reproduces the
        single-process pending count exactly. Wheel delta is zero:
        deliveries are heap events in both worlds.
        """
        now = self.sim._now
        sender = 0
        for t2s in self._ledger.values():
            if t2s:
                t2s[:] = [t2 for t2 in t2s if t2 > now]
                sender += len(t2s)
        if self._released:
            self._released = [event for event in self._released
                              if event._sim is not None]
        return sender - len(self._released), 0

    # -- staged-frame release ------------------------------------------------

    def _release(self, bound: float, inclusive: bool) -> None:
        """Schedule every staged frame due before *bound* (at it, too,
        when *inclusive*) in deterministic boundary order."""
        staged = self._staged
        if not staged:
            return
        if inclusive:
            ready = [entry for entry in staged if entry[0] <= bound]
        else:
            ready = [entry for entry in staged if entry[0] < bound]
        if not ready:
            return
        self._staged = [entry for entry in staged
                        if (entry[0] > bound if inclusive
                            else entry[0] >= bound)]
        # (t2, src_shard, src_seq): the documented boundary tie-break.
        # Scheduling in this order hands same-instant deliveries
        # monotonically increasing engine seqs, making the merge order
        # a pure function of the simulation, not of worker timing.
        ready.sort(key=lambda entry: entry[:3])
        sim = self.sim
        for (t2, _src_shard, _src_seq, link_name, dir_key, t1, data, uid,
             aux) in ready:
            wire = self._links[link_name]
            frame = unpack_frame(data, uid, aux)
            direction = wire._dirs[wire.port_a if dir_key == 0
                                   else wire.port_b]
            down_at = self._down_at.get(link_name)
            if down_at is not None and t1 <= down_at < t2:
                # The carrier drop this worker replayed at down_at
                # cancelled this delivery in the single-process run.
                direction.carrier_drops += 1
                wire._trace(trc.DROP_LINK_DOWN, frame)
                continue
            event = sim.at(t2, wire._deliver_cb, direction, frame)
            direction.pending.append(event)
            self._released.append(event)

    # -- lockstep execution --------------------------------------------------

    def run_until(self, target: float) -> None:
        """Advance this shard to global time *target* (inclusive).

        Every worker must call this with the identical target sequence
        — the phase structure is part of the protocol.
        """
        sim = self.sim
        endpoint = self.endpoint
        if endpoint is None:
            sim.run(until=target)
            return
        peers = endpoint.peers
        outbox = self._outbox
        board = endpoint.progress
        rounds = 0
        done = False
        while True:
            rounds += 1
            # My horizon: the earliest instant anything I still hold
            # could fire — next heap/wheel event, earliest staged
            # remote frame, earliest frame in the batches this very
            # message flushes. Including the outgoing batches is what
            # lets peers trust min-of-horizons: after the exchange,
            # every channel is empty, so every future event anywhere
            # must chain from state some shard just counted.
            if done:
                horizon = _INF
            else:
                horizon = sim.next_event_time()
                for entry in self._staged:
                    if entry[0] < horizon:
                        horizon = entry[0]
                for batch in outbox.values():
                    for item in batch:
                        if item[3] < horizon:
                            horizon = item[3]
            if board is not None:
                # Before the send/recv barrier, so a shard blocked on a
                # wedged peer still published the round it entered with.
                board.update(self.shard_id, rounds, horizon,
                             sim._now, len(self._staged))
            for peer in peers:
                endpoint.send(peer, (horizon, done, outbox[peer]))
                outbox[peer] = []
            global_min = horizon
            all_done = done
            for peer in peers:
                peer_horizon, peer_done, frames = endpoint.recv(peer)
                for (link_name, dir_key, t1, t2, data, uid, aux,
                     src_seq) in frames:
                    self._staged.append((t2, peer, src_seq, link_name,
                                         dir_key, t1, data, uid, aux))
                if peer_horizon < global_min:
                    global_min = peer_horizon
                if not peer_done:
                    all_done = False
            if all_done:
                return
            if done:
                continue
            # Every future firing on any shard happens at or above
            # global_min, so every future input to me arrives at or
            # above global_min + lookahead: that window is safe.
            safe = global_min + self.lookahead
            if safe > target:
                # Complete knowledge below (and at) the phase end: run
                # the closing slice inclusively, like Simulator.run.
                # Everything this slice exports lands above safe, hence
                # beyond the phase — it stays staged for the next one.
                self._release(target, inclusive=True)
                sim.run(until=target)
                done = True
            else:
                self._release(safe, inclusive=False)
                sim.run_below(safe)

    def run_for(self, duration: float) -> None:
        """Advance by *duration* seconds of simulated time."""
        self.run_until(self.sim.now + duration)


# -- worker orchestration ----------------------------------------------------

def _process_main(worker: Callable[..., Any], shard_id: int,
                  shard_count: int, endpoint: Endpoint, result_queue,
                  args: tuple) -> None:
    try:
        result = worker(shard_id, shard_count, endpoint, *args)
    except BaseException:
        result_queue.put((shard_id, False, traceback.format_exc()))
    else:
        result_queue.put((shard_id, True, result))


#: Seconds to wait for worker results/threads before declaring a hang.
_WORKER_TIMEOUT = 600.0


def run_sharded(worker: Callable[..., Any], shard_count: int,
                mode: str = "auto", args: tuple = (),
                stall_budget: Optional[float] = None) -> List[Any]:
    """Run ``worker(shard_id, shard_count, endpoint, *args)`` K ways.

    Returns the per-shard results in shard order. ``shard_count == 1``
    runs inline (no fabric, ``endpoint=None``) — the zero-overhead
    degenerate case. *mode*:

    * ``"process"`` — one OS process per shard (true parallelism);
    * ``"thread"`` — one thread per shard (GIL-bound, but safe where
      processes cannot fork, and byte-identical by construction);
    * ``"auto"`` — ``thread`` inside a daemonic process (a sweep pool
      worker cannot fork children), ``process`` otherwise.

    A progress watchdog guards against a wedged mesh: each worker's
    :meth:`ShardRuntime.run_until` publishes its round state to a
    shared :class:`ProgressBoard`, and if no shard's state changes for
    *stall_budget* seconds (default ``REPRO_SHARD_STALL_S`` or 300)
    the run aborts with :class:`ShardStallError` carrying the
    per-shard snapshot — a hang becomes a named, diagnosable failure
    instead of a CI timeout. In thread mode the stalled workers are
    daemon threads and die with the process; in process mode they are
    terminated.
    """
    if shard_count < 1:
        raise ValueError(f"shard count must be >= 1: {shard_count}")
    if mode not in ("auto", "process", "thread"):
        raise ValueError(f"unknown shard mode {mode!r}")
    if shard_count == 1:
        return [worker(0, 1, None, *args)]
    if mode == "auto":
        mode = ("thread" if multiprocessing.current_process().daemon
                else "process")
    budget = _resolve_stall_budget(stall_budget)

    if mode == "thread":
        endpoints = make_thread_fabric(shard_count)
        board = ProgressBoard(shard_count)
        for endpoint in endpoints:
            endpoint.progress = board
        watch = _StallWatch(board, budget)
        results: List[Any] = [None] * shard_count
        failures: List[str] = []

        def main(shard_id: int) -> None:
            try:
                results[shard_id] = worker(shard_id, shard_count,
                                           endpoints[shard_id], *args)
            except BaseException:
                failures.append(f"shard {shard_id}:\n"
                                f"{traceback.format_exc()}")

        threads = [threading.Thread(target=main, args=(shard_id,),
                                    name=f"shard-{shard_id}", daemon=True)
                   for shard_id in range(shard_count)]
        for thread in threads:
            thread.start()
        # Poll rather than one long join: a crashed worker leaves its
        # peers blocked on recv forever, and the first traceback is
        # worth more than waiting out the stragglers.
        deadline = time.monotonic() + _WORKER_TIMEOUT
        while not failures \
                and any(thread.is_alive() for thread in threads):
            for thread in threads:
                thread.join(timeout=0.05)
            if watch.stalled():
                raise watch.error()
            if time.monotonic() > deadline:
                break
        if failures:
            raise ShardWorkerError("\n".join(failures))
        if any(thread.is_alive() for thread in threads):
            raise ShardWorkerError(
                f"shard workers still running after {_WORKER_TIMEOUT}s")
        return results

    endpoints = make_process_fabric(shard_count)
    board = ProgressBoard.shared(shard_count)
    for endpoint in endpoints:
        endpoint.progress = board
    watch = _StallWatch(board, budget)
    result_queue: Any = multiprocessing.Queue()
    procs = [multiprocessing.Process(
        target=_process_main,
        args=(worker, shard_id, shard_count, endpoints[shard_id],
              result_queue, args),
        name=f"shard-{shard_id}")
        for shard_id in range(shard_count)]
    for proc in procs:
        proc.start()
    results = [None] * shard_count
    failures = []
    stall: Optional[ShardStallError] = None
    received = 0
    deadline = time.monotonic() + _WORKER_TIMEOUT
    while received < shard_count and not failures and stall is None:
        try:
            shard_id, ok, payload = result_queue.get(timeout=0.2)
        except queue_mod.Empty:
            if watch.stalled():
                stall = watch.error()
            elif time.monotonic() > deadline:
                failures.append(
                    f"no shard result within {_WORKER_TIMEOUT}s")
            continue
        received += 1
        if ok:
            results[shard_id] = payload
        else:
            # Peers may be blocked on the dead shard's silence — do not
            # wait for results that will never come.
            failures.append(f"shard {shard_id}:\n{payload}")
    if failures or stall is not None:
        for proc in procs:
            proc.terminate()
    for proc in procs:
        proc.join()
    if stall is not None:
        raise stall
    if failures:
        raise ShardWorkerError("\n".join(failures))
    return results


class ShardedSimulator:
    """Facade: one simulation, K shards, one call.

    ``ShardedSimulator(shards=4).run(driver, *args)`` executes the
    module-level *driver* — ``driver(shard_id, shard_count, endpoint,
    *args)`` — across the shards and returns the per-shard results for
    the caller to merge. Drivers build the full topology from shared
    arguments, adopt it into a :class:`ShardRuntime`, run the phase
    schedule through :meth:`ShardRuntime.run_until` and return plain
    picklable data.
    """

    def __init__(self, shards: int, mode: str = "auto",
                 stall_budget: Optional[float] = None):
        if shards < 1:
            raise ValueError(f"shard count must be >= 1: {shards}")
        self.shards = shards
        self.mode = mode
        self.stall_budget = stall_budget

    def run(self, worker: Callable[..., Any], *args: Any) -> List[Any]:
        return run_sharded(worker, self.shards, mode=self.mode, args=args,
                           stall_budget=self.stall_budget)

    def __repr__(self) -> str:
        return f"<ShardedSimulator shards={self.shards} mode={self.mode}>"
