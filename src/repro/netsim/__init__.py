"""Discrete-event network simulator: engine, nodes, ports, links, tracing."""

from repro.netsim.engine import (Event, Periodic, PRIORITY_EARLY,
                                 PRIORITY_LATE, PRIORITY_NORMAL, Simulator)
from repro.netsim.errors import (AddressError, NetsimError, SchedulingError,
                                 TopologyError)
from repro.netsim.link import (DEFAULT_BANDWIDTH, DEFAULT_LATENCY,
                               DEFAULT_QUEUE_CAPACITY, Link)
from repro.netsim.node import Node, Port
from repro.netsim.pcap import PcapRecorder, read_pcap
from repro.netsim.tracer import (DELIVERED, DROP_LINK_DOWN, DROP_QUEUE,
                                 DROP_TTL, SENT, TraceRecord, Tracer)

__all__ = [
    "Event", "Periodic", "PRIORITY_EARLY", "PRIORITY_LATE", "PRIORITY_NORMAL",
    "Simulator",
    "AddressError", "NetsimError", "SchedulingError", "TopologyError",
    "DEFAULT_BANDWIDTH", "DEFAULT_LATENCY", "DEFAULT_QUEUE_CAPACITY", "Link",
    "Node", "Port",
    "PcapRecorder", "read_pcap",
    "DELIVERED", "DROP_LINK_DOWN", "DROP_QUEUE", "DROP_TTL", "SENT",
    "TraceRecord", "Tracer",
]
