"""Point-to-point Ethernet links.

A link joins exactly two ports and models, per direction:

* **serialisation** — the transmitter is busy for ``bits / bandwidth``
  seconds per frame; further frames wait in a bounded FIFO queue and
  overflow is tail-dropped,
* **propagation** — delivery is delayed by the configured latency,
* **carrier** — links can be taken down and brought back up; both
  endpoints get a carrier notification, queued and in-flight frames on a
  downed link are lost (exactly what a cable pull does to the NetFPGA).

Heterogeneous per-link latency is what makes the ARP race meaningful:
the first ARP copy to arrive travelled the lowest-latency path.

The transmitter is *free-running* (PR 5): instead of a per-frame
``tx_done`` callback it keeps an arithmetic ``busy_until`` timestamp,
so an uncongested transmit schedules exactly **one** event — the
delivery, with the serialisation delay folded into it. A drain event
is armed lazily, only when a queue actually forms, and fires at the
instant the old model's ``tx_done`` would have: delivery times and
trace records are identical, at half the event count on the
uncongested path. Drop points are identical too, with one measure-zero
exception: a transmit firing at *exactly* ``busy_until`` against a
*full* queue now always tail-drops, where the retired model admitted
or dropped depending on whether its ``tx_done`` happened to carry an
earlier heap sequence number than the competing event — seq-lottery
behaviour, not link semantics, and unreachable with continuous
latencies (the golden traces and congestion tests pin every realistic
drop path equal).

One deliberate semantic cleanup rides along: an infinite-bandwidth
link (``bandwidth=None``) never queues and never tail-drops — its
transmitter is idle again the instant it starts, which is what
"serialisation skipped" means. (The retired model briefly held
``busy`` across a zero-duration window, so a large enough same-instant
burst could tail-drop; that was an event-model artifact, not link
semantics. Delivery times were and are identical either way.)
"""

from __future__ import annotations

from collections import deque
from heapq import heappush
from typing import Deque, Dict, List, Optional

from repro.frames.ethernet import EthernetFrame
from repro.netsim import tracer as trc
from repro.netsim.engine import (PRIORITY_EARLY, PRIORITY_NORMAL, Event,
                                 Simulator)
from repro.netsim.errors import TopologyError
from repro.netsim.node import Port

#: 1 Gb/s — the NetFPGA's line rate.
DEFAULT_BANDWIDTH = 1_000_000_000.0
#: 10 µs default one-way propagation delay.
DEFAULT_LATENCY = 10e-6
DEFAULT_QUEUE_CAPACITY = 64


class _Direction:
    """Transmitter state for one direction of the link."""

    __slots__ = ("queue", "busy_until", "pending", "drain_event",
                 "queue_drops", "carrier_drops", "to_port", "export")

    def __init__(self, to_port: Port):
        # The queue is unbounded here; Link.transmit enforces the
        # capacity (not deque maxlen) so overflow tail-drops are
        # observable and counted.
        self.queue: Deque[EthernetFrame] = deque(maxlen=None)
        #: The transmitter is busy strictly before this instant; at or
        #: after it the next frame starts serialising immediately. A
        #: plain float comparison replaces the old per-frame tx_done
        #: event on the uncongested path.
        self.busy_until = 0.0
        #: Delivery events in flight (cancelled if the link goes down).
        self.pending: List[Event] = []
        #: Armed only while frames wait in the queue; fires at
        #: ``busy_until`` to start the next serialisation (the only
        #: moment the old tx_done event is still needed).
        self.drain_event: Optional[Event] = None
        #: Frames tail-dropped because the queue was full.
        self.queue_drops = 0
        #: Frames lost to carrier loss: queued or in flight when the
        #: link went down, or handed to a downed transmitter.
        self.carrier_drops = 0
        #: The receiving endpoint of this direction, cached so delivery
        #: skips the two identity compares of :meth:`Link.other`.
        self.to_port = to_port
        #: Boundary hook for the sharded runtime: when set, a frame that
        #: clears serialisation is handed to ``export(send_time,
        #: deliver_time, frame)`` instead of scheduling a local delivery
        #: event — the receiving shard schedules the delivery on its own
        #: engine. None (the overwhelmingly common case) keeps the
        #: single-process fast path branch-predictable.
        self.export = None


class Link:
    """A bidirectional point-to-point link between two ports."""

    def __init__(self, sim: Simulator, port_a: Port, port_b: Port,
                 latency: float = DEFAULT_LATENCY,
                 bandwidth: Optional[float] = DEFAULT_BANDWIDTH,
                 queue_capacity: int = DEFAULT_QUEUE_CAPACITY,
                 name: Optional[str] = None):
        if port_a is port_b:
            raise TopologyError("cannot connect a port to itself")
        if port_a.link is not None or port_b.link is not None:
            raise TopologyError(
                f"port already attached: {port_a.name if port_a.link else port_b.name}")
        if latency < 0:
            raise TopologyError(f"negative latency: {latency}")
        if bandwidth is not None and bandwidth <= 0:
            raise TopologyError(f"bandwidth must be positive: {bandwidth}")
        if queue_capacity < 0:
            raise TopologyError(f"negative queue capacity: {queue_capacity}")

        self.sim = sim
        self.port_a = port_a
        self.port_b = port_b
        self.latency = latency
        self.bandwidth = bandwidth
        #: Seconds of serialisation per wire byte (0.0 = infinite
        #: bandwidth): a precomputed multiplier so the per-frame fast
        #: path never divides.
        self._ser_per_byte = 0.0 if bandwidth is None else 8.0 / bandwidth
        self.queue_capacity = queue_capacity
        self.up = True
        self.name = name or f"{port_a.name}<->{port_b.name}"
        self._dirs = {port_a: _Direction(port_b),
                      port_b: _Direction(port_a)}
        #: The simulator's tracer, cached: _trace runs twice per frame
        #: hop and the two-attribute chain is measurable at scale.
        self._tracer = sim.tracer
        #: One bound method shared by every delivery this link ever
        #: schedules (a fresh `self._deliver` per transmit is an
        #: allocation the fast path can skip).
        self._deliver_cb = self._deliver
        port_a.link = self
        port_b.link = self
        port_a.node.invalidate_port_cache()
        port_b.node.invalidate_port_cache()

    # -- wiring --------------------------------------------------------------

    def other(self, port: Port) -> Port:
        """The opposite endpoint of *port*."""
        direction = self._dirs.get(port)
        if direction is None:
            raise TopologyError(f"{port.name} is not an endpoint of {self.name}")
        return direction.to_port

    # -- data plane ----------------------------------------------------------

    def serialization_delay(self, frame: EthernetFrame) -> float:
        """Seconds the transmitter is busy sending *frame*."""
        return frame.wire_size * self._ser_per_byte

    def transmit(self, from_port: Port, frame: EthernetFrame) -> None:
        """Queue *frame* for transmission from *from_port*.

        The uncongested path is fully inlined — one SENT counter bump,
        one arithmetic ``busy_until`` update, one scheduled delivery —
        because this method runs once per flooded copy per hop and
        every elided call layer is measurable at the 225-bridge scale.
        """
        if not self.up:
            self._dirs[from_port].carrier_drops += 1
            self._trace(trc.DROP_LINK_DOWN, frame)
            return
        direction = self._dirs[from_port]
        now = self.sim._now
        # A non-empty queue keeps the FIFO order even at the exact
        # busy_until instant (the drain event for it is already armed
        # and fires this instant): new frames go behind, never ahead.
        if direction.busy_until > now or direction.queue:
            if len(direction.queue) >= self.queue_capacity:
                direction.queue_drops += 1
                self._trace(trc.DROP_QUEUE, frame)
                return
            direction.queue.append(frame)
            if direction.drain_event is None:
                direction.drain_event = self.sim.schedule(
                    direction.busy_until - now, self._drain, direction)
            return
        # -- inlined _start_tx (keep in sync with it) --
        size = frame._wire_size
        if size is None:
            size = frame.wire_size
        tracer = self._tracer
        if tracer.count_only:
            tracer.counts[trc.SENT] += 1
            tracer.by_ethertype[trc.SENT][frame.ethertype] += 1
        else:
            tracer.record(trc.SENT, now, self.name, frame.uid,
                          frame.ethertype, size, frame.src, frame.dst)
        ser = size * self._ser_per_byte
        direction.busy_until = now + ser
        if direction.export is not None:
            # Shard boundary: the frame leaves this engine. The receiving
            # shard schedules the delivery, so this hop costs the same
            # one engine event system-wide as the local path below.
            direction.export(now, now + ser + self.latency, frame)
            return
        # Inlined Simulator.schedule (keep in sync with it): one Event
        # filled by slot writes, one heap entry in the engine's
        # documented (time, priority, seq, event) tuple shape. The
        # delivery is the only event an uncongested hop schedules, so
        # the call overhead of schedule() would be pure per-hop tax.
        sim = self.sim
        time = now + ser + self.latency
        seq = next(sim._seq)
        event = Event.__new__(Event)
        event.time = time
        event.priority = PRIORITY_NORMAL
        event.seq = seq
        event.callback = self._deliver_cb
        event.args = (direction, frame)
        event.cancelled = False
        event._sim = sim
        heappush(sim._queue, (time, PRIORITY_NORMAL, seq, event))
        sim._pending += 1
        pending = direction.pending
        pending.append(event)
        # Fired and cancelled events are pruned lazily (take_down skips
        # them via the cleared Event._sim), so delivery itself never
        # rebuilds this list; only a long queue pays an occasional scan.
        if len(pending) >= 32:
            self._prune_pending(direction)

    def _start_tx(self, direction: _Direction, frame: EthernetFrame,
                  now: float) -> None:
        """Start serialising *frame* now (the drain/congested path).

        Semantically the inlined tail of :meth:`transmit`; keep the two
        in sync.
        """
        self._trace(trc.SENT, frame)
        # _trace just filled the wire-size cache; read the slot directly
        # rather than paying the property descriptor again.
        ser = frame._wire_size * self._ser_per_byte
        direction.busy_until = now + ser
        if direction.export is not None:
            direction.export(now, now + ser + self.latency, frame)
            return
        event = self.sim.schedule(ser + self.latency, self._deliver,
                                  direction, frame)
        pending = direction.pending
        pending.append(event)
        if len(pending) >= 32:
            self._prune_pending(direction)

    def _drain(self, direction: _Direction) -> None:
        """The transmitter went idle with frames queued: start the next.

        Fires at exactly the instant the retired per-frame ``tx_done``
        event used to, so queued frames serialise back-to-back with
        identical timing; re-arms itself while the queue is non-empty.
        """
        direction.drain_event = None
        if not self.up or not direction.queue:
            return
        self._start_tx(direction, direction.queue.popleft(), self.sim._now)
        if direction.queue:
            direction.drain_event = self.sim.schedule(
                direction.busy_until - self.sim._now, self._drain, direction)

    def _deliver(self, direction: _Direction, frame: EthernetFrame) -> None:
        if not self.up:
            self._trace(trc.DROP_LINK_DOWN, frame)
            return
        # Inlined DELIVERED trace (see _trace): this is the single
        # hottest callback in the simulator.
        tracer = self._tracer
        if tracer.count_only:
            tracer.counts[trc.DELIVERED] += 1
            tracer.by_ethertype[trc.DELIVERED][frame.ethertype] += 1
        else:
            tracer.record(trc.DELIVERED, self.sim._now, self.name,
                          frame.uid, frame.ethertype, frame.wire_size,
                          frame.src, frame.dst)
        to_port = direction.to_port
        node = to_port.node
        if node._trace_hops:
            # Node.deliver owns the copy-on-write hop recording; it is
            # also the documented instance-level wrap point (the
            # PathObserver), which requires trace_hops — so the
            # non-tracing fast path below never bypasses a wrapper.
            node.deliver(to_port, frame)
        else:
            node.handle_frame(to_port, frame)

    def _prune_pending(self, direction: _Direction) -> None:
        # A live in-flight delivery still has its Event._sim set; firing
        # and cancelling both clear it, so the filter needs no clock.
        direction.pending = [ev for ev in direction.pending
                             if ev._sim is not None]

    # -- carrier control -----------------------------------------------------

    def take_down(self) -> None:
        """Lose carrier: drop queued and in-flight frames, notify nodes."""
        if not self.up:
            return
        self.up = False
        for direction in self._dirs.values():
            for frame in direction.queue:
                direction.carrier_drops += 1
                self._trace(trc.DROP_LINK_DOWN, frame)
            direction.queue.clear()
            for event in direction.pending:
                # A cleared _sim means the delivery already fired or was
                # cancelled (pending is pruned lazily); only live
                # in-flight frames are lost to the carrier drop.
                if event._sim is not None:
                    event.cancel()
                    # args = (direction, frame) of _deliver.
                    direction.carrier_drops += 1
                    self._trace(trc.DROP_LINK_DOWN, event.args[1])
            direction.pending.clear()
            if direction.drain_event is not None:
                direction.drain_event.cancel()
                direction.drain_event = None
            direction.busy_until = 0.0
        self._notify_carrier(False)

    def bring_up(self) -> None:
        """Regain carrier and notify both endpoints."""
        if self.up:
            return
        self.up = True
        self._notify_carrier(True)

    def _notify_carrier(self, up: bool) -> None:
        for port in (self.port_a, self.port_b):
            # Ghost endpoints (sharded runs) were never started and must
            # schedule nothing, or per-shard event counts would not sum
            # to the single-process count.
            if not port.node.shard_ghost:
                self.sim.call_soon(port.node.link_state_changed, port, up,
                                   priority=PRIORITY_EARLY)

    # -- introspection -----------------------------------------------------

    @property
    def queue_drops(self) -> Dict[str, int]:
        """Tail-drop count per direction, keyed by the sending port name."""
        return {port.name: direction.queue_drops
                for port, direction in self._dirs.items()}

    @property
    def carrier_drops(self) -> Dict[str, int]:
        """Carrier-loss drop count per direction, keyed by the sending
        port name (frames queued or in flight when carrier was lost)."""
        return {port.name: direction.carrier_drops
                for port, direction in self._dirs.items()}

    def is_busy(self, from_port: Port) -> bool:
        """Is the transmitter out of *from_port* mid-serialisation now?"""
        return self._dirs[from_port].busy_until > self.sim._now

    def stats(self) -> Dict[str, Dict[str, object]]:
        """Per-direction transmitter state, keyed by the sending port name.

        Each direction reports its current queue depth, whether the
        transmitter is busy, and the cumulative tail-drop and
        carrier-loss drop counts.
        """
        now = self.sim._now
        return {port.name: {"queued": len(direction.queue),
                            "busy": direction.busy_until > now,
                            "queue_drops": direction.queue_drops,
                            "carrier_drops": direction.carrier_drops}
                for port, direction in self._dirs.items()}

    # -- tracing ---------------------------------------------------------

    def _trace(self, kind: str, frame: EthernetFrame) -> None:
        # _trace runs twice per frame hop. In counters-only mode (no
        # record retention, no listeners — every benchmark and the scale
        # scenario) the counters are bumped inline; the record() call —
        # with MAC objects passed through so stringification stays
        # lazy — is reserved for tracers that materialise records.
        size = frame._wire_size
        if size is None:
            size = frame.wire_size
        tracer = self._tracer
        if tracer.count_only:
            tracer.counts[kind] += 1
            tracer.by_ethertype[kind][frame.ethertype] += 1
        else:
            tracer.record(kind, self.sim._now, self.name, frame.uid,
                          frame.ethertype, size, frame.src, frame.dst)

    def __repr__(self) -> str:
        state = "up" if self.up else "down"
        return f"<Link {self.name} {state} lat={self.latency * 1e6:.1f}us>"
