"""Point-to-point Ethernet links.

A link joins exactly two ports and models, per direction:

* **serialisation** — the transmitter is busy for ``bits / bandwidth``
  seconds per frame; further frames wait in a bounded FIFO queue and
  overflow is tail-dropped,
* **propagation** — delivery is delayed by the configured latency,
* **carrier** — links can be taken down and brought back up; both
  endpoints get a carrier notification, queued and in-flight frames on a
  downed link are lost (exactly what a cable pull does to the NetFPGA).

Heterogeneous per-link latency is what makes the ARP race meaningful:
the first ARP copy to arrive travelled the lowest-latency path.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

from repro.frames.ethernet import EthernetFrame
from repro.netsim import tracer as trc
from repro.netsim.engine import PRIORITY_EARLY, Event, Simulator
from repro.netsim.errors import TopologyError
from repro.netsim.node import Port

#: 1 Gb/s — the NetFPGA's line rate.
DEFAULT_BANDWIDTH = 1_000_000_000.0
#: 10 µs default one-way propagation delay.
DEFAULT_LATENCY = 10e-6
DEFAULT_QUEUE_CAPACITY = 64


class _Direction:
    """Transmitter state for one direction of the link."""

    __slots__ = ("queue", "busy", "pending", "tx_event", "queue_drops",
                 "carrier_drops")

    def __init__(self, capacity: int):
        # Capacity is enforced in Link.transmit (not via maxlen) so that
        # overflow tail-drops are observable and counted.
        self.queue: Deque[EthernetFrame] = deque(maxlen=None)
        self.busy = False
        #: Delivery events in flight (cancelled if the link goes down).
        self.pending: List[Event] = []
        self.tx_event: Optional[Event] = None
        #: Frames tail-dropped because the queue was full.
        self.queue_drops = 0
        #: Frames lost to carrier loss: queued or in flight when the
        #: link went down, or handed to a downed transmitter.
        self.carrier_drops = 0


class Link:
    """A bidirectional point-to-point link between two ports."""

    def __init__(self, sim: Simulator, port_a: Port, port_b: Port,
                 latency: float = DEFAULT_LATENCY,
                 bandwidth: Optional[float] = DEFAULT_BANDWIDTH,
                 queue_capacity: int = DEFAULT_QUEUE_CAPACITY,
                 name: Optional[str] = None):
        if port_a is port_b:
            raise TopologyError("cannot connect a port to itself")
        if port_a.link is not None or port_b.link is not None:
            raise TopologyError(
                f"port already attached: {port_a.name if port_a.link else port_b.name}")
        if latency < 0:
            raise TopologyError(f"negative latency: {latency}")
        if bandwidth is not None and bandwidth <= 0:
            raise TopologyError(f"bandwidth must be positive: {bandwidth}")
        if queue_capacity < 0:
            raise TopologyError(f"negative queue capacity: {queue_capacity}")

        self.sim = sim
        self.port_a = port_a
        self.port_b = port_b
        self.latency = latency
        self.bandwidth = bandwidth
        self.queue_capacity = queue_capacity
        self.up = True
        self.name = name or f"{port_a.name}<->{port_b.name}"
        self._dirs = {port_a: _Direction(queue_capacity),
                      port_b: _Direction(queue_capacity)}
        #: The simulator's tracer, cached: _trace runs twice per frame
        #: hop and the two-attribute chain is measurable at scale.
        self._tracer = sim.tracer
        port_a.link = self
        port_b.link = self

    # -- wiring --------------------------------------------------------------

    def other(self, port: Port) -> Port:
        """The opposite endpoint of *port*."""
        if port is self.port_a:
            return self.port_b
        if port is self.port_b:
            return self.port_a
        raise TopologyError(f"{port.name} is not an endpoint of {self.name}")

    # -- data plane ----------------------------------------------------------

    def serialization_delay(self, frame: EthernetFrame) -> float:
        """Seconds the transmitter is busy sending *frame*."""
        if self.bandwidth is None:
            return 0.0
        return frame.wire_size * 8 / self.bandwidth

    def transmit(self, from_port: Port, frame: EthernetFrame) -> None:
        """Queue *frame* for transmission from *from_port*."""
        if not self.up:
            self._dirs[from_port].carrier_drops += 1
            self._trace(trc.DROP_LINK_DOWN, frame)
            return
        direction = self._dirs[from_port]
        if direction.busy:
            if len(direction.queue) >= self.queue_capacity:
                direction.queue_drops += 1
                self._trace(trc.DROP_QUEUE, frame)
                return
            direction.queue.append(frame)
            return
        self._start_tx(from_port, direction, frame)

    def _start_tx(self, from_port: Port, direction: _Direction,
                  frame: EthernetFrame) -> None:
        direction.busy = True
        self._trace(trc.SENT, frame)
        ser = self.serialization_delay(frame)
        direction.tx_event = self.sim.schedule(
            ser, self._tx_done, from_port, direction)
        event = self.sim.schedule(ser + self.latency, self._deliver,
                                  from_port, direction, frame)
        pending = direction.pending
        pending.append(event)
        # Fired and cancelled events are pruned lazily (take_down skips
        # them via the cleared Event._sim), so delivery itself never
        # rebuilds this list; only a long queue pays an occasional scan.
        if len(pending) >= 32:
            self._prune_pending(direction)

    def _tx_done(self, from_port: Port, direction: _Direction) -> None:
        direction.busy = False
        direction.tx_event = None
        if direction.queue and self.up:
            self._start_tx(from_port, direction, direction.queue.popleft())

    def _deliver(self, from_port: Port, direction: _Direction,
                 frame: EthernetFrame) -> None:
        if not self.up:
            self._trace(trc.DROP_LINK_DOWN, frame)
            return
        self._trace(trc.DELIVERED, frame)
        to_port = self.other(from_port)
        to_port.node.deliver(to_port, frame)

    def _prune_pending(self, direction: _Direction) -> None:
        # A live in-flight delivery still has its Event._sim set; firing
        # and cancelling both clear it, so the filter needs no clock.
        direction.pending = [ev for ev in direction.pending
                             if ev._sim is not None]

    # -- carrier control -----------------------------------------------------

    def take_down(self) -> None:
        """Lose carrier: drop queued and in-flight frames, notify nodes."""
        if not self.up:
            return
        self.up = False
        for direction in self._dirs.values():
            for frame in direction.queue:
                direction.carrier_drops += 1
                self._trace(trc.DROP_LINK_DOWN, frame)
            direction.queue.clear()
            for event in direction.pending:
                # A cleared _sim means the delivery already fired or was
                # cancelled (pending is pruned lazily); only live
                # in-flight frames are lost to the carrier drop.
                if event._sim is not None:
                    event.cancel()
                    # args = (from_port, direction, frame) of _deliver.
                    direction.carrier_drops += 1
                    self._trace(trc.DROP_LINK_DOWN, event.args[2])
            direction.pending.clear()
            if direction.tx_event is not None:
                direction.tx_event.cancel()
                direction.tx_event = None
            direction.busy = False
        self._notify_carrier(False)

    def bring_up(self) -> None:
        """Regain carrier and notify both endpoints."""
        if self.up:
            return
        self.up = True
        self._notify_carrier(True)

    def _notify_carrier(self, up: bool) -> None:
        for port in (self.port_a, self.port_b):
            self.sim.call_soon(port.node.link_state_changed, port, up,
                               priority=PRIORITY_EARLY)

    # -- introspection -----------------------------------------------------

    @property
    def queue_drops(self) -> Dict[str, int]:
        """Tail-drop count per direction, keyed by the sending port name."""
        return {port.name: direction.queue_drops
                for port, direction in self._dirs.items()}

    @property
    def carrier_drops(self) -> Dict[str, int]:
        """Carrier-loss drop count per direction, keyed by the sending
        port name (frames queued or in flight when carrier was lost)."""
        return {port.name: direction.carrier_drops
                for port, direction in self._dirs.items()}

    def stats(self) -> Dict[str, Dict[str, object]]:
        """Per-direction transmitter state, keyed by the sending port name.

        Each direction reports its current queue depth, whether the
        transmitter is busy, and the cumulative tail-drop and
        carrier-loss drop counts.
        """
        return {port.name: {"queued": len(direction.queue),
                            "busy": direction.busy,
                            "queue_drops": direction.queue_drops,
                            "carrier_drops": direction.carrier_drops}
                for port, direction in self._dirs.items()}

    # -- tracing ---------------------------------------------------------

    def _trace(self, kind: str, frame: EthernetFrame) -> None:
        # MAC objects are passed through; the tracer stringifies them
        # only when it materialises a record.
        self._tracer.record(kind, self.sim._now, self.name, frame.uid,
                            frame.ethertype, frame.wire_size,
                            frame.src, frame.dst)

    def __repr__(self) -> str:
        state = "up" if self.up else "down"
        return f"<Link {self.name} {state} lat={self.latency * 1e6:.1f}us>"
