"""Scripted network dynamics: the churn event timeline.

The failure injector (:mod:`repro.failures.injector`) models one-shot
cable pulls; this module models *sustained churn* — the regime where
resilience architectures are actually stress-tested: links flapping,
bridges crashing and power-cycling back with empty tables, hosts
migrating between edge bridges.

An :class:`EventTimeline` is a deterministic, pre-computed schedule of
:class:`ChurnEvent` items against one network:

* **Deterministic by construction.** Every random draw happens at
  *generation* time from a caller-seeded :class:`random.Random`
  (:meth:`EventTimeline.random_churn`); execution merely dispatches the
  pre-computed list. Two timelines built with the same seed over the
  same network are identical, and a timeline's effect depends only on
  the cell that built it — which is what keeps ``sweep --jobs N``
  byte-identical at any jobs level.
* **Wheel-driven.** :meth:`EventTimeline.arm` files every event on the
  engine's :class:`~repro.netsim.engine.TimerWheel`
  (``sim.schedule_timer``) — churn events are exactly the
  short-deadline, bulk-scheduled timers the wheel exists for.
* **Aging stays in the store.** Dispatch never sweeps or expires table
  entries; reclamation remains the :class:`~repro.netsim.aging
  .AgingStore`'s job (the shared-aging invariant). The only state wipes
  are the explicit power-cycle semantics of
  :meth:`~repro.topology.builder.Network.restart_bridge`.

The timeline drives the network through the dynamics primitives on
:class:`~repro.topology.builder.Network` (``crash_bridge``,
``restart_bridge``, ``migrate_host``) and the links' carrier control,
so every future dynamic workload (mobility, maintenance windows,
rolling upgrades) can reuse the same abstraction with a different
generator.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, TYPE_CHECKING

from repro.netsim.errors import SchedulingError, TopologyError

if TYPE_CHECKING:
    from repro.topology.builder import Network

#: Event kinds understood by the dispatcher.
LINK_DOWN = "link_down"
LINK_UP = "link_up"
BRIDGE_CRASH = "bridge_crash"
BRIDGE_RESTART = "bridge_restart"
HOST_MIGRATE = "host_migrate"

_KINDS = (LINK_DOWN, LINK_UP, BRIDGE_CRASH, BRIDGE_RESTART, HOST_MIGRATE)


@dataclass(frozen=True)
class ChurnEvent:
    """One scheduled dynamics action.

    *target* names a link (``link_*``), bridge (``bridge_*``) or host
    (``host_migrate``); *arg* carries the migration's destination
    bridge. *time* is absolute simulation time.
    """

    time: float
    kind: str
    target: str
    arg: Optional[str] = None

    def __post_init__(self):
        if self.kind not in _KINDS:
            raise ValueError(f"unknown churn event kind {self.kind!r}")
        if self.time < 0:
            raise ValueError(f"negative event time: {self.time}")


@dataclass(frozen=True)
class ExecutedEvent:
    """A dispatched event with the time it actually ran."""

    time: float
    kind: str
    target: str
    arg: Optional[str] = None


class EventTimeline:
    """A deterministic schedule of churn events against one network."""

    def __init__(self, net: "Network"):
        self.net = net
        self.events: List[ChurnEvent] = []
        self.executed: List[ExecutedEvent] = []
        #: Dispatched-action counts by category.
        self.counts: Dict[str, int] = {"flaps": 0, "crashes": 0,
                                       "restarts": 0, "migrations": 0}
        #: Links a crash took down, restored by the matching restart.
        self._crashed_links: Dict[str, set] = {}
        #: Outstanding crash count per bridge; overlapping outages of
        #: one bridge restart it once, when the last outage ends.
        self._crash_depth: Dict[str, int] = {}
        #: Outstanding flap-down windows per link; overlapping flaps of
        #: one link restore carrier once, when the last window ends.
        self._link_depth: Dict[str, int] = {}
        self._armed = False

    # -- scripting ---------------------------------------------------------

    def add(self, event: ChurnEvent) -> ChurnEvent:
        """Append one event (call before :meth:`arm`)."""
        if self._armed:
            raise SchedulingError("timeline already armed")
        self.events.append(event)
        return event

    def add_flap(self, link: str, at: float, down_for: float) -> None:
        """Link loses carrier at *at* and regains it *down_for* later."""
        if down_for <= 0:
            raise SchedulingError(f"down_for must be positive: {down_for}")
        self.add(ChurnEvent(at, LINK_DOWN, link))
        self.add(ChurnEvent(at + down_for, LINK_UP, link))

    def add_bridge_outage(self, bridge: str, at: float,
                          down_for: float) -> None:
        """Bridge crashes at *at* and power-cycles back *down_for* later
        with all dynamic state wiped."""
        if down_for <= 0:
            raise SchedulingError(f"down_for must be positive: {down_for}")
        self.add(ChurnEvent(at, BRIDGE_CRASH, bridge))
        self.add(ChurnEvent(at + down_for, BRIDGE_RESTART, bridge))

    def add_migration(self, host: str, at: float, to_bridge: str) -> None:
        """Host detaches and reattaches at *to_bridge* at time *at*."""
        self.add(ChurnEvent(at, HOST_MIGRATE, host, arg=to_bridge))

    def random_churn(self, seed: int, start: float, duration: float,
                     flap_rate: float = 0.0, mean_down_time: float = 0.5,
                     crashes: int = 0, migrations: int = 0,
                     links: Optional[Sequence[str]] = None,
                     bridges: Optional[Sequence[str]] = None,
                     hosts: Optional[Sequence[str]] = None) -> int:
        """Generate a Poisson flap train plus scheduled outages/migrations.

        Flaps arrive at *flap_rate* per second over ``[start,
        start+duration)`` with exponentially distributed down times of
        mean *mean_down_time*; each hits a uniformly chosen fabric link
        (or one of *links*). *crashes* bridge outages and *migrations*
        host moves are placed at evenly spaced instants through the
        window, targets drawn from the same RNG. All draws come from a
        fresh ``random.Random(seed)``, so the schedule is a pure
        function of the arguments. Returns the number of events added.
        """
        if duration <= 0:
            raise SchedulingError(f"duration must be positive: {duration}")
        if flap_rate < 0:
            raise SchedulingError(f"negative flap rate: {flap_rate}")
        if mean_down_time <= 0 and (flap_rate > 0 or crashes > 0):
            raise SchedulingError(
                f"mean_down_time must be positive: {mean_down_time}")
        rng = random.Random(seed)
        before = len(self.events)
        flap_links = list(links) if links is not None \
            else sorted(wire.name for wire in self.net.fabric_links())
        if flap_rate > 0 and flap_links:
            at = start + rng.expovariate(flap_rate)
            while at < start + duration:
                down = rng.expovariate(1.0 / mean_down_time)
                self.add_flap(rng.choice(flap_links), at, down)
                at += rng.expovariate(flap_rate)
        crash_bridges = list(bridges) if bridges is not None \
            else sorted(self.net.bridges)
        if crashes > 0 and not crash_bridges:
            raise TopologyError("no bridges to crash")
        for index in range(crashes):
            slot = start + duration * (index + 0.5) / crashes
            down = rng.expovariate(1.0 / mean_down_time) + mean_down_time
            self.add_bridge_outage(rng.choice(crash_bridges), slot, down)
        move_hosts = list(hosts) if hosts is not None \
            else sorted(self.net.hosts)
        if migrations > 0 and not move_hosts:
            raise TopologyError("no hosts to migrate")
        location = {name: self.net.bridge_for_host(name).name
                    for name in move_hosts}
        all_bridges = sorted(self.net.bridges)
        for index in range(migrations):
            slot = start + duration * (index + 0.5) / migrations
            host = rng.choice(move_hosts)
            choices = [b for b in all_bridges if b != location[host]]
            if not choices:
                raise TopologyError("need at least two bridges to migrate")
            dest = rng.choice(choices)
            self.add_migration(host, slot, dest)
            location[host] = dest
        return len(self.events) - before

    def hold_down(self, link_name: str) -> None:
        """Take a link down *now* and pin it down.

        For scripted permanent cuts (e.g. fig3-style active-path
        failures) running alongside random churn: the pin joins the
        link's flap-depth accounting, so an overlapping flap window
        ending later will not restore carrier. Callable during the run
        (unlike :meth:`add`, which pre-schedules)."""
        self._link_depth[link_name] = \
            self._link_depth.get(link_name, 0) + 1
        self.net.links[link_name].take_down()

    # -- execution ---------------------------------------------------------

    def arm(self) -> int:
        """File every scripted event on the engine's timer wheel.

        Events keep global (time, priority, seq) order — within one
        instant they fire in scripting order. Returns the number armed.
        """
        if self._armed:
            raise SchedulingError("timeline already armed")
        self._armed = True
        sim = self.net.sim
        now = sim.now
        for event in sorted(self.events, key=lambda e: e.time):
            if event.time < now:
                raise SchedulingError(
                    f"event at {event.time} is in the past (now {now})")
            sim.schedule_timer(event.time - now, self._fire, event)
        return len(self.events)

    def _crashed_owner(self, link_name: str) -> Optional[str]:
        """The crashed bridge a link touches, if any."""
        wire = self.net.links.get(link_name)
        if wire is None:
            return None
        for node in (wire.port_a.node, wire.port_b.node):
            if self._crash_depth.get(node.name, 0) > 0:
                return node.name
        return None

    def _fire(self, event: ChurnEvent) -> None:
        kind = event.kind
        net = self.net
        if kind == LINK_DOWN:
            wire = net.links.get(event.target)
            if wire is None:
                return  # link unregistered since scheduling (migration)
            self._link_depth[event.target] = \
                self._link_depth.get(event.target, 0) + 1
            wire.take_down()
            self.counts["flaps"] += 1
        elif kind == LINK_UP:
            if event.target not in net.links:
                return  # link unregistered since scheduling (migration)
            depth = max(self._link_depth.get(event.target, 1) - 1, 0)
            self._link_depth[event.target] = depth
            owner = self._crashed_owner(event.target)
            if depth > 0:
                # Still inside an earlier, longer flap window: carrier
                # returns when the last overlapping window ends.
                pass
            elif owner is not None:
                # The link touches a dead bridge: restoring carrier now
                # would let the crash's stale state forward frames.
                # Defer to the bridge's restart instead.
                self._crashed_links[owner].add(event.target)
            else:
                net.links[event.target].bring_up()
        elif kind == BRIDGE_CRASH:
            affected = net.crash_bridge(event.target)
            self._crash_depth[event.target] = \
                self._crash_depth.get(event.target, 0) + 1
            self._crashed_links.setdefault(event.target,
                                           set()).update(affected)
            self.counts["crashes"] += 1
        elif kind == BRIDGE_RESTART:
            depth = max(self._crash_depth.get(event.target, 1) - 1, 0)
            self._crash_depth[event.target] = depth
            if depth <= 0:
                links = self._crashed_links.pop(event.target, None)
                if links is None:
                    # Unpaired scripted restart: restore the bridge's
                    # own links, subject to the same deferrals.
                    bridge = net.bridge(event.target)
                    links = {name for name, wire in net.links.items()
                             if wire.port_a.node is bridge
                             or wire.port_b.node is bridge}
                # A link whose other end is still crashed stays down
                # (that bridge's restart restores it), as does one
                # inside an open flap window or pinned by hold_down
                # (its final LINK_UP, if any, restores it).
                deferred = set()
                for name in links:
                    owner = self._crashed_owner(name)
                    if owner is not None:
                        self._crashed_links[owner].add(name)
                        deferred.add(name)
                    elif self._link_depth.get(name, 0) > 0:
                        deferred.add(name)
                net.restart_bridge(event.target,
                                   links=sorted(links - deferred))
                self.counts["restarts"] += 1
        elif kind == HOST_MIGRATE:
            wire = net.migrate_host(event.target, event.arg)
            if self._crash_depth.get(event.arg, 0) > 0:
                # Cable plugged into a powered-off switch: no carrier
                # until the bridge's restart restores it.
                wire.take_down()
                self._crashed_links[event.arg].add(wire.name)
            self.counts["migrations"] += 1
        self.executed.append(ExecutedEvent(time=net.sim.now, kind=kind,
                                           target=event.target,
                                           arg=event.arg))

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:
        return (f"<EventTimeline events={len(self.events)} "
                f"executed={len(self.executed)}>")
