"""Frame-level tracing and counting.

A :class:`Tracer` observes every link-level transmit, delivery and drop.
Experiments use it to count broadcast overhead, measure path latencies
and assert loop-freedom (a looping frame produces unbounded deliveries,
which the tests bound).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional

SENT = "sent"
DELIVERED = "delivered"
DROP_QUEUE = "drop_queue"
DROP_LINK_DOWN = "drop_link_down"
DROP_TTL = "drop_ttl"

KINDS = (SENT, DELIVERED, DROP_QUEUE, DROP_LINK_DOWN, DROP_TTL)


@dataclass(frozen=True)
class TraceRecord:
    """One link-level event."""

    kind: str
    time: float
    link: str
    frame_uid: int
    ethertype: int
    size: int
    src: str
    dst: str


class Tracer:
    """Collects link-level events and aggregates counters.

    Record retention is optional (``keep_records=False`` keeps only the
    counters) so long benchmark runs stay memory-bounded.
    """

    def __init__(self, keep_records: bool = True):
        self.records: List[TraceRecord] = []
        self.counts: Counter = Counter()
        self.by_ethertype: Dict[str, Counter] = defaultdict(Counter)
        self._listeners: List[Callable[[TraceRecord], None]] = []
        #: True while no record is ever materialised (no retention, no
        #: listeners): callers on the per-hop fast path may then bump
        #: :attr:`counts` / :attr:`by_ethertype` directly instead of
        #: paying a :meth:`record` call per link event. Kept in sync by
        #: the keep_records setter and add_listener.
        self.count_only = not keep_records
        self._keep_records = keep_records

    @property
    def keep_records(self) -> bool:
        """Whether records are retained; assignable mid-run."""
        return self._keep_records

    @keep_records.setter
    def keep_records(self, value: bool) -> None:
        self._keep_records = value
        self.count_only = not value and not self._listeners

    def record(self, kind: str, time: float, link: str, frame_uid: int,
               ethertype: int, size: int, src, dst) -> None:
        """Record one link-level event (called by links).

        *src*/*dst* may be MAC objects or strings; they are stringified
        only when a record is actually materialised, which keeps the
        counters-only fast path (``keep_records=False``, no listeners)
        free of string formatting.
        """
        self.counts[kind] += 1
        self.by_ethertype[kind][ethertype] += 1
        if self.keep_records or self._listeners:
            rec = TraceRecord(kind=kind, time=time, link=link,
                              frame_uid=frame_uid, ethertype=ethertype,
                              size=size, src=str(src), dst=str(dst))
            if self.keep_records:
                self.records.append(rec)
            for listener in self._listeners:
                listener(rec)

    def add_listener(self, listener: Callable[[TraceRecord], None]) -> None:
        """Invoke *listener* for every future record."""
        self._listeners.append(listener)
        self.count_only = False

    # -- queries -------------------------------------------------------------

    def count(self, kind: str, ethertype: Optional[int] = None) -> int:
        """Number of events of *kind*, optionally for one ethertype."""
        if ethertype is None:
            return self.counts[kind]
        return self.by_ethertype[kind][ethertype]

    @property
    def frames_sent(self) -> int:
        return self.counts[SENT]

    @property
    def frames_delivered(self) -> int:
        return self.counts[DELIVERED]

    @property
    def frames_dropped(self) -> int:
        return (self.counts[DROP_QUEUE] + self.counts[DROP_LINK_DOWN]
                + self.counts[DROP_TTL])

    def deliveries_for(self, frame_uid: int) -> List[TraceRecord]:
        """All delivery records for one logical frame (needs records)."""
        return [rec for rec in self.records
                if rec.kind == DELIVERED and rec.frame_uid == frame_uid]

    def link_load_bytes(self) -> Dict[str, int]:
        """Total bytes carried per link (needs records)."""
        load: Dict[str, int] = defaultdict(int)
        for rec in self.records:
            if rec.kind == SENT:
                load[rec.link] += rec.size
        return dict(load)

    def reset(self) -> None:
        """Clear all records and counters."""
        self.records.clear()
        self.counts.clear()
        self.by_ethertype.clear()

    def __repr__(self) -> str:
        return (f"<Tracer sent={self.frames_sent} "
                f"delivered={self.frames_delivered} "
                f"dropped={self.frames_dropped}>")
