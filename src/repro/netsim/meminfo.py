"""Lightweight memory introspection: process RSS and engine footprint.

Two kinds of "memory" matter to the scale experiments, and they must
not be mixed up:

* **Process memory** (:func:`rss_bytes`, :func:`peak_rss_bytes`) —
  resident-set size read from ``/proc/self/status`` (``VmRSS`` /
  ``VmHWM``), falling back to :mod:`resource` where procfs is absent.
  These numbers are machine- and process-layout-dependent, so they are
  recorded only by benchmarks (``benchmarks/BENCH_scale.json``), never
  in experiment ``records()`` rows — a sweep cell's rows must be
  byte-identical at any ``--jobs`` level, and a pool worker's RSS is
  not.

* **Engine footprint** (:class:`MemorySampler`) — the simulator's own
  logical memory: pending events on the heap plus timers filed on the
  wheel. It is a pure function of the simulation, so its peaks are
  deterministic and safe to emit in records. The sampler hooks on the
  timer wheel (:meth:`~repro.netsim.engine.Simulator.schedule_timer`),
  so sampling itself rides the same O(1)-cancellation machinery it
  observes.
"""

from __future__ import annotations

from typing import Optional

_PROC_STATUS = "/proc/self/status"


def _read_status_kib(field: str) -> Optional[int]:
    """One ``kB`` field from ``/proc/self/status``, or None off-Linux."""
    try:
        with open(_PROC_STATUS) as handle:
            for line in handle:
                if line.startswith(field + ":"):
                    return int(line.split()[1])
    except OSError:
        return None
    return None


def _rusage_peak_kib() -> int:
    """Peak RSS via getrusage (KiB on Linux, bytes on macOS)."""
    import resource
    import sys

    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        return peak // 1024
    return peak


def rss_bytes() -> int:
    """Current resident-set size of this process in bytes.

    Where ``/proc`` is unavailable the *peak* RSS is returned instead
    (the closest portable approximation; it only ever over-reports).
    """
    kib = _read_status_kib("VmRSS")
    if kib is None:
        kib = _rusage_peak_kib()
    return kib * 1024


def peak_rss_bytes() -> int:
    """High-water-mark resident-set size of this process in bytes."""
    kib = _read_status_kib("VmHWM")
    if kib is None:
        kib = _rusage_peak_kib()
    return kib * 1024


class MemorySampler:
    """Periodic sampler of the engine's logical footprint.

    Arms a repeating timer on the simulator's wheel and records, at
    every tick, the number of pending heap events and wheel timers;
    :attr:`peak_pending_events` / :attr:`peak_wheel_timers` hold the
    high-water marks. Both are deterministic (they depend only on the
    simulation), so scale-experiment rows may include them.

    With ``track_rss=True`` the sampler additionally tracks
    :func:`rss_bytes` peaks — benchmark-only; see the module docs.

    Usage::

        sampler = MemorySampler(sim, interval=0.5)
        sampler.start()
        net.run(...)
        sampler.stop()
        sampler.peak_pending_events
    """

    __slots__ = ("sim", "interval", "track_rss", "samples",
                 "peak_pending_events", "peak_wheel_timers",
                 "peak_rss", "series", "_adjust", "_event", "_stopped",
                 "_count_self")

    def __init__(self, sim, interval: float = 0.5,
                 track_rss: bool = False, record_series: bool = False,
                 adjust=None, count_self: bool = True):
        if interval <= 0:
            raise ValueError(f"sample interval must be > 0: {interval}")
        self.sim = sim
        self.interval = interval
        self.track_rss = track_rss
        self.samples = 0
        self.peak_pending_events = 0
        self.peak_wheel_timers = 0
        #: Peak process RSS in bytes (0 unless ``track_rss``).
        self.peak_rss = 0
        #: With ``record_series=True``, the full per-sample sequence of
        #: ``(pending, wheel)`` pairs. The sharded runtime needs the
        #: whole series, not just peaks: per-shard peaks occur at
        #: different instants, so a whole-simulation peak is the max of
        #: the *per-instant sums* across shards.
        self.series = [] if record_series else None
        #: Optional callable returning ``(pending_delta, wheel_delta)``
        #: applied to every sample — the shard runtime's hook for
        #: counting frames that are in flight between shards (and so in
        #: no local heap) at the sampling instant.
        self._adjust = adjust
        #: With ``count_self=False`` the sampler's own live tick timer is
        #: subtracted from every sample. A sharded run has one sampler
        #: per shard but must report the footprint of the one simulation;
        #: exactly one sampler (shard 0's) plays the single-process
        #: sampler's part and the K-1 others efface themselves.
        self._count_self = count_self
        self._event = None
        self._stopped = False

    def start(self) -> None:
        """Take a first sample now and begin periodic sampling."""
        self._stopped = False
        self._sample()
        self._arm()

    def stop(self) -> None:
        """Stop sampling (takes one final sample for the peaks)."""
        if self._stopped:
            return
        self._stopped = True
        self._sample()
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _arm(self) -> None:
        self._event = self.sim.schedule_timer(self.interval, self._tick)

    def _tick(self) -> None:
        if self._stopped:
            return
        self._sample()
        self._arm()

    def _sample(self) -> None:
        self.samples += 1
        pending = self.sim.pending_events
        wheel_size = len(self.sim.wheel)
        if self._adjust is not None:
            pending_delta, wheel_delta = self._adjust()
            pending += pending_delta
            wheel_size += wheel_delta
        if not self._count_self:
            event = self._event
            if event is not None and event._sim is not None:
                # Our own armed tick timer: off the books. It is on the
                # wheel unless a pour already promoted it to the heap
                # (only plausible at the stop sample), so check where it
                # actually lives before decrementing the wheel count.
                pending -= 1
                if any(ev is event
                       for ev in self.sim.wheel._iter_events()):
                    wheel_size -= 1
        if self.series is not None:
            self.series.append((pending, wheel_size))
        if pending > self.peak_pending_events:
            self.peak_pending_events = pending
        if wheel_size > self.peak_wheel_timers:
            self.peak_wheel_timers = wheel_size
        if self.track_rss:
            rss = rss_bytes()
            if rss > self.peak_rss:
                self.peak_rss = rss

    def __repr__(self) -> str:
        return (f"<MemorySampler samples={self.samples} "
                f"peak_pending={self.peak_pending_events} "
                f"peak_wheel={self.peak_wheel_timers}>")
