"""Export simulated traffic as a standard pcap capture.

The byte codec (:mod:`repro.frames.codec`) gives every simulated frame
a real wire format; this module writes link-level events out as a
classic libpcap file that Wireshark/tcpdump can open — the simulator
equivalent of port-mirroring a NetFPGA interface.

Two ways to use it:

* offline — :func:`write_pcap` renders tracer records after a run
  (requires the tracer to keep records *and* frames to be re-encoded
  from their payload objects, so it works through :class:`PcapRecorder`
  which captures the actual frames);
* live — attach a :class:`PcapRecorder` to one or more links before the
  run; every frame transmitted on those links is encoded and buffered,
  then :meth:`PcapRecorder.save` writes the file.
"""

from __future__ import annotations

import struct
from typing import List, Optional, Sequence, Tuple

from repro.frames.codec import encode_frame
from repro.frames.ethernet import EthernetFrame
from repro.netsim.link import Link

#: libpcap magic (microsecond timestamps, little-endian).
PCAP_MAGIC = 0xA1B2C3D4
PCAP_VERSION = (2, 4)
#: LINKTYPE_ETHERNET
PCAP_LINKTYPE_ETHERNET = 1

_GLOBAL_HEADER = struct.Struct("<IHHiIII")
_RECORD_HEADER = struct.Struct("<IIII")


def pcap_global_header(snaplen: int = 65_535) -> bytes:
    """The 24-byte libpcap file header."""
    return _GLOBAL_HEADER.pack(PCAP_MAGIC, PCAP_VERSION[0], PCAP_VERSION[1],
                               0, 0, snaplen, PCAP_LINKTYPE_ETHERNET)


def pcap_record(timestamp: float, frame_bytes: bytes) -> bytes:
    """One pcap record: header plus the captured bytes."""
    seconds = int(timestamp)
    micros = int(round((timestamp - seconds) * 1e6))
    if micros >= 1_000_000:  # rounding carried over
        seconds += 1
        micros -= 1_000_000
    header = _RECORD_HEADER.pack(seconds, micros, len(frame_bytes),
                                 len(frame_bytes))
    return header + frame_bytes


class PcapRecorder:
    """Captures frames transmitted on selected links.

    Wraps each link's ``transmit`` so every frame (including flooded
    copies) is encoded at capture time; the original behaviour is
    preserved. Detach with :meth:`close`.
    """

    def __init__(self, links: Sequence[Link], snaplen: int = 65_535):
        if not links:
            raise ValueError("need at least one link to capture")
        self.snaplen = snaplen
        self.packets: List[Tuple[float, bytes]] = []
        self._originals = []
        for link in links:
            self._attach(link)

    def _attach(self, link: Link) -> None:
        original = link.transmit

        def capturing_transmit(from_port, frame: EthernetFrame,
                               _original=original, _link=link):
            self._capture(_link.sim.now, frame)
            _original(from_port, frame)

        self._originals.append((link, original))
        link.transmit = capturing_transmit  # type: ignore[method-assign]

    def _capture(self, now: float, frame: EthernetFrame) -> None:
        raw = encode_frame(frame)[:self.snaplen]
        self.packets.append((now, raw))

    def close(self) -> None:
        """Restore the wrapped links (idempotent)."""
        for link, original in self._originals:
            link.transmit = original  # type: ignore[method-assign]
        self._originals.clear()

    # -- output --------------------------------------------------------------

    def to_bytes(self) -> bytes:
        """The complete capture as libpcap bytes."""
        chunks = [pcap_global_header(self.snaplen)]
        for timestamp, raw in self.packets:
            chunks.append(pcap_record(timestamp, raw))
        return b"".join(chunks)

    def save(self, path: str) -> int:
        """Write the capture to *path*; returns the packet count."""
        with open(path, "wb") as handle:
            handle.write(self.to_bytes())
        return len(self.packets)

    def __len__(self) -> int:
        return len(self.packets)


def read_pcap(data: bytes) -> List[Tuple[float, bytes]]:
    """Parse libpcap bytes back into (timestamp, frame bytes) pairs.

    Supports exactly the dialect :func:`pcap_global_header` writes;
    used by the round-trip tests.
    """
    if len(data) < _GLOBAL_HEADER.size:
        raise ValueError("truncated pcap: no global header")
    (magic, _major, _minor, _tz, _sigfigs, _snaplen,
     linktype) = _GLOBAL_HEADER.unpack_from(data)
    if magic != PCAP_MAGIC:
        raise ValueError(f"bad pcap magic: {magic:#x}")
    if linktype != PCAP_LINKTYPE_ETHERNET:
        raise ValueError(f"unsupported linktype: {linktype}")
    packets = []
    offset = _GLOBAL_HEADER.size
    while offset < len(data):
        if offset + _RECORD_HEADER.size > len(data):
            raise ValueError("truncated pcap record header")
        seconds, micros, caplen, _origlen = _RECORD_HEADER.unpack_from(
            data, offset)
        offset += _RECORD_HEADER.size
        if offset + caplen > len(data):
            raise ValueError("truncated pcap record body")
        packets.append((seconds + micros / 1e6, data[offset:offset + caplen]))
        offset += caplen
    return packets
