"""Generate ``docs/API.md`` from the scenario registry.

The endpoint reference is prose in this module; every scenario and
parameter table is rendered from the same
:class:`~repro.experiments.registry.Param` specs the CLI and the HTTP
API validate against — the doc cannot say something the code doesn't.

Usage::

    python -m repro.server.docgen            # print to stdout
    python -m repro.server.docgen --write    # rewrite docs/API.md
    python -m repro.server.docgen --check    # exit 1 if docs/API.md
                                             # differs (the CI gate)
"""

from __future__ import annotations

import argparse
import difflib
import json
import sys
from typing import Any, List, Optional

from repro.experiments import registry

DOC_PATH = "docs/API.md"

_HEADER = """\
# `repro serve` — HTTP/JSON API reference

> **Generated file — do not edit by hand.** This document is rendered
> from the scenario registry by `python -m repro.server.docgen --write`
> and CI fails if it drifts from the code
> (`python -m repro.server.docgen --check`).

The `repro serve` daemon runs the simulator as a service: submit
sweep grids over HTTP, stream result records incrementally, and query
job history that survives daemon restarts. Start it with:

```console
$ python -m repro.cli serve --port 8642 --db repro-serve.db --workers 2
```

All endpoints live under `/v1` and speak JSON, except the record
stream, which is newline-delimited JSON (NDJSON). Errors come back as
`{"error": {"message": ..., "field": ...}}` with a 4xx/5xx status.

## Endpoints

| Method | Path | Purpose |
| --- | --- | --- |
| `GET` | `/v1/health` | liveness probe: `{"status": "ok", "uptime_s": ...}` |
| `GET` | `/v1/scenarios` | every scenario's JSON schema plus the job envelope schema |
| `GET` | `/v1/scenarios/<name>` | one scenario's JSON schema |
| `POST` | `/v1/jobs` | submit a sweep grid; returns `202` with the queued job |
| `GET` | `/v1/jobs?state=&limit=` | job history, newest first, optionally filtered by state |
| `GET` | `/v1/jobs/<id>` | one job's status, progress and error traceback (if any) |
| `POST` | `/v1/jobs/<id>/cancel` | cancel a queued or running job |
| `GET` | `/v1/jobs/<id>/records?offset=&limit=` | stream result records (NDJSON) with offset resumption |
| `GET` | `/v1/jobs/<id>/summary` | the aggregated mean/ci95 summary of a finished job |
| `GET` | `/v1/stats` | request counters, latency histograms, worker and job-state counts |

### Job lifecycle

A job moves `queued → running → completed | failed | cancelled`.
`failed` jobs carry a worker traceback (or a timeout notice) in their
`error` field; `cancelled` covers client cancels and daemon shutdown
mid-job. Queued jobs survive a daemon restart and run when the daemon
next starts; jobs interrupted mid-run are **resumed** — the store
checkpoints the highest contiguously-flushed cell index
(`cells_flushed`) atomically with each flush, and on restart the job
re-enters the queue and continues from the first unflushed cell with
its existing records intact. The `resumes` job field counts restarts.

Transient per-cell failures (a crashed pool worker, a raised
exception) are retried up to the submission's `retries` budget
(0–10, default 0) with deterministic exponential backoff; a cell
that exhausts its budget fails the job, but every other cell's
records still stream.

### Record streaming and determinism

`GET /v1/jobs/<id>/records` returns `application/x-ndjson`: one
canonical JSON record per line, in cell-index order. Resume with
`?offset=N` (skip the first N records); the `X-Next-Offset` response
header is the offset to resume from, and `X-Job-State` says whether
more records may still arrive (keep polling until the state is
terminal). On a failed job the `X-Job-Error` header carries the last
line of the failure (the full traceback stays on `GET /v1/jobs/<id>`).
`?format=json` wraps the same rows in a JSON envelope that also
carries the full `error` text.

**Determinism contract:** a job's record stream is byte-identical to
`repro sweep <scenario> --seeds ... --set ... --jsonl out.jsonl` for
the same grid, at any worker-pool size — both surfaces serialize rows
with the same canonical encoder and emit them in cell-index order.
"""

_WALKTHROUGH = """\
## Walkthrough (curl)

Start a daemon, submit a small churn grid, follow the records, check
the history:

```console
$ python -m repro.cli serve --port 8642 --db demo.db &
$ curl -s localhost:8642/v1/health
{"status": "ok", "uptime_s": 0.42}

# What can I run? (schemas generated from the registry)
$ curl -s localhost:8642/v1/scenarios | python -m json.tool | head

# Submit: churn on the demo ring, 2 seeds, sweeping flap_rate
$ curl -s -X POST localhost:8642/v1/jobs \\
    -H 'Content-Type: application/json' \\
    -d '{"scenario": "churn", "seeds": [0, 1],
         "set": {"flap_rate": [0.5], "duration": [3],
                 "protocols": ["arppath"]},
         "jobs": 2}'
{"job": {"id": 1, "state": "queued", "cells_total": 2, ...}}

# Poll status / progress
$ curl -s localhost:8642/v1/jobs/1
{"job": {"id": 1, "state": "running", "cells_done": 1, ...}}

# Stream records as they land; resume from X-Next-Offset
$ curl -si localhost:8642/v1/jobs/1/records?offset=0 | head
HTTP/1.1 200 OK
Content-Type: application/x-ndjson
X-Job-State: completed
X-Next-Offset: 8
{"availability":1.0,"downtime_s":0.0,...,"scenario":"churn","seed":0}

# Aggregated mean/ci95 summary (same shape as `repro sweep --json`)
$ curl -s localhost:8642/v1/jobs/1/summary | python -m json.tool

# History survives restarts
$ curl -s 'localhost:8642/v1/jobs?state=completed&limit=10'

# Observability
$ curl -s localhost:8642/v1/stats | python -m json.tool
```

Graceful shutdown: `kill -TERM <pid>` drains in-flight jobs for
`--drain-grace` seconds, cancels what remains (the job is marked
`cancelled` in the store — never orphaned), and exits 0.
"""


def _fmt_default(value: Any) -> str:
    if value is None:
        return "`null`"
    return f"`{json.dumps(value)}`"


def _fmt_type(param: registry.Param) -> str:
    base = param.json_type
    if param.is_list:
        base = f"array of {base}"
    if param.default is None:
        base += " or null"
    return base


def _param_table(params) -> List[str]:
    lines = ["| Parameter | Type | Default | Choices | Description |",
             "| --- | --- | --- | --- | --- |"]
    for param in params:
        choices = " ".join(f"`{json.dumps(choice)}`"
                           for choice in param.choices) \
            if param.choices is not None else "—"
        sweepable = "" if param.sweep else " *(not a sweep axis)*"
        lines.append(
            f"| `{param.name}` | {_fmt_type(param)} "
            f"| {_fmt_default(param.default)} | {choices} "
            f"| {param.help}{sweepable} |")
    return lines


def _envelope_section() -> List[str]:
    schema = registry.submission_schema()
    lines = [
        "## Job submission envelope (`POST /v1/jobs`)",
        "",
        schema["description"],
        "",
        "| Field | Type | Required | Default | Description |",
        "| --- | --- | --- | --- | --- |",
    ]
    required = set(schema["required"])
    for name, prop in schema["properties"].items():
        if "anyOf" in prop:
            kind = " or ".join(p["type"] for p in prop["anyOf"])
        elif prop["type"] == "array":
            kind = f"array of {prop['items']['type']}"
        else:
            kind = prop["type"]
        lines.append(
            f"| `{name}` | {kind} "
            f"| {'yes' if name in required else 'no'} "
            f"| {_fmt_default(prop.get('default'))} "
            f"| {prop['description']} |")
    lines += [
        "",
        "`set` values mirror `repro sweep --set name=v1,v2`: each axis",
        "maps to an **array** of values to grid over, and for",
        "list-typed parameters a scalar axis value becomes a singleton",
        "list per cell (sweeping `protocols` over `[\"arppath\",",
        "\"stp\"]` runs each family as its own cell).",
    ]
    return lines


def _family_sections() -> List[str]:
    from repro.switching import base
    lines = [
        "## Bridge families",
        "",
        "Protocol choices (`protocols` / `protocol` parameters) come "
        "from the self-registering bridge-family registry "
        "(`repro.switching.base`). `GET /v1/scenarios` carries the "
        "same descriptors under `families`, and scenarios with a "
        "protocol choice embed the sub-schemas of the families they "
        "accept.",
        "",
        "| Family | Loop-safe | Warmup (s) | Control ethertypes "
        "| Description |",
        "| --- | --- | --- | --- | --- |",
    ]
    for fam in base.all_families():
        info = fam.describe()
        ethertypes = " ".join(f"`{e}`" for e in
                              info["control_ethertypes"]) or "—"
        lines.append(
            f"| `{fam.name}` | {'yes' if fam.loop_safe else 'no'} "
            f"| {fam.warmup:g} | {ethertypes} | {fam.title} |")
    for fam in base.all_families():
        if not fam.options:
            continue
        lines += ["", f"### `{fam.name}` config", "",
                  "| Option | Type | Default | Description |",
                  "| --- | --- | --- | --- |"]
        for option in fam.options:
            lines.append(
                f"| `{option.name}` | {option.type} "
                f"| {_fmt_default(option.default)} | {option.help} |")
    return lines


def _scenario_sections() -> List[str]:
    lines = ["## Scenarios",
             "",
             "One subsection per registered scenario; the same table "
             "backs `GET /v1/scenarios` and the CLI's `--help`. Every "
             "scenario also accepts `seeds` (one run of every grid "
             "point per seed)."]
    for scenario in registry.all_scenarios():
        lines += ["", f"### `{scenario.name}` — {scenario.title}", ""]
        lines += _param_table(scenario.params)
    return lines


def render() -> str:
    """The full docs/API.md content."""
    registry.load_all()
    parts = [_HEADER]
    parts.append("\n".join(_envelope_section()) + "\n")
    parts.append("\n".join(_family_sections()) + "\n")
    parts.append("\n".join(_scenario_sections()) + "\n")
    parts.append(_WALKTHROUGH)
    return "\n".join(parts)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server.docgen",
        description="Render docs/API.md from the scenario registry.")
    parser.add_argument("--doc", default=DOC_PATH,
                        help="path of the committed API.md "
                             f"(default: {DOC_PATH})")
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument("--write", action="store_true",
                      help="rewrite --doc in place")
    mode.add_argument("--check", action="store_true",
                      help="exit 1 if --doc differs from the "
                           "rendered output (CI drift gate)")
    args = parser.parse_args(argv)

    content = render()
    if args.write:
        with open(args.doc, "w") as handle:
            handle.write(content)
        print(f"wrote {args.doc}")
        return 0
    if args.check:
        try:
            committed = open(args.doc).read()
        except FileNotFoundError:
            print(f"{args.doc} is missing — run "
                  "`python -m repro.server.docgen --write`",
                  file=sys.stderr)
            return 1
        if committed != content:
            diff = difflib.unified_diff(
                committed.splitlines(keepends=True),
                content.splitlines(keepends=True),
                fromfile=f"{args.doc} (committed)",
                tofile=f"{args.doc} (generated)")
            sys.stderr.writelines(diff)
            print(f"\n{args.doc} drifted from the registry — run "
                  "`python -m repro.server.docgen --write`",
                  file=sys.stderr)
            return 1
        print(f"{args.doc} is up to date")
        return 0
    sys.stdout.write(content)
    return 0


if __name__ == "__main__":
    sys.exit(main())
