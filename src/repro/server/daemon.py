"""Daemon lifecycle: pidfile, signals, graceful shutdown, logs.

``repro serve`` runs :class:`Daemon` in the foreground (process
supervision belongs to systemd/tmux/CI, not to a self-forking
double-fork dance): it writes a pidfile, opens the store, starts the
job workers and the HTTP server, then waits for SIGTERM/SIGINT.

Graceful shutdown is signal-driven and ordered:

1. the HTTP listener stops accepting (in-flight responses finish),
2. the job manager drains in-flight jobs for ``drain_grace`` seconds,
   then cancels what remains — pool workers are terminated, each
   still-running job is marked ``cancelled`` in the store, queued
   jobs stay ``queued`` for the next start,
3. the store closes, the pidfile is removed, exit 0.

A stale pidfile (no such process) is replaced silently; a live one
makes startup fail fast instead of racing another daemon onto the
same database.

Logs are structured: one JSON object per line on stderr (or
``--log-file``), carrying at least ``ts``, ``level``, ``logger`` and
``msg``; request lines add method/route/status/elapsed_ms.
"""

from __future__ import annotations

import errno
import json
import logging
import os
import signal
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.server.http import ReproHTTPServer
from repro.server.jobs import JobManager
from repro.server.store import Store

log = logging.getLogger("repro.serve.daemon")


class JsonLogFormatter(logging.Formatter):
    """One JSON object per log line (the structured-log contract)."""

    def format(self, record: logging.LogRecord) -> str:
        entry: Dict[str, Any] = {
            "ts": round(record.created, 3),
            "level": record.levelname.lower(),
            "logger": record.name,
            "msg": record.getMessage(),
        }
        structured = getattr(record, "structured", None)
        if structured:
            entry.update(structured)
        if record.exc_info:
            entry["traceback"] = self.formatException(record.exc_info)
        return json.dumps(entry, sort_keys=True)


def configure_logging(log_file: Optional[str] = None,
                      level: int = logging.INFO) -> None:
    """Attach the JSON formatter to the ``repro.serve`` logger tree."""
    root = logging.getLogger("repro.serve")
    root.setLevel(level)
    for handler in list(root.handlers):
        root.removeHandler(handler)
    handler = (logging.FileHandler(log_file) if log_file
               else logging.StreamHandler())
    handler.setFormatter(JsonLogFormatter())
    root.addHandler(handler)
    root.propagate = False


class PidfileError(RuntimeError):
    """Another live daemon already owns the pidfile."""


@dataclass
class DaemonConfig:
    """Everything ``repro serve`` can tune, with serving defaults."""

    host: str = "127.0.0.1"
    port: int = 8642
    db: str = "repro-serve.db"
    workers: int = 2            # concurrent jobs
    pool: int = 2               # max worker processes per job
    job_timeout: Optional[float] = None
    drain_grace: float = 5.0    # seconds to drain before cancelling
    pidfile: Optional[str] = None
    log_file: Optional[str] = None

    extra: Dict[str, Any] = field(default_factory=dict)


class Daemon:
    """The serve process: store + job workers + HTTP, one lifecycle."""

    def __init__(self, config: DaemonConfig):
        self.config = config
        self.store: Optional[Store] = None
        self.manager: Optional[JobManager] = None
        self.server: Optional[ReproHTTPServer] = None
        self._shutdown = threading.Event()
        self._serve_thread: Optional[threading.Thread] = None
        self._pidfile_owned = False

    # -- pidfile ------------------------------------------------------

    def _write_pidfile(self) -> None:
        path = self.config.pidfile
        if path is None:
            return
        if os.path.exists(path):
            try:
                stale_pid = int(open(path).read().strip())
            except (ValueError, OSError):
                stale_pid = None
            if stale_pid is not None and _pid_alive(stale_pid):
                raise PidfileError(
                    f"pidfile {path} names a live process {stale_pid}; "
                    "is another `repro serve` already running?")
            os.unlink(path)  # stale: owner is gone
        fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
        with os.fdopen(fd, "w") as handle:
            handle.write(f"{os.getpid()}\n")
        self._pidfile_owned = True

    def _remove_pidfile(self) -> None:
        if self._pidfile_owned and self.config.pidfile:
            try:
                os.unlink(self.config.pidfile)
            except OSError:
                pass
            self._pidfile_owned = False

    # -- lifecycle ----------------------------------------------------

    def start(self) -> None:
        """Bring everything up (non-blocking; used by tests and run())."""
        config = self.config
        self._write_pidfile()
        self.store = Store(config.db)
        self.manager = JobManager(self.store, workers=config.workers,
                                  pool_jobs=config.pool,
                                  default_timeout=config.job_timeout)
        self.manager.start()
        self.server = ReproHTTPServer((config.host, config.port),
                                      self.store, self.manager)
        self._serve_thread = threading.Thread(
            target=self.server.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="http-listener", daemon=True)
        self._serve_thread.start()
        log.info(
            "listening on http://%s:%d (db=%s workers=%d pool=%d)",
            *self.address, config.db, config.workers, config.pool,
            extra={"structured": {
                "event": "started", "host": self.address[0],
                "port": self.address[1], "db": config.db,
                "workers": config.workers, "pool": config.pool,
                "pid": os.getpid()}})

    @property
    def address(self) -> tuple:
        """The bound (host, port) — port 0 resolves to the real one."""
        assert self.server is not None, "daemon not started"
        return self.server.server_address[:2]

    def stop(self, drain: Optional[bool] = None) -> None:
        """Graceful shutdown: HTTP first, then jobs, then the store."""
        if self.server is not None:
            self.server.shutdown()
            self.server.server_close()
            self.server = None
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=5.0)
            self._serve_thread = None
        if self.manager is not None:
            self.manager.shutdown(
                drain=True if drain is None else drain,
                grace=self.config.drain_grace)
            self.manager = None
        if self.store is not None:
            self.store.close()
            self.store = None
        self._remove_pidfile()
        log.info("stopped", extra={"structured": {"event": "stopped"}})

    def request_shutdown(self, signum: Optional[int] = None) -> None:
        """Signal-safe: flag the run() loop to exit (idempotent)."""
        if signum is not None:
            log.info("received signal %d, shutting down", signum,
                     extra={"structured": {"event": "signal",
                                           "signal": signum}})
        self._shutdown.set()

    def run(self) -> int:
        """Foreground main: start, wait for a signal, stop. Exit 0."""
        configure_logging(self.config.log_file)
        previous = {
            signal.SIGTERM: signal.signal(
                signal.SIGTERM,
                lambda signum, frame: self.request_shutdown(signum)),
            signal.SIGINT: signal.signal(
                signal.SIGINT,
                lambda signum, frame: self.request_shutdown(signum)),
        }
        try:
            self.start()
            self._shutdown.wait()
        finally:
            self.stop()
            for signum, handler in previous.items():
                signal.signal(signum, handler)
        return 0


def _pid_alive(pid: int) -> bool:
    """Is *pid* a live process we could signal?"""
    try:
        os.kill(pid, 0)
    except OSError as error:
        if error.errno == errno.ESRCH:
            return False
        return True  # EPERM: alive, owned by someone else
    return True
