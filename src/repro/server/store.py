"""Durable job + record store: SQLite behind the serve daemon.

One database file holds everything the daemon must not lose across
restarts: the job table (submission spec, state machine, progress,
checkpoint, error tracebacks), every streamed record row (as its
canonical JSON line — see :func:`repro.metrics.report.record_line`),
and the aggregated summary artifact of each completed job.

Concurrency model: the daemon is one process with a handful of threads
(HTTP handlers + job workers), so a single shared connection guarded
by one lock is simpler and faster than a connection pool; WAL mode
keeps readers unblocked during worker appends. Record appends are
batched per completed cell inside one transaction.

State machine::

    queued -> running -> completed
                      -> failed      (cell error, timeout, crash)
                      -> cancelled   (client cancel, daemon shutdown)
    queued -> cancelled              (cancelled before a worker took it)
    running -> queued                (recover(): orphaned by a dead
                                      daemon, resumed from checkpoint)

Checkpoint invariant: ``cells_flushed`` on a job counts the highest
*contiguously flushed* cell prefix, and it only advances inside the
same transaction that appends that cell's records — so at every
instant (including any crash point) the stored record stream is
byte-equal to the serial prefix for cells ``[0, cells_flushed)``.
``recover()`` runs once at daemon startup: jobs a previous process
left ``running`` are put back to ``queued`` with their checkpoint and
flushed records intact (the manager re-runs them *from* the
checkpoint), and already-``queued`` jobs are re-queued.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

#: Job states (the full vocabulary; nothing else ever enters the DB).
QUEUED = "queued"
RUNNING = "running"
COMPLETED = "completed"
FAILED = "failed"
CANCELLED = "cancelled"

STATES = (QUEUED, RUNNING, COMPLETED, FAILED, CANCELLED)

#: States a job can never leave.
TERMINAL = (COMPLETED, FAILED, CANCELLED)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    id            INTEGER PRIMARY KEY AUTOINCREMENT,
    spec          TEXT NOT NULL,
    state         TEXT NOT NULL,
    error         TEXT,
    cells_total   INTEGER NOT NULL DEFAULT 0,
    cells_done    INTEGER NOT NULL DEFAULT 0,
    cells_flushed INTEGER NOT NULL DEFAULT 0,
    resumes       INTEGER NOT NULL DEFAULT 0,
    created_at    REAL NOT NULL,
    started_at    REAL,
    finished_at   REAL
);
CREATE TABLE IF NOT EXISTS records (
    job_id INTEGER NOT NULL,
    seq    INTEGER NOT NULL,
    cell   INTEGER NOT NULL DEFAULT -1,
    line   TEXT NOT NULL,
    PRIMARY KEY (job_id, seq)
) WITHOUT ROWID;
CREATE TABLE IF NOT EXISTS summaries (
    job_id  INTEGER PRIMARY KEY,
    payload TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS jobs_state ON jobs (state);
"""

#: Columns added after PR 8 shipped: reopening an old database gets
#: them via ALTER TABLE (sqlite raises OperationalError when the
#: column already exists — that is the common, silent case).
_MIGRATIONS = (
    "ALTER TABLE jobs ADD COLUMN cells_flushed INTEGER NOT NULL "
    "DEFAULT 0",
    "ALTER TABLE jobs ADD COLUMN resumes INTEGER NOT NULL DEFAULT 0",
    "ALTER TABLE records ADD COLUMN cell INTEGER NOT NULL DEFAULT -1",
)


class StoreError(RuntimeError):
    """A store operation that violates the job state machine."""


class Store:
    """The daemon's durable state: jobs, record lines, summaries."""

    def __init__(self, path: str = ":memory:"):
        self.path = path
        if path != ":memory:":
            parent = os.path.dirname(os.path.abspath(path))
            os.makedirs(parent, exist_ok=True)
        # One connection shared across daemon threads; every access
        # takes self._lock, so check_same_thread would only add noise.
        self._db = sqlite3.connect(path, check_same_thread=False)
        self._db.row_factory = sqlite3.Row
        self._lock = threading.Lock()
        #: Chaos seam: called inside every append transaction (after
        #: the SQL, before commit). A hook that raises rolls the whole
        #: transaction back — records and checkpoint stay consistent.
        self.write_fault: Optional[
            Callable[[int, List[str]], None]] = None
        with self._lock:
            self._db.executescript(_SCHEMA)
            for migration in _MIGRATIONS:
                try:
                    self._db.execute(migration)
                except sqlite3.OperationalError:
                    pass  # column already present
            if path != ":memory:":
                self._db.execute("PRAGMA journal_mode=WAL")
            self._db.commit()

    def close(self) -> None:
        with self._lock:
            self._db.close()

    # -- job lifecycle ------------------------------------------------

    def create_job(self, spec: Dict[str, Any],
                   cells_total: int = 0) -> int:
        """File a new job in ``queued`` state; returns its id."""
        with self._lock:
            cursor = self._db.execute(
                "INSERT INTO jobs (spec, state, cells_total, created_at)"
                " VALUES (?, ?, ?, ?)",
                (json.dumps(spec, sort_keys=True), QUEUED, cells_total,
                 time.time()))
            self._db.commit()
            return int(cursor.lastrowid)

    def get_job(self, job_id: int) -> Optional[Dict[str, Any]]:
        with self._lock:
            row = self._db.execute(
                "SELECT j.*, (SELECT COUNT(*) FROM records r"
                "             WHERE r.job_id = j.id) AS record_count"
                " FROM jobs j WHERE j.id = ?", (job_id,)).fetchone()
        return self._job_dict(row) if row is not None else None

    def list_jobs(self, state: Optional[str] = None,
                  limit: int = 100) -> List[Dict[str, Any]]:
        """Job history, newest first, optionally filtered by state."""
        query = ("SELECT j.*, (SELECT COUNT(*) FROM records r"
                 "             WHERE r.job_id = j.id) AS record_count"
                 " FROM jobs j")
        args: tuple = ()
        if state is not None:
            query += " WHERE j.state = ?"
            args = (state,)
        query += " ORDER BY j.id DESC LIMIT ?"
        with self._lock:
            rows = self._db.execute(query, args + (limit,)).fetchall()
        return [self._job_dict(row) for row in rows]

    def set_running(self, job_id: int, cells_total: int) -> bool:
        """queued -> running (False if the job was cancelled first)."""
        with self._lock:
            cursor = self._db.execute(
                "UPDATE jobs SET state = ?, cells_total = ?, "
                "started_at = ? WHERE id = ? AND state = ?",
                (RUNNING, cells_total, time.time(), job_id, QUEUED))
            self._db.commit()
            return cursor.rowcount == 1

    def set_progress(self, job_id: int, cells_done: int) -> None:
        with self._lock:
            self._db.execute(
                "UPDATE jobs SET cells_done = ? WHERE id = ?",
                (cells_done, job_id))
            self._db.commit()

    def finish_job(self, job_id: int, state: str,
                   error: Optional[str] = None) -> None:
        """running|queued -> a terminal state (idempotent once there)."""
        if state not in TERMINAL:
            raise StoreError(f"not a terminal state: {state!r}")
        with self._lock:
            self._db.execute(
                "UPDATE jobs SET state = ?, error = ?, finished_at = ?"
                " WHERE id = ? AND state NOT IN (?, ?, ?)",
                (state, error, time.time(), job_id) + TERMINAL)
            self._db.commit()

    def recover(self) -> Dict[str, List[int]]:
        """Startup pass over a reopened database.

        Jobs a dead daemon left ``running`` are put back to ``queued``
        with their checkpoint intact — the manager resumes them from
        ``cells_flushed`` — and records beyond the checkpoint (none,
        normally: appends are atomic with the checkpoint; possible
        only for pre-checkpoint databases) are dropped so the stored
        prefix stays trustworthy. Idempotent: a second call finds no
        ``running`` jobs and merely re-lists the queue.

        Returns ``{"requeued": [...], "resumed": [...]}`` — *resumed*
        are the formerly-running ids (a subset of *requeued*).
        """
        with self._lock:
            resumed = [int(r["id"]) for r in self._db.execute(
                "SELECT id FROM jobs WHERE state = ? ORDER BY id",
                (RUNNING,))]
            for job_id in resumed:
                row = self._db.execute(
                    "SELECT cells_flushed FROM jobs WHERE id = ?",
                    (job_id,)).fetchone()
                flushed = int(row["cells_flushed"])
                self._db.execute(
                    "DELETE FROM records WHERE job_id = ?"
                    " AND (cell < 0 OR cell >= ?)", (job_id, flushed))
                self._db.execute(
                    "UPDATE jobs SET state = ?, error = NULL,"
                    " resumes = resumes + 1 WHERE id = ?",
                    (QUEUED, job_id))
            queued = [int(r["id"]) for r in self._db.execute(
                "SELECT id FROM jobs WHERE state = ? ORDER BY id",
                (QUEUED,))]
            self._db.commit()
        return {"requeued": queued, "resumed": resumed}

    # -- record streaming ---------------------------------------------

    def append_records(self, job_id: int, lines: List[str],
                       cell_index: int = -1,
                       cells_flushed: Optional[int] = None) -> int:
        """Append canonical record *lines*; returns the new count.

        Lines are already serialized by
        :func:`repro.metrics.report.record_line` — the store never
        re-encodes them, so fetches return the exact submitted bytes.
        *cell_index* tags the rows with the sweep cell that produced
        them (resume rebuilds per-cell rows from it), and
        *cells_flushed* advances the job's checkpoint **in the same
        transaction** — a crash between any two appends therefore
        leaves records and checkpoint mutually consistent. An empty
        *lines* with a checkpoint still advances it (a cell can
        legitimately produce zero rows).
        """
        with self._lock:
            try:
                row = self._db.execute(
                    "SELECT COALESCE(MAX(seq) + 1, 0) AS next"
                    " FROM records WHERE job_id = ?",
                    (job_id,)).fetchone()
                base = int(row["next"])
                self._db.executemany(
                    "INSERT INTO records (job_id, seq, cell, line)"
                    " VALUES (?, ?, ?, ?)",
                    [(job_id, base + i, cell_index, line)
                     for i, line in enumerate(lines)])
                if cells_flushed is not None:
                    self._db.execute(
                        "UPDATE jobs SET cells_flushed = ?"
                        " WHERE id = ?", (cells_flushed, job_id))
                if self.write_fault is not None:
                    self.write_fault(job_id, lines)
                self._db.commit()
            except BaseException:
                self._db.rollback()
                raise
            return base + len(lines)

    def fetch_records(self, job_id: int, offset: int = 0,
                      limit: Optional[int] = None) -> List[str]:
        """Record lines from *offset* on, in append (= cell) order."""
        query = ("SELECT line FROM records WHERE job_id = ? AND seq >= ?"
                 " ORDER BY seq")
        args: tuple = (job_id, offset)
        if limit is not None:
            query += " LIMIT ?"
            args += (limit,)
        with self._lock:
            return [r["line"] for r in self._db.execute(query, args)]

    def fetch_cell_records(self, job_id: int
                           ) -> List[Tuple[int, str]]:
        """``(cell_index, line)`` pairs in append order — the resume
        path's raw material for rebuilding flushed cells' rows."""
        with self._lock:
            return [(int(r["cell"]), r["line"]) for r in self._db.execute(
                "SELECT cell, line FROM records WHERE job_id = ?"
                " ORDER BY seq", (job_id,))]

    def record_count(self, job_id: int) -> int:
        with self._lock:
            row = self._db.execute(
                "SELECT COUNT(*) AS n FROM records WHERE job_id = ?",
                (job_id,)).fetchone()
            return int(row["n"])

    # -- summaries ----------------------------------------------------

    def set_summary(self, job_id: int, payload: Dict[str, Any]) -> None:
        with self._lock:
            self._db.execute(
                "INSERT OR REPLACE INTO summaries (job_id, payload)"
                " VALUES (?, ?)",
                (job_id, json.dumps(payload, sort_keys=True)))
            self._db.commit()

    def get_summary(self, job_id: int) -> Optional[Dict[str, Any]]:
        with self._lock:
            row = self._db.execute(
                "SELECT payload FROM summaries WHERE job_id = ?",
                (job_id,)).fetchone()
        return json.loads(row["payload"]) if row is not None else None

    # -- stats --------------------------------------------------------

    def job_counts(self) -> Dict[str, int]:
        """Jobs per state (zero-filled), for ``GET /v1/stats``."""
        with self._lock:
            rows = self._db.execute(
                "SELECT state, COUNT(*) AS n FROM jobs"
                " GROUP BY state").fetchall()
        counts = {state: 0 for state in STATES}
        counts.update({row["state"]: int(row["n"]) for row in rows})
        return counts

    # -- helpers ------------------------------------------------------

    @staticmethod
    def _job_dict(row: sqlite3.Row) -> Dict[str, Any]:
        out = {key: row[key] for key in row.keys()}
        out["id"] = int(out["id"])
        out["spec"] = json.loads(out["spec"])
        return out
