"""Job queue + worker orchestration for the serve daemon.

A *job* is one sweep-grid submission: ``{"scenario": ..., "seeds":
[...], "set": {axis: [values]}}`` — the HTTP twin of ``repro sweep``.
:func:`validate_submission` checks a decoded JSON payload against the
scenario registry's :class:`~repro.experiments.registry.Param` specs
(same defaults, same choices, same list shaping as the CLI) and
normalizes it into the spec stored with the job.

:class:`JobManager` owns a bounded team of worker threads that pull
queued job ids from the store, expand each spec through
:func:`repro.experiments.runner.expand_grid` and execute the cells on
the existing :class:`~repro.experiments.runner.SweepRunner` pool —
``jobs=K`` per submission, capped by the server's ``--pool``.

Determinism: cell results may complete out of order on the pool, but
records are appended to the store strictly in cell-index order (an
out-of-order result waits in a buffer until its prefix is complete),
each row serialized with :func:`repro.metrics.report.record_line` —
so the stored byte stream equals ``repro sweep --jsonl`` for the same
grid at any pool size, and ``GET .../records?offset=N`` resumption
never observes a gap or a reorder.

Robustness (the execution fault-tolerance tier — see
docs/ARCHITECTURE.md §10):

* A worker death fails only its cell (the runner's crash-isolated
  pool); each cell is retried up to the job's ``retries`` budget with
  deterministic backoff, and a cell that still fails surfaces its
  ``WorkerCrashError``/traceback in ``job.error``.
* Each flushed cell's records land in one store transaction together
  with the job's ``cells_flushed`` checkpoint; a transient store-write
  error (chaos ``FlakyWrites``, a busy database) is retried with
  backoff before it can fail the job.
* A job orphaned ``running`` by a dead daemon is resumed **from its
  checkpoint** on the next start: already-flushed cells' rows are
  rebuilt from the store (byte-equal by construction), only the
  remaining cells re-run, and the final record stream is identical to
  an uninterrupted run.

A per-job wall-clock timeout and client cancellation both ride the
runner's ``cancel`` callable, which terminates pool workers promptly.
"""

from __future__ import annotations

import json
import logging
import queue
import sqlite3
import threading
import time
import traceback
from typing import Any, Callable, Dict, List, Optional

from repro.experiments import registry, runner
from repro.experiments.registry import SubmissionError
from repro.metrics.report import record_line
from repro.server import store as jobstore
from repro.server.store import Store

log = logging.getLogger("repro.serve.jobs")

#: Top-level fields a submission may carry (the envelope schema).
_FIELDS = ("scenario", "seeds", "set", "jobs", "timeout", "retries")

#: Ceiling on the per-job cell retry budget.
MAX_RETRIES = 10

#: Transient store-write errors are retried this many times, with
#: _STORE_BACKOFF_S * 2^attempt sleeps between tries.
_STORE_WRITE_RETRIES = 3
_STORE_BACKOFF_S = 0.05


def validate_submission(payload: Any) -> Dict[str, Any]:
    """Check a decoded ``POST /v1/jobs`` body; return the job spec.

    Raises :class:`~repro.experiments.registry.SubmissionError` naming
    the offending field. The returned spec is fully normalized —
    defaults filled, numbers coerced — and is what the store persists,
    so job history always shows the *effective* grid.
    """
    if not isinstance(payload, dict):
        raise SubmissionError("(body)", "expected a JSON object")
    for key in payload:
        if key not in _FIELDS:
            raise SubmissionError(
                key, f"unknown field (expected: {', '.join(_FIELDS)})")

    name = payload.get("scenario")
    if not isinstance(name, str):
        raise SubmissionError("scenario", "required, must be a string")
    try:
        scenario = registry.get(name)
    except KeyError as error:
        raise SubmissionError("scenario", str(error.args[0])) from None

    seeds_spec = scenario.param("seeds")
    seeds = payload.get("seeds", seeds_spec.default)
    seeds = seeds_spec.validate(seeds, "seeds")

    axes: Dict[str, List[Any]] = {}
    set_block = payload.get("set", {})
    if not isinstance(set_block, dict):
        raise SubmissionError("set", "expected an object of "
                                     "param -> array of values")
    for axis, values in set_block.items():
        path = f"set.{axis}"
        try:
            param = scenario.param(axis)
        except KeyError:
            raise SubmissionError(
                path, f"unknown parameter of scenario {name!r}"
            ) from None
        if not param.sweep or param.name == "seeds":
            raise SubmissionError(path, "cannot be a sweep axis")
        if not isinstance(values, list) or not values:
            raise SubmissionError(path, "expected a non-empty array "
                                        "of axis values")
        checked = []
        for i, value in enumerate(values):
            # Mirror the CLI's --set shaping: for list-typed params a
            # scalar axis value means a singleton list per cell.
            if param.is_list and not isinstance(value, (list, tuple)):
                checked.append(param.validate([value],
                                              f"{path}[{i}]")[0])
            else:
                checked.append(param.validate(value, f"{path}[{i}]"))
        axes[axis] = checked

    jobs = payload.get("jobs", 1)
    if isinstance(jobs, bool) or not isinstance(jobs, int) or jobs < 1:
        raise SubmissionError("jobs", "expected an integer >= 1")

    timeout = payload.get("timeout")
    if timeout is not None:
        if isinstance(timeout, bool) or \
                not isinstance(timeout, (int, float)) or timeout <= 0:
            raise SubmissionError("timeout",
                                  "expected a positive number or null")
        timeout = float(timeout)

    retries = payload.get("retries", 0)
    if isinstance(retries, bool) or not isinstance(retries, int) \
            or not 0 <= retries <= MAX_RETRIES:
        raise SubmissionError(
            "retries", f"expected an integer in 0..{MAX_RETRIES}")

    return {"scenario": name, "seeds": seeds, "set": axes,
            "jobs": jobs, "timeout": timeout, "retries": retries}


def spec_cells(spec: Dict[str, Any]) -> List[runner.SweepCell]:
    """Expand a validated job spec into its sweep cells."""
    return runner.expand_grid([spec["scenario"]], spec["seeds"],
                              spec["set"])


class JobManager:
    """Background workers executing queued jobs from the store.

    *cell_hook* is the chaos-injection seam: a picklable callable
    passed through to every job's :class:`SweepRunner` (see
    :mod:`repro.chaos`). Production daemons leave it ``None``.
    """

    def __init__(self, store: Store, workers: int = 2,
                 pool_jobs: int = 1,
                 default_timeout: Optional[float] = None,
                 cell_hook: Optional[Callable] = None):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if pool_jobs < 1:
            raise ValueError("pool_jobs must be >= 1")
        self.store = store
        self.workers = workers
        self.pool_jobs = pool_jobs
        self.default_timeout = default_timeout
        self.cell_hook = cell_hook
        self._queue: "queue.Queue[int]" = queue.Queue()
        self._threads: List[threading.Thread] = []
        self._stop = threading.Event()
        self._cancels: Dict[int, threading.Event] = {}
        self._cancels_lock = threading.Lock()
        self._active: Dict[int, int] = {}  # job_id -> worker index
        self._counters = {"jobs_completed": 0, "jobs_failed": 0,
                          "jobs_cancelled": 0, "jobs_resumed": 0,
                          "cells_completed": 0, "cells_failed": 0,
                          "cells_retried": 0, "store_write_retries": 0}
        self._counters_lock = threading.Lock()

    # -- lifecycle ----------------------------------------------------

    def start(self) -> Dict[str, List[int]]:
        """Recover the store, re-queue survivors, start the workers."""
        recovered = self.store.recover()
        for job_id in recovered["requeued"]:
            self._queue.put(job_id)
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop, args=(index,),
                name=f"job-worker-{index}", daemon=True)
            thread.start()
            self._threads.append(thread)
        if recovered["requeued"]:
            log.info("recovered store: requeued=%s resumed=%s",
                     recovered["requeued"], recovered["resumed"])
        return recovered

    def shutdown(self, drain: bool = False, grace: float = 5.0) -> None:
        """Stop the workers; running jobs drain or are cancelled.

        With ``drain=True`` the manager waits up to *grace* seconds for
        in-flight jobs to finish on their own; jobs still running after
        that (or immediately, without drain) get their cancel event set
        and end ``cancelled``. Queued jobs stay ``queued`` in the store
        and run when the daemon next starts.
        """
        deadline = time.monotonic() + max(grace, 0.0)
        if drain:
            while self._active and time.monotonic() < deadline:
                time.sleep(0.02)
        self._stop.set()
        with self._cancels_lock:
            for event in self._cancels.values():
                event.set()
        for thread in self._threads:
            remaining = max(deadline - time.monotonic(), 0.5)
            thread.join(timeout=remaining)
        self._threads = []

    # -- client surface -----------------------------------------------

    def submit(self, payload: Any) -> Dict[str, Any]:
        """Validate *payload*, persist and enqueue; returns the job."""
        spec = validate_submission(payload)
        cells_total = len(spec_cells(spec))
        job_id = self.store.create_job(spec, cells_total=cells_total)
        self._queue.put(job_id)
        log.info("job %d queued: %s seeds=%s cells=%d", job_id,
                 spec["scenario"], spec["seeds"], cells_total)
        return self.store.get_job(job_id)

    def cancel(self, job_id: int) -> Optional[Dict[str, Any]]:
        """Request cancellation; returns the job (None if unknown).

        A queued job flips to ``cancelled`` immediately; a running one
        is signalled and its worker marks the terminal state as soon as
        the runner stops (pool workers are terminated, never orphaned).
        """
        job = self.store.get_job(job_id)
        if job is None:
            return None
        with self._cancels_lock:
            event = self._cancels.setdefault(job_id, threading.Event())
        event.set()
        if job["state"] == jobstore.QUEUED:
            self.store.finish_job(job_id, jobstore.CANCELLED,
                                  error="cancelled before start")
        log.info("job %d cancel requested (state was %s)", job_id,
                 job["state"])
        return self.store.get_job(job_id)

    def stats(self) -> Dict[str, Any]:
        with self._counters_lock:
            counters = dict(self._counters)
        counters["active_jobs"] = len(self._active)
        counters["queued_depth"] = self._queue.qsize()
        counters["workers"] = self.workers
        counters["pool_jobs_cap"] = self.pool_jobs
        return counters

    # -- worker internals ---------------------------------------------

    def _count(self, key: str, delta: int = 1) -> None:
        with self._counters_lock:
            self._counters[key] += delta

    def _cancel_event(self, job_id: int) -> threading.Event:
        with self._cancels_lock:
            return self._cancels.setdefault(job_id, threading.Event())

    def _worker_loop(self, index: int) -> None:
        while not self._stop.is_set():
            try:
                job_id = self._queue.get(timeout=0.1)
            except queue.Empty:
                continue
            self._active[job_id] = index
            try:
                self._run_job(job_id)
            except Exception:
                # Orchestration bug: surface it in the job status (the
                # ShardWorkerError convention) instead of killing the
                # worker thread and wedging the queue.
                self.store.finish_job(job_id, jobstore.FAILED,
                                      error=traceback.format_exc())
                self._count("jobs_failed")
                log.exception("job %d orchestration failed", job_id)
            finally:
                self._active.pop(job_id, None)
                with self._cancels_lock:
                    self._cancels.pop(job_id, None)

    def _append_with_retry(self, job_id: int, lines: List[str],
                           cell_index: int, cells_flushed: int) -> None:
        """One cell's atomic flush, with transient-error retries.

        A failed transaction rolled back cleanly (the store guarantees
        it), so retrying re-runs the identical append; errors past the
        budget propagate into the orchestration-failure path and the
        job's ``error``.
        """
        for attempt in range(_STORE_WRITE_RETRIES + 1):
            try:
                self.store.append_records(
                    job_id, lines, cell_index=cell_index,
                    cells_flushed=cells_flushed)
                return
            except (OSError, sqlite3.OperationalError):
                if attempt >= _STORE_WRITE_RETRIES:
                    raise
                self._count("store_write_retries")
                time.sleep(_STORE_BACKOFF_S * (2.0 ** attempt))

    def _recovered_results(self, job_id: int,
                           cells: List[runner.SweepCell],
                           start_index: int
                           ) -> List[runner.CellResult]:
        """Rebuild the flushed prefix's cell results from the store.

        The stored lines are the canonical serialization of the rows,
        so parsing them back yields value-equal rows — the resumed
        job's summary aggregates the same numbers an uninterrupted run
        would have.
        """
        rows_by_cell: Dict[int, List[Dict[str, Any]]] = {}
        for cell_index, line in self.store.fetch_cell_records(job_id):
            rows_by_cell.setdefault(cell_index, []).append(
                json.loads(line))
        return [runner.CellResult(cell=cell,
                                  rows=rows_by_cell.get(cell.index, []))
                for cell in cells[:start_index]]

    def _run_job(self, job_id: int) -> None:
        job = self.store.get_job(job_id)
        if job is None or job["state"] != jobstore.QUEUED:
            return  # cancelled (or recovered away) before we got here
        spec = job["spec"]
        cells = spec_cells(spec)
        # Resume point: cells below the checkpoint are already flushed
        # (stored prefix == serial prefix) and are never re-run.
        start_index = min(int(job.get("cells_flushed") or 0),
                          len(cells))
        if not self.store.set_running(job_id, cells_total=len(cells)):
            return  # lost the race with a cancel
        recovered: List[runner.CellResult] = []
        if job.get("resumes"):
            recovered = self._recovered_results(job_id, cells,
                                                start_index)
            self._count("jobs_resumed")
            log.info("job %d resuming from cell %d/%d", job_id,
                     start_index, len(cells))
        remaining = len(cells) - start_index
        started = time.monotonic()
        deadline: Optional[float] = None
        timeout = spec.get("timeout") or self.default_timeout
        if timeout is not None:
            deadline = started + timeout

        cancel_event = self._cancel_event(job_id)

        def should_stop() -> bool:
            if cancel_event.is_set() or self._stop.is_set():
                return True
            return deadline is not None and time.monotonic() > deadline

        sweep = runner.SweepRunner(
            cells[start_index:],
            jobs=min(spec["jobs"], self.pool_jobs),
            retries=spec.get("retries", 0),
            cell_hook=self.cell_hook)
        results: List[runner.CellResult] = []
        by_index: Dict[int, runner.CellResult] = {}
        next_index = start_index
        first_error: Optional[str] = None
        for result in sweep.stream(cancel=should_stop):
            results.append(result)
            by_index[result.cell.index] = result
            if result.retried:
                self._count("cells_retried", result.attempts - 1)
            if not result.ok and first_error is None:
                first_error = (f"cell {result.cell.label()} failed:\n"
                               f"{result.error}")
                self._count("cells_failed")
            elif result.ok:
                self._count("cells_completed")
            # Flush the completed prefix, in cell-index order — the
            # determinism contract for streamed records. Each cell is
            # one transaction that also advances the checkpoint.
            while next_index in by_index:
                done = by_index.pop(next_index)
                self._append_with_retry(
                    job_id,
                    [record_line(row) for row in done.rows],
                    cell_index=next_index,
                    cells_flushed=next_index + 1)
                next_index += 1
            self.store.set_progress(job_id,
                                    start_index + len(results))

        elapsed = time.monotonic() - started
        if cancel_event.is_set() or \
                (self._stop.is_set() and len(results) < remaining):
            self.store.finish_job(job_id, jobstore.CANCELLED,
                                  error=None)
            self._count("jobs_cancelled")
            log.info("job %d cancelled after %.2fs (%d/%d cells)",
                     job_id, elapsed, start_index + len(results),
                     len(cells))
            return
        if deadline is not None and len(results) < remaining and \
                time.monotonic() > deadline:
            self.store.finish_job(
                job_id, jobstore.FAILED,
                error=f"timeout: exceeded {timeout:.1f}s budget after "
                      f"{start_index + len(results)}/{len(cells)} "
                      f"cells")
            self._count("jobs_failed")
            log.warning("job %d timed out after %.2fs", job_id, elapsed)
            return

        report = runner.SweepReport(
            cells=sorted(recovered + results,
                         key=lambda r: r.cell.index))
        try:
            summary = report.as_payload()
            summary.pop("rows", None)  # rows live in the record store
            self.store.set_summary(job_id, summary)
        except Exception:
            log.exception("job %d summary aggregation failed", job_id)
        if first_error is not None:
            self.store.finish_job(job_id, jobstore.FAILED,
                                  error=first_error)
            self._count("jobs_failed")
            log.warning("job %d failed after %.2fs", job_id, elapsed)
            return
        self.store.finish_job(job_id, jobstore.COMPLETED)
        self._count("jobs_completed")
        log.info("job %d completed in %.2fs (%d cells, %d records)",
                 job_id, elapsed, len(cells),
                 self.store.record_count(job_id))
