"""Sim-as-a-service: the ``repro serve`` daemon.

The CLI runs one grid per process; this package runs the simulator as
a long-lived service in the shape of a production Python network
daemon — a persistent process, an HTTP/JSON query surface, durable
storage and background workers:

* :mod:`repro.server.store` — SQLite-backed job + record store; jobs
  and their streamed record rows survive daemon restarts and stay
  queryable as history.
* :mod:`repro.server.jobs` — the job queue and worker orchestration:
  submissions validated against the scenario registry expand through
  :func:`repro.experiments.runner.expand_grid` and execute on the
  existing :class:`~repro.experiments.runner.SweepRunner` pool, with a
  concurrency cap, per-job timeouts and cancellation.
* :mod:`repro.server.http` — the stdlib HTTP/JSON API
  (``GET /v1/scenarios``, ``POST /v1/jobs``, record streaming with
  offset resumption, ``GET /v1/stats``), documented in ``docs/API.md``.
* :mod:`repro.server.daemon` — process lifecycle: pidfile,
  signal-driven graceful shutdown, structured logs.
* :mod:`repro.server.docgen` — renders ``docs/API.md`` from the
  registry so the reference documentation cannot drift from the code
  (CI regenerates it and fails on diff).

Determinism contract: a job's stored records are byte-identical to the
same (scenario, seeds, ``--set``) grid run via ``repro sweep --jsonl``,
at any worker-pool size — both sides serialize each row with
:func:`repro.metrics.report.record_line` and emit rows in cell-index
order.
"""

from repro.server.daemon import Daemon, DaemonConfig  # noqa: F401
from repro.server.jobs import JobManager  # noqa: F401
from repro.server.store import Store  # noqa: F401
