"""Topology construction: the network builder, protocol factories and a
library of ready-made wirings (including the paper's NetFPGA demo)."""

from repro.topology.builder import BridgeFactory, Network, graph_of
from repro.topology.factories import (PROTOCOLS, arppath, controller,
                                      factory_for, learning, spb, stp,
                                      stp_scaled)
from repro.topology.library import (CHURN_TOPOLOGIES, DemoParams, FAST_LINK,
                                    HOST_LINK, LOOP_FREE_TOPOLOGIES,
                                    SLOW_LINK, churn_topology, fat_tree,
                                    grid, line, netfpga_demo, pair,
                                    random_graph, ring)
from repro.topology.loader import from_json, from_spec

__all__ = [
    "BridgeFactory", "Network", "graph_of", "from_json", "from_spec",
    "PROTOCOLS", "arppath", "controller", "factory_for", "learning",
    "spb", "stp", "stp_scaled",
    "CHURN_TOPOLOGIES", "DemoParams", "FAST_LINK", "HOST_LINK",
    "LOOP_FREE_TOPOLOGIES", "SLOW_LINK", "churn_topology", "fat_tree",
    "grid", "line", "netfpga_demo", "pair", "random_graph", "ring",
]
