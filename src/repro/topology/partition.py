"""Edge-cut partitioning of a wired :class:`~repro.topology.builder.Network`.

The sharded runtime (:mod:`repro.netsim.shard`) runs one simulation as
K cooperating shards, one engine each; this module decides — purely and
deterministically — which shard owns which node, which links cross the
cut, and how much *lookahead* those cut links buy the conservative
synchronization protocol.

The partition is a BFS band decomposition: bridges are laid out in
breadth-first order from the lexicographically first bridge (neighbors
visited in name order, disconnected components appended in name order)
and the sequence is split into K contiguous, near-equal chunks. On the
row-major grids the size sweep uses this yields row bands — the minimum
edge cut a social scientist would draw by hand — and on any topology it
is a pure function of the wiring, so every shard (and every test)
computes the identical plan without coordination.

Hosts are co-located with their access bridge, so host links are never
cut: only bridge-to-bridge fabric links cross shards, and every cut
link's propagation latency must be positive — the *minimum* cut latency
is the lookahead that lets shard A promise shard B "nothing from me
before ``t + lookahead``".
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.netsim.errors import TopologyError
from repro.switching.base import Bridge
from repro.topology.builder import Network


@dataclass(frozen=True)
class ShardPlan:
    """The deterministic owner map for one (network, shard_count) pair."""

    shard_count: int
    #: Every node name (bridges and hosts) -> owning shard id.
    node_shard: Dict[str, int]
    #: Names of links whose endpoints live on different shards, in the
    #: network's link-registration order.
    cut_links: Tuple[str, ...]
    #: Minimum propagation latency over the cut links — the null-message
    #: lookahead. ``inf`` when nothing is cut (every window is then
    #: unbounded and each shard free-runs to its target).
    lookahead: float
    #: shard id -> sorted tuple of shard ids it shares a cut link with.
    neighbor_map: Dict[int, Tuple[int, ...]] = field(default_factory=dict)

    def shard_of(self, name: str) -> int:
        shard = self.node_shard.get(name)
        if shard is not None:
            return shard
        # Population endpoints ("H0P#42") live wherever their
        # population does — resolved here so ownership checks work on
        # traffic-matrix endpoint names without a million map entries.
        pop, sep, _ = name.rpartition("#")
        if sep and pop in self.node_shard:
            return self.node_shard[pop]
        raise KeyError(name)

    def neighbors(self, shard_id: int) -> Tuple[int, ...]:
        """Shards this shard exchanges frames with (symmetric)."""
        return self.neighbor_map.get(shard_id, ())


def _bridge_bfs_order(net: Network) -> List[str]:
    """Bridges in deterministic BFS order (name-sorted tie-breaks)."""
    adjacency: Dict[str, List[str]] = {name: [] for name in net.bridges}
    for wire in net.links.values():
        node_a, node_b = wire.port_a.node, wire.port_b.node
        if isinstance(node_a, Bridge) and isinstance(node_b, Bridge):
            adjacency[node_a.name].append(node_b.name)
            adjacency[node_b.name].append(node_a.name)
    order: List[str] = []
    seen = set()
    for root in sorted(adjacency):
        if root in seen:
            continue
        seen.add(root)
        queue = deque([root])
        while queue:
            name = queue.popleft()
            order.append(name)
            for peer in sorted(adjacency[name]):
                if peer not in seen:
                    seen.add(peer)
                    queue.append(peer)
    return order


def partition_network(net: Network, shard_count: int) -> ShardPlan:
    """Split *net* into *shard_count* contiguous BFS bands.

    Deterministic: depends only on the wiring (node names, link
    registration order, latencies) and *shard_count*. Raises
    :class:`TopologyError` when the request cannot yield a sound plan —
    more shards than bridges, or a cut link with zero latency (no
    lookahead means the conservative protocol cannot advance).
    """
    if shard_count < 1:
        raise TopologyError(f"shard count must be >= 1: {shard_count}")
    # Families with network-level wiring (the controller's out-of-band
    # star) must finish it before ownership is decided.
    net.finalize_topology()
    order = _bridge_bfs_order(net)
    if shard_count > len(order):
        raise TopologyError(
            f"cannot split {len(order)} bridges into {shard_count} shards")

    node_shard: Dict[str, int] = {}
    base, extra = divmod(len(order), shard_count)
    start = 0
    for shard_id in range(shard_count):
        size = base + (1 if shard_id < extra else 0)
        for name in order[start:start + size]:
            node_shard[name] = shard_id
        start += size

    # Hosts and populations ride with their access bridge, so access
    # links are never cut (a population's endpoints all live — and stay
    # — on the shard that owns its bridge).
    for registry in (net.hosts, net.populations):
        for name, node in registry.items():
            peer = node.port.peer
            if peer is None:
                raise TopologyError(f"cannot shard detached host: {name}")
            node_shard[name] = node_shard[peer.node.name]

    # Out-of-band controllers live on shard 0; their star links to
    # bridges on other shards become ordinary cut links (latency rtt/2
    # is positive, so they contribute lookahead like any fabric link).
    for name in net.controllers:
        node_shard[name] = 0

    cut: List[str] = []
    lookahead = float("inf")
    pairs: Dict[int, set] = {}
    for link_name, wire in net.links.items():
        shard_a = node_shard[wire.port_a.node.name]
        shard_b = node_shard[wire.port_b.node.name]
        if shard_a == shard_b:
            continue
        if wire.latency <= 0.0:
            raise TopologyError(
                f"cut link {link_name!r} has zero latency: the plan has "
                f"no lookahead")
        cut.append(link_name)
        if wire.latency < lookahead:
            lookahead = wire.latency
        pairs.setdefault(shard_a, set()).add(shard_b)
        pairs.setdefault(shard_b, set()).add(shard_a)

    neighbor_map = {shard_id: tuple(sorted(peers))
                    for shard_id, peers in pairs.items()}
    return ShardPlan(shard_count=shard_count, node_shard=node_shard,
                     cut_links=tuple(cut), lookahead=lookahead,
                     neighbor_map=neighbor_map)
