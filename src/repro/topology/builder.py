"""The network builder: wire bridges, hosts and links by name.

A :class:`Network` owns one simulator plus the node and link registries;
topology functions (:mod:`repro.topology.library`) return fully wired
networks. The *bridge factory* chooses the protocol under test so the
same physical topology can run ARP-Path, STP, SPB or a plain learning
switch — exactly how the demo reuses one wiring for both protocols.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.frames.ipv4 import IPv4Address, ip_for_host
from repro.frames.mac import MAC, mac_for_bridge, mac_for_host
from repro.hosts.host import Host
from repro.hosts.population import HostPopulation
from repro.netsim.engine import Simulator
from repro.netsim.errors import AddressError, TopologyError
from repro.netsim.link import (DEFAULT_BANDWIDTH, DEFAULT_LATENCY,
                               DEFAULT_QUEUE_CAPACITY, Link)
from repro.netsim.node import Node
from repro.switching.base import Bridge

#: A bridge factory builds one bridge: (sim, name, mac) -> Bridge.
BridgeFactory = Callable[[Simulator, str, MAC], Bridge]

#: Sentinel: "keep the detached link's value" (None means infinite
#: bandwidth, so it cannot double as the default).
_KEEP: Any = object()


class Network:
    """A wired simulation: bridges, hosts and named links.

    Typical use::

        sim = Simulator(seed=1)
        net = Network(sim, bridge_factory=arppath_factory())
        net.add_bridges("B1", "B2")
        a = net.add_host("A")
        b = net.add_host("B")
        net.link("B1", "B2", latency=10e-6)
        net.attach("A", "B1")
        net.attach("B", "B2")
        net.start()
    """

    def __init__(self, sim: Simulator,
                 bridge_factory: Optional[BridgeFactory] = None):
        self.sim = sim
        self.bridge_factory = bridge_factory
        self.bridges: Dict[str, Bridge] = {}
        self.hosts: Dict[str, Host] = {}
        self.populations: Dict[str, HostPopulation] = {}
        #: Out-of-band control-plane nodes (the centralized controller):
        #: wired like any node but invisible to fabric oracles.
        self.controllers: Dict[str, Node] = {}
        self.links: Dict[str, Link] = {}
        self._bridge_index = 0
        self._host_index = 0
        self._used_macs: set = set()
        self._used_ips: set = set()
        #: (lo, hi) inclusive integer ranges claimed by populations —
        #: a million-endpoint block is two ints, not a million set
        #: entries.
        self._mac_ranges: List[Tuple[int, int]] = []
        self._ip_ranges: List[Tuple[int, int]] = []
        self._started = False
        self._finalized = False
        #: Called with each freshly registered Link. The sharded runtime
        #: (:mod:`repro.netsim.shard`) installs this to catch links
        #: created *after* partitioning — a host migrating to a bridge
        #: on another shard makes its new access link a cut link.
        self._link_hook: Optional[Callable[[Link], None]] = None

    # -- node creation -----------------------------------------------------

    def add_bridge(self, name: str,
                   factory: Optional[BridgeFactory] = None) -> Bridge:
        """Create a bridge named *name* using *factory* (or the default)."""
        if name in self.bridges or name in self.hosts:
            raise TopologyError(f"duplicate node name: {name}")
        build = factory or self.bridge_factory
        if build is None:
            raise TopologyError(
                "no bridge factory given (pass one to Network or add_bridge)")
        mac = mac_for_bridge(self._bridge_index)
        self._bridge_index += 1
        bridge = build(self.sim, name, mac)
        self._claim_mac(bridge.mac)
        self.bridges[name] = bridge
        return bridge

    def add_bridges(self, *names: str) -> List[Bridge]:
        """Create several bridges at once."""
        return [self.add_bridge(name) for name in names]

    def add_host(self, name: str, ip: Optional[IPv4Address] = None,
                 mac: Optional[MAC] = None, **host_kwargs) -> Host:
        """Create an end host with deterministic addressing."""
        if name in self.bridges or name in self.hosts \
                or name in self.populations:
            raise TopologyError(f"duplicate node name: {name}")
        if mac is None:
            mac = mac_for_host(self._host_index)
        if ip is None:
            ip = ip_for_host(self._host_index)
        self._host_index += 1
        self._claim_mac(mac)
        self._claim_ip(ip)
        host = Host(self.sim, name, mac=mac, ip=ip, **host_kwargs)
        self.hosts[name] = host
        return host

    def add_population(self, name: str, size: int,
                       **population_kwargs) -> HostPopulation:
        """Create a flyweight population of *size* endpoints.

        The population claims a contiguous block of *size* host
        indices, so its endpoints get the same deterministic MAC/IP
        addressing individual hosts would — and a later ``add_host``
        can never collide with them.
        """
        if name in self.bridges or name in self.hosts \
                or name in self.populations:
            raise TopologyError(f"duplicate node name: {name}")
        base_index = self._host_index
        pop = HostPopulation(self.sim, name, size, base_index,
                             **population_kwargs)
        mac_lo = mac_for_host(base_index).value
        mac_hi = mac_for_host(base_index + size - 1).value
        ip_lo = int(ip_for_host(base_index))
        ip_hi = ip_lo + size - 1
        for mac in self._used_macs:
            if mac_lo <= int(mac) <= mac_hi:
                raise AddressError(f"duplicate MAC address: {mac}")
        for ip in self._used_ips:
            if ip_lo <= int(ip) <= ip_hi:
                raise AddressError(f"duplicate IP address: {ip}")
        self._host_index += size
        self._mac_ranges.append((mac_lo, mac_hi))
        self._ip_ranges.append((ip_lo, ip_hi))
        self.populations[name] = pop
        return pop

    def add_out_of_band(self, node: Node) -> Node:
        """Register an out-of-band control-plane node (``out_of_band``
        must be set on its class). Created by a family's
        ``network_finalize`` hook, never by topology functions."""
        name = node.name
        if name in self.bridges or name in self.hosts \
                or name in self.populations or name in self.controllers:
            raise TopologyError(f"duplicate node name: {name}")
        if not node.out_of_band:
            raise TopologyError(
                f"node {name} is not flagged out_of_band")
        self.controllers[name] = node
        return node

    def _claim_mac(self, mac: MAC) -> None:
        value = int(mac)
        if mac in self._used_macs \
                or any(lo <= value <= hi for lo, hi in self._mac_ranges):
            raise AddressError(f"duplicate MAC address: {mac}")
        self._used_macs.add(mac)

    def _claim_ip(self, ip: IPv4Address) -> None:
        value = int(ip)
        if ip in self._used_ips \
                or any(lo <= value <= hi for lo, hi in self._ip_ranges):
            raise AddressError(f"duplicate IP address: {ip}")
        self._used_ips.add(ip)

    # -- wiring ------------------------------------------------------------

    def node(self, name: str) -> Node:
        """Look up a bridge, host, population or controller by name."""
        found = self.bridges.get(name) or self.hosts.get(name) \
            or self.populations.get(name) or self.controllers.get(name)
        if found is None:
            raise TopologyError(f"unknown node: {name}")
        return found

    def link(self, a: str, b: str, latency: float = DEFAULT_LATENCY,
             bandwidth: Optional[float] = DEFAULT_BANDWIDTH,
             queue_capacity: int = DEFAULT_QUEUE_CAPACITY,
             name: Optional[str] = None) -> Link:
        """Wire nodes *a* and *b* with a fresh port on each side.

        The link is registered under *name* (default ``"a-b"``) for
        failure injection and load accounting.
        """
        node_a = self.node(a)
        node_b = self.node(b)
        link_name = name or f"{a}-{b}"
        if link_name in self.links:
            raise TopologyError(f"duplicate link name: {link_name}")
        wire = Link(self.sim, node_a.free_port(), node_b.free_port(),
                    latency=latency, bandwidth=bandwidth,
                    queue_capacity=queue_capacity, name=link_name)
        self.links[link_name] = wire
        if self._link_hook is not None:
            self._link_hook(wire)
        return wire

    def attach(self, host_name: str, bridge_name: str,
               latency: float = DEFAULT_LATENCY,
               bandwidth: Optional[float] = DEFAULT_BANDWIDTH) -> Link:
        """Wire a host (or population) to a bridge (host links default
        to the same parameters as fabric links)."""
        if host_name not in self.hosts and host_name not in self.populations:
            raise TopologyError(f"unknown host: {host_name}")
        if bridge_name not in self.bridges:
            raise TopologyError(f"unknown bridge: {bridge_name}")
        return self.link(host_name, bridge_name, latency=latency,
                         bandwidth=bandwidth)

    def link_between(self, a: str, b: str) -> Link:
        """The registered link between nodes *a* and *b* (either order)."""
        wire = self.links.get(f"{a}-{b}") or self.links.get(f"{b}-{a}")
        if wire is None:
            raise TopologyError(f"no link between {a} and {b}")
        return wire

    # -- dynamics (churn primitives) ---------------------------------------

    def detach(self, host_name: str) -> str:
        """Unplug a host: carrier drops, the link is unregistered.

        Queued and in-flight frames on the host link are lost (it is a
        cable pull) and both ports become reattachable. Returns the
        name of the bridge the host was attached to.
        """
        host = self.host(host_name)
        wire = host.port.link
        if wire is None:
            raise TopologyError(f"host {host_name} is not attached")
        bridge_name = wire.other(host.port).node.name
        wire.take_down()
        del self.links[wire.name]
        wire.port_a.link = None
        wire.port_b.link = None
        wire.port_a.node.invalidate_port_cache()
        wire.port_b.node.invalidate_port_cache()
        return bridge_name

    def migrate_host(self, host_name: str, bridge_name: str,
                     latency: Optional[float] = None,
                     bandwidth: Optional[float] = _KEEP,
                     announce: bool = True) -> Link:
        """Move a host to another edge bridge (detach + reattach).

        The new access link keeps the old one's latency and bandwidth
        unless overridden — the host moved, its NIC didn't. With
        *announce* (the default on a started network) the host sends a
        gratuitous ARP right after reattaching — what a migrating VM
        does — so the fabric re-learns its location instead of waiting
        for stale paths to fail.
        """
        self.bridge(bridge_name)  # validate before detaching anything
        old = self.host(host_name).port.link
        if old is not None:
            if latency is None:
                latency = old.latency
            if bandwidth is _KEEP:
                bandwidth = old.bandwidth
        if latency is None:
            latency = DEFAULT_LATENCY
        if bandwidth is _KEEP:
            bandwidth = DEFAULT_BANDWIDTH
        self.detach(host_name)
        wire = self.attach(host_name, bridge_name, latency=latency,
                           bandwidth=bandwidth)
        host = self.host(host_name)
        if announce and self._started and not host.shard_ghost:
            self.sim.call_soon(host.gratuitous_arp)
        return wire

    def crash_bridge(self, name: str) -> List[str]:
        """Power-fail a bridge: every attached link loses carrier and
        the bridge's periodic processes stop.

        Dynamic state is wiped at :meth:`restart_bridge` time (the
        power cycle), not here — a dead bridge's memory is simply
        unreachable. Returns the names of the links taken down, for a
        matching restart.
        """
        bridge = self.bridge(name)
        affected: List[str] = []
        for link_name, wire in self.links.items():
            if wire.up and (wire.port_a.node is bridge
                            or wire.port_b.node is bridge):
                affected.append(link_name)
        for link_name in affected:
            self.links[link_name].take_down()
        if not bridge.shard_ghost:
            bridge.stop()
        return affected

    def restart_bridge(self, name: str,
                       links: Optional[Iterable[str]] = None) -> None:
        """Power-cycle recovery: wipe dynamic state, restore carrier on
        *links* (default: every still-registered link of the bridge),
        and start the bridge's control plane afresh."""
        bridge = self.bridge(name)
        if not bridge.shard_ghost:
            bridge.stop()  # idempotent; guards a start without a crash
            bridge.reset_state()
        if links is None:
            links = [link_name for link_name, wire in self.links.items()
                     if wire.port_a.node is bridge
                     or wire.port_b.node is bridge]
        for link_name in links:
            wire = self.links.get(link_name)
            if wire is not None:
                wire.bring_up()
        if not bridge.shard_ghost:
            bridge.start()

    def mark_static_roles(self) -> int:
        """Statically classify bridge ports from the wiring (NetFPGA-style).

        Every bridge that supports static roles (``mark_host_port`` /
        ``mark_bridge_port``) gets its ports classified from ground
        truth: ports wired to hosts are host ports, ports wired to
        bridges are bridge ports. Used to run ARP-Path with hellos
        disabled, exactly like the NetFPGA port configuration.
        Returns the number of ports marked.
        """
        marked = 0
        for wire in self.links.values():
            for port, peer in ((wire.port_a, wire.port_b),
                               (wire.port_b, wire.port_a)):
                node = port.node
                if isinstance(peer.node, Bridge):
                    mark = getattr(node, "mark_bridge_port", None)
                else:
                    mark = getattr(node, "mark_host_port", None)
                if isinstance(node, Bridge) and mark is not None:
                    mark(port)
                    marked += 1
        return marked

    # -- lifecycle -----------------------------------------------------------

    def finalize_topology(self) -> None:
        """Run the bridge family's ``network_finalize`` hook (idempotent).

        Families that need network-level wiring beyond per-bridge
        construction — the controller family creates its out-of-band
        node and star links here — attach the hook to their factory
        closure. Called automatically from :meth:`start` and from
        :func:`repro.topology.partition.partition_network`, so both
        single-engine and sharded paths see the finished topology.
        """
        if self._finalized:
            return
        self._finalized = True
        hook = getattr(self.bridge_factory, "network_finalize", None)
        if hook is not None:
            hook(self)

    def start(self) -> None:
        """Start every node (idempotent); call after wiring is complete."""
        self.finalize_topology()
        if self._started:
            return
        self._started = True
        # Shard ghosts (replica nodes owned by another shard) are wired
        # for topology bookkeeping but never started: their control
        # planes run on the owning shard and reach us over the wire.
        for bridge in self.bridges.values():
            if not bridge.shard_ghost:
                bridge.start()
        for host in self.hosts.values():
            if not host.shard_ghost:
                host.start()
        for pop in self.populations.values():
            if not pop.shard_ghost:
                pop.start()
        for controller in self.controllers.values():
            if not controller.shard_ghost:
                controller.start()

    def run(self, duration: float) -> None:
        """Start (if needed) and advance the simulation by *duration*."""
        self.start()
        self.sim.run_for(duration)

    def announce_hosts(self, spacing: float = 0.0,
                       start: float = 0.0) -> int:
        """File a gratuitous ARP from every host as one scheduling batch.

        The bulk-attachment path for size sweeps: when hundreds of
        hosts join a fabric at once, scheduling each announcement
        individually costs n O(log q) heap pushes;
        :meth:`~repro.netsim.engine.Simulator.schedule_bulk` appends
        the whole batch and heapifies once. Hosts announce in name
        order, *spacing* seconds apart from *start* seconds from now.
        Returns the number of announcements scheduled.
        """
        self.start()
        # Ghosts are filtered *after* enumerate so every host keeps the
        # announcement offset it would have in a single-process run.
        specs = [(start + index * spacing, host.gratuitous_arp)
                 for index, (_, host) in enumerate(sorted(self.hosts.items()))
                 if not host.shard_ghost]
        self.sim.schedule_bulk(specs)
        return len(specs)

    # -- queries ---------------------------------------------------------

    def host(self, name: str) -> Host:
        if name not in self.hosts:
            raise TopologyError(f"unknown host: {name}")
        return self.hosts[name]

    def bridge(self, name: str) -> Bridge:
        if name not in self.bridges:
            raise TopologyError(f"unknown bridge: {name}")
        return self.bridges[name]

    def population(self, name: str) -> HostPopulation:
        if name not in self.populations:
            raise TopologyError(f"unknown population: {name}")
        return self.populations[name]

    def endpoint(self, name: str):
        """A traffic endpoint by name: a :class:`Host`, or a population
        endpoint handle for names like ``"H0P#42"``."""
        host = self.hosts.get(name)
        if host is not None:
            return host
        pop_name, sep, index = name.rpartition("#")
        if sep and pop_name in self.populations and index.isdigit():
            try:
                return self.populations[pop_name].endpoint(int(index))
            except IndexError as exc:
                raise TopologyError(str(exc)) from exc
        raise TopologyError(f"unknown endpoint: {name}")

    def endpoint_count(self) -> int:
        """Simulated endpoints: hosts plus population members."""
        return len(self.hosts) + sum(pop.size
                                     for pop in self.populations.values())

    def bridge_for_host(self, host_name: str) -> Bridge:
        """The bridge the named host is attached to."""
        host = self.host(host_name)
        peer = host.port.peer
        if peer is None:
            raise TopologyError(f"host {host_name} is not attached")
        node = peer.node
        if not isinstance(node, Bridge):
            raise TopologyError(f"host {host_name} is not attached to a bridge")
        return node

    def fabric_links(self) -> List[Link]:
        """Links whose both endpoints are bridges (no host links)."""
        return [wire for wire in self.links.values()
                if isinstance(wire.port_a.node, Bridge)
                and isinstance(wire.port_b.node, Bridge)]

    def edges(self) -> List[Tuple[str, str, Link]]:
        """(node_a, node_b, link) for every registered link."""
        return [(wire.port_a.node.name, wire.port_b.node.name, wire)
                for wire in self.links.values()]

    def __repr__(self) -> str:
        extra = (f" populations={len(self.populations)}"
                 if self.populations else "")
        return (f"<Network bridges={len(self.bridges)} "
                f"hosts={len(self.hosts)}{extra} links={len(self.links)}>")


def graph_of(net: Network, fabric_only: bool = False,
             weight: str = "latency"):
    """The network as a :mod:`networkx` graph (latency edge weights).

    Used by the path-stretch oracle: Dijkstra over this graph gives the
    true minimum-latency path ARP-Path is expected to find.
    """
    import networkx as nx

    graph = nx.Graph()
    for name_a, name_b, wire in net.edges():
        if fabric_only and (name_a in net.hosts or name_b in net.hosts):
            continue
        if name_a in net.controllers or name_b in net.controllers:
            continue  # out-of-band star links carry no fabric traffic
        if not wire.up:
            continue
        graph.add_edge(name_a, name_b, latency=wire.latency, link=wire.name)
    return graph
