"""Bridge factories: one per protocol family under test.

A factory fixes the protocol and its configuration; the topology
functions take a factory so the same wiring can run every protocol —
how the demo reuses one physical setup for both ARP-Path and STP.

The authoritative registry lives in :mod:`repro.switching.base`: each
family package registers a :class:`~repro.switching.base.BridgeFamily`
descriptor at import, and everything here — the named convenience
builders, the ``PROTOCOLS`` mapping, :func:`factory_for` — is a thin
view over it. Adding a family means registering a descriptor in its
own package; no edit here is needed.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.config import ArpPathConfig, DEFAULT_CONFIG
from repro.stp.bridge import StpTimers
from repro.switching import base
from repro.topology.builder import BridgeFactory


def arppath(config: ArpPathConfig = DEFAULT_CONFIG) -> BridgeFactory:
    """A factory producing ARP-Path bridges with *config*."""
    return base.family("arppath").factory(config)


def stp(timers: StpTimers = StpTimers(),
        priority: Optional[int] = None) -> BridgeFactory:
    """A factory producing 802.1D bridges.

    With the default *priority* of None every bridge uses 0x8000 and the
    lowest MAC wins root election (bridge creation order), exactly like
    an unconfigured ``bridge_utils`` deployment.
    """
    return base.family("stp").factory(timers=timers, priority=priority)


def stp_scaled(factor: float) -> BridgeFactory:
    """STP with all timers scaled by *factor* (e.g. 0.1 for 10x faster)."""
    return stp(timers=StpTimers().scaled(factor))


def spb(**kwargs) -> BridgeFactory:
    """A factory producing link-state shortest-path bridges."""
    return base.family("spb").factory(**kwargs)


def learning() -> BridgeFactory:
    """A factory producing plain learning switches (loop-unsafe)."""
    return base.family("learning").factory()


def controller(**kwargs) -> BridgeFactory:
    """A factory producing centrally managed (SDN) bridges."""
    return base.family("controller").factory(**kwargs)


class _ProtocolView(Dict[str, object]):
    """``PROTOCOLS`` compatibility view over the family registry.

    Looks and iterates like the old hand-written dict (name →
    factory-builder) but always reflects the live registry.
    """

    def _refresh(self) -> None:
        for fam in base.all_families():
            dict.__setitem__(self, fam.name, fam.factory)

    def __getitem__(self, name):  # type: ignore[override]
        self._refresh()
        return dict.__getitem__(self, name)

    def __iter__(self):
        self._refresh()
        return dict.__iter__(self)

    def __len__(self) -> int:
        self._refresh()
        return dict.__len__(self)

    def __contains__(self, name) -> bool:  # type: ignore[override]
        self._refresh()
        return dict.__contains__(self, name)


#: Name → factory-builder registry used by experiments and benches.
#: Derived from :func:`repro.switching.base.all_families`.
PROTOCOLS = _ProtocolView()


def factory_for(protocol: str, **kwargs) -> BridgeFactory:
    """Look up a protocol family by name and build its factory."""
    try:
        fam = base.family(protocol)
    except KeyError:
        known = ", ".join(sorted(base.family_names()))
        raise ValueError(f"unknown protocol {protocol!r} (known: {known})")
    return fam.factory(**kwargs)
