"""Bridge factories: one per protocol under test.

A factory fixes the protocol and its configuration; the topology
functions take a factory so the same wiring can run every protocol —
how the demo reuses one physical setup for both ARP-Path and STP.
"""

from __future__ import annotations

from typing import Optional

from repro.core.bridge import ArpPathBridge
from repro.core.config import ArpPathConfig, DEFAULT_CONFIG
from repro.frames.mac import MAC
from repro.netsim.engine import Simulator
from repro.spb.bridge import SpbBridge
from repro.stp.bridge import StpBridge, StpTimers
from repro.switching.learning import LearningSwitch
from repro.topology.builder import BridgeFactory


def arppath(config: ArpPathConfig = DEFAULT_CONFIG) -> BridgeFactory:
    """A factory producing ARP-Path bridges with *config*."""

    def build(sim: Simulator, name: str, mac: MAC) -> ArpPathBridge:
        return ArpPathBridge(sim, name, mac, config=config)

    return build


def stp(timers: StpTimers = StpTimers(),
        priority: Optional[int] = None) -> BridgeFactory:
    """A factory producing 802.1D bridges.

    With the default *priority* of None every bridge uses 0x8000 and the
    lowest MAC wins root election (bridge creation order), exactly like
    an unconfigured ``bridge_utils`` deployment.
    """

    def build(sim: Simulator, name: str, mac: MAC) -> StpBridge:
        kwargs = {} if priority is None else {"priority": priority}
        return StpBridge(sim, name, mac, timers=timers, **kwargs)

    return build


def stp_scaled(factor: float) -> BridgeFactory:
    """STP with all timers scaled by *factor* (e.g. 0.1 for 10x faster)."""
    return stp(timers=StpTimers().scaled(factor))


def spb(**kwargs) -> BridgeFactory:
    """A factory producing link-state shortest-path bridges."""

    def build(sim: Simulator, name: str, mac: MAC) -> SpbBridge:
        return SpbBridge(sim, name, mac, **kwargs)

    return build


def learning() -> BridgeFactory:
    """A factory producing plain learning switches (loop-unsafe)."""

    def build(sim: Simulator, name: str, mac: MAC) -> LearningSwitch:
        return LearningSwitch(sim, name, mac)

    return build


#: Name → factory-builder registry used by experiments and benches.
PROTOCOLS = {
    "arppath": arppath,
    "stp": stp,
    "spb": spb,
    "learning": learning,
}


def factory_for(protocol: str, **kwargs) -> BridgeFactory:
    """Look up a protocol by name and build its factory."""
    try:
        builder = PROTOCOLS[protocol]
    except KeyError:
        known = ", ".join(sorted(PROTOCOLS))
        raise ValueError(f"unknown protocol {protocol!r} (known: {known})")
    return builder(**kwargs)
