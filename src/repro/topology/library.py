"""A library of ready-made topologies.

``netfpga_demo`` models the paper's Figure 2/3 wiring; the others are
the structured and random graphs the property and ablation experiments
sweep over. Every function takes a :data:`BridgeFactory` so one wiring
can run any protocol.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.netsim.engine import Simulator
from repro.netsim.errors import TopologyError
from repro.netsim.link import DEFAULT_BANDWIDTH, DEFAULT_LATENCY
from repro.topology.builder import BridgeFactory, Network

#: Default fast-link latency (10 µs, a short gigabit cable).
FAST_LINK = 10e-6
#: Default slow-link latency used for the demo's "long" cross cable.
SLOW_LINK = 500e-6
#: Host attachment latency (1 µs, a patch cable).
HOST_LINK = 1e-6


@dataclass(frozen=True)
class DemoParams:
    """Parameters of the NetFPGA demo topology (Figure 2).

    Four bridges in a ring with one cross link; hosts A and B sit on
    opposite corners. The cross link is *cheap for STP* (same bandwidth,
    so same 802.1D path cost) but *slow in latency* — the configuration
    where a latency-blind tree picks a worse path than the ARP race.
    """

    ring_latency: float = FAST_LINK
    cross_latency: float = SLOW_LINK
    host_latency: float = HOST_LINK
    bandwidth: float = DEFAULT_BANDWIDTH


def netfpga_demo(sim: Simulator, factory: BridgeFactory,
                 params: DemoParams = DemoParams()) -> Network:
    """The 4-NetFPGA demo wiring: ring NF1-NF2-NF3-NF4 plus cross NF1-NF3.

    Host A attaches to NF1 and host B to NF3. The direct NF1-NF3 cross
    cable is one hop (best by 802.1D cost) but high latency; the
    two-hop ring paths are low latency. STP sends A→B over the cross;
    ARP-Path races and picks a ring path.
    """
    net = Network(sim, bridge_factory=factory)
    net.add_bridges("NF1", "NF2", "NF3", "NF4")
    net.add_host("A")
    net.add_host("B")
    net.link("NF1", "NF2", latency=params.ring_latency,
             bandwidth=params.bandwidth)
    net.link("NF2", "NF3", latency=params.ring_latency,
             bandwidth=params.bandwidth)
    net.link("NF3", "NF4", latency=params.ring_latency,
             bandwidth=params.bandwidth)
    net.link("NF4", "NF1", latency=params.ring_latency,
             bandwidth=params.bandwidth)
    net.link("NF1", "NF3", latency=params.cross_latency,
             bandwidth=params.bandwidth)
    net.attach("A", "NF1", latency=params.host_latency,
               bandwidth=params.bandwidth)
    net.attach("B", "NF3", latency=params.host_latency,
               bandwidth=params.bandwidth)
    return net


def line(sim: Simulator, factory: BridgeFactory, n: int,
         latency: float = FAST_LINK,
         hosts_at_ends: bool = True) -> Network:
    """*n* bridges in a line; optionally a host at each end."""
    if n < 1:
        raise TopologyError(f"need at least one bridge, got {n}")
    net = Network(sim, bridge_factory=factory)
    names = [f"B{i}" for i in range(n)]
    for name in names:
        net.add_bridge(name)
    for left, right in zip(names, names[1:]):
        net.link(left, right, latency=latency)
    if hosts_at_ends:
        net.add_host("H0")
        net.attach("H0", names[0], latency=HOST_LINK)
        net.add_host("H1")
        net.attach("H1", names[-1], latency=HOST_LINK)
    return net


def ring(sim: Simulator, factory: BridgeFactory, n: int,
         latency: float = FAST_LINK, hosts_per_bridge: int = 1,
         latencies: Optional[Sequence[float]] = None) -> Network:
    """*n* bridges in a ring, each with *hosts_per_bridge* hosts.

    *latencies* overrides the per-segment latency (length must be *n*).
    """
    if n < 3:
        raise TopologyError(f"a ring needs at least 3 bridges, got {n}")
    if latencies is not None and len(latencies) != n:
        raise TopologyError(
            f"need {n} latencies, got {len(latencies)}")
    net = Network(sim, bridge_factory=factory)
    names = [f"B{i}" for i in range(n)]
    for name in names:
        net.add_bridge(name)
    for i in range(n):
        seg_latency = latencies[i] if latencies is not None else latency
        net.link(names[i], names[(i + 1) % n], latency=seg_latency)
    host_index = 0
    for name in names:
        for _ in range(hosts_per_bridge):
            host = f"H{host_index}"
            host_index += 1
            net.add_host(host)
            net.attach(host, name, latency=HOST_LINK)
    return net


def grid(sim: Simulator, factory: BridgeFactory, rows: int, cols: int,
         latency: float = FAST_LINK, hosts_at_corners: bool = True,
         latency_jitter: float = 0.0,
         seed: int = 0) -> Network:
    """A rows×cols mesh of bridges (rich in redundant paths).

    *latency_jitter* adds a deterministic uniform extra latency in
    ``[0, jitter)`` per link so the minimum-latency path is unique.
    """
    if rows < 1 or cols < 1:
        raise TopologyError(f"bad grid dimensions {rows}x{cols}")
    rng = random.Random(seed)
    net = Network(sim, bridge_factory=factory)
    for r in range(rows):
        for c in range(cols):
            net.add_bridge(f"B{r}_{c}")

    def jittered() -> float:
        if latency_jitter:
            return latency + rng.uniform(0, latency_jitter)
        return latency

    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                net.link(f"B{r}_{c}", f"B{r}_{c + 1}", latency=jittered())
            if r + 1 < rows:
                net.link(f"B{r}_{c}", f"B{r + 1}_{c}", latency=jittered())
    if hosts_at_corners:
        corners = [(0, 0), (0, cols - 1), (rows - 1, 0), (rows - 1, cols - 1)]
        seen = []
        for index, (r, c) in enumerate(corners):
            if (r, c) in seen:
                continue
            seen.append((r, c))
            host = f"H{index}"
            net.add_host(host)
            net.attach(host, f"B{r}_{c}", latency=HOST_LINK)
    return net


def fat_tree(sim: Simulator, factory: BridgeFactory, pods: int = 4,
             core_latency: float = FAST_LINK,
             edge_latency: float = FAST_LINK,
             hosts_per_edge: int = 2,
             latency_jitter: float = 0.1,
             seed: int = 0) -> Network:
    """A two-layer leaf/spine fabric (*pods* leaves, pods//2 spines).

    The load-distribution experiment (paper §2.2 "path diversity") runs
    many flows over this fabric: ARP-Path spreads them over the spines
    while a spanning tree funnels everything through one.

    *latency_jitter* adds a deterministic per-link latency variation of
    up to ``jitter x core_latency`` — modelling the cable-length and
    PHY variance real hardware always has, which is what makes each
    source/destination pair's ARP race land on its own fastest spine.
    """
    if pods < 2:
        raise TopologyError(f"need at least 2 pods, got {pods}")
    spines = max(pods // 2, 1)
    rng = random.Random(seed)
    net = Network(sim, bridge_factory=factory)
    spine_names = [f"S{i}" for i in range(spines)]
    leaf_names = [f"L{i}" for i in range(pods)]
    for name in spine_names + leaf_names:
        net.add_bridge(name)
    for leaf in leaf_names:
        for spine in spine_names:
            jitter = rng.uniform(0, latency_jitter * core_latency)
            net.link(leaf, spine, latency=core_latency + jitter)
    host_index = 0
    for leaf in leaf_names:
        for _ in range(hosts_per_edge):
            host = f"H{host_index}"
            host_index += 1
            net.add_host(host)
            net.attach(host, leaf, latency=edge_latency)
    return net


def random_graph(sim: Simulator, factory: BridgeFactory, n: int,
                 extra_edge_prob: float = 0.3, seed: int = 0,
                 latency_range: Tuple[float, float] = (5e-6, 200e-6),
                 hosts: int = 4) -> Network:
    """A connected random graph with heterogeneous link latencies.

    A random spanning tree guarantees connectivity; every remaining pair
    gains an edge with probability *extra_edge_prob*. Latencies are
    drawn uniformly from *latency_range* — the heterogeneity that makes
    minimum-latency path selection non-trivial.
    """
    if n < 2:
        raise TopologyError(f"need at least 2 bridges, got {n}")
    if hosts > n:
        raise TopologyError(f"cannot place {hosts} hosts on {n} bridges")
    rng = random.Random(seed)
    net = Network(sim, bridge_factory=factory)
    names = [f"B{i}" for i in range(n)]
    for name in names:
        net.add_bridge(name)

    def draw_latency() -> float:
        return rng.uniform(*latency_range)

    # Random spanning tree: attach each new node to a random earlier one.
    for i in range(1, n):
        j = rng.randrange(i)
        net.link(names[i], names[j], latency=draw_latency())
    for i, j in itertools.combinations(range(n), 2):
        pair = f"B{i}-B{j}"
        reverse = f"B{j}-B{i}"
        if pair in net.links or reverse in net.links:
            continue
        if rng.random() < extra_edge_prob:
            net.link(names[i], names[j], latency=draw_latency())
    host_bridges = rng.sample(names, hosts)
    for index, bridge_name in enumerate(host_bridges):
        host = f"H{index}"
        net.add_host(host)
        net.attach(host, bridge_name, latency=HOST_LINK)
    return net


#: Named wirings the dynamic (churn) scenarios sweep over; each builds
#: a network and nominates a (source, sink) host pair for probe traffic.
CHURN_TOPOLOGIES = ("demo", "line", "ring", "grid")
#: The subset without redundant fabric paths — the only wirings a plain
#: learning switch survives (no loops, no broadcast storm).
LOOP_FREE_TOPOLOGIES = ("line",)


def churn_topology(sim: Simulator, factory: BridgeFactory, name: str,
                   seed: int = 0) -> Tuple[Network, str, str]:
    """Build the named churn wiring; returns ``(net, src_host, dst_host)``.

    The host pair sits at maximum separation so fabric churn between
    them is observable on a probe stream.
    """
    if name == "demo":
        return netfpga_demo(sim, factory), "A", "B"
    if name == "line":
        return line(sim, factory, 4), "H0", "H1"
    if name == "ring":
        return ring(sim, factory, 4), "H0", "H2"
    if name == "grid":
        return grid(sim, factory, 3, 3, latency_jitter=2e-6,
                    seed=seed), "H0", "H3"
    raise TopologyError(f"unknown churn topology {name!r} "
                        f"(have: {', '.join(CHURN_TOPOLOGIES)})")


#: Size-parameterised wirings the scale scenario sweeps over. ``line``
#: is the loop-free member — the only one a plain learning switch can
#: run without a broadcast storm.
SCALE_TOPOLOGIES = ("grid", "fat_tree", "random", "line")


def populate_access_ports(net: Network, endpoints_per_port: int,
                          latency: float = HOST_LINK) -> None:
    """Scale a wiring's endpoint count without changing its shape.

    For every existing host ``H`` (sorted, so the address allocation is
    deterministic) a flyweight population named ``f"{H}P"`` of
    ``endpoints_per_port - 1`` endpoints joins the same access bridge —
    the original host keeps carrying the probe traffic, the population
    carries the bulk. ``endpoints_per_port <= 1`` is a no-op, keeping
    every existing wiring byte-identical to before this axis existed.
    """
    if endpoints_per_port <= 1:
        return
    for host_name in sorted(net.hosts):
        peer = net.hosts[host_name].port.peer
        if peer is None:
            raise TopologyError(
                f"cannot populate detached host: {host_name}")
        net.add_population(f"{host_name}P", endpoints_per_port - 1)
        net.attach(f"{host_name}P", peer.node.name, latency=latency)


def scale_topology(sim: Simulator, factory: BridgeFactory, kind: str,
                   n: int, seed: int = 0,
                   endpoints_per_port: int = 1) -> Tuple[Network, str, str]:
    """Build the named wiring sized to roughly *n* bridges.

    Returns ``(net, src_host, dst_host)`` with the host pair at maximum
    separation, mirroring :func:`churn_topology`. *n* is a target: each
    family rounds to its nearest feasible shape (grids to rows x cols,
    fat trees to pods + pods//2 switches), so read the actual bridge
    count off the returned network. *endpoints_per_port* > 1 multiplies
    the endpoint count behind every access port with flyweight
    populations (:func:`populate_access_ports`) without adding bridges
    or links. Deterministic in (kind, n, seed, endpoints_per_port).
    """
    if n < 4:
        raise TopologyError(f"scale topologies start at 4 bridges, got {n}")
    if kind == "grid":
        rows = max(2, int(round(n ** 0.5)))
        cols = max(2, (n + rows - 1) // rows)
        net = grid(sim, factory, rows, cols, hosts_at_corners=True,
                   latency_jitter=2e-6, seed=seed)
        pair = ("H0", "H3")  # opposite corners (0,0) and (rows-1,cols-1)
    elif kind == "fat_tree":
        # pods leaves + pods//2 spines ~= n bridges, one host per leaf.
        pods = max(2, int(round(n * 2 / 3)))
        net = fat_tree(sim, factory, pods=pods, hosts_per_edge=1, seed=seed)
        pair = ("H0", f"H{pods - 1}")
    elif kind == "random":
        net = random_graph(sim, factory, n=n, seed=seed, hosts=4)
        pair = ("H0", "H1")
    elif kind == "line":
        net = line(sim, factory, n)
        pair = ("H0", "H1")
    else:
        raise TopologyError(f"unknown scale topology {kind!r} "
                            f"(have: {', '.join(SCALE_TOPOLOGIES)})")
    populate_access_ports(net, endpoints_per_port)
    return net, pair[0], pair[1]


def pair(sim: Simulator, factory: BridgeFactory,
         latency: float = FAST_LINK) -> Network:
    """The smallest interesting network: two bridges, two hosts."""
    net = Network(sim, bridge_factory=factory)
    net.add_bridges("B0", "B1")
    net.link("B0", "B1", latency=latency)
    net.add_host("H0")
    net.attach("H0", "B0", latency=HOST_LINK)
    net.add_host("H1")
    net.attach("H1", "B1", latency=HOST_LINK)
    return net
