"""Declarative topology loading (JSON/dict specs).

Lets users describe a network as data instead of code — the format a
lab would keep alongside its cabling plan::

    {
      "bridges": {"NF1": {}, "NF2": {"protocol": "stp"}},
      "hosts": ["A", "B"],
      "links": [
        {"a": "NF1", "b": "NF2", "latency_us": 10}
      ],
      "attach": [
        {"host": "A", "bridge": "NF1"},
        {"host": "B", "bridge": "NF2", "latency_us": 1}
      ],
      "static_roles": false
    }

``bridges`` may be a list (all use the default protocol) or a mapping
with per-bridge options (``protocol`` plus factory keyword arguments).
Latencies are given in microseconds and bandwidths in Gb/s — the units
humans use for lab cabling.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from repro.netsim.engine import Simulator
from repro.netsim.errors import TopologyError
from repro.topology.builder import BridgeFactory, Network
from repro.topology.factories import factory_for

_LINK_KEYS = {"a", "b", "latency_us", "bandwidth_gbps", "queue", "name"}
_ATTACH_KEYS = {"host", "bridge", "latency_us", "bandwidth_gbps"}


def _link_kwargs(entry: Dict[str, Any]) -> Dict[str, Any]:
    kwargs: Dict[str, Any] = {}
    if "latency_us" in entry:
        kwargs["latency"] = float(entry["latency_us"]) * 1e-6
    if "bandwidth_gbps" in entry:
        value = entry["bandwidth_gbps"]
        kwargs["bandwidth"] = None if value is None else float(value) * 1e9
    return kwargs


def from_spec(sim: Simulator, spec: Dict[str, Any],
              default_factory: Optional[BridgeFactory] = None,
              default_protocol: str = "arppath") -> Network:
    """Build a :class:`Network` from a topology description.

    Unknown keys raise :class:`TopologyError` — a typo in a cabling
    plan should fail loudly, not silently produce a different network.
    """
    known_top = {"bridges", "hosts", "links", "attach", "static_roles"}
    unknown = set(spec) - known_top
    if unknown:
        raise TopologyError(f"unknown topology keys: {sorted(unknown)}")

    factory = default_factory or factory_for(default_protocol)
    net = Network(sim, bridge_factory=factory)

    bridges = spec.get("bridges", {})
    if isinstance(bridges, list):
        bridges = {name: {} for name in bridges}
    for name, options in bridges.items():
        options = dict(options or {})
        protocol = options.pop("protocol", None)
        if protocol is not None:
            try:
                net.add_bridge(name,
                               factory=factory_for(protocol, **options))
            except TypeError as error:
                # A misspelled factory option surfaces as a TypeError
                # deep inside the factory; name the keys instead.
                raise TopologyError(
                    f"bridge {name}: unknown or invalid option(s) "
                    f"{sorted(options)}: {error}") from error
        elif options:
            raise TopologyError(
                f"bridge {name}: options {sorted(options)} need an "
                "explicit 'protocol'")
        else:
            net.add_bridge(name)

    for name in spec.get("hosts", []):
        if not isinstance(name, str):
            raise TopologyError(
                f"host entries must be plain names, got {name!r}")
        net.add_host(name)

    for entry in spec.get("links", []):
        unknown = set(entry) - _LINK_KEYS
        if unknown:
            raise TopologyError(
                f"link {entry.get('a')}-{entry.get('b')}: unknown keys "
                f"{sorted(unknown)}")
        missing = {"a", "b"} - set(entry)
        if missing:
            raise TopologyError(
                f"link entry missing key(s) {sorted(missing)}: {entry}")
        kwargs = _link_kwargs(entry)
        if "queue" in entry:
            kwargs["queue_capacity"] = int(entry["queue"])
        if "name" in entry:
            kwargs["name"] = entry["name"]
        net.link(entry["a"], entry["b"], **kwargs)

    for entry in spec.get("attach", []):
        unknown = set(entry) - _ATTACH_KEYS
        if unknown:
            raise TopologyError(
                f"attach {entry.get('host')}: unknown keys "
                f"{sorted(unknown)}")
        missing = {"host", "bridge"} - set(entry)
        if missing:
            raise TopologyError(
                f"attach entry missing key(s) {sorted(missing)}: {entry}")
        net.attach(entry["host"], entry["bridge"], **_link_kwargs(entry))

    if spec.get("static_roles"):
        net.mark_static_roles()
    return net


def from_json(sim: Simulator, path: str,
              default_factory: Optional[BridgeFactory] = None,
              default_protocol: str = "arppath") -> Network:
    """Load a topology spec from a JSON file.

    Malformed JSON and non-object top levels raise
    :class:`TopologyError` naming the file, so a broken cabling plan
    fails with a topology error rather than a bare parser traceback.
    """
    with open(path) as handle:
        try:
            spec = json.load(handle)
        except json.JSONDecodeError as error:
            raise TopologyError(f"{path}: invalid JSON: {error}") from error
    if not isinstance(spec, dict):
        raise TopologyError(
            f"{path}: topology spec must be a JSON object, "
            f"got {type(spec).__name__}")
    return from_spec(sim, spec, default_factory=default_factory,
                     default_protocol=default_protocol)
