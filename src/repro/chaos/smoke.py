"""Chaos smoke driver: ``python -m repro.chaos.smoke``.

The CI ``chaos-smoke`` job runs this end to end on a real checkout.
Four steps, each ending in the acceptance assertion (surviving records
byte-identical to the fault-free reference) or a named failure:

1. **Pool crash parity** — a seeded fault plan kills one pool worker
   and raises in another mid-sweep; with one retry the sweep must
   complete with byte-identical rows.
2. **Store write faults** — ``FlakyWrites`` fails append transactions
   under a running job; the manager's write retries must absorb them
   with no record loss or duplication.
3. **Daemon SIGKILL + resume** — a real ``repro serve`` process is
   SIGKILL'd mid-job; a restarted daemon must resume the job from its
   checkpoint and finish with records byte-identical to
   ``repro sweep --jsonl`` of the same grid.
4. **Shard stall watchdog** — a deliberately wedged shard mesh must
   abort with :class:`~repro.netsim.shard.ShardStallError` (carrying
   the per-shard progress snapshot) within the stall budget, not hang.

Exit status 0 means every step held.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List

from repro.chaos.faults import FlakyWrites, seeded_plan
from repro.chaos.harness import check_parity, run_lines, run_manager_job
from repro.experiments import registry, runner
from repro.netsim.shard import ShardStallError, run_sharded


class SmokeError(AssertionError):
    """A smoke step failed for a reason other than record parity."""


def _log(message: str) -> None:
    print(f"[chaos-smoke] {message}", flush=True)


# -- step 1: pool crash parity ------------------------------------------------

def step_pool_crash_parity() -> None:
    registry.load_all()
    cells = runner.expand_grid(
        ["proxy"], seeds=[0, 1, 2, 3],
        axes={"rows": [2], "cols": [2], "rounds": [1]})
    reference, _ = run_lines(cells)
    plan = seeded_plan(seed=7, cells_total=len(cells), kills=1, errors=1)
    chaos, report = run_lines(cells, jobs=2, retries=1, cell_hook=plan)
    if not report.ok:
        raise SmokeError(f"chaos sweep failed cells: "
                         f"{[r.cell.label() for r in report.errors]}")
    if not report.retried:
        raise SmokeError(f"fault plan {plan!r} injected nothing")
    check_parity(reference, chaos, "pool crash parity")
    _log(f"pool crash parity ok ({len(cells)} cells, "
         f"{len(report.retried)} retried, plan {plan!r})")


# -- step 2: store write faults -----------------------------------------------

def step_store_write_faults() -> None:
    from repro.metrics.report import record_line
    from repro.server.store import Store

    registry.load_all()
    spec = {"scenario": "proxy", "seeds": [0, 1, 2],
            "set": {"rows": [2], "cols": [2], "rounds": [1]},
            "jobs": 1}
    cells = runner.expand_grid(["proxy"], spec["seeds"], spec["set"])
    reference, _ = run_lines(cells)

    store = Store(":memory:")
    flaky = FlakyWrites(fail_on={1, 2})  # first cell's flush, twice
    store.write_fault = flaky
    try:
        job = run_manager_job(store, spec)
        if job["state"] != "completed":
            raise SmokeError(f"job under write faults ended "
                             f"{job['state']}: {job['error']}")
        if flaky.failures < 2:
            raise SmokeError("write faults never fired")
        check_parity(reference, store.fetch_records(job["id"]),
                     "store write-fault parity")
    finally:
        store.close()
    _log(f"store write-fault parity ok "
         f"({flaky.failures} faults absorbed)")


# -- step 3: daemon SIGKILL + resume ------------------------------------------

_HTTP_TIMEOUT = 5.0


def _free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def _get(base: str, path: str) -> str:
    with urllib.request.urlopen(base + path,
                                timeout=_HTTP_TIMEOUT) as response:
        return response.read().decode()


def _post(base: str, path: str, payload: Dict[str, Any]) -> Dict[str, Any]:
    request = urllib.request.Request(
        base + path, method="POST", data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request,
                                timeout=_HTTP_TIMEOUT) as response:
        return json.loads(response.read())


def _start_daemon(port: int, db: str, log_file: str) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [path for path in (os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__)))),
            env.get("PYTHONPATH", "")) if path])
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--host", "127.0.0.1", "--port", str(port), "--db", db,
         "--workers", "1", "--pool", "1", "--drain-grace", "1",
         "--log-file", log_file],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    base = f"http://127.0.0.1:{port}"
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        if process.poll() is not None:
            raise SmokeError(
                f"daemon exited {process.returncode} before serving "
                f"(log: {log_file})")
        try:
            _get(base, "/v1/health")
            return process
        except (urllib.error.URLError, OSError):
            time.sleep(0.1)
    process.kill()
    raise SmokeError("daemon never answered /v1/health")


def step_daemon_sigkill_resume(workdir: str) -> None:
    db = os.path.join(workdir, "chaos-serve.db")
    port = _free_port()
    base = f"http://127.0.0.1:{port}"
    seeds = list(range(24))
    grid = {"scenario": "churn", "seeds": seeds,
            "set": {"duration": [120], "protocols": ["arppath"]},
            "jobs": 1}

    # The fault-free reference: the CLI sweep of the identical grid.
    reference_path = os.path.join(workdir, "reference.jsonl")
    sweep = subprocess.run(
        [sys.executable, "-m", "repro.cli", "sweep", "churn",
         "--seeds", *[str(seed) for seed in seeds],
         "--set", "duration=120", "--set", "protocols=arppath",
         "--jsonl", reference_path],
        env=dict(os.environ, PYTHONPATH=os.pathsep.join(
            [path for path in (os.path.dirname(os.path.dirname(
                os.path.dirname(os.path.abspath(__file__)))),
                os.environ.get("PYTHONPATH", "")) if path])),
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    if sweep.returncode != 0:
        raise SmokeError(f"reference sweep exited {sweep.returncode}")
    with open(reference_path) as handle:
        reference = handle.read().splitlines()

    daemon = _start_daemon(port, db, os.path.join(workdir, "serve1.log"))
    try:
        job = _post(base, "/v1/jobs", grid)["job"]
        job_id = job["id"]
        # Wait for a partial flush, then SIGKILL mid-job: the crash
        # point is after at least one checkpointed cell, before the
        # last — the resume path has real work on both sides.
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            current = json.loads(
                _get(base, f"/v1/jobs/{job_id}"))["job"]
            if current["state"] in ("completed", "failed", "cancelled"):
                raise SmokeError(
                    f"job finished ({current['state']}) before the "
                    "kill; enlarge the grid")
            if current["record_count"] >= 1:
                break
            time.sleep(0.02)
        else:
            raise SmokeError("no records flushed within 60s")
        daemon.send_signal(signal.SIGKILL)
        daemon.wait(timeout=10.0)
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait(timeout=10.0)
    _log(f"daemon SIGKILL'd mid-job "
         f"(~{current['record_count']} records flushed)")

    daemon = _start_daemon(port, db, os.path.join(workdir, "serve2.log"))
    try:
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            current = json.loads(
                _get(base, f"/v1/jobs/{job_id}"))["job"]
            if current["state"] in ("completed", "failed", "cancelled"):
                break
            time.sleep(0.05)
        if current["state"] != "completed":
            raise SmokeError(f"resumed job ended {current['state']}: "
                             f"{current.get('error')}")
        if current["resumes"] < 1:
            raise SmokeError("job completed without a recorded resume")
        lines = _get(base, f"/v1/jobs/{job_id}/records").splitlines()
        check_parity(reference, lines, "daemon resume parity")
        stats = json.loads(_get(base, "/v1/stats"))
        if stats["workers"]["jobs_resumed"] < 1:
            raise SmokeError("stats never counted the resume")
    finally:
        daemon.send_signal(signal.SIGTERM)
        try:
            daemon.wait(timeout=30.0)
        except subprocess.TimeoutExpired:
            daemon.kill()
            daemon.wait(timeout=10.0)
    _log(f"daemon resume parity ok ({len(lines)} records, "
         f"resumes={current['resumes']})")


# -- step 4: shard stall watchdog ---------------------------------------------

def _wedged_worker(shard_id: int, shard_count: int, endpoint) -> None:
    if shard_id == 0:
        time.sleep(3600.0)  # wedged before its first protocol round
        return
    for peer in endpoint.peers:
        endpoint.send(peer, (0.0, False, []))
    for peer in endpoint.peers:
        endpoint.recv(peer)  # blocks forever on the wedged shard


def step_shard_stall() -> None:
    started = time.monotonic()
    try:
        run_sharded(_wedged_worker, 2, mode="thread", stall_budget=1.0)
    except ShardStallError as error:
        elapsed = time.monotonic() - started
        if elapsed > 30.0:
            raise SmokeError(
                f"stall detected only after {elapsed:.1f}s")
        if sorted(error.snapshot) != [0, 1]:
            raise SmokeError(f"stall snapshot incomplete: "
                             f"{error.snapshot}")
        _log(f"shard stall detected in {elapsed:.1f}s with snapshot "
             f"for {len(error.snapshot)} shards")
        return
    raise SmokeError("wedged shard mesh did not raise ShardStallError")


def main() -> int:
    steps: List[Any] = [
        ("pool crash parity", step_pool_crash_parity, False),
        ("store write faults", step_store_write_faults, False),
        ("daemon SIGKILL + resume", step_daemon_sigkill_resume, True),
        ("shard stall watchdog", step_shard_stall, False),
    ]
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as workdir:
        for name, step, wants_dir in steps:
            _log(f"step: {name}")
            step(workdir) if wants_dir else step()
    _log("all chaos steps held")
    return 0


if __name__ == "__main__":
    sys.exit(main())
