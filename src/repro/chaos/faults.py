"""Picklable, deterministic fault injectors for the execution layer.

Cell faults are ``cell_hook`` callables for
:class:`repro.experiments.runner.SweepRunner`: the runner calls
``hook(cell, attempt)`` inside the worker before each attempt, so a
fault keyed on ``(cell.index, attempt)`` fires at exactly the planned
execution and nowhere else. They carry no mutable state — a fresh
worker process replays the same decision from the same arguments —
which is what makes a chaos run reproducible.

``FlakyWrites`` is the store-side seam: assigned to
:attr:`repro.server.store.Store.write_fault`, it raises ``OSError``
on chosen append transactions (the store rolls the transaction back,
keeping the checkpoint invariant intact).
"""

from __future__ import annotations

import os
import random
from typing import List, Optional, Sequence

from repro.experiments.runner import SweepCell


class KillWorker:
    """``os._exit`` the pool worker running cell *cell_index*.

    Fires on attempts ``0 .. kills-1``, so with ``kills=1`` the retry
    succeeds; with ``kills > retries`` the cell terminates
    ``failed_permanent``. Pool mode only — in a ``jobs=1`` serial run
    this would exit the *caller's* process (by design: that is what a
    crash does).
    """

    def __init__(self, cell_index: int, kills: int = 1,
                 exit_code: int = 137):
        self.cell_index = cell_index
        self.kills = kills
        self.exit_code = exit_code

    def __call__(self, cell: SweepCell, attempt: int) -> None:
        if cell.index == self.cell_index and attempt < self.kills:
            os._exit(self.exit_code)

    def __repr__(self) -> str:
        return (f"KillWorker(cell_index={self.cell_index}, "
                f"kills={self.kills})")


class RaiseError:
    """Raise inside the worker for cell *cell_index*.

    The exception is caught by the runner's attempt boundary like any
    experiment error, so with ``failures <= retries`` the cell still
    completes — with byte-identical rows, since the attempt number
    never reaches the experiment.
    """

    def __init__(self, cell_index: int, failures: int = 1,
                 message: str = "chaos: injected transient fault"):
        self.cell_index = cell_index
        self.failures = failures
        self.message = message

    def __call__(self, cell: SweepCell, attempt: int) -> None:
        if cell.index == self.cell_index and attempt < self.failures:
            raise OSError(self.message)

    def __repr__(self) -> str:
        return (f"RaiseError(cell_index={self.cell_index}, "
                f"failures={self.failures})")


class FaultSet:
    """Compose several cell faults into one hook (all are consulted)."""

    def __init__(self, *faults):
        self.faults = faults

    def __call__(self, cell: SweepCell, attempt: int) -> None:
        for fault in self.faults:
            fault(cell, attempt)

    def __repr__(self) -> str:
        return f"FaultSet{tuple(self.faults)!r}"


def seeded_plan(seed: int, cells_total: int, kills: int = 1,
                errors: int = 1) -> FaultSet:
    """A deterministic fault plan drawn from *seed*.

    Picks *kills* distinct cells to lose their worker once and
    *errors* distinct cells to raise once (disjoint sets when the grid
    allows). The same seed always plans the same faults — the property
    the chaos parity suite leans on.
    """
    if cells_total < 1:
        raise ValueError("cells_total must be >= 1")
    rng = random.Random(seed)
    indices = list(range(cells_total))
    rng.shuffle(indices)
    wanted = min(kills + errors, cells_total)
    picked = indices[:wanted]
    faults: List[object] = [KillWorker(index)
                            for index in picked[:kills]]
    faults += [RaiseError(index) for index in picked[kills:]]
    return FaultSet(*faults)


class FlakyWrites:
    """Raise ``OSError`` on chosen store append transactions.

    *fail_on* names the 1-based append-call numbers that fail (e.g.
    ``{2}`` fails only the second append). The hook fires inside the
    store's transaction, after the SQL ran but before commit — the
    store rolls back, so a failed write leaves records and checkpoint
    exactly as they were (the atomicity the resume invariant needs).
    Unlike the cell faults this one is stateful (a call counter): it
    lives in the daemon process and is never pickled.
    """

    def __init__(self, fail_on: Sequence[int],
                 message: str = "chaos: injected store write fault"):
        self.fail_on = frozenset(fail_on)
        self.message = message
        self.calls = 0
        self.failures = 0

    def __call__(self, job_id: int, lines: Optional[List[str]]) -> None:
        self.calls += 1
        if self.calls in self.fail_on:
            self.failures += 1
            raise OSError(f"{self.message} (append #{self.calls})")

    def __repr__(self) -> str:
        return f"FlakyWrites(fail_on={sorted(self.fail_on)})"
