"""Parity checking: chaos-run records vs the fault-free reference.

The whole chaos suite reduces to one assertion, applied at every
tier: the record lines that survive an injected fault sequence are
**byte-identical** to the fault-free run's lines. These helpers build
both sides of that comparison and, on mismatch, point at the first
divergent line instead of dumping two walls of JSON.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.experiments import runner
from repro.metrics.report import record_line


class ChaosParityError(AssertionError):
    """A chaos run's surviving records diverged from the reference."""


def run_lines(cells: Sequence[runner.SweepCell], **kwargs: Any
              ) -> Tuple[List[str], runner.SweepReport]:
    """Run *cells* through a :class:`SweepRunner`; return the record
    lines (cell-index order, canonical serialization) and the report.

    Keyword arguments go to the runner — ``jobs``, ``retries``,
    ``cell_hook`` — so the same helper produces the serial fault-free
    reference (no kwargs) and any chaos variant.
    """
    sweep = runner.SweepRunner(list(cells), **kwargs)
    report = runner.SweepReport(cells=sorted(
        sweep.stream(), key=lambda result: result.cell.index))
    return [record_line(row) for row in report.rows()], report


def first_divergence(expected: Sequence[str],
                     actual: Sequence[str]) -> Optional[int]:
    """Index of the first differing line, or None when byte-equal."""
    for index, (left, right) in enumerate(zip(expected, actual)):
        if left != right:
            return index
    if len(expected) != len(actual):
        return min(len(expected), len(actual))
    return None


def check_parity(expected: Sequence[str], actual: Sequence[str],
                 context: str) -> None:
    """Raise :class:`ChaosParityError` unless the streams byte-match."""
    index = first_divergence(expected, actual)
    if index is None:
        return
    def line_at(lines: Sequence[str], at: int) -> str:
        return lines[at] if at < len(lines) else "<missing>"
    raise ChaosParityError(
        f"{context}: records diverge at line {index} "
        f"({len(expected)} expected, {len(actual)} actual)\n"
        f"  expected: {line_at(expected, index)}\n"
        f"  actual:   {line_at(actual, index)}")


def run_manager_job(store: Any, spec: dict,
                    cell_hook: Optional[Callable] = None,
                    pool_jobs: int = 2,
                    timeout: float = 120.0) -> dict:
    """Run one job to a terminal state on a throwaway JobManager.

    Shared by the chaos tests and the smoke driver: submits *spec*,
    waits for the terminal state, shuts the manager down, and returns
    the final job dict (the caller owns *store* and its fault seams).
    """
    import time

    from repro.server import store as jobstore
    from repro.server.jobs import JobManager

    manager = JobManager(store, workers=1, pool_jobs=pool_jobs,
                         cell_hook=cell_hook)
    manager.start()
    try:
        job = manager.submit(spec)
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            current = store.get_job(job["id"])
            if current["state"] in jobstore.TERMINAL:
                return current
            time.sleep(0.02)
        raise AssertionError(f"job {job['id']} not terminal after "
                             f"{timeout}s: {store.get_job(job['id'])}")
    finally:
        manager.shutdown(drain=False, grace=2.0)
