"""Deterministic chaos harness for the execution layer.

This package injects *faults into the machinery that runs
simulations* — pool workers, the serve daemon's store, shard
workers — never into the simulated network (that is
:mod:`repro.failures`). Every fault is deterministic: a pure function
of its constructor arguments (and, for :func:`faults.seeded_plan`, a
seed), so a chaos run is exactly reproducible.

The acceptance bar, pinned by ``tests/test_chaos.py`` and the CI
``chaos-smoke`` job (``python -m repro.chaos.smoke``): the records
that survive any injected fault sequence are **byte-identical** to the
fault-free run's records.

Fault seams:

* :class:`faults.KillWorker` / :class:`faults.RaiseError` — picklable
  ``cell_hook`` callables run inside sweep pool workers
  (:class:`repro.experiments.runner.SweepRunner` ``cell_hook=``).
* :class:`faults.FlakyWrites` — raises on the Nth store append
  (:attr:`repro.server.store.Store.write_fault`).
* Daemon SIGKILL + restart and shard stalls are orchestrated by
  :mod:`repro.chaos.smoke` / the tests directly (a process kill is not
  injectable from inside).
"""

from repro.chaos.faults import (FaultSet, FlakyWrites, KillWorker,
                                RaiseError, seeded_plan)
from repro.chaos.harness import (ChaosParityError, check_parity,
                                 first_divergence, run_lines)

__all__ = ["ChaosParityError", "FaultSet", "FlakyWrites", "KillWorker",
           "RaiseError", "check_parity", "first_divergence",
           "run_lines", "seeded_plan"]
