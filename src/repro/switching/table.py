"""Classic 802.1 learning table with aging.

Used by the plain learning switch and by the STP baseline's data plane.
(The ARP-Path bridge has its own, different table — see
:mod:`repro.core.table` — with the LOCKED/LEARNT semantics the paper
introduces.)

Aging runs on the shared :class:`repro.netsim.aging.AgingStore`
substrate: lookups reap lazily, and with a simulator attached the
engine's timer wheel reclaims expired entries — no periodic sweep, and
no correctness dependency on reclamation timing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, TYPE_CHECKING

from repro.frames.mac import MAC
from repro.netsim.aging import AgingStore
from repro.netsim.node import Port

if TYPE_CHECKING:
    from repro.netsim.engine import Simulator

DEFAULT_AGING_TIME = 300.0


@dataclass(slots=True)
class FdbEntry:
    """One filtering-database entry (slotted: one per learnt MAC, so
    population-scale tables skip the per-entry ``__dict__``)."""

    port: Port
    expires: float


class ForwardingTable:
    """MAC → port mappings with aging.

    *aging_time* can be temporarily shortened (802.1D topology-change
    handling) with :meth:`set_aging` and restored with
    :meth:`restore_aging`. Pass *sim* to back the table with the
    engine's timer wheel.
    """

    def __init__(self, aging_time: float = DEFAULT_AGING_TIME,
                 sim: Optional["Simulator"] = None):
        self.default_aging_time = aging_time
        self.aging_time = aging_time
        self._entries = AgingStore(sim)
        self.learns = 0
        self.moves = 0

    def learn(self, mac: MAC, port: Port, now: float) -> None:
        """Associate *mac* with *port* (refreshing the age)."""
        entry = self._entries.peek(mac)
        if entry is None:
            self.learns += 1
            self._entries.put(mac, FdbEntry(port=port,
                                            expires=now + self.aging_time))
            return
        if entry.port is not port:
            self.moves += 1
            entry.port = port
        entry.expires = now + self.aging_time

    def lookup(self, mac: MAC, now: float) -> Optional[Port]:
        """The port for *mac*, or None when unknown/expired."""
        entry = self._entries.get(mac, now)
        return entry.port if entry is not None else None

    def forget(self, mac: MAC) -> None:
        self._entries.pop(mac)

    def flush(self) -> None:
        """Remove every entry."""
        self._entries.clear()

    def flush_port(self, port: Port) -> int:
        """Remove all entries pointing at *port*; returns how many."""
        return self._entries.pop_matching(
            lambda mac, entry: entry.port is port)

    def expire(self, now: float) -> int:
        """Drop entries whose age ran out; returns how many."""
        return self._entries.reap(now)

    def set_aging(self, aging_time: float) -> None:
        """Temporarily change the aging time (new learns only)."""
        self.aging_time = aging_time

    def restore_aging(self) -> None:
        self.aging_time = self.default_aging_time

    def macs_on(self, port: Port) -> List[MAC]:
        return [mac for mac, entry in self._entries.items()
                if entry.port is port]

    def live_count(self, now: float) -> int:
        """Unexpired entries at *now* — exact occupancy, independent of
        when the wheel last reaped (``len`` counts unreaped entries)."""
        return self._entries.live_count(now)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, mac: MAC) -> bool:
        return mac in self._entries
