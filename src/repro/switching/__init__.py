"""Shared bridging substrate: base bridge, learning table, learning switch."""

from repro.switching.base import Bridge, BridgeCounters
from repro.switching.learning import LearningSwitch
from repro.switching.table import (DEFAULT_AGING_TIME, FdbEntry,
                                   ForwardingTable)

__all__ = [
    "Bridge", "BridgeCounters", "LearningSwitch", "DEFAULT_AGING_TIME",
    "FdbEntry", "ForwardingTable",
]
