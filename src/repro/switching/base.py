"""Base class shared by every bridge implementation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.frames.ethernet import EthernetFrame
from repro.frames.mac import MAC
from repro.netsim.engine import Simulator
from repro.netsim.node import Node, Port


@dataclass
class BridgeCounters:
    """Data-plane counters every bridge keeps."""

    received: int = 0
    forwarded: int = 0
    flooded_frames: int = 0
    flooded_copies: int = 0
    filtered: int = 0
    control_received: int = 0
    control_sent: int = 0

    def snapshot(self) -> dict:
        return {
            "received": self.received,
            "forwarded": self.forwarded,
            "flooded_frames": self.flooded_frames,
            "flooded_copies": self.flooded_copies,
            "filtered": self.filtered,
            "control_received": self.control_received,
            "control_sent": self.control_sent,
        }


class Bridge(Node):
    """Common behaviour for all bridge types.

    Every bridge has a MAC identity (used for control protocols) and
    data-plane counters. Subclasses implement :meth:`handle_frame`.
    """

    def __init__(self, sim: Simulator, name: str, mac: MAC):
        super().__init__(sim, name)
        self.mac = mac
        self.counters = BridgeCounters()

    def forward(self, out_port: Port, frame: EthernetFrame) -> None:
        """Send a data frame out of one specific port."""
        self.counters.forwarded += 1
        out_port.send(frame)

    def flood_data(self, frame: EthernetFrame,
                   exclude: Optional[Port] = None) -> int:
        """Flood a data frame on all ports but *exclude*, counting it."""
        copies = self.flood(frame, exclude=exclude)
        self.counters.flooded_frames += 1
        self.counters.flooded_copies += copies
        return copies

    def filter_frame(self) -> None:
        """Account for a deliberately discarded frame."""
        self.counters.filtered += 1
