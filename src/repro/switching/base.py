"""The shared bridge dataplane: one pipeline, four protocol families.

Every bridge in the simulator — ARP-Path, SPB, STP and the plain
learning switch — receives frames through the same
:class:`Dataplane` pipeline. The pipeline classifies each frame exactly
once into one of four classes and dispatches to overridable hooks, so a
protocol implements *policy* (what to do with a class of frame) and
never re-implements *classification*:

======================  =====================================================
frame class             hook
======================  =====================================================
control                 :meth:`Bridge.on_control` — the family's own
                        protocol frames (ARP-Path control, BPDUs, LSPs),
                        selected by ethertype (plus an optional payload
                        type check)
ARP discovery           :meth:`Bridge.on_arp` — multicast ARP frames
                        carrying an :class:`~repro.frames.arp.ArpPacket`;
                        defaults to :meth:`Bridge.on_broadcast` for
                        families that treat ARP as ordinary broadcast
broadcast/multicast     :meth:`Bridge.on_broadcast`
unicast                 :meth:`Bridge.on_unicast`
======================  =====================================================

Two admission hooks bracket classification: :meth:`Bridge.admit_frame`
runs before anything (ARP-Path drops its own frames here) and
:meth:`Bridge.admit_data` runs after control dispatch but before the
data hooks (STP applies its port-state gate and learns there, SPB
learns local hosts). This mirrors the packet-in pipelines of
event-driven SDN controllers: one classification ladder, per-protocol
handlers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (Any, Callable, Dict, Iterable, List, Optional, Tuple,
                    Type)

from repro.frames.arp import ArpPacket
from repro.frames.ethernet import (ETHERTYPE_ARP, EthernetFrame,
                                   KIND_ARP_DISCOVERY, KIND_MULTICAST)
from repro.frames.mac import MAC
from repro.netsim.engine import Simulator
from repro.netsim.node import Node, Port


class Dataplane:
    """Frame classification shared by every bridge family.

    One instance per protocol family (stateless, so a module-level
    singleton): it knows which ethertype carries the family's control
    frames and, optionally, which payload type those frames must carry
    (ARP-Path requires an :class:`ArpPathControl`; a frame with the
    control ethertype but a foreign payload falls through to the data
    path, exactly like unknown traffic).
    """

    __slots__ = ("control_ethertypes", "control_payload")

    def __init__(self, control_ethertypes: Iterable[int] = (),
                 control_payload: Optional[Type] = None):
        self.control_ethertypes = frozenset(control_ethertypes)
        self.control_payload = control_payload

    def is_control(self, frame: EthernetFrame) -> bool:
        """Does *frame* carry this family's control protocol?"""
        if frame.ethertype not in self.control_ethertypes:
            return False
        payload_type = self.control_payload
        return payload_type is None or isinstance(frame.payload, payload_type)

    @staticmethod
    def is_arp_discovery(frame: EthernetFrame) -> bool:
        """Is *frame* a broadcast/multicast ARP probe (a discovery race)?"""
        return (frame.is_multicast and frame.ethertype == ETHERTYPE_ARP
                and isinstance(frame.payload, ArpPacket))

    def dispatch(self, bridge: "Bridge", port: Port,
                 frame: EthernetFrame) -> None:
        """Classify *frame* once and invoke the matching bridge hook.

        The data classification is interned on the frame
        (:meth:`EthernetFrame.kind`) and shared by every clone, so a
        flooded copy traversing its n-th bridge pays one slot read, not
        a fresh round of address/payload inspection per hop. Only the
        family-specific control check (an ethertype set membership)
        runs per dispatch, because it differs between dataplanes.
        """
        if not bridge.admit_frame(port, frame):
            return
        if frame.ethertype in self.control_ethertypes:
            payload_type = self.control_payload
            if payload_type is None or isinstance(frame.payload,
                                                  payload_type):
                bridge.on_control(port, frame)
                return
        if not bridge.admit_data(port, frame):
            return
        kind = frame._kind
        if kind is None:
            kind = frame.kind()
        if kind == KIND_ARP_DISCOVERY:
            bridge.on_arp(port, frame)
        elif kind == KIND_MULTICAST:
            bridge.on_broadcast(port, frame)
        else:
            bridge.on_unicast(port, frame)


#: Pipeline for families without a control protocol (learning switch).
DATA_ONLY_DATAPLANE = Dataplane()


class BridgeCounters:
    """Data-plane counters every bridge keeps.

    A hand-written ``__slots__`` value type (the frames idiom, PR 4):
    ``received`` is bumped once per frame per hop and a slot write is
    cheaper than a ``__dict__`` entry. Slots, zero-init and snapshot
    all derive from the one ``_FIELDS`` tuple.
    """

    _FIELDS = ("received", "forwarded", "flooded_frames",
               "flooded_copies", "filtered", "control_received",
               "control_sent")

    __slots__ = _FIELDS

    def __init__(self) -> None:
        for field in self._FIELDS:
            setattr(self, field, 0)

    def snapshot(self) -> dict:
        return {field: getattr(self, field) for field in self._FIELDS}


class Bridge(Node):
    """Common behaviour for all bridge types.

    Every bridge has a MAC identity (used for control protocols) and
    data-plane counters. Frames arrive through the shared
    :class:`Dataplane` pipeline; subclasses set :attr:`dataplane` (a
    class attribute) and implement the hooks below instead of
    overriding :meth:`handle_frame`.
    """

    #: The family's classification pipeline; subclasses override.
    dataplane: Dataplane = DATA_ONLY_DATAPLANE

    def __init__(self, sim: Simulator, name: str, mac: MAC):
        super().__init__(sim, name)
        self.mac = mac
        self.counters = BridgeCounters()
        # The family's classification constants, cached per instance:
        # handle_frame inlines the dispatch ladder (see below) and an
        # instance slot read beats a class-attribute walk per frame.
        self._control_ethertypes = self.dataplane.control_ethertypes
        self._control_payload = self.dataplane.control_payload

    # -- lifecycle ---------------------------------------------------------

    def stop(self) -> None:
        """Stop periodic processes (crash/teardown). Default: nothing."""

    def reset_state(self) -> None:
        """Wipe dynamic protocol state, as a power cycle would.

        Called between :meth:`stop` and a renewed :meth:`start` when a
        bridge restarts (:meth:`repro.topology.builder.Network
        .restart_bridge`). Families clear their learnt tables, caches
        and pending protocol exchanges here; configuration and
        counters survive.
        """

    # -- pipeline entry ----------------------------------------------------

    def handle_frame(self, port: Port, frame: EthernetFrame) -> None:
        # The body is :meth:`Dataplane.dispatch` inlined (keep the two
        # in sync): this method runs once per frame per hop, and the
        # extra dispatch call plus its attribute walks are measurable
        # at the 225-bridge scale. Classification policy still lives in
        # Dataplane — this is its one hot-path copy.
        self.counters.received += 1
        if not self.admit_frame(port, frame):
            return
        if frame.ethertype in self._control_ethertypes:
            payload_type = self._control_payload
            if payload_type is None or isinstance(frame.payload,
                                                  payload_type):
                self.on_control(port, frame)
                return
        if not self.admit_data(port, frame):
            return
        kind = frame._kind
        if kind is None:
            kind = frame.kind()
        if kind == KIND_ARP_DISCOVERY:
            self.on_arp(port, frame)
        elif kind == KIND_MULTICAST:
            self.on_broadcast(port, frame)
        else:
            self.on_unicast(port, frame)

    # -- admission hooks ---------------------------------------------------

    def admit_frame(self, port: Port, frame: EthernetFrame) -> bool:
        """First gate: reject before any classification (default: accept)."""
        return True

    def admit_data(self, port: Port, frame: EthernetFrame) -> bool:
        """Data gate: runs after control dispatch, before the data hooks.

        The place for per-port forwarding-state checks and source
        learning that applies to every data frame (default: accept).
        """
        return True

    # -- classification hooks ----------------------------------------------

    def on_control(self, port: Port, frame: EthernetFrame) -> None:
        """A frame of the family's own control protocol (default: drop)."""

    def on_arp(self, port: Port, frame: EthernetFrame) -> None:
        """A multicast ARP probe. Families without special ARP handling
        inherit broadcast behaviour."""
        self.on_broadcast(port, frame)

    def on_broadcast(self, port: Port, frame: EthernetFrame) -> None:
        """A non-ARP broadcast/multicast data frame."""
        raise NotImplementedError

    def on_unicast(self, port: Port, frame: EthernetFrame) -> None:
        """A unicast data frame."""
        raise NotImplementedError

    # -- data-plane helpers ------------------------------------------------

    def forward(self, out_port: Port, frame: EthernetFrame) -> None:
        """Send a data frame out of one specific port."""
        self.counters.forwarded += 1
        out_port.send(frame)

    def flood_data(self, frame: EthernetFrame,
                   exclude: Optional[Port] = None) -> int:
        """Flood a data frame on all ports but *exclude*, counting it.

        The fan-out loop is :meth:`Node.flood` with :meth:`Port.send`
        inlined (keep them in sync): flooding is ARP-Path's hot path —
        the race *is* the mechanism — and the per-port call pair costs
        more than the remaining per-copy work. Copy-on-write: every
        port shares the one frame object.
        """
        frame._shared = True
        copies = 0
        for port in self.attached_ports:
            if port is exclude:
                continue
            copies += 1
            link = port.link
            if link.up:
                link.transmit(port, frame)
        self.counters.flooded_frames += 1
        self.counters.flooded_copies += copies
        return copies

    def filter_frame(self) -> None:
        """Account for a deliberately discarded frame."""
        self.counters.filtered += 1

    # -- introspection hooks -----------------------------------------------
    #
    # The protocol-neutral surface experiments use instead of
    # ``isinstance(bridge, <FamilyBridge>)`` checks: every family
    # answers the same three questions (how much dynamic state, which
    # ethertypes are control traffic, what repairs completed) plus a
    # free-form counter bag for family-specific mechanisms.

    def state_entries(self, now: Optional[float] = None) -> int:
        """Comparable dynamic-state size of this bridge.

        The per-family definition of "state a bridge must hold":
        ARP-Path counts locked-table entries, SPB counts LSDB entries
        plus advertised hosts, the controller family counts installed
        flow entries. The default covers any family with an aging
        ``fdb`` (STP, the learning switch): entries *live at now*, not
        raw store size — the stores reap lazily, so a raw ``len`` would
        credit a bridge with endpoints whose entries expired long ago.
        """
        fdb = getattr(self, "fdb", None)
        if fdb is None:
            return 0
        return fdb.live_count(self.sim.now if now is None else now)

    def control_frame_kinds(self) -> Iterable[int]:
        """The ethertypes this family's control plane emits."""
        return self._control_ethertypes

    def repair_events(self) -> List[float]:
        """Completed path-repair durations (seconds), in completion
        order. Families without a repair mechanism report none."""
        return []

    def protocol_counters(self) -> Dict[str, int]:
        """Family-specific mechanism counters, keyed by stable names.

        Experiments sum these across bridges (``relocks``,
        ``proxy_suppressed``, ``frames_buffered``, ...) instead of
        reaching into family internals; absent keys read as zero.
        """
        return {}


# -- bridge-family registry --------------------------------------------------
#
# A :class:`BridgeFamily` is the one self-describing record a protocol
# family publishes about itself: how to build its bridges, how long its
# control plane needs to settle, whether it survives loops, and which
# configuration knobs it exposes. Families register themselves at
# import of their own package; everything downstream — factory lookup,
# experiment protocol choices, CLI ``--protocols`` values, the serve
# API's schema — derives from this registry, so adding a family touches
# only its own package plus this file's import list.


@dataclass(frozen=True)
class FamilyOption:
    """One configuration knob of a bridge family's factory."""

    name: str
    #: JSON-ish type label for the serve schema ("int", "float",
    #: "bool", "object").
    type: str
    #: Default value; None for object-typed knobs (described in *help*).
    default: Any
    help: str

    def describe(self) -> Dict[str, Any]:
        return {"name": self.name, "type": self.type,
                "default": self.default, "help": self.help}


@dataclass(frozen=True)
class BridgeFamily:
    """Self-registering descriptor for one bridge protocol family."""

    name: str
    #: One-line description (Param help strings, serve schema).
    title: str
    #: Factory *builder*: ``factory(**config) -> BridgeFactory`` where a
    #: BridgeFactory is ``(sim, name, mac) -> Bridge``. Builders may
    #: attach a ``network_finalize(net)`` attribute to the returned
    #: closure; :meth:`repro.topology.builder.Network.finalize_topology`
    #: runs it once after the wiring is complete (the controller family
    #: wires its out-of-band control plane there).
    factory: Callable[..., Callable]
    #: Warmup budget (simulated seconds) before measurement traffic.
    warmup: float
    #: Does the family keep a loopy fabric broadcast-storm free?
    loop_safe: bool = True
    #: Canonical display position (choices tuples, schema listings).
    order: int = 100
    #: Ethertypes of the family's control frames — the union over
    #: registered families is what experiments count as control load.
    control_ethertypes: Tuple[int, ...] = ()
    #: The factory's configuration knobs (serve API sub-schema).
    options: Tuple[FamilyOption, ...] = ()
    #: Optional timer-scaling hook: ``scaled(factor) -> (display_name,
    #: BridgeFactory, warmup)``. Only meaningful for timer-driven
    #: families (STP's ``stp_scale`` axis).
    scaled: Optional[Callable[[float], Tuple[str, Callable, float]]] = None

    def describe(self) -> Dict[str, Any]:
        """The family's serve-API sub-schema (JSON-safe)."""
        return {
            "name": self.name,
            "title": self.title,
            "warmup": self.warmup,
            "loop_safe": self.loop_safe,
            "control_ethertypes": [f"0x{e:04x}"
                                   for e in self.control_ethertypes],
            "scalable": self.scaled is not None,
            "config": [option.describe() for option in self.options],
        }


_FAMILIES: Dict[str, BridgeFamily] = {}
_families_loaded = False


def register_family(family: BridgeFamily) -> BridgeFamily:
    """Register *family* (idempotent per name; latest wins)."""
    _FAMILIES[family.name] = family
    return family


def load_families() -> None:
    """Import every family package so each registers itself.

    The one place that knows the full family list. Lazy (called from
    the lookup functions) so ``base`` itself stays import-light and the
    family modules — which import this one — load cleanly.
    """
    global _families_loaded
    if _families_loaded:
        return
    _families_loaded = True
    import repro.core.bridge            # noqa: F401  arppath
    import repro.stp.bridge             # noqa: F401  stp
    import repro.spb.bridge             # noqa: F401  spb
    import repro.switching.learning     # noqa: F401  learning
    import repro.switching.controller   # noqa: F401  controller


def family(name: str) -> BridgeFamily:
    """Look up a registered family by name.

    Raises ``KeyError`` with the sorted known names for unknown ones.
    """
    load_families()
    try:
        return _FAMILIES[name]
    except KeyError:
        known = ", ".join(sorted(_FAMILIES))
        raise KeyError(f"unknown bridge family {name!r} "
                       f"(known: {known})") from None


def all_families() -> List[BridgeFamily]:
    """Every registered family in canonical (order, name) order."""
    load_families()
    return sorted(_FAMILIES.values(), key=lambda f: (f.order, f.name))


def family_names(loop_safe_only: bool = False) -> Tuple[str, ...]:
    """Family names in canonical order; optionally only the families
    that keep a loopy fabric storm-free."""
    return tuple(f.name for f in all_families()
                 if f.loop_safe or not loop_safe_only)


def control_ethertypes() -> Tuple[int, ...]:
    """The sorted union of every family's control ethertypes."""
    load_families()
    union = set()
    for fam in _FAMILIES.values():
        union.update(fam.control_ethertypes)
    return tuple(sorted(union))
