"""The shared bridge dataplane: one pipeline, four protocol families.

Every bridge in the simulator — ARP-Path, SPB, STP and the plain
learning switch — receives frames through the same
:class:`Dataplane` pipeline. The pipeline classifies each frame exactly
once into one of four classes and dispatches to overridable hooks, so a
protocol implements *policy* (what to do with a class of frame) and
never re-implements *classification*:

======================  =====================================================
frame class             hook
======================  =====================================================
control                 :meth:`Bridge.on_control` — the family's own
                        protocol frames (ARP-Path control, BPDUs, LSPs),
                        selected by ethertype (plus an optional payload
                        type check)
ARP discovery           :meth:`Bridge.on_arp` — multicast ARP frames
                        carrying an :class:`~repro.frames.arp.ArpPacket`;
                        defaults to :meth:`Bridge.on_broadcast` for
                        families that treat ARP as ordinary broadcast
broadcast/multicast     :meth:`Bridge.on_broadcast`
unicast                 :meth:`Bridge.on_unicast`
======================  =====================================================

Two admission hooks bracket classification: :meth:`Bridge.admit_frame`
runs before anything (ARP-Path drops its own frames here) and
:meth:`Bridge.admit_data` runs after control dispatch but before the
data hooks (STP applies its port-state gate and learns there, SPB
learns local hosts). This mirrors the packet-in pipelines of
event-driven SDN controllers: one classification ladder, per-protocol
handlers.
"""

from __future__ import annotations

from typing import Iterable, Optional, Type

from repro.frames.arp import ArpPacket
from repro.frames.ethernet import (ETHERTYPE_ARP, EthernetFrame,
                                   KIND_ARP_DISCOVERY, KIND_MULTICAST)
from repro.frames.mac import MAC
from repro.netsim.engine import Simulator
from repro.netsim.node import Node, Port


class Dataplane:
    """Frame classification shared by every bridge family.

    One instance per protocol family (stateless, so a module-level
    singleton): it knows which ethertype carries the family's control
    frames and, optionally, which payload type those frames must carry
    (ARP-Path requires an :class:`ArpPathControl`; a frame with the
    control ethertype but a foreign payload falls through to the data
    path, exactly like unknown traffic).
    """

    __slots__ = ("control_ethertypes", "control_payload")

    def __init__(self, control_ethertypes: Iterable[int] = (),
                 control_payload: Optional[Type] = None):
        self.control_ethertypes = frozenset(control_ethertypes)
        self.control_payload = control_payload

    def is_control(self, frame: EthernetFrame) -> bool:
        """Does *frame* carry this family's control protocol?"""
        if frame.ethertype not in self.control_ethertypes:
            return False
        payload_type = self.control_payload
        return payload_type is None or isinstance(frame.payload, payload_type)

    @staticmethod
    def is_arp_discovery(frame: EthernetFrame) -> bool:
        """Is *frame* a broadcast/multicast ARP probe (a discovery race)?"""
        return (frame.is_multicast and frame.ethertype == ETHERTYPE_ARP
                and isinstance(frame.payload, ArpPacket))

    def dispatch(self, bridge: "Bridge", port: Port,
                 frame: EthernetFrame) -> None:
        """Classify *frame* once and invoke the matching bridge hook.

        The data classification is interned on the frame
        (:meth:`EthernetFrame.kind`) and shared by every clone, so a
        flooded copy traversing its n-th bridge pays one slot read, not
        a fresh round of address/payload inspection per hop. Only the
        family-specific control check (an ethertype set membership)
        runs per dispatch, because it differs between dataplanes.
        """
        if not bridge.admit_frame(port, frame):
            return
        if frame.ethertype in self.control_ethertypes:
            payload_type = self.control_payload
            if payload_type is None or isinstance(frame.payload,
                                                  payload_type):
                bridge.on_control(port, frame)
                return
        if not bridge.admit_data(port, frame):
            return
        kind = frame._kind
        if kind is None:
            kind = frame.kind()
        if kind == KIND_ARP_DISCOVERY:
            bridge.on_arp(port, frame)
        elif kind == KIND_MULTICAST:
            bridge.on_broadcast(port, frame)
        else:
            bridge.on_unicast(port, frame)


#: Pipeline for families without a control protocol (learning switch).
DATA_ONLY_DATAPLANE = Dataplane()


class BridgeCounters:
    """Data-plane counters every bridge keeps.

    A hand-written ``__slots__`` value type (the frames idiom, PR 4):
    ``received`` is bumped once per frame per hop and a slot write is
    cheaper than a ``__dict__`` entry. Slots, zero-init and snapshot
    all derive from the one ``_FIELDS`` tuple.
    """

    _FIELDS = ("received", "forwarded", "flooded_frames",
               "flooded_copies", "filtered", "control_received",
               "control_sent")

    __slots__ = _FIELDS

    def __init__(self) -> None:
        for field in self._FIELDS:
            setattr(self, field, 0)

    def snapshot(self) -> dict:
        return {field: getattr(self, field) for field in self._FIELDS}


class Bridge(Node):
    """Common behaviour for all bridge types.

    Every bridge has a MAC identity (used for control protocols) and
    data-plane counters. Frames arrive through the shared
    :class:`Dataplane` pipeline; subclasses set :attr:`dataplane` (a
    class attribute) and implement the hooks below instead of
    overriding :meth:`handle_frame`.
    """

    #: The family's classification pipeline; subclasses override.
    dataplane: Dataplane = DATA_ONLY_DATAPLANE

    def __init__(self, sim: Simulator, name: str, mac: MAC):
        super().__init__(sim, name)
        self.mac = mac
        self.counters = BridgeCounters()
        # The family's classification constants, cached per instance:
        # handle_frame inlines the dispatch ladder (see below) and an
        # instance slot read beats a class-attribute walk per frame.
        self._control_ethertypes = self.dataplane.control_ethertypes
        self._control_payload = self.dataplane.control_payload

    # -- lifecycle ---------------------------------------------------------

    def stop(self) -> None:
        """Stop periodic processes (crash/teardown). Default: nothing."""

    def reset_state(self) -> None:
        """Wipe dynamic protocol state, as a power cycle would.

        Called between :meth:`stop` and a renewed :meth:`start` when a
        bridge restarts (:meth:`repro.topology.builder.Network
        .restart_bridge`). Families clear their learnt tables, caches
        and pending protocol exchanges here; configuration and
        counters survive.
        """

    # -- pipeline entry ----------------------------------------------------

    def handle_frame(self, port: Port, frame: EthernetFrame) -> None:
        # The body is :meth:`Dataplane.dispatch` inlined (keep the two
        # in sync): this method runs once per frame per hop, and the
        # extra dispatch call plus its attribute walks are measurable
        # at the 225-bridge scale. Classification policy still lives in
        # Dataplane — this is its one hot-path copy.
        self.counters.received += 1
        if not self.admit_frame(port, frame):
            return
        if frame.ethertype in self._control_ethertypes:
            payload_type = self._control_payload
            if payload_type is None or isinstance(frame.payload,
                                                  payload_type):
                self.on_control(port, frame)
                return
        if not self.admit_data(port, frame):
            return
        kind = frame._kind
        if kind is None:
            kind = frame.kind()
        if kind == KIND_ARP_DISCOVERY:
            self.on_arp(port, frame)
        elif kind == KIND_MULTICAST:
            self.on_broadcast(port, frame)
        else:
            self.on_unicast(port, frame)

    # -- admission hooks ---------------------------------------------------

    def admit_frame(self, port: Port, frame: EthernetFrame) -> bool:
        """First gate: reject before any classification (default: accept)."""
        return True

    def admit_data(self, port: Port, frame: EthernetFrame) -> bool:
        """Data gate: runs after control dispatch, before the data hooks.

        The place for per-port forwarding-state checks and source
        learning that applies to every data frame (default: accept).
        """
        return True

    # -- classification hooks ----------------------------------------------

    def on_control(self, port: Port, frame: EthernetFrame) -> None:
        """A frame of the family's own control protocol (default: drop)."""

    def on_arp(self, port: Port, frame: EthernetFrame) -> None:
        """A multicast ARP probe. Families without special ARP handling
        inherit broadcast behaviour."""
        self.on_broadcast(port, frame)

    def on_broadcast(self, port: Port, frame: EthernetFrame) -> None:
        """A non-ARP broadcast/multicast data frame."""
        raise NotImplementedError

    def on_unicast(self, port: Port, frame: EthernetFrame) -> None:
        """A unicast data frame."""
        raise NotImplementedError

    # -- data-plane helpers ------------------------------------------------

    def forward(self, out_port: Port, frame: EthernetFrame) -> None:
        """Send a data frame out of one specific port."""
        self.counters.forwarded += 1
        out_port.send(frame)

    def flood_data(self, frame: EthernetFrame,
                   exclude: Optional[Port] = None) -> int:
        """Flood a data frame on all ports but *exclude*, counting it.

        The fan-out loop is :meth:`Node.flood` with :meth:`Port.send`
        inlined (keep them in sync): flooding is ARP-Path's hot path —
        the race *is* the mechanism — and the per-port call pair costs
        more than the remaining per-copy work. Copy-on-write: every
        port shares the one frame object.
        """
        frame._shared = True
        copies = 0
        for port in self.attached_ports:
            if port is exclude:
                continue
            copies += 1
            link = port.link
            if link.up:
                link.transmit(port, frame)
        self.counters.flooded_frames += 1
        self.counters.flooded_copies += copies
        return copies

    def filter_frame(self) -> None:
        """Account for a deliberately discarded frame."""
        self.counters.filtered += 1
