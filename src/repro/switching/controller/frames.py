"""Control-channel messages of the centralized controller family.

One message type carries the whole southbound/northbound protocol
(LLDP discovery, link/host reports, packet-in, flow-mod, barriers and
flood rules), distinguished by an ``op`` code — the OpenFlow shape
squeezed into a single fixed layout plus a variable port list, so one
struct codec (:mod:`repro.switching.controller.codec`) serialises every
message losslessly for cross-shard transport.

All messages ride ethertype 0x88B7
(:data:`repro.frames.ethernet.ETHERTYPE_CONTROLLER`). LLDP probes are
link-local multicast; everything else is unicast on the dedicated
controller star links.
"""

from __future__ import annotations

from typing import Tuple

from repro.frames.mac import MAC, ZERO

#: Link-local multicast address LLDP probes are sent to (nearest-bridge
#: block, never relayed).
LLDP_MULTICAST = MAC("01:80:c2:00:00:0e")

#: Sentinel for "no port" in the ``port`` field.
NO_PORT = -1

OP_LLDP = 1            # bridge -> neighbor bridge: who am I, which port
OP_SWITCH_ENTER = 2    # bridge -> controller: I exist, here is my MAC
OP_LINK_REPORT = 3     # bridge -> controller: LLDP-learnt adjacency
OP_PORT_STATUS = 4     # bridge -> controller: carrier change on a port
OP_HOST_REPORT = 5     # bridge -> controller: host seen on an edge port
OP_PACKET_IN = 6       # bridge -> controller: table miss for (src, dst)
OP_FLOW_INSTALL = 7    # controller -> bridge: install a flow entry
OP_FLOW_REMOVE = 8     # controller -> bridge: remove a flow entry (acked)
OP_REMOVE_ACK = 9      # bridge -> controller: barrier ack for a remove
OP_FLOW_EXPIRED = 10   # bridge -> controller: entry aged out
OP_FLOOD_RULE = 11     # controller -> bridge: broadcast-tree port set

_OP_NAMES = {
    OP_LLDP: "LLDP",
    OP_SWITCH_ENTER: "SWITCH_ENTER",
    OP_LINK_REPORT: "LINK_REPORT",
    OP_PORT_STATUS: "PORT_STATUS",
    OP_HOST_REPORT: "HOST_REPORT",
    OP_PACKET_IN: "PACKET_IN",
    OP_FLOW_INSTALL: "FLOW_INSTALL",
    OP_FLOW_REMOVE: "FLOW_REMOVE",
    OP_REMOVE_ACK: "REMOVE_ACK",
    OP_FLOW_EXPIRED: "FLOW_EXPIRED",
    OP_FLOOD_RULE: "FLOOD_RULE",
}

#: FLOW_INSTALL flag bits.
FLAG_UP = 0x01            # PORT_STATUS: carrier present
FLAG_FLOOD = 0x02         # FLOW_INSTALL: flood verdict (unknown dst)
FLAG_RECORD_REPAIR = 0x04  # FLOW_INSTALL: record repair completion
FLAG_EDGE_PORT = 0x08     # PORT_STATUS: the port had no LLDP neighbor

#: Fixed part: op(1) + origin(6) + src(6) + dst(6) + port(2) + seq(4)
#: + time(8) + flags(1) + nports(1).
FIXED_WIRE_SIZE = 35


class ControllerControl:
    """One controller-channel message (immutable ``__slots__`` type).

    ``origin``
        The node that generated the message (bridge or controller MAC).
    ``src`` / ``dst``
        The end-host flow key the message is about (``ZERO`` when
        unused; ``src`` doubles as the neighbor bridge in LINK_REPORT).
    ``port``
        A port index at the *origin* (``NO_PORT`` when unused).
    ``seq``
        Correlation id: barrier id for removes/acks, rule version for
        flood rules.
    ``time``
        A timestamp riding the message: LLDP send time (latency
        measurement), failure-detection time on repair installs.
    ``ports``
        Variable port-index list: the flood-tree ports of a FLOOD_RULE.
    """

    __slots__ = ("op", "origin", "src", "dst", "port", "seq", "time",
                 "flags", "ports")

    def __init__(self, op: int, origin: MAC, src: MAC = ZERO,
                 dst: MAC = ZERO, port: int = NO_PORT, seq: int = 0,
                 time: float = 0.0, flags: int = 0,
                 ports: Tuple[int, ...] = ()):
        if op not in _OP_NAMES:
            raise ValueError(f"unknown controller op {op}")
        set_field = object.__setattr__
        set_field(self, "op", op)
        set_field(self, "origin", origin)
        set_field(self, "src", src)
        set_field(self, "dst", dst)
        set_field(self, "port", port)
        set_field(self, "seq", seq)
        set_field(self, "time", time)
        set_field(self, "flags", flags)
        set_field(self, "ports", tuple(ports))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError(
            f"ControllerControl is immutable (tried to set {name!r})")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ControllerControl):
            return NotImplemented
        return (self.op == other.op and self.origin == other.origin
                and self.src == other.src and self.dst == other.dst
                and self.port == other.port and self.seq == other.seq
                and self.time == other.time and self.flags == other.flags
                and self.ports == other.ports)

    def __hash__(self) -> int:
        return hash((self.op, self.origin, self.src, self.dst, self.port,
                     self.seq, self.time, self.flags, self.ports))

    @property
    def op_name(self) -> str:
        return _OP_NAMES[self.op]

    @property
    def wire_size(self) -> int:
        return FIXED_WIRE_SIZE + 2 * len(self.ports)

    def __repr__(self) -> str:
        return (f"ControllerControl(op={self.op_name}, origin={self.origin}, "
                f"src={self.src}, dst={self.dst}, port={self.port}, "
                f"seq={self.seq}, time={self.time}, flags={self.flags:#x}, "
                f"ports={self.ports})")


# -- constructors ------------------------------------------------------------


def make_lldp(bridge_mac: MAC, port_index: int,
              now: float) -> ControllerControl:
    """A link-local LLDP probe announcing *bridge_mac* on a port."""
    return ControllerControl(op=OP_LLDP, origin=bridge_mac, port=port_index,
                             time=now)


def make_switch_enter(bridge_mac: MAC) -> ControllerControl:
    return ControllerControl(op=OP_SWITCH_ENTER, origin=bridge_mac)


def make_link_report(bridge_mac: MAC, neighbor: MAC, port_index: int,
                     latency: float) -> ControllerControl:
    return ControllerControl(op=OP_LINK_REPORT, origin=bridge_mac,
                             src=neighbor, port=port_index, time=latency)


def make_port_status(bridge_mac: MAC, port_index: int, up: bool,
                     neighbor: MAC, edge: bool,
                     now: float) -> ControllerControl:
    flags = (FLAG_UP if up else 0) | (FLAG_EDGE_PORT if edge else 0)
    return ControllerControl(op=OP_PORT_STATUS, origin=bridge_mac,
                             src=neighbor, port=port_index, flags=flags,
                             time=now)


def make_host_report(bridge_mac: MAC, host: MAC,
                     port_index: int) -> ControllerControl:
    return ControllerControl(op=OP_HOST_REPORT, origin=bridge_mac, src=host,
                             port=port_index)


def make_packet_in(bridge_mac: MAC, src: MAC, dst: MAC,
                   port_index: int) -> ControllerControl:
    return ControllerControl(op=OP_PACKET_IN, origin=bridge_mac, src=src,
                             dst=dst, port=port_index)


def make_flow_install(controller_mac: MAC, src: MAC, dst: MAC,
                      out_port: int, flags: int = 0,
                      detect_time: float = 0.0) -> ControllerControl:
    return ControllerControl(op=OP_FLOW_INSTALL, origin=controller_mac,
                             src=src, dst=dst, port=out_port, flags=flags,
                             time=detect_time)


def make_flow_remove(controller_mac: MAC, src: MAC, dst: MAC,
                     barrier: int) -> ControllerControl:
    return ControllerControl(op=OP_FLOW_REMOVE, origin=controller_mac,
                             src=src, dst=dst, seq=barrier)


def make_remove_ack(bridge_mac: MAC, barrier: int) -> ControllerControl:
    return ControllerControl(op=OP_REMOVE_ACK, origin=bridge_mac,
                             seq=barrier)


def make_flow_expired(bridge_mac: MAC, src: MAC,
                      dst: MAC) -> ControllerControl:
    return ControllerControl(op=OP_FLOW_EXPIRED, origin=bridge_mac, src=src,
                             dst=dst)


def make_flood_rule(controller_mac: MAC, version: int,
                    tree_ports: Tuple[int, ...]) -> ControllerControl:
    return ControllerControl(op=OP_FLOOD_RULE, origin=controller_mac,
                             seq=version, ports=tree_ports)
