"""The out-of-band controller node: global graph, SPF, flow programming.

One :class:`Controller` per network, wired to every bridge by a
dedicated star link of latency ``rtt / 2`` (so any bridge ↔ controller
exchange costs exactly one RTT per round trip). The controller is a
plain :class:`~repro.netsim.node.Node` — not a bridge — flagged
``out_of_band`` so topology oracles, fabric listings and churn link
flaps never see its star.

State is rebuilt entirely from southbound reports: SWITCH_ENTER maps a
star port to a bridge, LINK_REPORTs grow a weighted ``networkx`` graph,
HOST_REPORTs locate endpoints, PACKET_INs trigger SPF path installs and
PORT_STATUS reports trigger the barriered repair exchange.

Determinism discipline: every decision iterates *sorted* structures
(bridge MACs, flow keys), same-instant event handling is
order-insensitive (idempotent edge removal, count-based ack barriers),
and ECMP choice is a CRC32 hash over a lexicographically sorted path
enumeration — so sharded runs replay byte-identically regardless of
how simultaneous reports interleave.

The repair timeline is pinned (tested): for a link cut detected at
``t``, PORT_STATUS reaches the controller at ``t + RTT/2``,
FLOW_REMOVEs reach the affected bridges at ``t + RTT``, REMOVE_ACKs
complete the barrier at ``t + 3·RTT/2``, the recomputed FLOW_INSTALLs
land at ``t + 2·RTT`` and take effect after the flow-mod programming
delay — repair latency = ``2 × rtt + install_latency``.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple, Union
from zlib import crc32

import networkx as nx

from repro.frames.ethernet import ETHERTYPE_CONTROLLER, EthernetFrame
from repro.frames.mac import MAC, ZERO
from repro.netsim.engine import Simulator
from repro.netsim.node import Node, Port
from repro.switching.controller.config import ControllerConfig
from repro.switching.controller.frames import (
    FLAG_FLOOD, FLAG_RECORD_REPAIR, FLAG_UP, ControllerControl, NO_PORT,
    OP_FLOW_EXPIRED, OP_HOST_REPORT, OP_LINK_REPORT, OP_PACKET_IN,
    OP_PORT_STATUS, OP_REMOVE_ACK, OP_SWITCH_ENTER, make_flood_rule,
    make_flow_install, make_flow_remove)

FlowKey = Union[MAC, Tuple[MAC, MAC]]

#: An undirected fabric edge as a canonical sortable key.
EdgeKey = Tuple[int, int]


def _edge_key(a: MAC, b: MAC) -> EdgeKey:
    return (a.value, b.value) if a.value <= b.value else (b.value, a.value)


def _key_sort(key: FlowKey) -> Tuple[int, int, int]:
    """A total order over flow keys (MACs before pairs)."""
    if isinstance(key, tuple):
        return (1, key[0].value, key[1].value)
    return (0, key.value, 0)


@dataclass
class _Flow:
    """Controller-side record of one programmed flow."""

    #: Bridge MAC -> out-port index installed there.
    installs: Dict[MAC, int] = field(default_factory=dict)
    #: Fabric edges the programmed paths traverse.
    edges: Set[EdgeKey] = field(default_factory=set)
    #: Bridges that punted a PACKET_IN for this key (repair re-install
    #: recomputes one path per ingress).
    ingresses: Set[MAC] = field(default_factory=set)
    #: True while a remove barrier is outstanding for this key.
    repairing: bool = False


@dataclass
class _Barrier:
    """One outstanding FLOW_REMOVE barrier (count-based, per bridge)."""

    #: Remove-acks still expected per bridge MAC.
    pending: Dict[MAC, int]
    #: Flow keys being repaired, in deterministic (sorted) order.
    keys: List[FlowKey]
    #: Failure-detection time reported by the dataplane.
    detect_time: float

    @property
    def expected(self) -> int:
        return sum(self.pending.values())


@dataclass
class ControllerCounters:
    switches: int = 0
    link_reports: int = 0
    host_reports: int = 0
    packet_ins: int = 0
    installs_sent: int = 0
    removes_sent: int = 0
    flood_rules_sent: int = 0
    recomputes: int = 0
    repairs_started: int = 0
    repairs_completed: int = 0


class Controller(Node):
    """The centralized control plane (out-of-band, one per network)."""

    out_of_band = True

    def __init__(self, sim: Simulator, name: str, mac: MAC,
                 config: ControllerConfig):
        super().__init__(sim, name)
        self.mac = mac
        self.config = config
        self.counters = ControllerCounters()
        #: The global fabric graph: bridge MACs, weighted edges with a
        #: per-side ``ports`` attribute mapping MAC -> port index.
        self.graph = nx.Graph()
        #: Bridge MAC -> our star port toward it.
        self._port_of: Dict[MAC, Port] = {}
        #: Host MAC -> (attachment bridge MAC, edge port index).
        self.hosts: Dict[MAC, Tuple[MAC, int]] = {}
        #: Flow key -> programmed-flow record.
        self.flows: Dict[FlowKey, _Flow] = {}
        #: Barrier id -> outstanding repair exchange.
        self._barriers: Dict[int, _Barrier] = {}
        #: PACKET_INs punted for a repairing key: key -> asking bridges.
        self._queued: Dict[FlowKey, Set[MAC]] = {}
        self._barrier_seq = 0
        self._flood_version = 0
        self._recompute_event = None

    # -- southbound sends --------------------------------------------------

    def _send(self, bridge: MAC, msg: ControllerControl) -> bool:
        port = self._port_of.get(bridge)
        if port is None or not port.is_up:
            return False
        port.send(EthernetFrame(dst=bridge, src=self.mac,
                                ethertype=ETHERTYPE_CONTROLLER, payload=msg))
        return True

    # -- frame entry -------------------------------------------------------

    def handle_frame(self, port: Port, frame: EthernetFrame) -> None:
        msg = frame.payload
        if not isinstance(msg, ControllerControl):
            return
        op = msg.op
        if op == OP_SWITCH_ENTER:
            self._on_switch_enter(port, msg)
        elif op == OP_LINK_REPORT:
            self._on_link_report(msg)
        elif op == OP_PORT_STATUS:
            self._on_port_status(msg)
        elif op == OP_HOST_REPORT:
            self._on_host_report(msg)
        elif op == OP_PACKET_IN:
            self._on_packet_in(msg)
        elif op == OP_REMOVE_ACK:
            self._on_remove_ack(msg)
        elif op == OP_FLOW_EXPIRED:
            self._on_flow_expired(msg)

    # -- discovery ---------------------------------------------------------

    def _on_switch_enter(self, port: Port, msg: ControllerControl) -> None:
        bridge = msg.origin
        self._port_of[bridge] = port
        if bridge not in self.graph:
            self.graph.add_node(bridge)
        self.counters.switches += 1

    def _on_link_report(self, msg: ControllerControl) -> None:
        a, b, latency = msg.origin, msg.src, msg.time
        self.counters.link_reports += 1
        data = self.graph.get_edge_data(a, b)
        if data is None:
            self.graph.add_edge(a, b, weight=latency, ports={a: msg.port})
        else:
            data["weight"] = latency
            data["ports"][a] = msg.port
        self._schedule_recompute()

    def _on_host_report(self, msg: ControllerControl) -> None:
        host, bridge, port_index = msg.src, msg.origin, msg.port
        self.counters.host_reports += 1
        known = self.hosts.get(host)
        if known is not None and known != (bridge, port_index):
            # The host moved: invalidate every flow involving it so the
            # next miss re-routes to the new attachment point.
            self._invalidate_host_flows(host)
        self.hosts[host] = (bridge, port_index)

    def _invalidate_host_flows(self, host: MAC) -> None:
        stale = [key for key in self.flows
                 if (key == host or (isinstance(key, tuple) and host in key))]
        for key in sorted(stale, key=_key_sort):
            self._remove_flow(key)

    def _remove_flow(self, key: FlowKey) -> None:
        """Fire-and-forget removal (no barrier: acks for id 0 are ignored)."""
        flow = self.flows.pop(key, None)
        if flow is None:
            return
        self._queued.pop(key, None)
        src, dst = self._key_macs(key)
        for bridge in sorted(flow.installs, key=lambda m: m.value):
            if self._send(bridge, make_flow_remove(self.mac, src, dst, 0)):
                self.counters.removes_sent += 1

    # -- carrier / topology change -----------------------------------------

    def _on_port_status(self, msg: ControllerControl) -> None:
        if msg.flags & FLAG_UP:
            return  # link-up is learnt through fresh LINK_REPORTs
        bridge, port_index, neighbor = msg.origin, msg.port, msg.src
        # Hosts that sat on the dead port are gone from this attachment.
        stale_hosts = sorted(
            (host for host, loc in self.hosts.items()
             if loc == (bridge, port_index)), key=lambda m: m.value)
        for host in stale_hosts:
            del self.hosts[host]
            self._invalidate_host_flows(host)
        if neighbor == ZERO or not self.graph.has_edge(bridge, neighbor):
            return  # edge port, or the twin report already removed it
        self.graph.remove_edge(bridge, neighbor)
        self._schedule_recompute()
        self._start_repair(_edge_key(bridge, neighbor), msg.time)

    def link_state_changed(self, port: Port, up: bool) -> None:
        """A star link changed carrier: a bridge died or came back.

        Death prunes the bridge from the graph and settles any barrier
        acks it can no longer send; resurrection is handled by the
        bridge's own SWITCH_ENTER.
        """
        if up:
            return
        dead = next((mac for mac, p in self._port_of.items() if p is port),
                    None)
        if dead is None:
            return
        if dead in self.graph:
            cut_edges = [_edge_key(dead, peer)
                         for peer in self.graph.neighbors(dead)]
            self.graph.remove_node(dead)
            self.graph.add_node(dead)
            self._schedule_recompute()
            for edge in sorted(cut_edges):
                self._start_repair(edge, self.sim.now)
        for barrier_id in sorted(self._barriers):
            barrier = self._barriers[barrier_id]
            if barrier.pending.pop(dead, 0) and barrier.expected == 0:
                self._complete_barrier(barrier_id)

    # -- repair (barriered remove -> recompute -> install) ------------------

    def _start_repair(self, edge: EdgeKey, detect_time: float) -> None:
        affected = sorted(
            (key for key, flow in self.flows.items()
             if edge in flow.edges and not flow.repairing),
            key=_key_sort)
        if not affected:
            return
        self._barrier_seq += 1
        barrier_id = self._barrier_seq
        pending: Dict[MAC, int] = {}
        for key in affected:
            flow = self.flows[key]
            flow.repairing = True
            src, dst = self._key_macs(key)
            for bridge in sorted(flow.installs, key=lambda m: m.value):
                if self._send(bridge, make_flow_remove(self.mac, src, dst,
                                                       barrier_id)):
                    self.counters.removes_sent += 1
                    pending[bridge] = pending.get(bridge, 0) + 1
        self.counters.repairs_started += 1
        self._barriers[barrier_id] = _Barrier(
            pending=pending, keys=affected, detect_time=detect_time)
        if not pending:
            self._complete_barrier(barrier_id)

    def _on_remove_ack(self, msg: ControllerControl) -> None:
        barrier = self._barriers.get(msg.seq)
        if barrier is None:
            return
        left = barrier.pending.get(msg.origin, 0)
        if left <= 1:
            barrier.pending.pop(msg.origin, None)
        else:
            barrier.pending[msg.origin] = left - 1
        if barrier.expected == 0:
            self._complete_barrier(msg.seq)

    def _complete_barrier(self, barrier_id: int) -> None:
        barrier = self._barriers.pop(barrier_id)
        for key in barrier.keys:
            flow = self.flows.get(key)
            if flow is None:
                continue
            ingresses = sorted(flow.ingresses, key=lambda m: m.value)
            flow.installs.clear()
            flow.edges.clear()
            flow.repairing = False
            src, dst = self._key_macs(key)
            for ingress in ingresses:
                self._install_path(key, ingress, src, dst, record=True,
                                   detect_time=barrier.detect_time)
            queued = self._queued.pop(key, None)
            if queued:
                for asker in sorted(queued, key=lambda m: m.value):
                    if asker not in ingresses:
                        self._install_path(key, asker, src, dst)
        self.counters.repairs_completed += 1

    # -- packet-in / path programming --------------------------------------

    def _on_packet_in(self, msg: ControllerControl) -> None:
        self.counters.packet_ins += 1
        asker, src, dst = msg.origin, msg.src, msg.dst
        key = self._key(src, dst)
        flow = self.flows.get(key)
        if flow is not None and flow.repairing:
            self._queued.setdefault(key, set()).add(asker)
            return
        self._install_path(key, asker, src, dst)
        # Pre-warm the reverse direction so the reply does not pay its
        # own packet-in round trip (the OpenFlow reactive idiom).
        rkey = self._key(dst, src)
        if self.flows.get(rkey) is None and src.is_unicast:
            rloc = self.hosts.get(src)
            if rloc is not None:
                dst_loc = self.hosts.get(dst)
                if dst_loc is not None:
                    self._install_path(rkey, dst_loc[0], dst, src)

    def _key(self, src: MAC, dst: MAC) -> FlowKey:
        return (src, dst) if self.config.ecmp else dst

    @staticmethod
    def _key_macs(key: FlowKey) -> Tuple[MAC, MAC]:
        if isinstance(key, tuple):
            return key
        return ZERO, key

    def _install_path(self, key: FlowKey, ingress: MAC, src: MAC, dst: MAC,
                      record: bool = False,
                      detect_time: float = 0.0) -> None:
        """Program one SPF path from *ingress* to *dst*'s bridge.

        Unknown or unreachable destinations get a flood-verdict entry at
        the ingress (short idle timeout): frames follow the broadcast
        tree until the destination is reported.
        """
        loc = self.hosts.get(dst)
        flags = FLAG_RECORD_REPAIR if record else 0
        if loc is None:
            self._send_install(key, ingress, src, dst, NO_PORT,
                               flags=FLAG_FLOOD)
            return
        dst_bridge, dst_port = loc
        path = self._path(ingress, dst_bridge, src, dst)
        if path is None:
            self._send_install(key, ingress, src, dst, NO_PORT,
                               flags=FLAG_FLOOD)
            return
        flow = self.flows.get(key)
        if flow is None:
            flow = self.flows[key] = _Flow()
        flow.ingresses.add(ingress)
        hops: List[Tuple[MAC, int]] = []
        for here, there in zip(path, path[1:]):
            ports = self.graph.edges[here, there].get("ports", {})
            out = ports.get(here)
            if out is None:
                # One-sided adjacency (report still in flight): treat
                # as unreachable rather than programming a wrong port.
                self._send_install(key, ingress, src, dst, NO_PORT,
                                   flags=FLAG_FLOOD)
                return
            hops.append((here, out))
            flow.edges.add(_edge_key(here, there))
        hops.append((dst_bridge, dst_port))
        for bridge, out in hops:
            flow.installs[bridge] = out
            self._send_install(key, bridge, src, dst, out,
                               flags=flags if bridge == ingress else 0,
                               detect_time=detect_time)

    def _send_install(self, key: FlowKey, bridge: MAC, src: MAC, dst: MAC,
                      out_port: int, flags: int = 0,
                      detect_time: float = 0.0) -> None:
        wire_src, wire_dst = self._key_macs(key)
        if self._send(bridge, make_flow_install(
                self.mac, wire_src, wire_dst, out_port, flags=flags,
                detect_time=detect_time)):
            self.counters.installs_sent += 1

    def _on_flow_expired(self, msg: ControllerControl) -> None:
        key = (msg.src, msg.dst) if msg.src != ZERO else msg.dst
        flow = self.flows.get(key)
        if flow is None or flow.repairing:
            return
        flow.installs.pop(msg.origin, None)
        flow.ingresses.discard(msg.origin)
        if not flow.installs:
            del self.flows[key]
            self._queued.pop(key, None)

    # -- SPF ---------------------------------------------------------------

    def _dijkstra(self, root: MAC) -> Dict[MAC, float]:
        """Shortest distances from *root*, deterministic pop order."""
        graph = self.graph
        dist: Dict[MAC, float] = {root: 0.0}
        heap: List[Tuple[float, int, MAC]] = [(0.0, root.value, root)]
        done: Set[MAC] = set()
        while heap:
            d, _tie, node = heapq.heappop(heap)
            if node in done:
                continue
            done.add(node)
            for neighbor in sorted(graph.adj[node],
                                   key=lambda m: m.value):
                nd = d + graph.edges[node, neighbor]["weight"]
                old = dist.get(neighbor)
                if old is None or nd < old:
                    dist[neighbor] = nd
                    heapq.heappush(heap, (nd, neighbor.value, neighbor))
        return dist

    def _path(self, a: MAC, b: MAC, src: MAC,
              dst: MAC) -> Optional[Tuple[MAC, ...]]:
        """A deterministic shortest path from bridge *a* to bridge *b*.

        Without ECMP: the unique lowest-MAC tie-broken SPF path. With
        ECMP: all equal-cost shortest paths are enumerated in
        lexicographic order (capped) and one is picked by a CRC32 hash
        of the (src, dst) pair — a stable per-flow split.
        """
        if a not in self.graph or b not in self.graph:
            return None
        if a == b:
            return (a,)
        dist = self._dijkstra(a)
        if b not in dist:
            return None
        if not self.config.ecmp:
            return self._walk_back(a, b, dist)
        paths = self._all_shortest(a, b, dist)
        if not paths:
            return None
        pick = crc32(src.to_bytes() + dst.to_bytes()) % len(paths)
        return paths[pick]

    def _preds(self, v: MAC, dist: Dict[MAC, float]) -> List[MAC]:
        """Neighbors of *v* on some shortest path, lowest MAC first."""
        dv = dist[v]
        out = []
        for u in sorted(self.graph.adj[v], key=lambda m: m.value):
            du = dist.get(u)
            if du is not None \
                    and du + self.graph.edges[u, v]["weight"] == dv:
                out.append(u)
        return out

    def _walk_back(self, a: MAC, b: MAC,
                   dist: Dict[MAC, float]) -> Optional[Tuple[MAC, ...]]:
        path = [b]
        node = b
        while node != a:
            preds = self._preds(node, dist)
            if not preds:
                return None
            node = preds[0]
            path.append(node)
        return tuple(reversed(path))

    def _all_shortest(self, a: MAC, b: MAC,
                      dist: Dict[MAC, float]) -> List[Tuple[MAC, ...]]:
        """Equal-cost shortest paths a→b in lexicographic order, capped."""
        cap = max(1, self.config.ecmp_max_paths)
        paths: List[Tuple[MAC, ...]] = []

        def extend(node: MAC, suffix: Tuple[MAC, ...]) -> None:
            if len(paths) >= cap:
                return
            if node == a:
                paths.append((a,) + suffix)
                return
            for pred in self._preds(node, dist):
                extend(pred, (node,) + suffix)
                if len(paths) >= cap:
                    return

        extend(b, ())
        return paths

    # -- flood tree --------------------------------------------------------

    def _schedule_recompute(self) -> None:
        if self._recompute_event is None:
            self._recompute_event = self.sim.schedule(
                self.config.recompute_debounce, self._recompute_flood)

    def _recompute_flood(self) -> None:
        """Recompute the broadcast tree and push FLOOD_RULEs (debounced)."""
        self._recompute_event = None
        self.counters.recomputes += 1
        if not self._port_of:
            return
        tree_ports: Dict[MAC, Set[int]] = {}
        if self.graph.number_of_nodes():
            root = min(self.graph.nodes, key=lambda m: m.value)
            parent = self._spf_parents(root)
            for child, par in parent.items():
                if par is None:
                    continue
                ports = self.graph.edges[child, par].get("ports", {})
                child_port = ports.get(child)
                par_port = ports.get(par)
                if child_port is None or par_port is None:
                    continue
                tree_ports.setdefault(child, set()).add(child_port)
                tree_ports.setdefault(par, set()).add(par_port)
        self._flood_version += 1
        for bridge in sorted(self._port_of, key=lambda m: m.value):
            ports = tuple(sorted(tree_ports.get(bridge, ())))
            if self._send(bridge, make_flood_rule(self.mac,
                                                  self._flood_version,
                                                  ports)):
                self.counters.flood_rules_sent += 1

    def _spf_parents(self, root: MAC) -> Dict[MAC, Optional[MAC]]:
        """SPF parent per node (lowest-MAC tie-broken, like SPB's ECT)."""
        graph = self.graph
        dist: Dict[MAC, float] = {root: 0.0}
        parent: Dict[MAC, Optional[MAC]] = {root: None}
        heap: List[Tuple[float, int, MAC]] = [(0.0, root.value, root)]
        done: Set[MAC] = set()
        while heap:
            d, _tie, node = heapq.heappop(heap)
            if node in done:
                continue
            done.add(node)
            for neighbor in sorted(graph.adj[node], key=lambda m: m.value):
                nd = d + graph.edges[node, neighbor]["weight"]
                old = dist.get(neighbor)
                better = old is None or nd < old
                same_but_lower = (old is not None and nd == old
                                  and parent[neighbor] is not None
                                  and node.value < parent[neighbor].value)
                if better or same_but_lower:
                    dist[neighbor] = nd
                    parent[neighbor] = node
                    heapq.heappush(heap, (nd, neighbor.value, neighbor))
        return parent

    def __repr__(self) -> str:
        return (f"<Controller {self.name} switches={len(self._port_of)} "
                f"edges={self.graph.number_of_edges()} "
                f"flows={len(self.flows)}>")
