"""Configuration for the centralized controller family."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ControllerConfig:
    """Tunables of the controller family (one instance per network).

    ``rtt``
        Bridge ↔ controller round-trip time. Every control-channel star
        link gets a one-way latency of ``rtt / 2``, so a packet-in plus
        its flow-install costs exactly one RTT and the barriered repair
        exchange (report → remove → ack → install) costs two.
    ``install_latency``
        Flow-mod programming delay at the bridge: an arriving
        FLOW_INSTALL takes effect (and flushes buffered frames) this
        long after delivery, modeling TCAM/flow-table update cost.
    """

    #: Controller round-trip time in seconds (star link latency = rtt/2).
    rtt: float = 2e-3
    #: Flow-mod programming delay at the bridge (seconds).
    install_latency: float = 50e-6
    #: Idle timeout of installed flow entries (seconds).
    flow_idle: float = 5.0
    #: Hard timeout of installed flow entries (seconds).
    flow_hard: float = 60.0
    #: Idle timeout of flood-verdict entries for unknown destinations.
    flow_idle_unknown: float = 0.5
    #: Split flows across equal-cost shortest paths by (src, dst) hash.
    ecmp: bool = False
    #: Maximum equal-cost paths enumerated per ECMP decision.
    ecmp_max_paths: int = 32
    #: LLDP neighbor-discovery probe period (seconds).
    lldp_interval: float = 1.0
    #: Debounce window for flood-tree recomputation after topology
    #: change reports (seconds). Flow repair is NOT debounced.
    recompute_debounce: float = 0.05
    #: Per-flow-key frame buffer while a packet-in is outstanding.
    miss_buffer: int = 32
    #: Broadcast buffer while no flood rule has been installed yet.
    broadcast_buffer: int = 64


DEFAULT_CONTROLLER_CONFIG = ControllerConfig()
