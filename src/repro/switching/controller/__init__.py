"""The centralized SDN/SPF controller family — the fifth baseline.

The paper's ARP-Path argument is usually framed against two classes of
rival: distributed link-state bridging (the ``spb`` family) and a
*centralized* controller computing shortest paths over a global view.
This package supplies that missing baseline: an out-of-band
:class:`~repro.switching.controller.controller.Controller` node with an
LLDP-fed ``networkx`` graph, and
:class:`~repro.switching.controller.bridge.ControllerBridge` dataplanes
that punt table misses as packet-ins and hold flow entries with
idle/hard timeouts.

Wiring is automatic: the family factory attaches a ``network_finalize``
hook that :meth:`repro.topology.builder.Network.finalize_topology` runs
once the fabric is built — it creates the controller and one dedicated
star link (latency ``rtt / 2``, infinite bandwidth) to every bridge.
Experiments and topologies need no controller-specific code.
"""

from __future__ import annotations

import repro.switching.controller.codec  # noqa: F401  (codec registration)
from repro.frames.ethernet import ETHERTYPE_CONTROLLER
from repro.frames.mac import MAC, mac_for_controller
from repro.netsim.engine import Simulator
from repro.switching.base import BridgeFamily, FamilyOption, register_family
from repro.switching.controller.bridge import ControllerBridge
from repro.switching.controller.config import (ControllerConfig,
                                               DEFAULT_CONTROLLER_CONFIG)
from repro.switching.controller.controller import Controller

__all__ = ["Controller", "ControllerBridge", "ControllerConfig",
           "DEFAULT_CONTROLLER_CONFIG", "wire_controller"]

#: Default warmup: LLDP discovery plus the debounced first flood rule
#: settle within tens of milliseconds of simulated time; 3 s is ample.
CONTROLLER_WARMUP = 3.0


def wire_controller(net, config: ControllerConfig) -> "Controller":
    """Create the controller node and its star links on *net*.

    Idempotent per network (``finalize_topology`` also guards): one
    controller, one link per bridge, wired in sorted bridge-name order
    so port indices are deterministic.
    """
    existing = getattr(net, "controllers", None)
    if existing:
        return next(iter(existing.values()))
    controller = Controller(net.sim, "controller0", mac_for_controller(0),
                            config)
    net.add_out_of_band(controller)
    for bridge_name in sorted(net.bridges):
        net.link(controller.name, bridge_name, latency=config.rtt / 2,
                 bandwidth=None)
    return controller


def _controller_factory(config: ControllerConfig = None, **overrides):
    """A factory producing controller-managed bridges.

    Accepts either a ready :class:`ControllerConfig` or individual
    keyword overrides for its fields. The returned closure carries the
    ``network_finalize`` hook that wires the out-of-band control plane.
    """
    if config is None:
        config = ControllerConfig(**overrides) if overrides \
            else DEFAULT_CONTROLLER_CONFIG
    elif overrides:
        raise TypeError("pass either config= or field overrides, not both")

    def build(sim: Simulator, name: str, mac: MAC) -> ControllerBridge:
        return ControllerBridge(sim, name, mac, config=config)

    def finalize(net) -> None:
        wire_controller(net, config)

    build.network_finalize = finalize
    return build


_DEFAULTS = DEFAULT_CONTROLLER_CONFIG

register_family(BridgeFamily(
    name="controller",
    title="Centralized SDN controller: global SPF over an out-of-band "
          "control channel",
    factory=_controller_factory,
    warmup=CONTROLLER_WARMUP,
    loop_safe=True,
    order=50,
    control_ethertypes=(ETHERTYPE_CONTROLLER,),
    options=(
        FamilyOption("rtt", "float", _DEFAULTS.rtt,
                     "bridge-controller round-trip time (seconds)"),
        FamilyOption("install_latency", "float", _DEFAULTS.install_latency,
                     "flow-mod programming delay at the bridge (seconds)"),
        FamilyOption("flow_idle", "float", _DEFAULTS.flow_idle,
                     "flow entry idle timeout (seconds)"),
        FamilyOption("flow_hard", "float", _DEFAULTS.flow_hard,
                     "flow entry hard timeout (seconds)"),
        FamilyOption("ecmp", "bool", _DEFAULTS.ecmp,
                     "hash flows across equal-cost shortest paths"),
        FamilyOption("lldp_interval", "float", _DEFAULTS.lldp_interval,
                     "LLDP neighbor probe period (seconds)"),
        FamilyOption("recompute_debounce", "float",
                     _DEFAULTS.recompute_debounce,
                     "flood-tree recompute debounce window (seconds)"),
    ),
))
