"""A controller-managed bridge: no local intelligence, only a flow table.

The dataplane half of the centralized family. The bridge keeps an
:class:`~repro.netsim.aging.AgingStore` of installed flow entries with
idle and hard timeouts; a table miss buffers the frame and punts a
PACKET_IN to the controller over the dedicated out-of-band star link.
Broadcast forwards along the controller-pushed flood tree (plus local
edge ports); until the first FLOOD_RULE arrives broadcasts buffer, which
is what makes the family loop-safe from time zero.

Neighbor discovery is LLDP-style: periodic link-local probes carry the
send timestamp, so the receiver measures the link latency and reports
the adjacency northbound — that is how the controller's global graph
gets weighted edges without ever seeing the fabric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.frames.ethernet import (ETHERTYPE_CONTROLLER, EthernetFrame)
from repro.frames.mac import MAC, ZERO
from repro.netsim.aging import AgingStore
from repro.netsim.engine import Simulator
from repro.netsim.node import Port
from repro.switching.base import Bridge, Dataplane
from repro.switching.controller.config import (ControllerConfig,
                                               DEFAULT_CONTROLLER_CONFIG)
from repro.switching.controller.frames import (
    FLAG_FLOOD, FLAG_RECORD_REPAIR, ControllerControl, LLDP_MULTICAST,
    OP_FLOOD_RULE, OP_FLOW_INSTALL, OP_FLOW_REMOVE, OP_LLDP,
    make_flow_expired, make_host_report, make_link_report, make_lldp,
    make_packet_in, make_port_status, make_remove_ack, make_switch_enter)

#: Flow keys: destination MAC (destination-keyed mode) or a
#: (src, dst) pair (ECMP mode).
FlowKey = Union[MAC, Tuple[MAC, MAC]]

#: The controller pipeline: one ethertype, typed payload required.
CONTROLLER_DATAPLANE = Dataplane(
    control_ethertypes=(ETHERTYPE_CONTROLLER,),
    control_payload=ControllerControl)


class FlowEntry:
    """One installed flow-table entry (mutable ``expires`` for aging)."""

    __slots__ = ("out_port", "flood", "idle", "expires", "hard_deadline")

    def __init__(self, out_port: int, flood: bool, idle: float,
                 expires: float, hard_deadline: float):
        self.out_port = out_port
        self.flood = flood
        self.idle = idle
        self.expires = expires
        self.hard_deadline = hard_deadline

    def refresh(self, now: float) -> None:
        """Idle-timer refresh, capped by the hard deadline."""
        self.expires = min(now + self.idle, self.hard_deadline)

    def __repr__(self) -> str:
        return (f"<FlowEntry out={self.out_port} flood={self.flood} "
                f"expires={self.expires:.6f}>")


@dataclass
class ControllerBridgeCounters:
    packet_ins: int = 0
    flow_installs: int = 0
    flow_removes: int = 0
    flow_expired: int = 0
    misses: int = 0
    frames_buffered: int = 0
    drops_buffer: int = 0
    broadcasts_buffered: int = 0
    drops_broadcast_buffer: int = 0
    lldp_sent: int = 0
    reports_sent: int = 0
    flood_rules: int = 0


class ControllerBridge(Bridge):
    """A bridge whose forwarding state is managed by a central controller."""

    dataplane = CONTROLLER_DATAPLANE

    def __init__(self, sim: Simulator, name: str, mac: MAC,
                 config: ControllerConfig = DEFAULT_CONTROLLER_CONFIG):
        super().__init__(sim, name, mac)
        self.config = config
        self.ctl_counters = ControllerBridgeCounters()
        #: Installed flow entries; expiry notifies the controller.
        self.flows = AgingStore(sim=sim, on_reap=self._on_flow_reap)
        #: Frames buffered per flow key while a PACKET_IN is outstanding.
        self._pending: Dict[FlowKey, List[Tuple[Port, EthernetFrame]]] = {}
        #: LLDP-learnt neighbor bridge MAC per port index.
        self._neighbor: Dict[int, MAC] = {}
        #: Last reported latency per port index (change detection).
        self._latency: Dict[int, float] = {}
        #: Locally seen hosts: MAC -> port index (for HOST_REPORTs).
        self._local_hosts: Dict[MAC, int] = {}
        #: Flood-tree port indices pushed by the controller, or None
        #: before the first FLOOD_RULE (broadcasts buffer meanwhile).
        self._tree_ports: Optional[frozenset] = None
        self._flood_version = -1
        self._bcast_buffer: List[Tuple[Port, EthernetFrame]] = []
        #: Completed repair durations (detect -> flow active), seconds.
        self.repair_times: List[float] = []
        self._controller_port: Optional[Port] = None
        self._controller_mac: Optional[MAC] = None
        self._lldp_timer = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        super().start()
        self._find_controller_port()
        self._send_switch_enter()
        self._send_lldp()
        self._lldp_timer = self.sim.schedule_periodic(
            self.config.lldp_interval, self._send_lldp)

    def stop(self) -> None:
        if self._lldp_timer is not None:
            self._lldp_timer.stop()
            self._lldp_timer = None

    def reset_state(self) -> None:
        """Power-cycle wipe: flow table, adjacency and buffered frames.

        ``repair_times`` and counters survive, like every family's
        mechanism counters do.
        """
        self.flows.clear()
        self._pending.clear()
        self._neighbor.clear()
        self._latency.clear()
        self._local_hosts.clear()
        self._tree_ports = None
        self._flood_version = -1
        self._bcast_buffer.clear()

    def _find_controller_port(self) -> None:
        for port in self.attached_ports:
            peer = port.peer
            if peer is not None and peer.node.out_of_band:
                self._controller_port = port
                self._controller_mac = peer.node.mac
                return

    def is_controller_port(self, port: Port) -> bool:
        return port is self._controller_port

    # -- southbound channel ------------------------------------------------

    def _send_controller(self, msg: ControllerControl) -> None:
        port = self._controller_port
        if port is None or not port.is_up or self._controller_mac is None:
            return
        self.counters.control_sent += 1
        port.send(EthernetFrame(dst=self._controller_mac, src=self.mac,
                                ethertype=ETHERTYPE_CONTROLLER, payload=msg))

    def _send_switch_enter(self) -> None:
        self._send_controller(make_switch_enter(self.mac))

    def _send_lldp(self, only: Optional[Port] = None) -> None:
        ports = (only,) if only is not None else self.attached_ports
        now = self.sim.now
        for port in ports:
            if port is self._controller_port or not port.is_up:
                continue
            self.ctl_counters.lldp_sent += 1
            self.counters.control_sent += 1
            port.send(EthernetFrame(
                dst=LLDP_MULTICAST, src=self.mac,
                ethertype=ETHERTYPE_CONTROLLER,
                payload=make_lldp(self.mac, port.index, now)))

    # -- flow keys ---------------------------------------------------------

    def _key_of(self, src: MAC, dst: MAC) -> FlowKey:
        return (src, dst) if self.config.ecmp else dst

    @staticmethod
    def _key_from_msg(msg: ControllerControl) -> FlowKey:
        return (msg.src, msg.dst) if msg.src != ZERO else msg.dst

    # -- control plane (on_control) ----------------------------------------

    def on_control(self, port: Port, frame: EthernetFrame) -> None:
        self.counters.control_received += 1
        msg = frame.payload
        op = msg.op
        if op == OP_LLDP:
            self._handle_lldp(port, msg)
        elif op == OP_FLOW_INSTALL:
            self.sim.schedule(self.config.install_latency,
                              self._apply_install, msg)
        elif op == OP_FLOW_REMOVE:
            self._handle_remove(msg)
        elif op == OP_FLOOD_RULE:
            self._handle_flood_rule(msg)
        # Anything else on the wire is northbound traffic that only the
        # controller interprets; a bridge ignores it.

    def _handle_lldp(self, port: Port, msg: ControllerControl) -> None:
        latency = self.sim.now - msg.time
        known = self._neighbor.get(port.index)
        changed = known != msg.origin \
            or self._latency.get(port.index) != latency
        self._neighbor[port.index] = msg.origin
        self._latency[port.index] = latency
        if changed:
            self.ctl_counters.reports_sent += 1
            self._send_controller(make_link_report(
                self.mac, msg.origin, port.index, latency))

    def _apply_install(self, msg: ControllerControl) -> None:
        key = self._key_from_msg(msg)
        flood = bool(msg.flags & FLAG_FLOOD)
        idle = self.config.flow_idle_unknown if flood \
            else self.config.flow_idle
        now = self.sim.now
        hard = now + self.config.flow_hard
        entry = FlowEntry(out_port=msg.port, flood=flood, idle=idle,
                          expires=min(now + idle, hard), hard_deadline=hard)
        self.flows.put(key, entry)
        self.ctl_counters.flow_installs += 1
        if msg.flags & FLAG_RECORD_REPAIR:
            self.repair_times.append(now - msg.time)
        buffered = self._pending.pop(key, None)
        if buffered:
            for in_port, pending_frame in buffered:
                self._forward_entry(in_port, pending_frame, entry)

    def _handle_remove(self, msg: ControllerControl) -> None:
        key = self._key_from_msg(msg)
        self.flows.pop(key)
        self.ctl_counters.flow_removes += 1
        self._send_controller(make_remove_ack(self.mac, msg.seq))

    def _handle_flood_rule(self, msg: ControllerControl) -> None:
        if msg.seq < self._flood_version:
            return
        self._flood_version = msg.seq
        self._tree_ports = frozenset(msg.ports)
        self.ctl_counters.flood_rules += 1
        if self._bcast_buffer:
            buffered, self._bcast_buffer = self._bcast_buffer, []
            for in_port, pending_frame in buffered:
                self._flood_tree(pending_frame, exclude=in_port)

    def _on_flow_reap(self, key: FlowKey, entry: FlowEntry) -> None:
        self.ctl_counters.flow_expired += 1
        if isinstance(key, tuple):
            src, dst = key
        else:
            src, dst = ZERO, key
        self._send_controller(make_flow_expired(self.mac, src, dst))

    # -- data plane --------------------------------------------------------

    def admit_data(self, port: Port, frame: EthernetFrame) -> bool:
        if port is self._controller_port:
            return False
        src = frame.src
        if src.is_unicast and port.index not in self._neighbor \
                and self._local_hosts.get(src) != port.index:
            self._local_hosts[src] = port.index
            self.ctl_counters.reports_sent += 1
            self._send_controller(make_host_report(self.mac, src,
                                                   port.index))
        return True

    def on_broadcast(self, port: Port, frame: EthernetFrame) -> None:
        if self._tree_ports is None:
            if len(self._bcast_buffer) < self.config.broadcast_buffer:
                self.ctl_counters.broadcasts_buffered += 1
                self._bcast_buffer.append((port, frame))
            else:
                self.ctl_counters.drops_broadcast_buffer += 1
            return
        self._flood_tree(frame, exclude=port)

    def _flood_tree(self, frame: EthernetFrame,
                    exclude: Optional[Port]) -> None:
        """Flood on the controller-pushed tree ports plus edge ports."""
        tree = self._tree_ports or frozenset()
        copies = 0
        for port in self.attached_ports:
            if port is exclude or port is self._controller_port:
                continue
            if port.index not in tree and port.index in self._neighbor:
                continue  # non-tree fabric port: the tree covers it
            if not port.is_up:
                continue
            copies += 1
            port.send(frame)
        self.counters.flooded_frames += 1
        self.counters.flooded_copies += copies

    def on_unicast(self, port: Port, frame: EthernetFrame) -> None:
        if frame.dst == self.mac:
            self.filter_frame()
            return
        key = self._key_of(frame.src, frame.dst)
        entry = self.flows.get(key, self.sim.now)
        if entry is None:
            self._miss(port, frame, key)
            return
        if not entry.flood:
            out = self.ports[entry.out_port]
            if not out.is_up:
                # The installed port lost carrier: drop the entry and
                # punt, exactly like a fresh miss — the controller is
                # repairing (or will re-route on this PACKET_IN).
                self.flows.pop(key)
                self._miss(port, frame, key)
                return
        self._forward_entry(port, frame, entry)
        entry.refresh(self.sim.now)

    def _forward_entry(self, in_port: Port, frame: EthernetFrame,
                       entry: FlowEntry) -> None:
        if entry.flood:
            self._flood_tree(frame, exclude=in_port)
            return
        out = self.ports[entry.out_port]
        if out is in_port or not out.is_up:
            self.filter_frame()
            return
        self.forward(out, frame)

    def _miss(self, port: Port, frame: EthernetFrame, key: FlowKey) -> None:
        self.ctl_counters.misses += 1
        buffered = self._pending.get(key)
        if buffered is not None:
            if len(buffered) < self.config.miss_buffer:
                self.ctl_counters.frames_buffered += 1
                buffered.append((port, frame))
            else:
                self.ctl_counters.drops_buffer += 1
            return
        self._pending[key] = [(port, frame)]
        self.ctl_counters.frames_buffered += 1
        self.ctl_counters.packet_ins += 1
        self._send_controller(make_packet_in(self.mac, frame.src, frame.dst,
                                             port.index))

    # -- carrier events ----------------------------------------------------

    def link_state_changed(self, port: Port, up: bool) -> None:
        if port is self._controller_port:
            return
        if up:
            if self.started:
                self._send_lldp(only=port)
            return
        neighbor = self._neighbor.pop(port.index, None)
        self._latency.pop(port.index, None)
        stale_hosts = [mac for mac, idx in self._local_hosts.items()
                       if idx == port.index]
        for mac in stale_hosts:
            del self._local_hosts[mac]
        # Drop entries out the dead port locally; traffic re-punts as
        # misses while the controller runs the barriered repair.
        self.flows.pop_matching(
            lambda _key, entry: not entry.flood
            and entry.out_port == port.index)
        if self.started:
            self._send_controller(make_port_status(
                self.mac, port.index, up=False,
                neighbor=neighbor if neighbor is not None else ZERO,
                edge=neighbor is None, now=self.sim.now))

    # -- introspection -----------------------------------------------------

    def state_entries(self, now: Optional[float] = None) -> int:
        """Installed flow entries live at *now* — the state the
        controller must program into the fabric."""
        return self.flows.live_count(self.sim.now if now is None else now)

    def repair_events(self) -> List[float]:
        return list(self.repair_times)

    def protocol_counters(self) -> Dict[str, int]:
        c = self.ctl_counters
        return {
            "packet_ins": c.packet_ins,
            "flow_installs": c.flow_installs,
            "flow_removes": c.flow_removes,
            "flow_expired": c.flow_expired,
            "misses": c.misses,
            "frames_buffered": c.frames_buffered,
            "drops_buffer": c.drops_buffer + c.drops_broadcast_buffer,
            "flood_rules": c.flood_rules,
            "repairs_completed": len(self.repair_times),
        }

    def __repr__(self) -> str:
        return (f"<ControllerBridge {self.name} flows={len(self.flows)} "
                f"tree={'yes' if self._tree_ports is not None else 'no'}>")
