"""Wire codec for controller-channel messages.

Registered with :func:`repro.frames.codec.register_ethertype` at import
so cross-shard transport (:mod:`repro.netsim.sync`) can serialise
controller frames losslessly — the round trip must be exact or sharded
runs would diverge from single-engine runs.

Layout (network byte order), matching
:data:`repro.switching.controller.frames.FIXED_WIRE_SIZE`::

    op(1) origin(6) src(6) dst(6) port(2, signed) seq(4) time(8, double)
    flags(1) nports(1) [port(2)] * nports

Decoding uses ``unpack_from`` and the ``nports`` count, so the zero
padding short frames carry on the wire is ignored.
"""

from __future__ import annotations

import struct

from repro.frames.codec import CodecError, register_ethertype
from repro.frames.ethernet import ETHERTYPE_CONTROLLER
from repro.frames.mac import MAC
from repro.switching.controller.frames import ControllerControl

_FIXED = struct.Struct("!B6s6s6shIdBB")
_PORT = struct.Struct("!H")


def encode_controller(msg: ControllerControl) -> bytes:
    ports = msg.ports
    raw = _FIXED.pack(msg.op, msg.origin.to_bytes(), msg.src.to_bytes(),
                      msg.dst.to_bytes(), msg.port, msg.seq, msg.time,
                      msg.flags, len(ports))
    if ports:
        raw += struct.pack(f"!{len(ports)}H", *ports)
    return raw


def decode_controller(data: bytes) -> ControllerControl:
    if len(data) < _FIXED.size:
        raise CodecError(f"controller message too short: {len(data)} bytes")
    (op, origin, src, dst, port, seq, time, flags,
     nports) = _FIXED.unpack_from(data)
    end = _FIXED.size + 2 * nports
    if len(data) < end:
        raise CodecError(f"controller message truncated port list: "
                         f"{len(data)} < {end} bytes")
    ports = struct.unpack_from(f"!{nports}H", data, _FIXED.size) \
        if nports else ()
    try:
        return ControllerControl(op=op, origin=MAC(origin), src=MAC(src),
                                 dst=MAC(dst), port=port, seq=seq,
                                 time=time, flags=flags, ports=ports)
    except ValueError as exc:
        raise CodecError(str(exc)) from exc


register_ethertype(ETHERTYPE_CONTROLLER, encode_controller,
                   decode_controller)
