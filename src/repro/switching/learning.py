"""A plain 802.1 transparent learning switch (no loop protection).

Safe only on loop-free topologies; it exists as (a) the data plane the
STP bridge runs on its forwarding ports and (b) a didactic baseline that
demonstrably melts down on loops (a test asserts the broadcast storm).
"""

from __future__ import annotations

from repro.frames.ethernet import EthernetFrame
from repro.frames.mac import MAC
from repro.netsim.engine import Simulator
from repro.netsim.node import Port
from repro.switching.base import (Bridge, BridgeFamily, FamilyOption,
                                  register_family)
from repro.switching.table import DEFAULT_AGING_TIME, ForwardingTable


class LearningSwitch(Bridge):
    """Learn source addresses; forward known unicast, flood the rest.

    No control protocol: the inherited data-only dataplane routes every
    frame to :meth:`on_broadcast`/:meth:`on_unicast` after the source
    learning done in :meth:`admit_data`.
    """

    def __init__(self, sim: Simulator, name: str, mac: MAC,
                 aging_time: float = DEFAULT_AGING_TIME):
        super().__init__(sim, name, mac)
        self.fdb = ForwardingTable(aging_time=aging_time, sim=sim)

    def admit_data(self, port: Port, frame: EthernetFrame) -> bool:
        self.fdb.learn(frame.src, port, self.sim.now)
        return True

    def on_broadcast(self, port: Port, frame: EthernetFrame) -> None:
        self.flood_data(frame, exclude=port)

    def on_unicast(self, port: Port, frame: EthernetFrame) -> None:
        out_port = self.fdb.lookup(frame.dst, self.sim.now)
        if out_port is None:
            self.flood_data(frame, exclude=port)
        elif out_port is port:
            self.filter_frame()
        else:
            self.forward(out_port, frame)

    def link_state_changed(self, port: Port, up: bool) -> None:
        if not up:
            self.fdb.flush_port(port)

    def reset_state(self) -> None:
        """Power-cycle wipe: forget every learnt address."""
        self.fdb.flush()


def _learning_factory(aging_time: float = DEFAULT_AGING_TIME):
    """A factory producing plain learning switches (loop-unsafe)."""

    def build(sim: Simulator, name: str, mac: MAC) -> LearningSwitch:
        return LearningSwitch(sim, name, mac, aging_time=aging_time)

    return build


register_family(BridgeFamily(
    name="learning",
    title="Plain 802.1 learning switch (no loop protection)",
    factory=_learning_factory,
    warmup=1.0,
    loop_safe=False,
    order=40,
    options=(
        FamilyOption("aging_time", "float", DEFAULT_AGING_TIME,
                     "FDB entry aging time (seconds)"),
    ),
))
