"""Summary statistics for experiment series.

Pure-Python percentile/summary helpers (numpy-free so the core library
has no hard scientific dependencies; the benches may still use numpy).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence


def percentile(values: Sequence[float], q: float) -> float:
    """The *q*-th percentile (0-100) with linear interpolation.

    Matches numpy's default ("linear") method.
    """
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0 <= q <= 100:
        raise ValueError(f"percentile out of range: {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * q / 100.0
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high or ordered[low] == ordered[high]:
        # Second condition avoids interpolation arithmetic, which can
        # underflow for subnormal values.
        return ordered[low]
    frac = rank - low
    return ordered[low] * (1 - frac) + ordered[high] * frac


def mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def stdev(values: Sequence[float]) -> float:
    """Population standard deviation (0.0 for a single value)."""
    if not values:
        raise ValueError("stdev of empty sequence")
    if len(values) == 1:
        return 0.0
    centre = mean(values)
    return math.sqrt(sum((v - centre) ** 2 for v in values) / len(values))


def coefficient_of_variation(values: Sequence[float]) -> float:
    """stdev / mean — the load-spread metric of the §2.2 experiment."""
    centre = mean(values)
    if centre == 0:
        return 0.0
    return stdev(values) / centre


@dataclass(frozen=True)
class Summary:
    """Five-number-style summary of a series."""

    count: int
    min: float
    max: float
    mean: float
    median: float
    p95: float
    p99: float
    stdev: float

    def as_dict(self) -> Dict[str, float]:
        return {"count": self.count, "min": self.min, "max": self.max,
                "mean": self.mean, "median": self.median, "p95": self.p95,
                "p99": self.p99, "stdev": self.stdev}

    def scaled(self, factor: float) -> "Summary":
        """Every statistic multiplied by *factor* (unit conversion)."""
        return Summary(count=self.count, min=self.min * factor,
                       max=self.max * factor, mean=self.mean * factor,
                       median=self.median * factor, p95=self.p95 * factor,
                       p99=self.p99 * factor, stdev=self.stdev * factor)


def summarize(values: Sequence[float]) -> Summary:
    """Build a :class:`Summary`; raises on an empty series."""
    if not values:
        raise ValueError("cannot summarise an empty series")
    return Summary(count=len(values), min=min(values), max=max(values),
                   mean=mean(values), median=percentile(values, 50),
                   p95=percentile(values, 95), p99=percentile(values, 99),
                   stdev=stdev(values))


def maybe_summarize(values: Sequence[float]) -> Optional[Summary]:
    """Like :func:`summarize` but returns None for an empty series."""
    return summarize(values) if values else None
