"""Summary statistics for experiment series.

Pure-Python percentile/summary helpers (numpy-free so the core library
has no hard scientific dependencies; the benches may still use numpy).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence


def percentile(values: Sequence[float], q: float) -> float:
    """The *q*-th percentile (0-100) with linear interpolation.

    Matches numpy's default ("linear") method.
    """
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0 <= q <= 100:
        raise ValueError(f"percentile out of range: {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * q / 100.0
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high or ordered[low] == ordered[high]:
        # Second condition avoids interpolation arithmetic, which can
        # underflow for subnormal values.
        return ordered[low]
    frac = rank - low
    return ordered[low] * (1 - frac) + ordered[high] * frac


def mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def stdev(values: Sequence[float]) -> float:
    """Population standard deviation (0.0 for a single value)."""
    if not values:
        raise ValueError("stdev of empty sequence")
    if len(values) == 1:
        return 0.0
    centre = mean(values)
    return math.sqrt(sum((v - centre) ** 2 for v in values) / len(values))


def coefficient_of_variation(values: Sequence[float]) -> float:
    """stdev / mean — the load-spread metric of the §2.2 experiment."""
    centre = mean(values)
    if centre == 0:
        return 0.0
    return stdev(values) / centre


@dataclass(frozen=True)
class Summary:
    """Five-number-style summary of a series."""

    count: int
    min: float
    max: float
    mean: float
    median: float
    p95: float
    p99: float
    stdev: float

    def as_dict(self) -> Dict[str, float]:
        return {"count": self.count, "min": self.min, "max": self.max,
                "mean": self.mean, "median": self.median, "p95": self.p95,
                "p99": self.p99, "stdev": self.stdev}

    def scaled(self, factor: float) -> "Summary":
        """Every statistic multiplied by *factor* (unit conversion)."""
        return Summary(count=self.count, min=self.min * factor,
                       max=self.max * factor, mean=self.mean * factor,
                       median=self.median * factor, p95=self.p95 * factor,
                       p99=self.p99 * factor, stdev=self.stdev * factor)


def summarize(values: Sequence[float]) -> Summary:
    """Build a :class:`Summary`; raises on an empty series."""
    if not values:
        raise ValueError("cannot summarise an empty series")
    return Summary(count=len(values), min=min(values), max=max(values),
                   mean=mean(values), median=percentile(values, 50),
                   p95=percentile(values, 95), p99=percentile(values, 99),
                   stdev=stdev(values))


def maybe_summarize(values: Sequence[float]) -> Optional[Summary]:
    """Like :func:`summarize` but returns None for an empty series."""
    return summarize(values) if values else None


#: Two-sided 95% Student-t critical values by degrees of freedom; the
#: sweep runner aggregates handfuls of seeds, so small-n accuracy
#: matters more than a full table.
_T95 = {1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571, 6: 2.447,
        7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228, 12: 2.179, 15: 2.131,
        20: 2.086, 25: 2.060, 30: 2.042, 40: 2.021, 60: 2.000, 120: 1.980}


def _t95(df: int) -> float:
    """Critical value at the largest tabulated df <= *df* (rounding df
    down keeps the interval conservative in the table gaps)."""
    if df <= 0:
        return 0.0
    candidates = [bound for bound in _T95 if bound <= df]
    if not candidates:
        return _T95[min(_T95)]
    return _T95[max(candidates)] if df <= max(_T95) else 1.96


def sample_stdev(values: Sequence[float]) -> float:
    """Sample (n-1) standard deviation; 0.0 for a single value."""
    if not values:
        raise ValueError("sample_stdev of empty sequence")
    if len(values) == 1:
        return 0.0
    centre = mean(values)
    return math.sqrt(sum((v - centre) ** 2 for v in values)
                     / (len(values) - 1))


@dataclass(frozen=True)
class Aggregate:
    """Mean with a 95% confidence half-width over repeated runs."""

    n: int
    mean: float
    stdev: float
    ci95: float

    def as_dict(self) -> Dict[str, float]:
        return {"n": self.n, "mean": self.mean, "stdev": self.stdev,
                "ci95": self.ci95}


def aggregate(values: Sequence[float]) -> Aggregate:
    """Mean / sample stdev / 95% CI half-width of repeated measurements."""
    if not values:
        raise ValueError("cannot aggregate an empty series")
    spread = sample_stdev(values)
    half = _t95(len(values) - 1) * spread / math.sqrt(len(values)) \
        if len(values) > 1 else 0.0
    return Aggregate(n=len(values), mean=mean(values), stdev=spread,
                     ci95=half)


def aggregate_rows(rows: Sequence[Dict[str, object]],
                   key_fields: Sequence[str] = ()
                   ) -> List[Dict[str, object]]:
    """Fold rows repeated across seeds into mean/CI summary rows.

    Columns are classified over the whole row set: a column is a
    *metric* if any row holds a numeric (non-bool) value for it and it
    is not named in *key_fields*; every other column (strings, bools,
    all-None, plus the *key_fields* — numeric columns that name a case
    rather than measure it, e.g. a failure index) is part of a row's
    identity. Classifying globally keeps a metric that is None for
    some seeds (e.g. an outage that never recovered) from fragmenting
    its group. The ``seed`` column is never part of the identity.
    Metric columns become ``<name>_mean`` / ``<name>_ci95`` pairs
    (None when no seed produced a number), and ``n_runs`` counts the
    group size.
    """
    metric_columns = set()
    for row in rows:
        for name, value in row.items():
            if name == "seed" or name in key_fields:
                continue
            if isinstance(value, bool):
                continue
            if isinstance(value, (int, float)):
                metric_columns.add(name)

    groups: Dict[tuple, List[Dict[str, object]]] = {}
    for row in rows:
        key = tuple(sorted(
            (name, value) for name, value in row.items()
            if name != "seed" and name not in metric_columns))
        groups.setdefault(key, []).append(row)

    out: List[Dict[str, object]] = []
    for key in sorted(groups, key=repr):
        members = groups[key]
        summary: Dict[str, object] = dict(key)
        summary["n_runs"] = len(members)
        metric_names = [name for name in members[0]
                        if name in metric_columns]
        for name in metric_names:
            numbers = [row.get(name) for row in members
                       if isinstance(row.get(name), (int, float))
                       and not isinstance(row.get(name), bool)]
            if not numbers:
                summary[name + "_mean"] = None
                summary[name + "_ci95"] = None
                continue
            stats = aggregate(numbers)
            summary[name + "_mean"] = stats.mean
            summary[name + "_ci95"] = stats.ci95
        out.append(summary)
    return out
