"""Link load accounting (paper §2.2: load distribution, path diversity).

Computed from the tracer's per-link byte counters: how evenly traffic
spreads over the fabric, and how many links carry any traffic at all
(a spanning tree leaves its blocked links at exactly zero).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.metrics.stats import coefficient_of_variation, mean
from repro.netsim.tracer import SENT, Tracer
from repro.topology.builder import Network


@dataclass(frozen=True)
class LoadReport:
    """Per-link load spread over the bridge-to-bridge fabric."""

    per_link: Dict[str, int]
    used_links: int
    total_links: int
    cv: float
    max_over_mean: float
    total_bytes: int

    @property
    def link_usage_fraction(self) -> float:
        if self.total_links == 0:
            return 0.0
        return self.used_links / self.total_links


def fabric_load(net: Network, ethertype: Optional[int] = None) -> LoadReport:
    """Bytes carried per fabric link, with spread statistics.

    *ethertype* restricts the count (e.g. only IPv4 data); None counts
    everything. Requires the tracer to be keeping records.
    """
    fabric_names = {link.name for link in net.fabric_links()}
    per_link = {name: 0 for name in fabric_names}
    for rec in net.sim.tracer.records:
        if rec.kind != SENT or rec.link not in per_link:
            continue
        if ethertype is not None and rec.ethertype != ethertype:
            continue
        per_link[rec.link] += rec.size
    loads = list(per_link.values())
    total = sum(loads)
    used = sum(1 for b in loads if b > 0)
    if loads and total > 0:
        cv = coefficient_of_variation(loads)
        max_over_mean = max(loads) / mean(loads)
    else:
        cv = 0.0
        max_over_mean = 0.0
    return LoadReport(per_link=per_link, used_links=used,
                      total_links=len(per_link), cv=cv,
                      max_over_mean=max_over_mean, total_bytes=total)


def broadcast_frames_sent(tracer: Tracer, ethertype: int) -> int:
    """Link-level transmissions of one ethertype (broadcast overhead)."""
    return tracer.count(SENT, ethertype)
