"""Measurement: statistics, path oracles, recovery detection, load,
tables and ASCII charts."""

from repro.metrics.chart import histogram, sparkline, timeseries
from repro.metrics.convergence import (Recovery, recoveries_for_failures,
                                       recovery_from_arrivals,
                                       recovery_from_pings)
from repro.metrics.load import LoadReport, broadcast_frames_sent, fabric_load
from repro.metrics.paths import (OraclePath, PathObserver, min_latency_path,
                                 observed_path, path_latency, stretch)
from repro.metrics.report import format_cell, format_table, ms, s, us
from repro.metrics.stats import (Summary, coefficient_of_variation,
                                 maybe_summarize, mean, percentile, stdev,
                                 summarize)

__all__ = [
    "histogram", "sparkline", "timeseries",
    "Recovery", "recoveries_for_failures", "recovery_from_arrivals",
    "recovery_from_pings",
    "LoadReport", "broadcast_frames_sent", "fabric_load",
    "OraclePath", "PathObserver", "min_latency_path", "observed_path",
    "path_latency", "stretch",
    "format_cell", "format_table", "ms", "s", "us",
    "Summary", "coefficient_of_variation", "maybe_summarize", "mean",
    "percentile", "stdev", "summarize",
]
