"""Availability, downtime and repair-latency measurement.

Where :mod:`repro.metrics.convergence` measures the outage caused by
*one known failure*, this module characterises a probe stream over a
whole measurement window under *sustained churn*, where failures
overlap and nobody hands you the failure times: the observable is the
arrival process itself.

A gap between consecutive arrivals longer than ``gap_threshold`` send
intervals is an :class:`Outage`; its downtime is the gap minus the one
interval that would have elapsed anyway. The window edges count too —
a stream that never recovers contributes downtime until the window
closes. :func:`measure_availability` folds the outage list into the
scalar rows (availability fraction, total downtime, mean/worst repair
time) that the churn experiment reports and the sweep runner
aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Sequence

#: Gap factor above which an inter-arrival gap counts as an outage —
#: matches the video sink's stall threshold (2.5 frame intervals).
DEFAULT_GAP_THRESHOLD = 2.5


@dataclass(frozen=True)
class Outage:
    """One continuous stretch of missing traffic.

    *start* is the last good arrival (or the window start), *end* the
    arrival that ended the outage (or the window end). *repaired* is
    False for a tail outage the window cut off before recovery.
    """

    start: float
    end: float
    repaired: bool = True

    @property
    def duration(self) -> float:
        return self.end - self.start


def detect_outages(arrivals: Sequence[float], send_interval: float,
                   window_start: float, window_end: float,
                   gap_threshold: float = DEFAULT_GAP_THRESHOLD
                   ) -> List[Outage]:
    """Outages a continuous stream shows inside the window.

    *arrivals* need not be pre-filtered; arrivals outside the window
    are ignored. An empty window of arrivals is one unrepaired outage
    spanning the whole window.
    """
    if window_end < window_start:
        raise ValueError(f"window ends before it starts: "
                         f"[{window_start}, {window_end}]")
    if send_interval <= 0:
        raise ValueError(f"send interval must be positive: {send_interval}")
    inside = [t for t in arrivals if window_start <= t <= window_end]
    limit = gap_threshold * send_interval
    outages: List[Outage] = []
    if not inside:
        if window_end - window_start > limit:
            outages.append(Outage(start=window_start, end=window_end,
                                  repaired=False))
        return outages
    if inside[0] - window_start > limit:
        outages.append(Outage(start=window_start, end=inside[0]))
    for prev, cur in zip(inside, inside[1:]):
        if cur - prev > limit:
            outages.append(Outage(start=prev, end=cur))
    if window_end - inside[-1] > limit:
        outages.append(Outage(start=inside[-1], end=window_end,
                              repaired=False))
    return outages


@dataclass(frozen=True)
class Availability:
    """Scalar availability summary of one stream over one window.

    ``mttr``/``worst_outage`` summarise *repaired* outages only — an
    outage the window truncated has no known repair time; it is
    visible in ``unrepaired`` and in ``downtime`` instead.
    """

    window: float
    downtime: float
    outages: int
    unrepaired: int
    mttr: float
    worst_outage: float

    @property
    def repaired(self) -> int:
        """Outages that recovered inside the window."""
        return self.outages - self.unrepaired

    @property
    def availability(self) -> float:
        """Fraction of the window the stream was flowing (0..1)."""
        if self.window <= 0:
            return 1.0
        return max(0.0, 1.0 - self.downtime / self.window)

    def as_row(self) -> Dict[str, Any]:
        """Flat numeric cells, stable keys (records() building block)."""
        return {"availability": self.availability,
                "downtime": self.downtime,
                "outages": self.outages,
                "unrepaired": self.unrepaired,
                "mttr": self.mttr if self.repaired else None,
                "worst_outage": self.worst_outage if self.repaired
                else None}


def measure_availability(arrivals: Sequence[float], send_interval: float,
                         window_start: float, window_end: float,
                         gap_threshold: float = DEFAULT_GAP_THRESHOLD
                         ) -> Availability:
    """Summarise a probe stream's availability over the window.

    Each outage's downtime is its duration minus one send interval
    (the gap an unbroken stream would show anyway); repaired outage
    durations are also the repair-latency series (``mttr`` /
    ``worst_outage``).
    """
    found = detect_outages(arrivals, send_interval, window_start,
                           window_end, gap_threshold=gap_threshold)
    window = window_end - window_start
    downtime = sum(max(outage.duration - send_interval, 0.0)
                   for outage in found)
    durations = [outage.duration for outage in found if outage.repaired]
    return Availability(
        window=window,
        downtime=min(downtime, window),
        outages=len(found),
        unrepaired=sum(1 for outage in found if not outage.repaired),
        mttr=sum(durations) / len(durations) if durations else 0.0,
        worst_outage=max(durations) if durations else 0.0)
