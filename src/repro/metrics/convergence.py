"""Recovery-time measurement.

The Fig. 3 experiment's observable is *how long traffic stops* after a
failure. Two complementary detectors:

* :func:`recovery_from_arrivals` — the gap a continuous stream (video
  chunks, CBR probes) shows around the failure time;
* :func:`recovery_from_pings` — when the first probe sent after the
  failure gets answered (for sparse probe traffic, e.g. during STP
  reconvergence where the outage is long).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence


@dataclass(frozen=True)
class Recovery:
    """One failure's measured outage."""

    fail_time: float
    resumed_at: float
    outage: float
    packets_lost: int


def recovery_from_arrivals(arrivals: Sequence[float], fail_time: float,
                           send_interval: float) -> Optional[Recovery]:
    """Measure the outage a continuous stream suffered at *fail_time*.

    The outage is the time from the failure until the next arrival;
    packets lost is estimated from the arrival gap and send rate.
    Returns None when no arrival follows the failure (no recovery).
    """
    before = [t for t in arrivals if t <= fail_time]
    after = [t for t in arrivals if t > fail_time]
    if not after:
        return None
    resumed = after[0]
    last_good = before[-1] if before else fail_time
    gap = resumed - last_good
    lost = max(int(round(gap / send_interval)) - 1, 0)
    return Recovery(fail_time=fail_time, resumed_at=resumed,
                    outage=resumed - fail_time, packets_lost=lost)


def recovery_from_pings(results, fail_time: float) -> Optional[Recovery]:
    """Measure the outage from a :class:`~repro.traffic.ping.PingSeries`.

    Uses probe *send* times: recovery is when the first probe sent after
    the failure got an answer. Lost probes between the failure and that
    moment are counted.
    """
    answered_after = sorted(r.sent_at for r in results
                            if not r.lost and r.sent_at >= fail_time)
    if not answered_after:
        return None
    resumed = answered_after[0]
    lost = sum(1 for r in results
               if r.lost and fail_time <= r.sent_at < resumed)
    return Recovery(fail_time=fail_time, resumed_at=resumed,
                    outage=resumed - fail_time, packets_lost=lost)


def recoveries_for_failures(arrivals: Sequence[float],
                            fail_times: Sequence[float],
                            send_interval: float) -> List[Optional[Recovery]]:
    """One :class:`Recovery` (or None) per failure time, in order.

    Each failure's recovery window is clipped at the next failure so
    overlapping outages are attributed to the right event.
    """
    out: List[Optional[Recovery]] = []
    ordered = sorted(fail_times)
    for index, fail_time in enumerate(ordered):
        horizon = ordered[index + 1] if index + 1 < len(ordered) else None
        window = [t for t in arrivals if horizon is None or t < horizon]
        out.append(recovery_from_arrivals(window, fail_time, send_interval))
    return out
