"""Plain-text result tables and machine-readable artifacts.

The demo's Perl/Tk GUI is replaced by text reports: every experiment
prints a table via :func:`format_table`, and the benches tee the same
rows into EXPERIMENTS.md.

Every experiment result additionally implements the unified row
protocol — a ``records()`` method returning flat dicts of primitives —
which :func:`records` adapts and :func:`write_json` / :func:`write_csv`
persist, so sweep outputs are diffable and scriptable.
"""

from __future__ import annotations

import csv
import json
from typing import Any, Dict, Iterable, List, Optional, Sequence


def format_cell(value: Any) -> str:
    """Render one cell: floats get 4 significant digits."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e4 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    if value is None:
        return "-"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[Any]],
                 title: Optional[str] = None) -> str:
    """Render an aligned ASCII table with a separator under the header."""
    text_rows: List[List[str]] = [[format_cell(cell) for cell in row]
                                  for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}")
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width)
                         for cell, width in zip(cells, widths)).rstrip()

    parts: List[str] = []
    if title:
        parts.append(title)
        parts.append("=" * len(title))
    parts.append(line(headers))
    parts.append(line(["-" * width for width in widths]))
    parts.extend(line(row) for row in text_rows)
    return "\n".join(parts)


def us(seconds: float) -> str:
    """Seconds rendered as microseconds."""
    return f"{seconds * 1e6:.1f}us"


def ms(seconds: float) -> str:
    """Seconds rendered as milliseconds."""
    return f"{seconds * 1e3:.3f}ms"


def s(seconds: float) -> str:
    """Seconds rendered with 3 decimals."""
    return f"{seconds:.3f}s"


def records(result: Any) -> List[Dict[str, Any]]:
    """The unified row protocol: *result*'s machine-readable rows.

    Every experiment result implements ``records() -> List[Dict]`` with
    primitive values only (str/bool/int/float/None), keyed identically
    across runs so repeated seeds can be aggregated column-wise.
    """
    method = getattr(result, "records", None)
    if method is None:
        raise TypeError(
            f"{type(result).__name__} does not implement the result row "
            "protocol (records() -> List[Dict])")
    return method()


def csv_columns(rows: Sequence[Dict[str, Any]]) -> List[str]:
    """Union of row keys in first-seen order (stable artifact layout)."""
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    return columns


def write_csv(path: str, rows: Sequence[Dict[str, Any]]) -> None:
    """Write *rows* as CSV; missing cells and Nones render empty."""
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=csv_columns(rows),
                                restval="")
        writer.writeheader()
        for row in rows:
            writer.writerow({k: ("" if v is None else v)
                             for k, v in row.items()})


def write_json(path: str, payload: Any) -> None:
    """Write *payload* as stable, indented JSON."""
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def record_line(row: Dict[str, Any]) -> str:
    """One record row as its canonical JSON line (no trailing newline).

    This is THE serialization of a record everywhere records travel as
    lines: ``repro sweep --jsonl`` artifacts, the serve daemon's SQLite
    record store and its ``GET /v1/jobs/<id>/records`` NDJSON stream
    all call this function — which is what makes the determinism
    contract *byte*-comparable across those surfaces, not just
    value-comparable. Keys are sorted and separators compact, so the
    bytes depend only on the row's contents.
    """
    return json.dumps(row, sort_keys=True, separators=(",", ":"))


def write_jsonl(path: str, rows: Sequence[Dict[str, Any]]) -> None:
    """Write *rows* as canonical newline-delimited JSON records."""
    with open(path, "w") as handle:
        for row in rows:
            handle.write(record_line(row))
            handle.write("\n")
