"""Path measurement: oracles, observed paths and stretch.

The paper's headline property is *minimum latency path selection*: the
ARP race should find the same path Dijkstra would, given perfect global
knowledge. This module provides that oracle (over the real topology)
and extracts observed paths from frame hop traces so the two can be
compared — the EXP-P1 stretch experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.frames.ethernet import EthernetFrame
from repro.topology.builder import Network, graph_of


@dataclass(frozen=True)
class OraclePath:
    """The true minimum-latency path between two hosts."""

    nodes: Tuple[str, ...]
    latency: float

    @property
    def bridge_hops(self) -> int:
        """Number of bridges traversed (nodes minus the two hosts)."""
        return max(len(self.nodes) - 2, 0)


def min_latency_path(net: Network, src_host: str,
                     dst_host: str) -> OraclePath:
    """Dijkstra over the live topology with latency weights."""
    import networkx as nx

    graph = graph_of(net)
    nodes = nx.shortest_path(graph, src_host, dst_host, weight="latency")
    latency = nx.shortest_path_length(graph, src_host, dst_host,
                                      weight="latency")
    return OraclePath(nodes=tuple(nodes), latency=latency)


def observed_path(frame: EthernetFrame, src_host: str) -> Tuple[str, ...]:
    """The node sequence a delivered frame traversed.

    Requires ``Simulator(trace_hops=True)``; the trace records every
    node that handled the copy, in order, starting at the first bridge.
    """
    return (src_host,) + tuple(frame.path_nodes())


def path_latency(net: Network, nodes: Sequence[str]) -> float:
    """Sum of link latencies along a node sequence."""
    total = 0.0
    for a, b in zip(nodes, nodes[1:]):
        total += net.link_between(a, b).latency
    return total


def stretch(observed_latency: float, oracle_latency: float) -> float:
    """Observed / optimal latency; 1.0 means the race found the optimum."""
    if oracle_latency <= 0:
        raise ValueError("oracle latency must be positive")
    return observed_latency / oracle_latency


class PathObserver:
    """Captures the forwarding path of unicast traffic between hosts.

    Registers an IP listener on the destination host; each received
    packet's Ethernet-level hop trace is recovered from the delivering
    frame. Because the host stack strips frames, we instead snoop via
    the host's ``ip_listeners`` and inspect the last delivered frame's
    trace, which nodes record when ``trace_hops`` is on.
    """

    def __init__(self, net: Network, dst_host: str):
        if not net.sim.trace_hops:
            raise ValueError("PathObserver needs Simulator(trace_hops=True)")
        self.net = net
        self.dst = net.host(dst_host)
        self.paths: List[Tuple[str, ...]] = []
        self._install()

    def _install(self) -> None:
        original_deliver = self.dst.deliver

        def capturing_deliver(port, frame):
            if frame.is_unicast and frame.dst == self.dst.mac:
                self.paths.append(tuple(frame.path_nodes()))
            original_deliver(port, frame)

        self.dst.deliver = capturing_deliver  # type: ignore[method-assign]

    def last_bridge_path(self) -> Optional[Tuple[str, ...]]:
        """The bridges the most recent unicast frame traversed."""
        if not self.paths:
            return None
        return tuple(node for node in self.paths[-1]
                     if node in self.net.bridges)

    def distinct_bridge_paths(self) -> List[Tuple[str, ...]]:
        """All distinct bridge-level paths seen, in first-seen order."""
        seen: Dict[Tuple[str, ...], None] = {}
        for path in self.paths:
            bridges = tuple(node for node in path if node in self.net.bridges)
            seen.setdefault(bridges, None)
        return list(seen)
