"""Plain-text charts: the demo GUI's latency graphs, in a terminal.

The SIGCOMM demo drove a GUI that "will build graphs to show the
latencies obtained"; these helpers render the same series as ASCII so
examples and benches can show the *picture*, not just the table.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

BLOCKS = " ▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: Optional[int] = None) -> str:
    """A one-line block-character chart of *values*.

    Values are min-max normalised; *width* resamples the series by
    bucket-averaging when it is longer than the target width.
    """
    if not values:
        return ""
    series = list(values)
    if width is not None and width > 0 and len(series) > width:
        bucket = len(series) / width
        series = [
            sum(series[int(i * bucket):max(int((i + 1) * bucket),
                                           int(i * bucket) + 1)])
            / max(len(series[int(i * bucket):max(int((i + 1) * bucket),
                                                 int(i * bucket) + 1)]), 1)
            for i in range(width)
        ]
    low, high = min(series), max(series)
    if high == low:
        return BLOCKS[1] * len(series)
    scale = (len(BLOCKS) - 2) / (high - low)
    return "".join(BLOCKS[1 + int((v - low) * scale)] for v in series)


def timeseries(points: Sequence[Tuple[float, float]], width: int = 64,
               height: int = 10, label: str = "") -> str:
    """A multi-line scatter chart of (time, value) points.

    Marks failures-style spikes clearly enough to see a repair gap or an
    STP reconvergence stall at a glance.
    """
    if not points:
        return "(no data)"
    times = [t for t, _v in points]
    values = [v for _t, v in points]
    t_low, t_high = min(times), max(times)
    v_low, v_high = min(values), max(values)
    t_span = (t_high - t_low) or 1.0
    v_span = (v_high - v_low) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for t, v in points:
        col = min(int((t - t_low) / t_span * (width - 1)), width - 1)
        row = min(int((v - v_low) / v_span * (height - 1)), height - 1)
        grid[height - 1 - row][col] = "*"
    lines: List[str] = []
    if label:
        lines.append(label)
    top = f"{v_high:.3g}"
    bottom = f"{v_low:.3g}"
    margin = max(len(top), len(bottom))
    for index, row in enumerate(grid):
        prefix = top if index == 0 else (
            bottom if index == height - 1 else "")
        lines.append(f"{prefix:>{margin}} |" + "".join(row))
    axis = f"{t_low:.3g}"
    axis_right = f"{t_high:.3g}"
    pad = width - len(axis) - len(axis_right)
    lines.append(" " * margin + " +" + "-" * width)
    lines.append(" " * (margin + 2) + axis + " " * max(pad, 1) + axis_right)
    return "\n".join(lines)


def histogram(values: Sequence[float], bins: int = 10,
              width: int = 40) -> str:
    """A horizontal ASCII histogram."""
    if not values:
        return "(no data)"
    if bins < 1:
        raise ValueError("need at least one bin")
    low, high = min(values), max(values)
    span = (high - low) or 1.0
    counts = [0] * bins
    for value in values:
        index = min(int((value - low) / span * bins), bins - 1)
        counts[index] += 1
    peak = max(counts)
    lines = []
    for index, count in enumerate(counts):
        left = low + span * index / bins
        right = low + span * (index + 1) / bins
        bar = "#" * (int(count / peak * width) if peak else 0)
        lines.append(f"{left:10.3g} - {right:10.3g} | {bar} {count}")
    return "\n".join(lines)
