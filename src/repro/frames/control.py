"""ARP-Path control frames: Hello and the Path Repair messages.

The paper (§2.1.4) repairs broken paths with three messages that
"emulate an ARP exchange": **PathFail** (unicast back towards the source
edge bridge), **PathRequest** (broadcast, raced through the network like
an ARP Request) and **PathReply** (unicast, travels the winning path
like an ARP Reply). We carry them in a dedicated experimental ethertype
(0x88B5, IEEE local-experimental) exactly as a hardware port would.

**Hello** frames implement the lightweight neighbour discovery the
bridges use to classify ports as bridge-facing or host-facing; they are
link-local (never forwarded).
"""

from __future__ import annotations

from repro.frames.mac import MAC

#: Link-local multicast address Hello frames are sent to (never relayed,
#: chosen inside the 01:80:c2 bridge-reserved block like LLDP).
HELLO_MULTICAST = MAC("01:80:c2:00:00:0e")

OP_HELLO = 1
OP_PATH_REQUEST = 2
OP_PATH_REPLY = 3
OP_PATH_FAIL = 4

_OP_NAMES = {
    OP_HELLO: "HELLO",
    OP_PATH_REQUEST: "PATH_REQUEST",
    OP_PATH_REPLY: "PATH_REPLY",
    OP_PATH_FAIL: "PATH_FAIL",
}

CONTROL_WIRE_SIZE = 26  # op(2) + origin(6) + source(6) + target(6) + seq(4) + ttl(2)


class ArpPathControl:
    """A control message of the ARP-Path protocol.

    ``origin``
        The bridge that generated the message.
    ``source`` / ``target``
        The end-host MAC addresses of the broken conversation: the
        repair re-establishes the path from *source* to *target*.
    ``seq``
        Per-origin sequence number; lets bridges and tests correlate a
        request with its reply and suppress stale retries.
    ``ttl``
        Hop budget, decremented on every relay; frames arriving with a
        zero budget are dropped (defence in depth against loops).

    A ``__slots__`` value type: control frames are re-allocated on
    every relay hop (:meth:`relayed`), so they share the frame layer's
    no-``__dict__`` discipline.
    """

    __slots__ = ("op", "origin", "source", "target", "seq", "ttl")

    def __init__(self, op: int, origin: MAC, source: MAC, target: MAC,
                 seq: int = 0, ttl: int = 64):
        if op not in _OP_NAMES:
            raise ValueError(f"unknown ARP-Path control op {op}")
        if seq < 0:
            raise ValueError("seq must be non-negative")
        if ttl < 0:
            raise ValueError("ttl must be non-negative")
        set_field = object.__setattr__
        set_field(self, "op", op)
        set_field(self, "origin", origin)
        set_field(self, "source", source)
        set_field(self, "target", target)
        set_field(self, "seq", seq)
        set_field(self, "ttl", ttl)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError(
            f"ArpPathControl is immutable (tried to set {name!r})")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ArpPathControl):
            return NotImplemented
        return (self.op == other.op and self.origin == other.origin
                and self.source == other.source
                and self.target == other.target
                and self.seq == other.seq and self.ttl == other.ttl)

    def __hash__(self) -> int:
        return hash((self.op, self.origin, self.source, self.target,
                     self.seq, self.ttl))

    def __repr__(self) -> str:
        return (f"ArpPathControl(op={self.op!r}, origin={self.origin!r}, "
                f"source={self.source!r}, target={self.target!r}, "
                f"seq={self.seq!r}, ttl={self.ttl!r})")

    @property
    def op_name(self) -> str:
        return _OP_NAMES[self.op]

    @property
    def is_hello(self) -> bool:
        return self.op == OP_HELLO

    @property
    def is_path_request(self) -> bool:
        return self.op == OP_PATH_REQUEST

    @property
    def is_path_reply(self) -> bool:
        return self.op == OP_PATH_REPLY

    @property
    def is_path_fail(self) -> bool:
        return self.op == OP_PATH_FAIL

    @property
    def wire_size(self) -> int:
        return CONTROL_WIRE_SIZE

    def relayed(self) -> "ArpPathControl":
        """A copy with the hop budget decremented (for forwarding)."""
        if self.ttl <= 0:
            raise ValueError("control frame hop budget exhausted")
        return ArpPathControl(op=self.op, origin=self.origin,
                              source=self.source, target=self.target,
                              seq=self.seq, ttl=self.ttl - 1)

    def __str__(self) -> str:
        return (f"{self.op_name} origin={self.origin} source={self.source} "
                f"target={self.target} seq={self.seq}")


def make_hello(bridge_mac: MAC, seq: int = 0) -> ArpPathControl:
    """A link-local Hello announcing *bridge_mac* on a port."""
    return ArpPathControl(op=OP_HELLO, origin=bridge_mac, source=bridge_mac,
                          target=bridge_mac, seq=seq, ttl=1)


def make_path_request(origin: MAC, source: MAC, target: MAC,
                      seq: int) -> ArpPathControl:
    """A broadcast PathRequest looking for *target* on behalf of *source*."""
    return ArpPathControl(op=OP_PATH_REQUEST, origin=origin, source=source,
                          target=target, seq=seq)


def make_path_reply(origin: MAC, source: MAC, target: MAC,
                    seq: int) -> ArpPathControl:
    """The PathReply answering a PathRequest (sent with eth.src=target)."""
    return ArpPathControl(op=OP_PATH_REPLY, origin=origin, source=source,
                          target=target, seq=seq)


def make_path_fail(origin: MAC, source: MAC, target: MAC,
                   seq: int) -> ArpPathControl:
    """A PathFail notifying the source edge bridge that *target* was lost."""
    return ArpPathControl(op=OP_PATH_FAIL, origin=origin, source=source,
                          target=target, seq=seq)
