"""Minimal IPv4 model: addresses and packets.

Only the pieces the reproduction needs — addressing, protocol numbers,
TTL handling — are modelled; options, fragmentation and checksums over
simulated payload objects are intentionally out of scope (the simulator
never corrupts frames; the byte codec in :mod:`repro.frames.codec` still
emits a valid header checksum for serialised packets).
"""

from __future__ import annotations

from typing import Any

_MAX = (1 << 32) - 1

# IP protocol numbers used by the stack.
PROTO_ICMP = 1
PROTO_UDP = 17

DEFAULT_TTL = 64

IPV4_HEADER_LEN = 20


class IPv4Address:
    """An immutable IPv4 address (dotted quad or 32-bit integer).

    >>> str(IPv4Address("10.0.0.1"))
    '10.0.0.1'
    """

    __slots__ = ("_value",)

    def __init__(self, value: "int | str | bytes | IPv4Address"):
        if isinstance(value, IPv4Address):
            self._value = value._value
            return
        if isinstance(value, int):
            if not 0 <= value <= _MAX:
                raise ValueError(f"IPv4 integer out of range: {value:#x}")
            self._value = value
            return
        if isinstance(value, (bytes, bytearray)):
            if len(value) != 4:
                raise ValueError(f"IPv4 needs exactly 4 bytes, got {len(value)}")
            self._value = int.from_bytes(bytes(value), "big")
            return
        if isinstance(value, str):
            parts = value.strip().split(".")
            if len(parts) != 4:
                raise ValueError(f"not an IPv4 address: {value!r}")
            octets = []
            for part in parts:
                if not part.isdigit():
                    raise ValueError(f"not an IPv4 address: {value!r}")
                octet = int(part)
                if octet > 255:
                    raise ValueError(f"octet out of range in {value!r}")
                octets.append(octet)
            self._value = int.from_bytes(bytes(octets), "big")
            return
        raise TypeError(f"cannot build IPv4Address from {type(value).__name__}")

    @property
    def value(self) -> int:
        """The address as a 32-bit integer."""
        return self._value

    @property
    def is_multicast(self) -> bool:
        """True for 224.0.0.0/4."""
        return (self._value >> 28) == 0xE

    @property
    def is_broadcast(self) -> bool:
        """True for the limited broadcast 255.255.255.255."""
        return self._value == _MAX

    def to_bytes(self) -> bytes:
        """The 4-byte big-endian wire representation."""
        return self._value.to_bytes(4, "big")

    def __eq__(self, other: object) -> bool:
        if isinstance(other, IPv4Address):
            return self._value == other._value
        return NotImplemented

    def __lt__(self, other: "IPv4Address") -> bool:
        if isinstance(other, IPv4Address):
            return self._value < other._value
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("ipv4", self._value))

    def __int__(self) -> int:
        return self._value

    def __str__(self) -> str:
        raw = self._value.to_bytes(4, "big")
        return ".".join(str(octet) for octet in raw)

    def __repr__(self) -> str:
        return f"IPv4Address('{self}')"


def ip_for_host(index: int, network: str = "10.0.0.0") -> IPv4Address:
    """A deterministic host address inside *network* (default 10/8).

    Host 0 gets ``10.0.0.1``; the host part is ``index + 1`` so that no
    host ever receives the network address itself.
    """
    base = IPv4Address(network).value
    return IPv4Address(base + index + 1)


class IPv4Packet:
    """A simulated IPv4 packet carrying a payload object.

    The payload is any object exposing ``wire_size`` (e.g.
    :class:`repro.frames.udp.UdpDatagram`) or raw ``bytes``. A
    ``__slots__`` value type: one is allocated per data frame.
    """

    __slots__ = ("src", "dst", "proto", "payload", "ttl", "ident")

    def __init__(self, src: IPv4Address, dst: IPv4Address, proto: int,
                 payload: Any, ttl: int = DEFAULT_TTL, ident: int = 0):
        self.src = src
        self.dst = dst
        self.proto = proto
        self.payload = payload
        self.ttl = ttl
        self.ident = ident

    @property
    def wire_size(self) -> int:
        """Header plus payload size in bytes."""
        return IPV4_HEADER_LEN + payload_size(self.payload)

    def decremented(self) -> "IPv4Packet":
        """A copy with TTL reduced by one.

        Raises ``ValueError`` when the TTL is already zero; callers are
        expected to drop such packets instead of forwarding them.
        """
        if self.ttl <= 0:
            raise ValueError("TTL exhausted")
        return IPv4Packet(src=self.src, dst=self.dst, proto=self.proto,
                          payload=self.payload, ttl=self.ttl - 1,
                          ident=self.ident)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IPv4Packet):
            return NotImplemented
        return (self.src == other.src and self.dst == other.dst
                and self.proto == other.proto
                and self.payload == other.payload
                and self.ttl == other.ttl and self.ident == other.ident)

    def __repr__(self) -> str:
        return (f"IPv4Packet(src={self.src!r}, dst={self.dst!r}, "
                f"proto={self.proto!r}, payload={self.payload!r}, "
                f"ttl={self.ttl!r}, ident={self.ident!r})")


def payload_size(payload: Any) -> int:
    """Wire size in bytes of an arbitrary payload object.

    Objects may expose ``wire_size``; raw ``bytes`` use their length;
    ``None`` counts as zero.
    """
    if payload is None:
        return 0
    size = getattr(payload, "wire_size", None)
    if size is not None:
        return int(size)
    if isinstance(payload, (bytes, bytearray)):
        return len(payload)
    raise TypeError(f"cannot size payload of type {type(payload).__name__}")
