"""ICMP echo messages (ping) for the simulated IP stack.

The demo's latency graphs are driven by ping-style probes; the host
stack implements echo request/reply with these messages.
"""

from __future__ import annotations

from repro.frames.ipv4 import payload_size

TYPE_ECHO_REPLY = 0
TYPE_ECHO_REQUEST = 8

ICMP_HEADER_LEN = 8


class IcmpEcho:
    """An ICMP echo request or reply (a ``__slots__`` value type)."""

    __slots__ = ("icmp_type", "ident", "seq", "payload")

    def __init__(self, icmp_type: int, ident: int, seq: int,
                 payload: bytes = b""):
        if icmp_type not in (TYPE_ECHO_REQUEST, TYPE_ECHO_REPLY):
            raise ValueError(f"unsupported ICMP type {icmp_type}")
        if not 0 <= ident <= 0xFFFF:
            raise ValueError(f"ICMP ident out of range: {ident}")
        if not 0 <= seq <= 0xFFFF:
            raise ValueError(f"ICMP seq out of range: {seq}")
        set_field = object.__setattr__
        set_field(self, "icmp_type", icmp_type)
        set_field(self, "ident", ident)
        set_field(self, "seq", seq)
        set_field(self, "payload", payload)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError(
            f"IcmpEcho is immutable (tried to set {name!r})")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IcmpEcho):
            return NotImplemented
        return (self.icmp_type == other.icmp_type
                and self.ident == other.ident and self.seq == other.seq
                and self.payload == other.payload)

    def __hash__(self) -> int:
        return hash((self.icmp_type, self.ident, self.seq, self.payload))

    def __repr__(self) -> str:
        return (f"IcmpEcho(icmp_type={self.icmp_type!r}, "
                f"ident={self.ident!r}, seq={self.seq!r}, "
                f"payload={self.payload!r})")

    @property
    def is_request(self) -> bool:
        return self.icmp_type == TYPE_ECHO_REQUEST

    @property
    def is_reply(self) -> bool:
        return self.icmp_type == TYPE_ECHO_REPLY

    @property
    def wire_size(self) -> int:
        return ICMP_HEADER_LEN + payload_size(self.payload)

    def reply(self) -> "IcmpEcho":
        """The echo reply matching this request."""
        if not self.is_request:
            raise ValueError("can only reply to an echo request")
        return IcmpEcho(icmp_type=TYPE_ECHO_REPLY, ident=self.ident,
                        seq=self.seq, payload=self.payload)


def make_echo_request(ident: int, seq: int, payload: bytes = b"") -> IcmpEcho:
    """An echo request with the given identifier and sequence number."""
    return IcmpEcho(icmp_type=TYPE_ECHO_REQUEST, ident=ident, seq=seq,
                    payload=payload)
