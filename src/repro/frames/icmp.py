"""ICMP echo messages (ping) for the simulated IP stack.

The demo's latency graphs are driven by ping-style probes; the host
stack implements echo request/reply with these messages.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.frames.ipv4 import payload_size

TYPE_ECHO_REPLY = 0
TYPE_ECHO_REQUEST = 8

ICMP_HEADER_LEN = 8


@dataclass(frozen=True)
class IcmpEcho:
    """An ICMP echo request or reply."""

    icmp_type: int
    ident: int
    seq: int
    payload: bytes = b""

    def __post_init__(self):
        if self.icmp_type not in (TYPE_ECHO_REQUEST, TYPE_ECHO_REPLY):
            raise ValueError(f"unsupported ICMP type {self.icmp_type}")
        if not 0 <= self.ident <= 0xFFFF:
            raise ValueError(f"ICMP ident out of range: {self.ident}")
        if not 0 <= self.seq <= 0xFFFF:
            raise ValueError(f"ICMP seq out of range: {self.seq}")

    @property
    def is_request(self) -> bool:
        return self.icmp_type == TYPE_ECHO_REQUEST

    @property
    def is_reply(self) -> bool:
        return self.icmp_type == TYPE_ECHO_REPLY

    @property
    def wire_size(self) -> int:
        return ICMP_HEADER_LEN + payload_size(self.payload)

    def reply(self) -> "IcmpEcho":
        """The echo reply matching this request."""
        if not self.is_request:
            raise ValueError("can only reply to an echo request")
        return IcmpEcho(icmp_type=TYPE_ECHO_REPLY, ident=self.ident,
                        seq=self.seq, payload=self.payload)


def make_echo_request(ident: int, seq: int, payload: bytes = b"") -> IcmpEcho:
    """An echo request with the given identifier and sequence number."""
    return IcmpEcho(icmp_type=TYPE_ECHO_REQUEST, ident=ident, seq=seq,
                    payload=payload)
