"""Ethernet II frames.

Frames are the unit of exchange in the simulator. A frame carries a
typed payload object (ARP packet, IPv4 packet, BPDU, ARP-Path control
message or raw bytes); :mod:`repro.frames.codec` can serialise the whole
thing to wire bytes and back.

Flooded copies race through the network independently — the mechanism
ARP-Path's path discovery exploits — but since PR 5 they are
*copy-on-write*: :meth:`~repro.netsim.node.Port.send` hands the same
frame object to every link (marking it :attr:`EthernetFrame._shared`)
and a private :meth:`EthernetFrame.clone` is taken lazily, only at the
first per-copy mutation (hop recording under ``trace_hops``). Sharing
is sound because ``dst``, ``ethertype`` and the payload's type are
immutable once a frame is in flight (the documented frame invariant)
and the ``_wire_size``/``_kind`` caches are idempotent; the per-copy
``trace`` list is the single mutable field, and it is only touched
behind the lazy clone.

Frames used to be the highest-volume allocation in the simulator (every
flooded copy per port was one), so :class:`EthernetFrame` is a
hand-written ``__slots__`` class rather than a dataclass: no
per-instance ``__dict__``, a :meth:`clone` that fills slots directly,
and a cached classification code (:data:`KIND_ARP_DISCOVERY` /
:data:`KIND_MULTICAST` / :data:`KIND_UNICAST`) shared by all clones so
the dataplane classifies each logical frame once, not once per hop.
"""

from __future__ import annotations

import itertools
from typing import Any, List, Optional, Tuple

from repro.frames.arp import ArpPacket
from repro.frames.ipv4 import payload_size
from repro.frames.mac import BROADCAST, MAC, _GROUP_BIT

ETHERTYPE_IPV4 = 0x0800
ETHERTYPE_ARP = 0x0806
#: IEEE local-experimental ethertype carrying ARP-Path control frames.
ETHERTYPE_ARPPATH = 0x88B5
#: Pseudo ethertype for BPDUs. Real 802.1D BPDUs ride LLC (DSAP 0x42);
#: the simulator models them as an ethertype for uniformity.
ETHERTYPE_BPDU = 0x4242
#: Pseudo ethertype for the SPB baseline's link-state packets.
ETHERTYPE_LSP = 0x88B6
#: Pseudo ethertype for the centralized controller family's control
#: channel (LLDP discovery, packet-in, flow-mod).
ETHERTYPE_CONTROLLER = 0x88B7

#: Destination address of BPDUs (802.1D bridge group address).
STP_MULTICAST = MAC("01:80:c2:00:00:00")

ETH_HEADER_LEN = 14
ETH_FCS_LEN = 4
ETH_MIN_FRAME = 64
ETH_MTU_PAYLOAD = 1500

#: Frame classification codes cached on the frame (see
#: :meth:`EthernetFrame.kind`): a multicast ARP probe, any other
#: broadcast/multicast frame, or unicast.
KIND_ARP_DISCOVERY = 1
KIND_MULTICAST = 2
KIND_UNICAST = 3

_uid_counter = itertools.count(1)

_ETHERTYPE_NAMES = {
    ETHERTYPE_IPV4: "IPv4",
    ETHERTYPE_ARP: "ARP",
    ETHERTYPE_ARPPATH: "ARP-Path",
    ETHERTYPE_BPDU: "BPDU",
    ETHERTYPE_LSP: "LSP",
    ETHERTYPE_CONTROLLER: "CTRL",
}

#: A hop record appended to a frame's trace: (node_name, port_index, time).
Hop = Tuple[str, int, float]


class EthernetFrame:
    """An Ethernet II frame with a typed payload.

    ``uid``
        Identifies the *logical* frame; clones made while flooding share
        the uid, which lets the tracer correlate the copies of one
        broadcast race.
    ``trace``
        Hop records appended at each node when tracing is enabled; each
        clone carries its own list, so a delivered copy's trace is the
        exact path it travelled.
    ``_shared``
        Copy-on-write marker: set by ``Port.send`` when the object goes
        on the wire (possibly out of several ports at once). A receiver
        that needs to mutate the frame (hop tracing) must clone first;
        the clone is private until it is sent again.
    """

    __slots__ = ("dst", "src", "ethertype", "payload", "uid", "trace",
                 "_wire_size", "_kind", "_shared")

    def __init__(self, dst: MAC, src: MAC, ethertype: int,
                 payload: Any = b"", uid: Optional[int] = None,
                 trace: Optional[List[Hop]] = None,
                 _wire_size: Optional[int] = None):
        self.dst = dst
        self.src = src
        self.ethertype = ethertype
        self.payload = payload
        self.uid = next(_uid_counter) if uid is None else uid
        self.trace = [] if trace is None else trace
        #: Cached on-wire size; payloads are immutable once attached, so
        #: the size is computed once and shared with clones.
        self._wire_size = _wire_size
        self._kind: Optional[int] = None
        self._shared = False

    @property
    def wire_size(self) -> int:
        """Total on-wire size: header + payload + FCS, zero-padded to 64."""
        size = self._wire_size
        if size is None:
            size = max(ETH_HEADER_LEN + payload_size(self.payload)
                       + ETH_FCS_LEN, ETH_MIN_FRAME)
            self._wire_size = size
        return size

    def kind(self) -> int:
        """This frame's interned classification code.

        Computed once per logical frame (clones inherit the cache):
        :data:`KIND_ARP_DISCOVERY` for multicast ARP probes,
        :data:`KIND_MULTICAST` for other group-addressed frames,
        :data:`KIND_UNICAST` otherwise. Sound because ``dst``,
        ``ethertype`` and the payload type never change once the frame
        is in flight.
        """
        code = self._kind
        if code is None:
            if self.dst._value & _GROUP_BIT:
                if self.ethertype == ETHERTYPE_ARP \
                        and isinstance(self.payload, ArpPacket):
                    code = KIND_ARP_DISCOVERY
                else:
                    code = KIND_MULTICAST
            else:
                code = KIND_UNICAST
            self._kind = code
        return code

    @property
    def is_broadcast(self) -> bool:
        return self.dst.is_broadcast

    @property
    def is_multicast(self) -> bool:
        return self.dst.is_multicast

    @property
    def is_unicast(self) -> bool:
        return self.dst.is_unicast

    def clone(self) -> "EthernetFrame":
        """A copy with the same uid and an independent trace list.

        The payload object is shared: payloads are treated as immutable
        once attached to a frame. The copy is private (not ``_shared``)
        until it is sent again.
        """
        copy = EthernetFrame.__new__(EthernetFrame)
        copy.dst = self.dst
        copy.src = self.src
        copy.ethertype = self.ethertype
        copy.payload = self.payload
        copy.uid = self.uid
        copy.trace = self.trace[:]
        copy._wire_size = self._wire_size
        copy._kind = self._kind
        copy._shared = False
        return copy

    def with_payload(self, payload: Any) -> "EthernetFrame":
        """A copy (same uid/trace) carrying a different payload.

        Used when relaying control frames whose hop budget must be
        decremented without breaking trace continuity.
        """
        return EthernetFrame(dst=self.dst, src=self.src,
                             ethertype=self.ethertype, payload=payload,
                             uid=self.uid, trace=list(self.trace))

    def record_hop(self, node_name: str, port_index: int, time: float) -> None:
        """Append a hop record (used by nodes when tracing is enabled)."""
        self.trace.append((node_name, port_index, time))

    def path_nodes(self) -> List[str]:
        """The node names along this copy's recorded trace, in order."""
        return [hop[0] for hop in self.trace]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EthernetFrame):
            return NotImplemented
        return (self.dst == other.dst and self.src == other.src
                and self.ethertype == other.ethertype
                and self.payload == other.payload
                and self.uid == other.uid and self.trace == other.trace)

    def __repr__(self) -> str:
        return (f"EthernetFrame(dst={self.dst!r}, src={self.src!r}, "
                f"ethertype={self.ethertype!r}, payload={self.payload!r}, "
                f"uid={self.uid!r}, trace={self.trace!r})")

    def __str__(self) -> str:
        kind = _ETHERTYPE_NAMES.get(self.ethertype,
                                    f"0x{self.ethertype:04x}")
        return (f"[{kind}] {self.src} -> {self.dst} "
                f"({self.wire_size}B uid={self.uid})")


def broadcast_frame(src: MAC, ethertype: int, payload: Any) -> EthernetFrame:
    """Convenience constructor for a broadcast frame."""
    return EthernetFrame(dst=BROADCAST, src=src, ethertype=ethertype,
                         payload=payload)
