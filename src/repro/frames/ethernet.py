"""Ethernet II frames.

Frames are the unit of exchange in the simulator. A frame carries a
typed payload object (ARP packet, IPv4 packet, BPDU, ARP-Path control
message or raw bytes); :mod:`repro.frames.codec` can serialise the whole
thing to wire bytes and back.

Frames are copied (:meth:`EthernetFrame.clone`) every time they are
transmitted so that flooded copies race through the network
independently — the mechanism ARP-Path's path discovery exploits.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from repro.frames.ipv4 import payload_size
from repro.frames.mac import BROADCAST, MAC

ETHERTYPE_IPV4 = 0x0800
ETHERTYPE_ARP = 0x0806
#: IEEE local-experimental ethertype carrying ARP-Path control frames.
ETHERTYPE_ARPPATH = 0x88B5
#: Pseudo ethertype for BPDUs. Real 802.1D BPDUs ride LLC (DSAP 0x42);
#: the simulator models them as an ethertype for uniformity.
ETHERTYPE_BPDU = 0x4242
#: Pseudo ethertype for the SPB baseline's link-state packets.
ETHERTYPE_LSP = 0x88B6

#: Destination address of BPDUs (802.1D bridge group address).
STP_MULTICAST = MAC("01:80:c2:00:00:00")

ETH_HEADER_LEN = 14
ETH_FCS_LEN = 4
ETH_MIN_FRAME = 64
ETH_MTU_PAYLOAD = 1500

_uid_counter = itertools.count(1)

#: A hop record appended to a frame's trace: (node_name, port_index, time).
Hop = Tuple[str, int, float]


@dataclass
class EthernetFrame:
    """An Ethernet II frame with a typed payload.

    ``uid``
        Identifies the *logical* frame; clones made while flooding share
        the uid, which lets the tracer correlate the copies of one
        broadcast race.
    ``trace``
        Hop records appended at each node when tracing is enabled; each
        clone carries its own list, so a delivered copy's trace is the
        exact path it travelled.
    """

    dst: MAC
    src: MAC
    ethertype: int
    payload: Any = b""
    uid: int = field(default_factory=lambda: next(_uid_counter))
    trace: List[Hop] = field(default_factory=list)
    #: Cached on-wire size; payloads are immutable once attached, so the
    #: size is computed once and shared with clones.
    _wire_size: Optional[int] = field(default=None, repr=False,
                                      compare=False)

    @property
    def wire_size(self) -> int:
        """Total on-wire size: header + payload + FCS, zero-padded to 64."""
        size = self._wire_size
        if size is None:
            size = max(ETH_HEADER_LEN + payload_size(self.payload)
                       + ETH_FCS_LEN, ETH_MIN_FRAME)
            self._wire_size = size
        return size

    @property
    def is_broadcast(self) -> bool:
        return self.dst.is_broadcast

    @property
    def is_multicast(self) -> bool:
        return self.dst.is_multicast

    @property
    def is_unicast(self) -> bool:
        return self.dst.is_unicast

    def clone(self) -> "EthernetFrame":
        """A copy with the same uid and an independent trace list.

        The payload object is shared: payloads are treated as immutable
        once attached to a frame.
        """
        return EthernetFrame(dst=self.dst, src=self.src,
                             ethertype=self.ethertype, payload=self.payload,
                             uid=self.uid, trace=list(self.trace),
                             _wire_size=self._wire_size)

    def with_payload(self, payload: Any) -> "EthernetFrame":
        """A copy (same uid/trace) carrying a different payload.

        Used when relaying control frames whose hop budget must be
        decremented without breaking trace continuity.
        """
        return EthernetFrame(dst=self.dst, src=self.src,
                             ethertype=self.ethertype, payload=payload,
                             uid=self.uid, trace=list(self.trace))

    def record_hop(self, node_name: str, port_index: int, time: float) -> None:
        """Append a hop record (used by nodes when tracing is enabled)."""
        self.trace.append((node_name, port_index, time))

    def path_nodes(self) -> List[str]:
        """The node names along this copy's recorded trace, in order."""
        return [hop[0] for hop in self.trace]

    def __str__(self) -> str:
        kind = {
            ETHERTYPE_IPV4: "IPv4",
            ETHERTYPE_ARP: "ARP",
            ETHERTYPE_ARPPATH: "ARP-Path",
            ETHERTYPE_BPDU: "BPDU",
            ETHERTYPE_LSP: "LSP",
        }.get(self.ethertype, f"0x{self.ethertype:04x}")
        return (f"[{kind}] {self.src} -> {self.dst} "
                f"({self.wire_size}B uid={self.uid})")


def broadcast_frame(src: MAC, ethertype: int, payload: Any) -> EthernetFrame:
    """Convenience constructor for a broadcast frame."""
    return EthernetFrame(dst=BROADCAST, src=src, ethertype=ethertype,
                         payload=payload)
