"""ARP packets (RFC 826) for IPv4 over Ethernet.

ARP is the heart of the reproduced protocol: ARP-Path bridges treat the
broadcast ARP Request as the path-discovery probe and the unicast ARP
Reply as the path-confirmation message (paper §2.1.1-2.1.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.frames.ipv4 import IPv4Address
from repro.frames.mac import MAC, ZERO

OP_REQUEST = 1
OP_REPLY = 2

HTYPE_ETHERNET = 1
PTYPE_IPV4 = 0x0800

ARP_WIRE_SIZE = 28


@dataclass(frozen=True)
class ArpPacket:
    """An ARP request or reply for IPv4-over-Ethernet.

    Field names follow RFC 826: *sha/spa* are the sender hardware and
    protocol addresses, *tha/tpa* the target ones.
    """

    op: int
    sha: MAC
    spa: IPv4Address
    tha: MAC
    tpa: IPv4Address

    def __post_init__(self):
        if self.op not in (OP_REQUEST, OP_REPLY):
            raise ValueError(f"unknown ARP op {self.op}")

    @property
    def is_request(self) -> bool:
        return self.op == OP_REQUEST

    @property
    def is_reply(self) -> bool:
        return self.op == OP_REPLY

    @property
    def wire_size(self) -> int:
        return ARP_WIRE_SIZE

    def __str__(self) -> str:
        if self.is_request:
            return f"ARP who-has {self.tpa} tell {self.spa} ({self.sha})"
        return f"ARP {self.spa} is-at {self.sha} (to {self.tpa})"


def make_request(sender_mac: MAC, sender_ip: IPv4Address,
                 target_ip: IPv4Address) -> ArpPacket:
    """The broadcast ARP Request a host emits to resolve *target_ip*."""
    return ArpPacket(op=OP_REQUEST, sha=sender_mac, spa=sender_ip,
                     tha=ZERO, tpa=target_ip)


def make_reply(sender_mac: MAC, sender_ip: IPv4Address,
               target_mac: MAC, target_ip: IPv4Address) -> ArpPacket:
    """The unicast ARP Reply answering a request."""
    return ArpPacket(op=OP_REPLY, sha=sender_mac, spa=sender_ip,
                     tha=target_mac, tpa=target_ip)


def make_gratuitous(sender_mac: MAC, sender_ip: IPv4Address) -> ArpPacket:
    """A gratuitous ARP announcing *sender_ip* is at *sender_mac*."""
    return ArpPacket(op=OP_REQUEST, sha=sender_mac, spa=sender_ip,
                     tha=ZERO, tpa=sender_ip)
