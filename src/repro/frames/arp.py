"""ARP packets (RFC 826) for IPv4 over Ethernet.

ARP is the heart of the reproduced protocol: ARP-Path bridges treat the
broadcast ARP Request as the path-discovery probe and the unicast ARP
Reply as the path-confirmation message (paper §2.1.1-2.1.2).
"""

from __future__ import annotations

from repro.frames.ipv4 import IPv4Address
from repro.frames.mac import MAC, ZERO

OP_REQUEST = 1
OP_REPLY = 2

HTYPE_ETHERNET = 1
PTYPE_IPV4 = 0x0800

ARP_WIRE_SIZE = 28


class ArpPacket:
    """An ARP request or reply for IPv4-over-Ethernet.

    Field names follow RFC 826: *sha/spa* are the sender hardware and
    protocol addresses, *tha/tpa* the target ones. Value-type semantics
    (equality, hashing) with ``__slots__`` — ARP packets ride every
    discovery race, so they are allocated in bulk.
    """

    __slots__ = ("op", "sha", "spa", "tha", "tpa")

    def __init__(self, op: int, sha: MAC, spa: IPv4Address, tha: MAC,
                 tpa: IPv4Address):
        if op not in (OP_REQUEST, OP_REPLY):
            raise ValueError(f"unknown ARP op {op}")
        set_field = object.__setattr__
        set_field(self, "op", op)
        set_field(self, "sha", sha)
        set_field(self, "spa", spa)
        set_field(self, "tha", tha)
        set_field(self, "tpa", tpa)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError(
            f"ArpPacket is immutable (tried to set {name!r})")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ArpPacket):
            return NotImplemented
        return (self.op == other.op and self.sha == other.sha
                and self.spa == other.spa and self.tha == other.tha
                and self.tpa == other.tpa)

    def __hash__(self) -> int:
        return hash((self.op, self.sha, self.spa, self.tha, self.tpa))

    def __repr__(self) -> str:
        return (f"ArpPacket(op={self.op!r}, sha={self.sha!r}, "
                f"spa={self.spa!r}, tha={self.tha!r}, tpa={self.tpa!r})")

    @property
    def is_request(self) -> bool:
        return self.op == OP_REQUEST

    @property
    def is_reply(self) -> bool:
        return self.op == OP_REPLY

    @property
    def wire_size(self) -> int:
        return ARP_WIRE_SIZE

    def __str__(self) -> str:
        if self.is_request:
            return f"ARP who-has {self.tpa} tell {self.spa} ({self.sha})"
        return f"ARP {self.spa} is-at {self.sha} (to {self.tpa})"


def make_request(sender_mac: MAC, sender_ip: IPv4Address,
                 target_ip: IPv4Address) -> ArpPacket:
    """The broadcast ARP Request a host emits to resolve *target_ip*."""
    return ArpPacket(op=OP_REQUEST, sha=sender_mac, spa=sender_ip,
                     tha=ZERO, tpa=target_ip)


def make_reply(sender_mac: MAC, sender_ip: IPv4Address,
               target_mac: MAC, target_ip: IPv4Address) -> ArpPacket:
    """The unicast ARP Reply answering a request."""
    return ArpPacket(op=OP_REPLY, sha=sender_mac, spa=sender_ip,
                     tha=target_mac, tpa=target_ip)


def make_gratuitous(sender_mac: MAC, sender_ip: IPv4Address) -> ArpPacket:
    """A gratuitous ARP announcing *sender_ip* is at *sender_mac*."""
    return ArpPacket(op=OP_REQUEST, sha=sender_mac, spa=sender_ip,
                     tha=ZERO, tpa=sender_ip)
