"""Frame and packet models: Ethernet, ARP, IPv4, UDP, ICMP, ARP-Path control.

This package is the wire-format substrate everything else builds on.
"""

from repro.frames.arp import (ArpPacket, OP_REPLY, OP_REQUEST, make_gratuitous,
                              make_reply, make_request)
from repro.frames.control import (ArpPathControl, HELLO_MULTICAST, OP_HELLO,
                                  OP_PATH_FAIL, OP_PATH_REPLY,
                                  OP_PATH_REQUEST, make_hello, make_path_fail,
                                  make_path_reply, make_path_request)
from repro.frames.ethernet import (ETH_MIN_FRAME, ETH_MTU_PAYLOAD,
                                   ETHERTYPE_ARP, ETHERTYPE_ARPPATH,
                                   ETHERTYPE_BPDU, ETHERTYPE_IPV4,
                                   ETHERTYPE_LSP, EthernetFrame, STP_MULTICAST,
                                   broadcast_frame)
from repro.frames.icmp import (IcmpEcho, TYPE_ECHO_REPLY, TYPE_ECHO_REQUEST,
                               make_echo_request)
from repro.frames.ipv4 import (IPv4Address, IPv4Packet, PROTO_ICMP, PROTO_UDP,
                               ip_for_host, payload_size)
from repro.frames.mac import BROADCAST, MAC, ZERO, mac_for_bridge, mac_for_host
from repro.frames.udp import UdpDatagram

__all__ = [
    "ArpPacket", "OP_REPLY", "OP_REQUEST", "make_gratuitous", "make_reply",
    "make_request",
    "ArpPathControl", "HELLO_MULTICAST", "OP_HELLO", "OP_PATH_FAIL",
    "OP_PATH_REPLY", "OP_PATH_REQUEST", "make_hello", "make_path_fail",
    "make_path_reply", "make_path_request",
    "ETH_MIN_FRAME", "ETH_MTU_PAYLOAD", "ETHERTYPE_ARP", "ETHERTYPE_ARPPATH",
    "ETHERTYPE_BPDU", "ETHERTYPE_IPV4", "ETHERTYPE_LSP", "EthernetFrame",
    "STP_MULTICAST", "broadcast_frame",
    "IcmpEcho", "TYPE_ECHO_REPLY", "TYPE_ECHO_REQUEST", "make_echo_request",
    "IPv4Address", "IPv4Packet", "PROTO_ICMP", "PROTO_UDP", "ip_for_host",
    "payload_size",
    "BROADCAST", "MAC", "ZERO", "mac_for_bridge", "mac_for_host",
    "UdpDatagram",
]
