"""48-bit MAC (EUI-48) addresses.

The whole library passes :class:`MAC` values around instead of strings or
raw bytes: they are immutable, hashable, cheap to compare and render in
the canonical ``aa:bb:cc:dd:ee:ff`` form.
"""

from __future__ import annotations

import re

_MAC_RE = re.compile(r"^([0-9A-Fa-f]{2})([:-]?)([0-9A-Fa-f]{2})\2([0-9A-Fa-f]{2})\2"
                     r"([0-9A-Fa-f]{2})\2([0-9A-Fa-f]{2})\2([0-9A-Fa-f]{2})$")

_MAX = (1 << 48) - 1

# The locally-administered bit (bit 1 of the first octet).
_LOCAL_BIT = 0x02_00_00_00_00_00
# The group (multicast) bit (bit 0 of the first octet).
_GROUP_BIT = 0x01_00_00_00_00_00


class MAC:
    """An immutable 48-bit Ethernet MAC address.

    Accepts an integer, another :class:`MAC`, 6 raw bytes, or a string in
    any of the usual textual forms (``aa:bb:cc:dd:ee:ff``,
    ``aa-bb-cc-dd-ee-ff``, ``aabbccddeeff``).

    >>> MAC("00:11:22:33:44:55").value == 0x001122334455
    True
    >>> MAC(0xFFFFFFFFFFFF).is_broadcast
    True
    """

    __slots__ = ("_value",)

    def __init__(self, value: "int | str | bytes | MAC"):
        if isinstance(value, MAC):
            self._value = value._value
            return
        if isinstance(value, int):
            if not 0 <= value <= _MAX:
                raise ValueError(f"MAC integer out of range: {value:#x}")
            self._value = value
            return
        if isinstance(value, (bytes, bytearray)):
            if len(value) != 6:
                raise ValueError(f"MAC needs exactly 6 bytes, got {len(value)}")
            self._value = int.from_bytes(bytes(value), "big")
            return
        if isinstance(value, str):
            match = _MAC_RE.match(value.strip())
            if match is None:
                raise ValueError(f"not a MAC address: {value!r}")
            groups = match.groups()
            octets = [groups[0]] + list(groups[2:])
            self._value = int("".join(octets), 16)
            return
        raise TypeError(f"cannot build MAC from {type(value).__name__}")

    # -- accessors ---------------------------------------------------------

    @property
    def value(self) -> int:
        """The address as a 48-bit integer."""
        return self._value

    @property
    def is_broadcast(self) -> bool:
        """True for ff:ff:ff:ff:ff:ff."""
        return self._value == _MAX

    @property
    def is_multicast(self) -> bool:
        """True when the group bit is set (includes broadcast)."""
        return bool(self._value & _GROUP_BIT)

    @property
    def is_unicast(self) -> bool:
        """True for individual (non-group) addresses."""
        return not self.is_multicast

    @property
    def is_local(self) -> bool:
        """True when the locally-administered bit is set."""
        return bool(self._value & _LOCAL_BIT)

    def to_bytes(self) -> bytes:
        """The 6-byte big-endian wire representation."""
        return self._value.to_bytes(6, "big")

    # -- protocol ----------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, MAC):
            return self._value == other._value
        return NotImplemented

    def __lt__(self, other: "MAC") -> bool:
        if isinstance(other, MAC):
            return self._value < other._value
        return NotImplemented

    def __le__(self, other: "MAC") -> bool:
        if isinstance(other, MAC):
            return self._value <= other._value
        return NotImplemented

    def __gt__(self, other: "MAC") -> bool:
        if isinstance(other, MAC):
            return self._value > other._value
        return NotImplemented

    def __ge__(self, other: "MAC") -> bool:
        if isinstance(other, MAC):
            return self._value >= other._value
        return NotImplemented

    def __hash__(self) -> int:
        # The raw 48-bit value IS the hash (CPython hashes an int under
        # 2**61-1 to itself): table lookups key on MACs at every hop of
        # every flooded copy, and hash() on the cached slot is pure
        # overhead at population scale.
        return self._value

    def __int__(self) -> int:
        return self._value

    def __str__(self) -> str:
        raw = f"{self._value:012x}"
        return ":".join(raw[i:i + 2] for i in range(0, 12, 2))

    def __repr__(self) -> str:
        return f"MAC('{self}')"


#: The all-ones broadcast address.
BROADCAST = MAC(_MAX)

#: Conventional all-zero placeholder (e.g. ARP target hardware address).
ZERO = MAC(0)


def mac_for_host(index: int) -> MAC:
    """A deterministic locally-administered unicast MAC for host *index*.

    Hosts get addresses under the ``02:00:00`` prefix.
    """
    if not 0 <= index < (1 << 24):
        raise ValueError(f"host index out of range: {index}")
    return MAC(0x02_00_00_00_00_00 | index)


def mac_for_bridge(index: int) -> MAC:
    """A deterministic locally-administered unicast MAC for bridge *index*.

    Bridges get addresses under the ``02:00:01`` prefix so host and
    bridge identities never collide.
    """
    if not 0 <= index < (1 << 24):
        raise ValueError(f"bridge index out of range: {index}")
    return MAC(0x02_00_01_00_00_00 | index)


def mac_for_controller(index: int) -> MAC:
    """A deterministic locally-administered unicast MAC for an
    out-of-band controller node.

    Controllers get the ``02:00:02`` prefix, disjoint from both hosts
    and bridges.
    """
    if not 0 <= index < (1 << 24):
        raise ValueError(f"controller index out of range: {index}")
    return MAC(0x02_00_02_00_00_00 | index)
