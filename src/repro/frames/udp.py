"""UDP datagrams for the simulated IP stack."""

from __future__ import annotations

from typing import Any

from repro.frames.ipv4 import payload_size

UDP_HEADER_LEN = 8


class UdpDatagram:
    """A UDP datagram carrying an application payload.

    The payload may be raw ``bytes`` or any object exposing
    ``wire_size`` (e.g. a :class:`repro.traffic.video.VideoChunk`).
    A ``__slots__`` value type: one is allocated per stream chunk.
    """

    __slots__ = ("sport", "dport", "payload")

    def __init__(self, sport: int, dport: int, payload: Any = b""):
        for port in (sport, dport):
            if not 0 <= port <= 0xFFFF:
                raise ValueError(f"UDP port out of range: {port}")
        self.sport = sport
        self.dport = dport
        self.payload = payload

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, UdpDatagram):
            return NotImplemented
        return (self.sport == other.sport and self.dport == other.dport
                and self.payload == other.payload)

    def __repr__(self) -> str:
        return (f"UdpDatagram(sport={self.sport!r}, dport={self.dport!r}, "
                f"payload={self.payload!r})")

    @property
    def wire_size(self) -> int:
        return UDP_HEADER_LEN + payload_size(self.payload)

    def __str__(self) -> str:
        return f"UDP {self.sport}->{self.dport} ({self.wire_size}B)"
