"""UDP datagrams for the simulated IP stack."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.frames.ipv4 import payload_size

UDP_HEADER_LEN = 8


@dataclass
class UdpDatagram:
    """A UDP datagram carrying an application payload.

    The payload may be raw ``bytes`` or any object exposing
    ``wire_size`` (e.g. a :class:`repro.traffic.video.VideoChunk`).
    """

    sport: int
    dport: int
    payload: Any = b""
    extra: dict = field(default_factory=dict)

    def __post_init__(self):
        for port in (self.sport, self.dport):
            if not 0 <= port <= 0xFFFF:
                raise ValueError(f"UDP port out of range: {port}")

    @property
    def wire_size(self) -> int:
        return UDP_HEADER_LEN + payload_size(self.payload)

    def __str__(self) -> str:
        return f"UDP {self.sport}->{self.dport} ({self.wire_size}B)"
