"""Wire-format serialisation for the frame model.

The simulator exchanges Python objects for speed, but every protocol
message has a defined byte layout so that a frame can be serialised and
parsed back — the same property a hardware implementation must have.
Round-tripping is exercised heavily by the property-based tests.

Payload objects the codec does not understand (e.g. application-level
video chunks inside UDP) are encoded as opaque zero bytes of their
declared ``wire_size``; decoding therefore yields ``bytes`` payloads at
that layer, which is exactly what a wire capture would show.

Extra ethertypes (BPDU, LSP) register their own encoders with
:func:`register_ethertype`.
"""

from __future__ import annotations

import struct
from typing import Any, Callable, Dict, Tuple

from repro.frames import arp as arp_mod
from repro.frames import control as ctl_mod
from repro.frames import icmp as icmp_mod
from repro.frames.arp import ArpPacket
from repro.frames.control import ArpPathControl
from repro.frames.ethernet import (ETH_FCS_LEN, ETH_HEADER_LEN, ETH_MIN_FRAME,
                                   ETHERTYPE_ARP, ETHERTYPE_ARPPATH,
                                   ETHERTYPE_IPV4, EthernetFrame)
from repro.frames.icmp import IcmpEcho
from repro.frames.ipv4 import (IPV4_HEADER_LEN, IPv4Address, IPv4Packet,
                               PROTO_ICMP, PROTO_UDP, payload_size)
from repro.frames.mac import MAC
from repro.frames.udp import UDP_HEADER_LEN, UdpDatagram

Encoder = Callable[[Any], bytes]
Decoder = Callable[[bytes], Any]

_ethertype_codecs: Dict[int, Tuple[Encoder, Decoder]] = {}


class CodecError(ValueError):
    """Raised when bytes cannot be parsed as the claimed protocol."""


def register_ethertype(ethertype: int, encoder: Encoder,
                       decoder: Decoder) -> None:
    """Register encode/decode functions for an ethertype payload."""
    _ethertype_codecs[ethertype] = (encoder, decoder)


def _opaque_bytes(payload: Any) -> bytes:
    """Encode an unknown payload object as zero bytes of its wire size."""
    if isinstance(payload, (bytes, bytearray)):
        return bytes(payload)
    return b"\x00" * payload_size(payload)


# -- ARP ---------------------------------------------------------------------

_ARP_STRUCT = struct.Struct("!HHBBH6s4s6s4s")


def encode_arp(pkt: ArpPacket) -> bytes:
    return _ARP_STRUCT.pack(arp_mod.HTYPE_ETHERNET, arp_mod.PTYPE_IPV4,
                            6, 4, pkt.op, pkt.sha.to_bytes(),
                            pkt.spa.to_bytes(), pkt.tha.to_bytes(),
                            pkt.tpa.to_bytes())


def decode_arp(data: bytes) -> ArpPacket:
    if len(data) < _ARP_STRUCT.size:
        raise CodecError(f"ARP packet too short: {len(data)} bytes")
    (htype, ptype, hlen, plen, op, sha, spa,
     tha, tpa) = _ARP_STRUCT.unpack_from(data)
    if htype != arp_mod.HTYPE_ETHERNET or ptype != arp_mod.PTYPE_IPV4:
        raise CodecError(f"unsupported ARP htype/ptype {htype}/{ptype}")
    if hlen != 6 or plen != 4:
        raise CodecError(f"unsupported ARP address lengths {hlen}/{plen}")
    return ArpPacket(op=op, sha=MAC(sha), spa=IPv4Address(spa),
                     tha=MAC(tha), tpa=IPv4Address(tpa))


# -- ARP-Path control --------------------------------------------------------

_CTL_STRUCT = struct.Struct("!H6s6s6sIH")


def encode_control(msg: ArpPathControl) -> bytes:
    return _CTL_STRUCT.pack(msg.op, msg.origin.to_bytes(),
                            msg.source.to_bytes(), msg.target.to_bytes(),
                            msg.seq, msg.ttl)


def decode_control(data: bytes) -> ArpPathControl:
    if len(data) < _CTL_STRUCT.size:
        raise CodecError(f"control frame too short: {len(data)} bytes")
    op, origin, source, target, seq, ttl = _CTL_STRUCT.unpack_from(data)
    try:
        return ArpPathControl(op=op, origin=MAC(origin), source=MAC(source),
                              target=MAC(target), seq=seq, ttl=ttl)
    except ValueError as exc:
        raise CodecError(str(exc)) from exc


# -- ICMP / UDP / IPv4 -------------------------------------------------------

_ICMP_STRUCT = struct.Struct("!BBHHH")


def encode_icmp(msg: IcmpEcho) -> bytes:
    body = msg.payload if isinstance(msg.payload, bytes) else _opaque_bytes(msg.payload)
    header = _ICMP_STRUCT.pack(msg.icmp_type, 0, 0, msg.ident, msg.seq)
    checksum = _inet_checksum(header + body)
    header = _ICMP_STRUCT.pack(msg.icmp_type, 0, checksum, msg.ident, msg.seq)
    return header + body


def decode_icmp(data: bytes) -> IcmpEcho:
    if len(data) < _ICMP_STRUCT.size:
        raise CodecError(f"ICMP message too short: {len(data)} bytes")
    icmp_type, code, _checksum, ident, seq = _ICMP_STRUCT.unpack_from(data)
    if icmp_type not in (icmp_mod.TYPE_ECHO_REQUEST, icmp_mod.TYPE_ECHO_REPLY):
        raise CodecError(f"unsupported ICMP type {icmp_type}")
    if code != 0:
        raise CodecError(f"unsupported ICMP code {code}")
    return IcmpEcho(icmp_type=icmp_type, ident=ident, seq=seq,
                    payload=data[_ICMP_STRUCT.size:])


_UDP_STRUCT = struct.Struct("!HHHH")


def encode_udp(dgram: UdpDatagram) -> bytes:
    body = _opaque_bytes(dgram.payload)
    length = UDP_HEADER_LEN + len(body)
    return _UDP_STRUCT.pack(dgram.sport, dgram.dport, length, 0) + body


def decode_udp(data: bytes) -> UdpDatagram:
    if len(data) < _UDP_STRUCT.size:
        raise CodecError(f"UDP datagram too short: {len(data)} bytes")
    sport, dport, length, _checksum = _UDP_STRUCT.unpack_from(data)
    if length < UDP_HEADER_LEN or length > len(data):
        raise CodecError(f"bad UDP length field {length}")
    return UdpDatagram(sport=sport, dport=dport,
                       payload=data[UDP_HEADER_LEN:length])


def _inet_checksum(data: bytes) -> int:
    """The Internet checksum (RFC 1071) over *data*."""
    if len(data) % 2:
        data += b"\x00"
    total = sum(struct.unpack(f"!{len(data) // 2}H", data))
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return ~total & 0xFFFF


def encode_ipv4(pkt: IPv4Packet) -> bytes:
    if pkt.proto == PROTO_UDP and isinstance(pkt.payload, UdpDatagram):
        body = encode_udp(pkt.payload)
    elif pkt.proto == PROTO_ICMP and isinstance(pkt.payload, IcmpEcho):
        body = encode_icmp(pkt.payload)
    else:
        body = _opaque_bytes(pkt.payload)
    total_len = IPV4_HEADER_LEN + len(body)
    header = struct.pack("!BBHHHBBH4s4s", 0x45, 0, total_len, pkt.ident,
                         0, pkt.ttl, pkt.proto, 0, pkt.src.to_bytes(),
                         pkt.dst.to_bytes())
    checksum = _inet_checksum(header)
    header = struct.pack("!BBHHHBBH4s4s", 0x45, 0, total_len, pkt.ident,
                         0, pkt.ttl, pkt.proto, checksum, pkt.src.to_bytes(),
                         pkt.dst.to_bytes())
    return header + body


def decode_ipv4(data: bytes) -> IPv4Packet:
    if len(data) < IPV4_HEADER_LEN:
        raise CodecError(f"IPv4 packet too short: {len(data)} bytes")
    (ver_ihl, _tos, total_len, ident, _frag, ttl, proto, _checksum,
     src, dst) = struct.unpack_from("!BBHHHBBH4s4s", data)
    if ver_ihl != 0x45:
        raise CodecError(f"unsupported IPv4 version/IHL 0x{ver_ihl:02x}")
    if total_len < IPV4_HEADER_LEN or total_len > len(data):
        raise CodecError(f"bad IPv4 total length {total_len}")
    body = data[IPV4_HEADER_LEN:total_len]
    payload: Any
    if proto == PROTO_UDP:
        payload = decode_udp(body)
    elif proto == PROTO_ICMP:
        payload = decode_icmp(body)
    else:
        payload = body
    return IPv4Packet(src=IPv4Address(src), dst=IPv4Address(dst),
                      proto=proto, payload=payload, ttl=ttl, ident=ident)


# -- Ethernet ----------------------------------------------------------------

_ETH_STRUCT = struct.Struct("!6s6sH")

register_ethertype(ETHERTYPE_ARP, encode_arp, decode_arp)
register_ethertype(ETHERTYPE_ARPPATH, encode_control, decode_control)
register_ethertype(ETHERTYPE_IPV4, encode_ipv4, decode_ipv4)


def encode_frame(frame: EthernetFrame) -> bytes:
    """Serialise a frame to on-wire bytes (padded, no FCS)."""
    codec = _ethertype_codecs.get(frame.ethertype)
    if codec is not None and not isinstance(frame.payload, (bytes, bytearray)):
        body = codec[0](frame.payload)
    else:
        body = _opaque_bytes(frame.payload)
    raw = _ETH_STRUCT.pack(frame.dst.to_bytes(), frame.src.to_bytes(),
                           frame.ethertype) + body
    min_without_fcs = ETH_MIN_FRAME - ETH_FCS_LEN
    if len(raw) < min_without_fcs:
        raw += b"\x00" * (min_without_fcs - len(raw))
    return raw


def decode_frame(data: bytes) -> EthernetFrame:
    """Parse on-wire bytes back into an :class:`EthernetFrame`.

    The payload is decoded with the registered codec for the ethertype
    when available, otherwise kept as raw bytes.
    """
    if len(data) < ETH_HEADER_LEN:
        raise CodecError(f"Ethernet frame too short: {len(data)} bytes")
    dst, src, ethertype = _ETH_STRUCT.unpack_from(data)
    body = data[ETH_HEADER_LEN:]
    codec = _ethertype_codecs.get(ethertype)
    payload: Any = body
    if codec is not None:
        payload = codec[1](body)
    return EthernetFrame(dst=MAC(dst), src=MAC(src), ethertype=ethertype,
                         payload=payload)
