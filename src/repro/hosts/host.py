"""End hosts: an ordinary ARP + IPv4 + UDP/ICMP stack.

Hosts are deliberately *protocol-unaware*: they run exactly the stack a
Linux box runs (ARP resolution, IP, UDP sockets, ICMP echo) and never
see ARP-Path control traffic — demonstrating the paper's transparency
claim. All ARP-Path machinery lives in the bridges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.frames import arp as arp_proto
from repro.frames.arp import ArpPacket
from repro.frames.ethernet import (ETHERTYPE_ARP, ETHERTYPE_IPV4,
                                   EthernetFrame)
from repro.frames.icmp import IcmpEcho, make_echo_request
from repro.frames.ipv4 import (DEFAULT_TTL, IPv4Address, IPv4Packet,
                               PROTO_ICMP, PROTO_UDP)
from repro.frames.mac import BROADCAST, MAC
from repro.frames.udp import UdpDatagram
from repro.hosts.arpcache import (ArpCache, DEFAULT_ARP_TIMEOUT,
                                  DEFAULT_MAX_RETRIES,
                                  DEFAULT_RETRY_INTERVAL)
from repro.netsim.engine import Simulator
from repro.netsim.node import Node, Port

#: UDP receive callback: (src_ip, src_port, payload, packet).
UdpHandler = Callable[[IPv4Address, int, Any, IPv4Packet], None]
#: Ping reply callback: (seq, rtt_seconds).
PingHandler = Callable[[int, float], None]


@dataclass
class HostCounters:
    """Packet counters kept by every host."""

    arp_requests_sent: int = 0
    arp_replies_sent: int = 0
    arp_requests_received: int = 0
    arp_replies_received: int = 0
    ip_sent: int = 0
    ip_received: int = 0
    ip_foreign: int = 0
    udp_received: int = 0
    udp_unbound: int = 0
    echo_requests_received: int = 0
    echo_replies_received: int = 0
    resolution_failures: int = 0


class Host(Node):
    """A single-homed end host with an ARP/IPv4/UDP/ICMP stack."""

    def __init__(self, sim: Simulator, name: str, mac: MAC, ip: IPv4Address,
                 arp_timeout: float = DEFAULT_ARP_TIMEOUT,
                 arp_retry_interval: float = DEFAULT_RETRY_INTERVAL,
                 arp_max_retries: int = DEFAULT_MAX_RETRIES):
        super().__init__(sim, name)
        self.mac = mac
        self.ip = ip
        self.arp_cache = ArpCache(timeout=arp_timeout,
                                  max_retries=arp_max_retries)
        self.arp_retry_interval = arp_retry_interval
        self.port = self.add_port()
        self.counters = HostCounters()
        self._udp_handlers: Dict[int, UdpHandler] = {}
        self._ping_handlers: Dict[int, PingHandler] = {}
        self._ping_sent_at: Dict[tuple, float] = {}
        self._ping_ident = 0
        self._ip_ident = 0
        #: Listeners called for every IP packet this host receives.
        self.ip_listeners: List[Callable[[IPv4Packet], None]] = []

    # -- sending -------------------------------------------------------------

    def send_ip(self, dst_ip: IPv4Address, proto: int, payload: Any,
                ttl: int = DEFAULT_TTL) -> None:
        """Send an IP packet, resolving the destination MAC if needed."""
        self._ip_ident = (self._ip_ident + 1) & 0xFFFF
        packet = IPv4Packet(src=self.ip, dst=dst_ip, proto=proto,
                            payload=payload, ttl=ttl, ident=self._ip_ident)
        mac = self.arp_cache.lookup(dst_ip, self.sim.now)
        if mac is not None:
            self._transmit_ip(mac, packet)
            return
        self._resolve_and_send(dst_ip, packet)

    def send_udp(self, dst_ip: IPv4Address, sport: int, dport: int,
                 payload: Any) -> None:
        """Send a UDP datagram."""
        self.send_ip(dst_ip, PROTO_UDP,
                     UdpDatagram(sport=sport, dport=dport, payload=payload))

    def bind_udp(self, port: int, handler: UdpHandler) -> None:
        """Register *handler* for datagrams arriving on UDP *port*."""
        if port in self._udp_handlers:
            raise ValueError(f"{self.name}: UDP port {port} already bound")
        self._udp_handlers[port] = handler

    def unbind_udp(self, port: int) -> None:
        self._udp_handlers.pop(port, None)

    def ping(self, dst_ip: IPv4Address, seq: int = 0,
             payload_size: int = 56,
             on_reply: Optional[PingHandler] = None) -> int:
        """Send one ICMP echo request; returns the ident used.

        *on_reply* fires with ``(seq, rtt)`` when the matching reply
        arrives.
        """
        self._ping_ident = (self._ping_ident + 1) & 0xFFFF
        ident = self._ping_ident
        if on_reply is not None:
            self._ping_handlers[ident] = on_reply
        self._ping_sent_at[(ident, seq)] = self.sim.now
        echo = make_echo_request(ident=ident, seq=seq,
                                 payload=b"\x00" * payload_size)
        self.send_ip(dst_ip, PROTO_ICMP, echo)
        return ident

    def gratuitous_arp(self) -> None:
        """Broadcast a gratuitous ARP announcing this host."""
        announcement = arp_proto.make_gratuitous(self.mac, self.ip)
        self.counters.arp_requests_sent += 1
        self.port.send(EthernetFrame(dst=BROADCAST, src=self.mac,
                                     ethertype=ETHERTYPE_ARP,
                                     payload=announcement))

    # -- ARP resolution ------------------------------------------------------

    def _resolve_and_send(self, dst_ip: IPv4Address,
                          packet: IPv4Packet) -> None:
        pending = self.arp_cache.pending_for(dst_ip)
        already_resolving = pending is not None
        pending = self.arp_cache.park(dst_ip, packet)
        if already_resolving:
            return
        self._send_arp_request(dst_ip)
        pending.retry_event = self.sim.schedule(
            self.arp_retry_interval, self._arp_retry, dst_ip)

    def _send_arp_request(self, dst_ip: IPv4Address) -> None:
        request = arp_proto.make_request(self.mac, self.ip, dst_ip)
        self.counters.arp_requests_sent += 1
        self.port.send(EthernetFrame(dst=BROADCAST, src=self.mac,
                                     ethertype=ETHERTYPE_ARP,
                                     payload=request))

    def _arp_retry(self, dst_ip: IPv4Address) -> None:
        pending = self.arp_cache.pending_for(dst_ip)
        if pending is None:
            return
        if pending.retries_left <= 0:
            dropped = self.arp_cache.abandon(dst_ip)
            self.counters.resolution_failures += dropped
            return
        pending.retries_left -= 1
        self._send_arp_request(dst_ip)
        pending.retry_event = self.sim.schedule(
            self.arp_retry_interval, self._arp_retry, dst_ip)

    # -- receiving -----------------------------------------------------------

    def handle_frame(self, port: Port, frame: EthernetFrame) -> None:
        if frame.src == self.mac:
            return
        if not frame.dst.is_broadcast and frame.dst != self.mac \
                and not frame.dst.is_multicast:
            return
        if frame.ethertype == ETHERTYPE_ARP \
                and isinstance(frame.payload, ArpPacket):
            self._handle_arp(frame.payload)
        elif frame.ethertype == ETHERTYPE_IPV4 \
                and isinstance(frame.payload, IPv4Packet):
            self._handle_ip(frame.payload)
        # Other ethertypes (BPDU, ARP-Path control) are ignored: hosts
        # are unmodified.

    def _handle_arp(self, pkt: ArpPacket) -> None:
        # Opportunistically learn the sender binding (standard practice).
        if int(pkt.spa) != 0:
            self.arp_cache.insert(pkt.spa, pkt.sha, self.sim.now)
            self._flush_pending(pkt.spa)
        if pkt.is_request:
            self.counters.arp_requests_received += 1
            if pkt.tpa == self.ip and pkt.spa != self.ip:
                reply = arp_proto.make_reply(self.mac, self.ip,
                                             pkt.sha, pkt.spa)
                self.counters.arp_replies_sent += 1
                self.port.send(EthernetFrame(dst=pkt.sha, src=self.mac,
                                             ethertype=ETHERTYPE_ARP,
                                             payload=reply))
        else:
            self.counters.arp_replies_received += 1

    def _flush_pending(self, ip: IPv4Address) -> None:
        mac = self.arp_cache.lookup(ip, self.sim.now)
        if mac is None:
            return
        for packet in self.arp_cache.take_pending(ip):
            self._transmit_ip(mac, packet)

    def _transmit_ip(self, dst_mac: MAC, packet: IPv4Packet) -> None:
        self.counters.ip_sent += 1
        self.port.send(EthernetFrame(dst=dst_mac, src=self.mac,
                                     ethertype=ETHERTYPE_IPV4,
                                     payload=packet))

    def _handle_ip(self, packet: IPv4Packet) -> None:
        if packet.dst != self.ip:
            self.counters.ip_foreign += 1
            return
        self.counters.ip_received += 1
        for listener in self.ip_listeners:
            listener(packet)
        if packet.proto == PROTO_UDP and isinstance(packet.payload,
                                                    UdpDatagram):
            self._handle_udp(packet)
        elif packet.proto == PROTO_ICMP and isinstance(packet.payload,
                                                       IcmpEcho):
            self._handle_icmp(packet)

    def _handle_udp(self, packet: IPv4Packet) -> None:
        dgram: UdpDatagram = packet.payload
        handler = self._udp_handlers.get(dgram.dport)
        if handler is None:
            self.counters.udp_unbound += 1
            return
        self.counters.udp_received += 1
        handler(packet.src, dgram.sport, dgram.payload, packet)

    def _handle_icmp(self, packet: IPv4Packet) -> None:
        echo: IcmpEcho = packet.payload
        if echo.is_request:
            self.counters.echo_requests_received += 1
            self.send_ip(packet.src, PROTO_ICMP, echo.reply())
            return
        self.counters.echo_replies_received += 1
        key = (echo.ident, echo.seq)
        sent_at = self._ping_sent_at.pop(key, None)
        handler = self._ping_handlers.get(echo.ident)
        if sent_at is not None and handler is not None:
            handler(echo.seq, self.sim.now - sent_at)

    def __repr__(self) -> str:
        return f"<Host {self.name} mac={self.mac} ip={self.ip}>"
