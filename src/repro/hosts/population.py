"""Flyweight host populations: N endpoints behind one access port.

A :class:`HostPopulation` emulates *N* end hosts attached to a single
bridge port without allocating a per-host object graph. Endpoint
identity is pure arithmetic — endpoint *i* owns
``mac_for_host(base_index + i)`` / ``ip_for_host(base_index + i)``, so
the reverse MAC/IP → endpoint mapping is an integer subtraction and a
range check: zero bytes of per-endpoint storage, O(1) on every frame
arriving at the shared port. All mutable state is **array-backed**:
flat dicts keyed by the dense endpoint index (ARP-cache overlays,
per-endpoint counters, pending resolutions), sized by *activity*, not
by *N* — a population of a million idle endpoints costs a handful of
integers.

The protocol behaviour per endpoint is the :class:`~repro.hosts.host.
Host` stack verbatim (ARP resolution with park/retry/abandon, IPv4,
UDP sockets, ICMP echo); ``tests/test_population.py`` pins the
equivalence against real hosts on a 2-bridge line. Two deliberate
fidelity trades, documented in README "Scale":

* **Shared broadcast learning.** Every endpoint behind the port hears
  the same broadcasts, so bindings learned from broadcast ARP live in
  one population-wide map (``ip → (mac, expires)``); only bindings
  learned from *unicast* ARP are tracked per endpoint. A real host
  that missed a broadcast (it did not exist yet) cannot diverge here
  because endpoints share one attach instant.
* **Internal short-circuit.** Endpoint-to-endpoint frames inside one
  population never cross the access link: they are delivered after
  ``local_latency`` by an engine event, and therefore do not appear in
  the link tracer (exactly as frames between ports of one physical
  server never hit the ToR).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.frames import arp as arp_proto
from repro.frames.arp import ArpPacket
from repro.frames.ethernet import (ETHERTYPE_ARP, ETHERTYPE_IPV4,
                                   EthernetFrame)
from repro.frames.icmp import IcmpEcho, make_echo_request
from repro.frames.ipv4 import (DEFAULT_TTL, IPv4Address, IPv4Packet,
                               PROTO_ICMP, PROTO_UDP, ip_for_host)
from repro.frames.mac import BROADCAST, MAC, mac_for_host
from repro.frames.udp import UdpDatagram
from repro.hosts.arpcache import (DEFAULT_ARP_TIMEOUT, DEFAULT_MAX_RETRIES,
                                  DEFAULT_RETRY_INTERVAL)
from repro.hosts.host import HostCounters, PingHandler, UdpHandler
from repro.netsim.engine import Simulator
from repro.netsim.node import Node, Port

#: Delivery latency for frames that never leave the population (two
#: endpoints behind the same port) — a software-switch hop.
DEFAULT_LOCAL_LATENCY = 1e-6


class Endpoint:
    """A flyweight handle on one endpoint of a :class:`HostPopulation`.

    Created on demand (never stored), it exposes the :class:`~repro.
    hosts.host.Host` API surface traffic code uses — ``ip``, ``mac``,
    ``ping``, ``send_udp``, ``bind_udp`` — by delegating to the
    population with the endpoint index.
    """

    __slots__ = ("population", "index")

    def __init__(self, population: "HostPopulation", index: int):
        self.population = population
        self.index = index

    @property
    def name(self) -> str:
        return f"{self.population.name}#{self.index}"

    @property
    def mac(self) -> MAC:
        return self.population.mac_of(self.index)

    @property
    def ip(self) -> IPv4Address:
        return self.population.ip_of(self.index)

    @property
    def counters(self) -> HostCounters:
        return self.population.endpoint_counters(self.index)

    def send_ip(self, dst_ip: IPv4Address, proto: int, payload: Any,
                ttl: int = DEFAULT_TTL) -> None:
        self.population.send_ip(self.index, dst_ip, proto, payload, ttl=ttl)

    def send_udp(self, dst_ip: IPv4Address, sport: int, dport: int,
                 payload: Any) -> None:
        self.population.send_udp(self.index, dst_ip, sport, dport, payload)

    def bind_udp(self, port: int, handler: UdpHandler) -> None:
        self.population.bind_udp(self.index, port, handler)

    def unbind_udp(self, port: int) -> None:
        self.population.unbind_udp(self.index, port)

    def ping(self, dst_ip: IPv4Address, seq: int = 0,
             payload_size: int = 56,
             on_reply: Optional[PingHandler] = None) -> int:
        return self.population.ping(self.index, dst_ip, seq=seq,
                                    payload_size=payload_size,
                                    on_reply=on_reply)

    def gratuitous_arp(self) -> None:
        self.population.gratuitous_arp(self.index)

    def __repr__(self) -> str:
        return f"<Endpoint {self.name} mac={self.mac} ip={self.ip}>"


class HostPopulation(Node):
    """*size* emulated hosts sharing one access port (flyweight).

    ``base_index`` is the host-index the population's address block
    starts at (the builder allocates it); endpoint *i* is addressed as
    ``mac_for_host(base_index + i)`` / ``ip_for_host(base_index + i)``
    and named ``f"{name}#{i}"``.
    """

    def __init__(self, sim: Simulator, name: str, size: int,
                 base_index: int,
                 arp_timeout: float = DEFAULT_ARP_TIMEOUT,
                 arp_retry_interval: float = DEFAULT_RETRY_INTERVAL,
                 arp_max_retries: int = DEFAULT_MAX_RETRIES,
                 max_pending_per_ip: int = 16,
                 local_latency: float = DEFAULT_LOCAL_LATENCY):
        if size < 1:
            raise ValueError(f"population needs at least 1 endpoint, "
                             f"got {size}")
        super().__init__(sim, name)
        self.size = size
        self.base_index = base_index
        self.arp_timeout = arp_timeout
        self.arp_retry_interval = arp_retry_interval
        self.arp_max_retries = arp_max_retries
        self.max_pending_per_ip = max_pending_per_ip
        self.local_latency = local_latency
        self.port = self.add_port()
        #: Population-wide totals (sum over endpoints, kept inline so
        #: experiments read delivered payloads in O(1)).
        self.counters = HostCounters()
        #: Packets dropped from overflowing pending queues (mirrors
        #: ``ArpCache.dropped_pending``).
        self.dropped_pending = 0

        # Arithmetic identity: endpoint i <-> mac_base + i / ip_base + i.
        self._mac_base = mac_for_host(base_index).value
        self._ip_base = int(ip_for_host(base_index))

        # -- array-backed hot state (flat maps keyed by endpoint index;
        #    sized by activity, never by population size) --------------
        #: Bindings learned from broadcast ARP, shared by construction
        #: (every endpoint hears every broadcast on the port).
        self._shared_arp: Dict[int, Tuple[MAC, float]] = {}
        #: Bindings learned from unicast ARP: (idx, ip) -> (mac, expires).
        self._arp_overlay: Dict[Tuple[int, int], Tuple[MAC, float]] = {}
        #: (idx, ip) -> [parked packets, retries_left, retry_event].
        self._pending: Dict[Tuple[int, int], List[Any]] = {}
        #: ip -> endpoint indices with a pending resolution for it (so a
        #: broadcast-learned binding flushes waiters without scanning).
        self._pending_waiters: Dict[int, Set[int]] = {}
        # Sparse per-endpoint counters (only touched endpoints appear).
        self._arp_requests_sent: Dict[int, int] = {}
        self._arp_replies_sent: Dict[int, int] = {}
        self._unicast_requests: Dict[int, int] = {}
        self._unicast_replies: Dict[int, int] = {}
        self._ip_sent: Dict[int, int] = {}
        self._ip_received: Dict[int, int] = {}
        self._ip_foreign_unicast: Dict[int, int] = {}
        self._udp_received: Dict[int, int] = {}
        self._udp_unbound: Dict[int, int] = {}
        self._echo_requests: Dict[int, int] = {}
        self._echo_replies: Dict[int, int] = {}
        self._resolution_failures: Dict[int, int] = {}
        # Broadcast bases: every endpoint hears every broadcast, so the
        # per-endpoint received counts derive from population-wide tallies
        # minus the endpoint's own transmissions (a host never hears its
        # own frame) — O(1) per broadcast instead of O(N).
        self._bcast_requests_heard = 0
        self._bcast_replies_heard = 0
        self._bcast_ip_heard = 0
        self._own_bcast_requests: Dict[int, int] = {}
        self._bcast_ip_for: Dict[int, int] = {}
        # Socket / ping bookkeeping, keyed (idx, ...).
        self._udp_handlers: Dict[Tuple[int, int], UdpHandler] = {}
        self._ping_handlers: Dict[Tuple[int, int], PingHandler] = {}
        self._ping_sent_at: Dict[Tuple[int, int, int], float] = {}
        self._ping_ident: Dict[int, int] = {}
        self._ip_ident: Dict[int, int] = {}

    # -- identity ------------------------------------------------------------

    def mac_of(self, index: int) -> MAC:
        """Endpoint *index*'s MAC (arithmetic, no storage)."""
        self._check_index(index)
        return MAC(self._mac_base + index)

    def ip_of(self, index: int) -> IPv4Address:
        """Endpoint *index*'s IPv4 address (arithmetic, no storage)."""
        self._check_index(index)
        return IPv4Address(self._ip_base + index)

    def endpoint(self, index: int) -> Endpoint:
        """A flyweight handle on endpoint *index*."""
        self._check_index(index)
        return Endpoint(self, index)

    def endpoint_names(self) -> List[str]:
        """Every endpoint name (materialises the list — O(N))."""
        return [f"{self.name}#{i}" for i in range(self.size)]

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.size:
            raise IndexError(f"{self.name}: endpoint index {index} out of "
                             f"range [0, {self.size})")

    def _index_of_mac(self, value: int) -> Optional[int]:
        offset = value - self._mac_base
        return offset if 0 <= offset < self.size else None

    def _index_of_ip(self, value: int) -> Optional[int]:
        offset = value - self._ip_base
        return offset if 0 <= offset < self.size else None

    # -- sending -------------------------------------------------------------

    def send_ip(self, index: int, dst_ip: IPv4Address, proto: int,
                payload: Any, ttl: int = DEFAULT_TTL) -> None:
        """Send an IP packet from endpoint *index*, resolving if needed."""
        ident = (self._ip_ident.get(index, 0) + 1) & 0xFFFF
        self._ip_ident[index] = ident
        packet = IPv4Packet(src=self.ip_of(index), dst=dst_ip, proto=proto,
                            payload=payload, ttl=ttl, ident=ident)
        mac = self._lookup_arp(index, int(dst_ip))
        if mac is not None:
            self._transmit_ip(index, mac, packet)
            return
        self._resolve_and_send(index, dst_ip, packet)

    def send_udp(self, index: int, dst_ip: IPv4Address, sport: int,
                 dport: int, payload: Any) -> None:
        self.send_ip(index, dst_ip, PROTO_UDP,
                     UdpDatagram(sport=sport, dport=dport, payload=payload))

    def bind_udp(self, index: int, port: int, handler: UdpHandler) -> None:
        self._check_index(index)
        key = (index, port)
        if key in self._udp_handlers:
            raise ValueError(f"{self.name}#{index}: UDP port {port} "
                             f"already bound")
        self._udp_handlers[key] = handler

    def unbind_udp(self, index: int, port: int) -> None:
        self._udp_handlers.pop((index, port), None)

    def ping(self, index: int, dst_ip: IPv4Address, seq: int = 0,
             payload_size: int = 56,
             on_reply: Optional[PingHandler] = None) -> int:
        """One ICMP echo request from endpoint *index*; returns the ident."""
        ident = (self._ping_ident.get(index, 0) + 1) & 0xFFFF
        self._ping_ident[index] = ident
        if on_reply is not None:
            self._ping_handlers[(index, ident)] = on_reply
        self._ping_sent_at[(index, ident, seq)] = self.sim.now
        echo = make_echo_request(ident=ident, seq=seq,
                                 payload=b"\x00" * payload_size)
        self.send_ip(index, dst_ip, PROTO_ICMP, echo)
        return ident

    def gratuitous_arp(self, index: int) -> None:
        """Broadcast a gratuitous ARP announcing endpoint *index*."""
        mac = self.mac_of(index)
        announcement = arp_proto.make_gratuitous(mac, self.ip_of(index))
        self.counters.arp_requests_sent += 1
        self._arp_requests_sent[index] = \
            self._arp_requests_sent.get(index, 0) + 1
        self.port.send(EthernetFrame(dst=BROADCAST, src=mac,
                                     ethertype=ETHERTYPE_ARP,
                                     payload=announcement))
        self.sim.schedule(self.local_latency, self._hear_arp_broadcast,
                          announcement, index)

    def announce_endpoints(self, indices: Optional[List[int]] = None,
                           spacing: float = 0.0, start: float = 0.0) -> int:
        """Gratuitous-ARP a batch of endpoints via one ``schedule_bulk``.

        The population counterpart of :meth:`Network.announce_hosts`:
        *indices* (default: every endpoint) announce in index order,
        *spacing* apart, as one bulk heap append instead of N pushes.
        Returns the number of announcements scheduled.
        """
        if indices is None:
            indices = range(self.size)
        specs = [(start + offset * spacing, self.gratuitous_arp, index)
                 for offset, index in enumerate(indices)]
        self.sim.schedule_bulk(specs)
        return len(specs)

    # -- ARP resolution ------------------------------------------------------

    def _lookup_arp(self, index: int, ip_int: int) -> Optional[MAC]:
        """Freshest unexpired binding from the overlay or shared map."""
        now = self.sim.now
        mac = None
        expires = now
        entry = self._arp_overlay.get((index, ip_int))
        if entry is not None:
            if entry[1] <= now:
                del self._arp_overlay[(index, ip_int)]
            else:
                mac, expires = entry
        shared = self._shared_arp.get(ip_int)
        if shared is not None:
            if shared[1] <= now:
                del self._shared_arp[ip_int]
            elif shared[1] > expires:
                mac = shared[0]
        return mac

    def _resolve_and_send(self, index: int, dst_ip: IPv4Address,
                          packet: IPv4Packet) -> None:
        key = (index, int(dst_ip))
        pending = self._pending.get(key)
        if pending is not None:
            if len(pending[0]) >= self.max_pending_per_ip:
                self.dropped_pending += 1
            else:
                pending[0].append(packet)
            return
        pending = [[packet], self.arp_max_retries, None]
        self._pending[key] = pending
        self._pending_waiters.setdefault(int(dst_ip), set()).add(index)
        self._send_arp_request(index, dst_ip)
        pending[2] = self.sim.schedule(self.arp_retry_interval,
                                       self._arp_retry, index, int(dst_ip))

    def _send_arp_request(self, index: int, dst_ip: IPv4Address) -> None:
        mac = self.mac_of(index)
        request = arp_proto.make_request(mac, self.ip_of(index), dst_ip)
        self.counters.arp_requests_sent += 1
        self._arp_requests_sent[index] = \
            self._arp_requests_sent.get(index, 0) + 1
        self.port.send(EthernetFrame(dst=BROADCAST, src=mac,
                                     ethertype=ETHERTYPE_ARP,
                                     payload=request))
        # Siblings behind the same port hear the broadcast too (a bridge
        # never floods a frame back out its ingress port, so the only
        # path to them is this internal event).
        self.sim.schedule(self.local_latency, self._hear_arp_broadcast,
                          request, index)

    def _arp_retry(self, index: int, ip_int: int) -> None:
        key = (index, ip_int)
        pending = self._pending.get(key)
        if pending is None:
            return
        if pending[1] <= 0:
            del self._pending[key]
            self._drop_waiter(ip_int, index)
            dropped = len(pending[0])
            self.dropped_pending += dropped
            self.counters.resolution_failures += dropped
            self._resolution_failures[index] = \
                self._resolution_failures.get(index, 0) + dropped
            return
        pending[1] -= 1
        self._send_arp_request(index, IPv4Address(ip_int))
        pending[2] = self.sim.schedule(self.arp_retry_interval,
                                       self._arp_retry, index, ip_int)

    def _drop_waiter(self, ip_int: int, index: int) -> None:
        waiters = self._pending_waiters.get(ip_int)
        if waiters is not None:
            waiters.discard(index)
            if not waiters:
                del self._pending_waiters[ip_int]

    def _flush_pending(self, index: int, ip_int: int, mac: MAC) -> None:
        pending = self._pending.pop((index, ip_int), None)
        if pending is None:
            return
        if pending[2] is not None:
            pending[2].cancel()
        self._drop_waiter(ip_int, index)
        for packet in pending[0]:
            self._transmit_ip(index, mac, packet)

    # -- receiving -----------------------------------------------------------

    def handle_frame(self, port: Port, frame: EthernetFrame) -> None:
        if self._index_of_mac(frame.src.value) is not None:
            return  # our own frame echoed back
        if frame.dst.is_multicast:  # includes broadcast
            if frame.ethertype == ETHERTYPE_ARP \
                    and isinstance(frame.payload, ArpPacket):
                self._hear_arp_broadcast(frame.payload, None)
            elif frame.ethertype == ETHERTYPE_IPV4 \
                    and isinstance(frame.payload, IPv4Packet):
                self._hear_ip_broadcast(frame.payload)
            return
        index = self._index_of_mac(frame.dst.value)
        if index is None:
            return  # unknown-unicast flood for somebody else
        if frame.ethertype == ETHERTYPE_ARP \
                and isinstance(frame.payload, ArpPacket):
            self._hear_arp_unicast(index, frame.payload)
        elif frame.ethertype == ETHERTYPE_IPV4 \
                and isinstance(frame.payload, IPv4Packet):
            self._receive_ip_unicast(index, frame.payload)
        # Other ethertypes (BPDU, ARP-Path control) are ignored: hosts
        # are unmodified.

    def _hear_arp_broadcast(self, pkt: ArpPacket,
                            sender: Optional[int]) -> None:
        """One broadcast ARP frame, heard by every endpoint at once.

        *sender* is the originating endpoint index for internally
        generated broadcasts (it does not hear its own frame), None for
        frames arriving on the port. O(1 + waiters flushed), never O(N).
        """
        spa = int(pkt.spa)
        if spa != 0:
            self._shared_arp[spa] = (pkt.sha, self.sim.now + self.arp_timeout)
            waiters = self._pending_waiters.get(spa)
            if waiters:
                for index in sorted(waiters):
                    if index != sender:
                        self._flush_pending(index, spa, pkt.sha)
        heard = self.size if sender is None else self.size - 1
        if pkt.is_request:
            self.counters.arp_requests_received += heard
            self._bcast_requests_heard += 1
            if sender is not None:
                self._own_bcast_requests[sender] = \
                    self._own_bcast_requests.get(sender, 0) + 1
            target = self._index_of_ip(int(pkt.tpa))
            if target is not None and target != sender \
                    and spa != int(pkt.tpa):
                self._send_arp_reply(target, pkt)
        else:
            self.counters.arp_replies_received += heard
            self._bcast_replies_heard += 1

    def _hear_arp_unicast(self, index: int, pkt: ArpPacket) -> None:
        spa = int(pkt.spa)
        if spa != 0:
            self._arp_overlay[(index, spa)] = \
                (pkt.sha, self.sim.now + self.arp_timeout)
            self._flush_pending(index, spa, pkt.sha)
        if pkt.is_request:
            self.counters.arp_requests_received += 1
            self._unicast_requests[index] = \
                self._unicast_requests.get(index, 0) + 1
            if int(pkt.tpa) == self._ip_base + index \
                    and spa != self._ip_base + index:
                self._send_arp_reply(index, pkt)
        else:
            self.counters.arp_replies_received += 1
            self._unicast_replies[index] = \
                self._unicast_replies.get(index, 0) + 1

    def _send_arp_reply(self, index: int, request: ArpPacket) -> None:
        mac = self.mac_of(index)
        reply = arp_proto.make_reply(mac, self.ip_of(index),
                                     request.sha, request.spa)
        self.counters.arp_replies_sent += 1
        self._arp_replies_sent[index] = \
            self._arp_replies_sent.get(index, 0) + 1
        local = self._index_of_mac(request.sha.value)
        if local is not None:
            self.sim.schedule(self.local_latency, self._hear_arp_unicast,
                              local, reply)
            return
        self.port.send(EthernetFrame(dst=request.sha, src=mac,
                                     ethertype=ETHERTYPE_ARP,
                                     payload=reply))

    def _transmit_ip(self, index: int, dst_mac: MAC,
                     packet: IPv4Packet) -> None:
        self.counters.ip_sent += 1
        self._ip_sent[index] = self._ip_sent.get(index, 0) + 1
        local = self._index_of_mac(dst_mac.value)
        if local is not None:
            self.sim.schedule(self.local_latency, self._receive_ip_unicast,
                              local, packet)
            return
        self.port.send(EthernetFrame(dst=dst_mac, src=self.mac_of(index),
                                     ethertype=ETHERTYPE_IPV4,
                                     payload=packet))

    def _receive_ip_unicast(self, index: int, packet: IPv4Packet) -> None:
        if int(packet.dst) != self._ip_base + index:
            self.counters.ip_foreign += 1
            self._ip_foreign_unicast[index] = \
                self._ip_foreign_unicast.get(index, 0) + 1
            return
        self._deliver_ip(index, packet)

    def _hear_ip_broadcast(self, packet: IPv4Packet) -> None:
        """A broadcast IPv4 frame: foreign to all but its IP's owner."""
        self._bcast_ip_heard += 1
        foreign = self.size
        target = self._index_of_ip(int(packet.dst))
        if target is not None:
            self._bcast_ip_for[target] = self._bcast_ip_for.get(target, 0) + 1
            foreign -= 1
            self._deliver_ip(target, packet)
        self.counters.ip_foreign += foreign

    def _deliver_ip(self, index: int, packet: IPv4Packet) -> None:
        self.counters.ip_received += 1
        self._ip_received[index] = self._ip_received.get(index, 0) + 1
        if packet.proto == PROTO_UDP and isinstance(packet.payload,
                                                    UdpDatagram):
            self._handle_udp(index, packet)
        elif packet.proto == PROTO_ICMP and isinstance(packet.payload,
                                                       IcmpEcho):
            self._handle_icmp(index, packet)

    def _handle_udp(self, index: int, packet: IPv4Packet) -> None:
        dgram: UdpDatagram = packet.payload
        handler = self._udp_handlers.get((index, dgram.dport))
        if handler is None:
            self.counters.udp_unbound += 1
            self._udp_unbound[index] = self._udp_unbound.get(index, 0) + 1
            return
        self.counters.udp_received += 1
        self._udp_received[index] = self._udp_received.get(index, 0) + 1
        handler(packet.src, dgram.sport, dgram.payload, packet)

    def _handle_icmp(self, index: int, packet: IPv4Packet) -> None:
        echo: IcmpEcho = packet.payload
        if echo.is_request:
            self.counters.echo_requests_received += 1
            self._echo_requests[index] = self._echo_requests.get(index, 0) + 1
            self.send_ip(index, packet.src, PROTO_ICMP, echo.reply())
            return
        self.counters.echo_replies_received += 1
        self._echo_replies[index] = self._echo_replies.get(index, 0) + 1
        sent_at = self._ping_sent_at.pop((index, echo.ident, echo.seq), None)
        handler = self._ping_handlers.get((index, echo.ident))
        if sent_at is not None and handler is not None:
            handler(echo.seq, self.sim.now - sent_at)

    # -- accounting ----------------------------------------------------------

    def endpoint_counters(self, index: int) -> HostCounters:
        """Endpoint *index*'s counters, reconstructed from the flat state.

        Broadcast-received counts derive from the population-wide
        tallies minus the endpoint's own transmissions; everything else
        reads the sparse per-endpoint maps.
        """
        self._check_index(index)
        return HostCounters(
            arp_requests_sent=self._arp_requests_sent.get(index, 0),
            arp_replies_sent=self._arp_replies_sent.get(index, 0),
            arp_requests_received=(self._bcast_requests_heard
                                   - self._own_bcast_requests.get(index, 0)
                                   + self._unicast_requests.get(index, 0)),
            arp_replies_received=(self._bcast_replies_heard
                                  + self._unicast_replies.get(index, 0)),
            ip_sent=self._ip_sent.get(index, 0),
            ip_received=self._ip_received.get(index, 0),
            ip_foreign=(self._bcast_ip_heard
                        - self._bcast_ip_for.get(index, 0)
                        + self._ip_foreign_unicast.get(index, 0)),
            udp_received=self._udp_received.get(index, 0),
            udp_unbound=self._udp_unbound.get(index, 0),
            echo_requests_received=self._echo_requests.get(index, 0),
            echo_replies_received=self._echo_replies.get(index, 0),
            resolution_failures=self._resolution_failures.get(index, 0))

    def state_entries(self) -> int:
        """Live size of the population's mutable state (all flat maps).

        The number the flyweight claim stands on: proportional to
        *activity* (bindings learned, sockets bound, resolutions in
        flight), independent of ``size``.
        """
        sparse = (self._arp_requests_sent, self._arp_replies_sent,
                  self._unicast_requests, self._unicast_replies,
                  self._ip_sent, self._ip_received,
                  self._ip_foreign_unicast, self._udp_received,
                  self._udp_unbound, self._echo_requests,
                  self._echo_replies, self._resolution_failures,
                  self._own_bcast_requests, self._bcast_ip_for,
                  self._udp_handlers, self._ping_handlers,
                  self._ping_sent_at, self._ping_ident, self._ip_ident,
                  self._shared_arp, self._arp_overlay, self._pending,
                  self._pending_waiters)
        return sum(len(store) for store in sparse)

    def __repr__(self) -> str:
        return (f"<HostPopulation {self.name} size={self.size} "
                f"base={self.base_index}>")
