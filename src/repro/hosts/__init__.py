"""End-host models: ARP cache, IPv4/UDP/ICMP stack."""

from repro.hosts.arpcache import (ArpCache, ArpEntry, DEFAULT_ARP_TIMEOUT,
                                  DEFAULT_MAX_RETRIES,
                                  DEFAULT_RETRY_INTERVAL, PendingResolution)
from repro.hosts.host import Host, HostCounters

__all__ = [
    "ArpCache", "ArpEntry", "DEFAULT_ARP_TIMEOUT", "DEFAULT_MAX_RETRIES",
    "DEFAULT_RETRY_INTERVAL", "PendingResolution", "Host", "HostCounters",
]
