"""End-host models: ARP cache, IPv4/UDP/ICMP stack, flyweight populations."""

from repro.hosts.arpcache import (ArpCache, ArpEntry, DEFAULT_ARP_TIMEOUT,
                                  DEFAULT_MAX_RETRIES,
                                  DEFAULT_RETRY_INTERVAL, PendingResolution)
from repro.hosts.host import Host, HostCounters
from repro.hosts.population import Endpoint, HostPopulation

__all__ = [
    "ArpCache", "ArpEntry", "DEFAULT_ARP_TIMEOUT", "DEFAULT_MAX_RETRIES",
    "DEFAULT_RETRY_INTERVAL", "PendingResolution", "Host", "HostCounters",
    "Endpoint", "HostPopulation",
]
