"""The host-side ARP cache with pending-packet queueing.

Unmodified hosts are a core claim of the paper ("fully transparent to
hosts"): the cache here is a faithful model of an ordinary OS ARP
implementation — resolution triggers the broadcast ARP Request that
ARP-Path bridges race through the network.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.frames.ipv4 import IPv4Address
from repro.frames.mac import MAC

DEFAULT_ARP_TIMEOUT = 60.0
DEFAULT_RETRY_INTERVAL = 1.0
DEFAULT_MAX_RETRIES = 3


@dataclass(slots=True)
class ArpEntry:
    mac: MAC
    expires: float


@dataclass(slots=True)
class PendingResolution:
    """Packets parked while an IP address resolves."""

    packets: List[Any] = field(default_factory=list)
    retries_left: int = DEFAULT_MAX_RETRIES
    retry_event: Any = None


class ArpCache:
    """IP→MAC mappings with expiry, plus a queue of unresolved packets."""

    def __init__(self, timeout: float = DEFAULT_ARP_TIMEOUT,
                 max_retries: int = DEFAULT_MAX_RETRIES,
                 max_pending_per_ip: int = 16):
        self.timeout = timeout
        self.max_retries = max_retries
        self.max_pending_per_ip = max_pending_per_ip
        self._entries: Dict[IPv4Address, ArpEntry] = {}
        self._pending: Dict[IPv4Address, PendingResolution] = {}
        self.lookups = 0
        self.hits = 0
        self.dropped_pending = 0

    def lookup(self, ip: IPv4Address, now: float) -> Optional[MAC]:
        """The cached MAC for *ip*, or None when absent/expired."""
        self.lookups += 1
        entry = self._entries.get(ip)
        if entry is None:
            return None
        if entry.expires <= now:
            del self._entries[ip]
            return None
        self.hits += 1
        return entry.mac

    def insert(self, ip: IPv4Address, mac: MAC, now: float) -> None:
        """Learn (or refresh) a binding."""
        self._entries[ip] = ArpEntry(mac=mac, expires=now + self.timeout)

    def invalidate(self, ip: IPv4Address) -> None:
        """Forget a binding (e.g. on delivery failure)."""
        self._entries.pop(ip, None)

    def flush(self) -> None:
        """Forget everything."""
        self._entries.clear()

    def __contains__(self, ip: IPv4Address) -> bool:
        return ip in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    # -- pending queue -------------------------------------------------------

    def park(self, ip: IPv4Address, packet: Any) -> PendingResolution:
        """Queue *packet* until *ip* resolves.

        Returns the pending record; the caller owns retry scheduling.
        Overflowing packets beyond ``max_pending_per_ip`` are dropped
        (matching real stacks, which keep a tiny ARP hold queue).
        """
        pending = self._pending.get(ip)
        if pending is None:
            pending = PendingResolution(retries_left=self.max_retries)
            self._pending[ip] = pending
        if len(pending.packets) >= self.max_pending_per_ip:
            self.dropped_pending += 1
            return pending
        pending.packets.append(packet)
        return pending

    def pending_for(self, ip: IPv4Address) -> Optional[PendingResolution]:
        return self._pending.get(ip)

    def take_pending(self, ip: IPv4Address) -> List[Any]:
        """Remove and return the parked packets for *ip* (resolution done)."""
        pending = self._pending.pop(ip, None)
        if pending is None:
            return []
        if pending.retry_event is not None:
            pending.retry_event.cancel()
        return pending.packets

    def abandon(self, ip: IPv4Address) -> int:
        """Give up on *ip*; returns the number of packets dropped."""
        pending = self._pending.pop(ip, None)
        if pending is None:
            return 0
        if pending.retry_event is not None:
            pending.retry_event.cancel()
        self.dropped_pending += len(pending.packets)
        return len(pending.packets)

    @property
    def pending_ips(self) -> List[IPv4Address]:
        return list(self._pending)
