"""Command-line interface: run the paper's experiments from a shell.

The demo's operator clicked buttons in a GUI; here the same actions are
subcommands::

    python -m repro.cli fig2 --probes 20
    python -m repro.cli fig3 --failures 2
    python -m repro.cli stretch --bridges 10 --seeds 0 1 2
    python -m repro.cli loopfree --topologies grid ring
    python -m repro.cli proxy --rounds 3
    python -m repro.cli loadbalance
    python -m repro.cli ablations
    python -m repro.cli ping --protocol arppath --count 5

Each subcommand prints the experiment's result table to stdout and
exits 0 on success.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _add_fig2(subparsers) -> None:
    parser = subparsers.add_parser(
        "fig2", help="Fig. 2: ARP-Path vs STP vs SPB latency")
    parser.add_argument("--probes", type=int, default=20)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--cross-latency-us", type=float, default=500.0)

    def run(args) -> int:
        from repro.experiments import fig2_latency
        from repro.experiments.common import spec
        from repro.topology.library import DemoParams
        result = fig2_latency.run(
            probes=args.probes, seed=args.seed,
            params=DemoParams(cross_latency=args.cross_latency_us * 1e-6),
            protocols=[spec("arppath"), spec("stp", stp_scale=0.1),
                       spec("spb")])
        print(result.table())
        speedup = result.speedup()
        if speedup is not None:
            print(f"\nARP-Path speedup over STP: {speedup:.1f}x")
        return 0

    parser.set_defaults(run=run)


def _add_fig3(subparsers) -> None:
    parser = subparsers.add_parser(
        "fig3", help="Fig. 3: path repair under successive failures")
    parser.add_argument("--failures", type=int, default=2)
    parser.add_argument("--fps", type=float, default=25.0)
    parser.add_argument("--seed", type=int, default=0)

    def run(args) -> int:
        from repro.experiments import fig3_repair
        result = fig3_repair.run(failures=args.failures, fps=args.fps,
                                 seed=args.seed)
        print(result.table())
        return 0

    parser.set_defaults(run=run)


def _add_stretch(subparsers) -> None:
    parser = subparsers.add_parser(
        "stretch", help="EXP-P1: path stretch vs latency oracle")
    parser.add_argument("--bridges", type=int, default=10)
    parser.add_argument("--hosts", type=int, default=4)
    parser.add_argument("--seeds", type=int, nargs="+", default=[0, 1, 2])

    def run(args) -> int:
        from repro.experiments import stretch
        result = stretch.run(n_bridges=args.bridges, hosts=args.hosts,
                             seeds=list(args.seeds))
        print(result.table())
        return 0

    parser.set_defaults(run=run)


def _add_loopfree(subparsers) -> None:
    parser = subparsers.add_parser(
        "loopfree", help="EXP-P2: loop freedom and link utilisation")
    parser.add_argument("--topologies", nargs="+", default=["grid", "ring"],
                        choices=["grid", "ring"])
    parser.add_argument("--seed", type=int, default=0)

    def run(args) -> int:
        from repro.experiments import loopfree
        result = loopfree.run(topologies=list(args.topologies),
                              seed=args.seed)
        print(result.table())
        return 0

    parser.set_defaults(run=run)


def _add_proxy(subparsers) -> None:
    parser = subparsers.add_parser(
        "proxy", help="EXP-A1: ARP proxy broadcast suppression")
    parser.add_argument("--rows", type=int, default=3)
    parser.add_argument("--cols", type=int, default=3)
    parser.add_argument("--rounds", type=int, default=3)

    def run(args) -> int:
        from repro.experiments import broadcast
        result = broadcast.run(rows=args.rows, cols=args.cols,
                               rounds=args.rounds)
        print(result.table())
        reduction = result.reduction()
        if reduction is not None:
            print(f"\nsuppression factor: {reduction:.2f}x")
        return 0

    parser.set_defaults(run=run)


def _add_loadbalance(subparsers) -> None:
    parser = subparsers.add_parser(
        "loadbalance", help="EXP-A2: load distribution over a fabric")
    parser.add_argument("--pods", type=int, default=4)
    parser.add_argument("--packets", type=int, default=50)

    def run(args) -> int:
        from repro.experiments import loadbalance
        result = loadbalance.run(pods=args.pods, packets=args.packets)
        print(result.table())
        return 0

    parser.set_defaults(run=run)


def _add_ablations(subparsers) -> None:
    parser = subparsers.add_parser(
        "ablations", help="EXP-A3: design-knob sweeps")
    parser.add_argument("--seed", type=int, default=0)

    def run(args) -> int:
        from repro.experiments import ablations
        print(ablations.run(seed=args.seed).table())
        return 0

    parser.set_defaults(run=run)


def _add_ping(subparsers) -> None:
    parser = subparsers.add_parser(
        "ping", help="interactive check: ping A<->B on the demo topology")
    # No "learning" choice: a plain learning switch melts down on the
    # demo topology's loops (that failure mode is demonstrated in the
    # loop-freedom bench instead).
    parser.add_argument("--protocol", default="arppath",
                        choices=["arppath", "stp", "spb"])
    parser.add_argument("--count", type=int, default=5)
    parser.add_argument("--seed", type=int, default=0)

    def run(args) -> int:
        from repro.experiments.common import spec
        from repro.experiments.fig2_latency import run_protocol
        chosen = spec(args.protocol) if args.protocol != "stp" \
            else spec("stp", stp_scale=0.1)
        row = run_protocol(chosen, probes=args.count, seed=args.seed)
        print(f"protocol: {row.protocol}")
        print(f"path:     A -> {row.path_str} -> B")
        print(f"rtt:      mean {row.rtt.mean * 1e6:.1f}us  "
              f"p95 {row.rtt.p95 * 1e6:.1f}us  losses {row.losses}")
        return 0

    parser.set_defaults(run=run)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ARP-Path reproduction: run the paper's experiments.")
    subparsers = parser.add_subparsers(dest="command", required=True)
    _add_fig2(subparsers)
    _add_fig3(subparsers)
    _add_stretch(subparsers)
    _add_loopfree(subparsers)
    _add_proxy(subparsers)
    _add_loadbalance(subparsers)
    _add_ablations(subparsers)
    _add_ping(subparsers)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.run(args)


if __name__ == "__main__":
    sys.exit(main())
