"""Command-line interface: run the paper's experiments from a shell.

The demo's operator clicked buttons in a GUI; here the same actions are
subcommands, auto-generated from the scenario registry
(:mod:`repro.experiments.registry`)::

    python -m repro.cli fig2 --probes 20
    python -m repro.cli fig3 --failures 2
    python -m repro.cli stretch --bridges 10 --seeds 0 1 2
    python -m repro.cli loopfree --topologies grid ring
    python -m repro.cli proxy --rounds 3
    python -m repro.cli loadbalance
    python -m repro.cli ablations
    python -m repro.cli occupancy
    python -m repro.cli ping --protocol arppath --count 5

Each subcommand prints the experiment's result table to stdout and
exits 0 on success. Every subcommand accepts ``--seeds 0 1 2`` (one run
per seed) and the single-seed alias ``--seed N``.

Parameter grids sweep through the parallel runner::

    python -m repro.cli sweep stretch --seeds 0 1 2 3 --jobs 4
    python -m repro.cli sweep stretch --set bridges=6,10,14 \\
        --seeds 0 1 --jobs 4 --csv stretch.csv --json stretch.json

Per-cell progress goes to stderr; the aggregated mean/ci95 summary
table goes to stdout and is deterministic at any ``--jobs`` level.

``repro serve`` runs the same registry as a long-lived daemon — sweep
grids submitted over a local HTTP/JSON API, records streamed
incrementally, job history persisted in SQLite (see ``docs/API.md``)::

    python -m repro.cli serve --port 8642 --db repro-serve.db
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Dict, List, Optional, Tuple

from repro.experiments import registry


def _add_scenario_arguments(parser: argparse.ArgumentParser,
                            scenario: registry.Scenario) -> None:
    for param in scenario.params:
        if param.name == "seeds":
            parser.add_argument(
                "--seeds", type=param.type, nargs="+", default=None,
                help=f"{param.help} (default: {param.default})")
            parser.add_argument(
                "--seed", type=param.type, default=None, dest="seed",
                help="single-seed alias for --seeds")
            continue
        parser.add_argument(
            param.flag, type=param.type, nargs=param.nargs,
            choices=param.choices, default=None, dest=param.name,
            help=f"{param.help} (default: {param.default})")


def _collect_overrides(args: argparse.Namespace,
                       scenario: registry.Scenario) -> Dict[str, Any]:
    """CLI values that were actually given, as run() overrides."""
    overrides: Dict[str, Any] = {}
    for param in scenario.params:
        if param.name == "seeds":
            if args.seeds is not None and args.seed is not None:
                raise SystemExit(
                    f"{scenario.name}: give --seed or --seeds, not both")
            if args.seeds is not None:
                overrides["seeds"] = list(args.seeds)
            elif args.seed is not None:
                overrides["seeds"] = [args.seed]
            continue
        value = getattr(args, param.name)
        if value is not None:
            overrides[param.name] = value
    return overrides


def _make_run(scenario: registry.Scenario):
    def run(args: argparse.Namespace) -> int:
        result = scenario.execute(**_collect_overrides(args, scenario))
        print(scenario.report(result))
        return 0
    return run


def _parse_axis(token: str, scenarios: List[registry.Scenario]
                ) -> Tuple[str, List[Any]]:
    """One ``--set name=v1,v2`` sweep axis, validated per scenario."""
    if "=" not in token:
        raise SystemExit(f"--set expects name=v1,v2,...: {token!r}")
    name, _, spec = token.partition("=")
    name = name.replace("-", "_")
    if not spec:
        raise SystemExit(f"--set {name}: no values given")
    values: List[Any] = []
    for raw in spec.split(","):
        value: Any = None
        for scenario in scenarios:
            try:
                value = scenario.param(name).parse(raw)
            except KeyError:
                raise SystemExit(
                    f"scenario {scenario.name!r} has no parameter "
                    f"{name!r}")
            except ValueError as error:
                raise SystemExit(f"--set {name}: {error}")
        values.append(value)
    return name, values


def _run_sweep(args: argparse.Namespace) -> int:
    from repro.experiments import runner
    from repro.metrics.report import (csv_columns, format_table, write_csv,
                                      write_json)

    try:
        scenarios = [registry.get(name) for name in args.scenarios]
    except KeyError as error:
        raise SystemExit(f"sweep: {error.args[0]}")
    axes: Dict[str, List[Any]] = {}
    for token in args.set or []:
        name, values = _parse_axis(token, scenarios)
        axes[name] = values
    cells = runner.expand_grid(args.scenarios, args.seeds, axes)
    sweep = runner.SweepRunner(cells, jobs=args.jobs,
                               retries=args.retries)

    print(f"sweep: {len(cells)} cells "
          f"({', '.join(args.scenarios)}; seeds {args.seeds}; "
          f"jobs {args.jobs})", file=sys.stderr)
    results = []
    done = 0
    for result in sweep.stream():
        done += 1
        status = "ok" if result.ok else "ERROR"
        if result.retried:
            status += f" (attempt {result.attempts})"
        print(f"[{done}/{len(cells)}] {result.cell.label()} "
              f"{result.elapsed:.2f}s {status}", file=sys.stderr)
        if not result.ok and not args.keep_going:
            print(result.error, file=sys.stderr)
            return 1
        results.append(result)
    report = runner.SweepReport(
        cells=sorted(results, key=lambda r: r.cell.index))

    summary = report.summary_rows()
    by_scenario: Dict[str, List[Dict[str, Any]]] = {}
    for row in summary:
        by_scenario.setdefault(str(row["scenario"]), []).append(row)
    for name in sorted(by_scenario):
        rows = by_scenario[name]
        columns = csv_columns(rows)
        print(format_table(columns,
                           [[row.get(column) for column in columns]
                            for row in rows],
                           title=f"sweep — {name} "
                                 f"(mean/ci95 over seeds)"))
        print()
    print(f"{len(report.cells)} cells, {len(report.rows())} rows, "
          f"{len(report.errors)} errors")

    if args.json:
        write_json(args.json, report.as_payload())
    if args.csv:
        write_csv(args.csv, report.rows())
    if args.jsonl:
        from repro.metrics.report import write_jsonl
        write_jsonl(args.jsonl, report.rows())
    for failed in report.errors:
        print(f"\ncell {failed.cell.label()} failed:\n{failed.error}",
              file=sys.stderr)
    return 0 if report.ok else 1


def _add_sweep(subparsers) -> None:
    parser = subparsers.add_parser(
        "sweep", help="expand a scenario/seed/param grid and run it on "
                      "a process pool")
    parser.add_argument("scenarios", nargs="+",
                        metavar="scenario",
                        help="registered scenario name(s)")
    parser.add_argument("--seeds", type=int, nargs="+", default=[0],
                        help="seeds: one run of every grid point per seed")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes (1 = in-process)")
    parser.add_argument("--set", action="append", metavar="NAME=V1,V2",
                        help="sweep axis: a scenario parameter and the "
                             "values to grid over (repeatable)")
    parser.add_argument("--json", metavar="PATH",
                        help="write cells+rows+summary as JSON")
    parser.add_argument("--csv", metavar="PATH",
                        help="write the raw result rows as CSV")
    parser.add_argument("--jsonl", metavar="PATH",
                        help="write the raw result rows as canonical "
                             "NDJSON (byte-identical to the serve "
                             "daemon's record stream)")
    parser.add_argument("--retries", type=int, default=0,
                        help="per-cell retry budget: re-run a failed "
                             "or crashed cell up to N extra times with "
                             "deterministic backoff (default: 0)")
    parser.add_argument("--keep-going", action="store_true",
                        help="run remaining cells after a cell fails")
    parser.set_defaults(run=_run_sweep)


def _run_serve(args: argparse.Namespace) -> int:
    from repro.server.daemon import Daemon, DaemonConfig, PidfileError
    config = DaemonConfig(
        host=args.host, port=args.port, db=args.db,
        workers=args.workers, pool=args.pool,
        job_timeout=args.job_timeout, drain_grace=args.drain_grace,
        pidfile=args.pidfile, log_file=args.log_file)
    try:
        return Daemon(config).run()
    except PidfileError as error:
        raise SystemExit(f"serve: {error}")


def _add_serve(subparsers) -> None:
    parser = subparsers.add_parser(
        "serve", help="run the sim-as-a-service daemon: sweep jobs "
                      "over HTTP/JSON, durable result store "
                      "(docs/API.md)")
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default: 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8642,
                        help="bind port, 0 = ephemeral (default: 8642)")
    parser.add_argument("--db", default="repro-serve.db",
                        help="SQLite job/result store path "
                             "(default: repro-serve.db)")
    parser.add_argument("--workers", type=int, default=2,
                        help="concurrent jobs (default: 2)")
    parser.add_argument("--pool", type=int, default=2,
                        help="max sweep worker processes per job "
                             "(default: 2)")
    parser.add_argument("--job-timeout", type=float, default=None,
                        help="default per-job wall-clock budget in "
                             "seconds (default: none)")
    parser.add_argument("--drain-grace", type=float, default=5.0,
                        help="seconds to drain in-flight jobs on "
                             "shutdown before cancelling (default: 5)")
    parser.add_argument("--pidfile", default=None,
                        help="write the daemon pid here; refuses to "
                             "start over a live one")
    parser.add_argument("--log-file", default=None,
                        help="structured JSON log destination "
                             "(default: stderr)")
    parser.set_defaults(run=_run_serve)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ARP-Path reproduction: run the paper's experiments.")
    subparsers = parser.add_subparsers(dest="command", required=True)
    for scenario in registry.all_scenarios():
        sub = subparsers.add_parser(scenario.name, help=scenario.title)
        _add_scenario_arguments(sub, scenario)
        sub.set_defaults(run=_make_run(scenario))
    _add_sweep(subparsers)
    _add_serve(subparsers)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.run(args)


if __name__ == "__main__":
    sys.exit(main())
