"""Wire format for 802.1D BPDUs.

Layout follows IEEE 802.1D-1998 §9 (the format ``bridge_utils`` emits),
carried directly over our pseudo-ethertype instead of LLC. Registered
with the frame codec on import, so pcap captures of STP runs decode.
"""

from __future__ import annotations

import struct

from repro.frames import codec as frame_codec
from repro.frames.codec import CodecError
from repro.frames.ethernet import ETHERTYPE_BPDU
from repro.frames.mac import MAC
from repro.stp.bpdu import BridgeId, ConfigBpdu, PortId, TcnBpdu

PROTOCOL_ID = 0x0000
VERSION_STP = 0x00
TYPE_CONFIG = 0x00
TYPE_TCN = 0x80

FLAG_TC = 0x01
FLAG_TCA = 0x80

_HEADER = struct.Struct("!HBB")
#: flags, root id (8), cost (4), bridge id (8), port id (2), then the
#: four timer fields in 1/256ths of a second.
_CONFIG_BODY = struct.Struct("!B8sI8sHHHHH")


def _encode_bridge_id(bid: BridgeId) -> bytes:
    return struct.pack("!H6s", bid.priority, bid.mac.to_bytes())


def _decode_bridge_id(raw: bytes) -> BridgeId:
    priority, mac = struct.unpack("!H6s", raw)
    return BridgeId(priority, MAC(mac))


def _seconds_to_field(seconds: float) -> int:
    return max(0, min(int(round(seconds * 256)), 0xFFFF))


def _field_to_seconds(field: int) -> float:
    return field / 256.0


def encode_bpdu(bpdu) -> bytes:
    """Serialise a Config or TCN BPDU."""
    if isinstance(bpdu, TcnBpdu):
        return _HEADER.pack(PROTOCOL_ID, VERSION_STP, TYPE_TCN)
    if not isinstance(bpdu, ConfigBpdu):
        raise CodecError(f"not a BPDU: {type(bpdu).__name__}")
    flags = (FLAG_TC if bpdu.topology_change else 0) \
        | (FLAG_TCA if bpdu.topology_change_ack else 0)
    body = _CONFIG_BODY.pack(
        flags, _encode_bridge_id(bpdu.root), bpdu.cost,
        _encode_bridge_id(bpdu.bridge),
        (bpdu.port.priority << 8) | (bpdu.port.number & 0xFF),
        _seconds_to_field(bpdu.message_age),
        _seconds_to_field(bpdu.max_age),
        _seconds_to_field(bpdu.hello_time),
        _seconds_to_field(bpdu.forward_delay))
    return _HEADER.pack(PROTOCOL_ID, VERSION_STP, TYPE_CONFIG) + body


def decode_bpdu(data: bytes):
    """Parse BPDU bytes back into ConfigBpdu or TcnBpdu."""
    if len(data) < _HEADER.size:
        raise CodecError(f"BPDU too short: {len(data)} bytes")
    protocol, version, bpdu_type = _HEADER.unpack_from(data)
    if protocol != PROTOCOL_ID:
        raise CodecError(f"bad BPDU protocol id {protocol:#x}")
    if bpdu_type == TYPE_TCN:
        # TCNs carry no body; the transmitting bridge is known only
        # from the Ethernet source, so a placeholder id is used.
        return TcnBpdu(bridge=BridgeId(0, MAC(0)))
    if bpdu_type != TYPE_CONFIG:
        raise CodecError(f"unknown BPDU type {bpdu_type:#x}")
    body = data[_HEADER.size:]
    if len(body) < _CONFIG_BODY.size:
        raise CodecError(f"config BPDU truncated: {len(body)} bytes")
    (flags, root_raw, cost, bridge_raw, port_raw, age, max_age, hello,
     forward) = _CONFIG_BODY.unpack_from(body)
    return ConfigBpdu(
        root=_decode_bridge_id(root_raw), cost=cost,
        bridge=_decode_bridge_id(bridge_raw),
        port=PortId(port_raw >> 8, port_raw & 0xFF),
        message_age=_field_to_seconds(age),
        max_age=_field_to_seconds(max_age),
        hello_time=_field_to_seconds(hello),
        forward_delay=_field_to_seconds(forward),
        topology_change=bool(flags & FLAG_TC),
        topology_change_ack=bool(flags & FLAG_TCA))


frame_codec.register_ethertype(ETHERTYPE_BPDU, encode_bpdu, decode_bpdu)
