"""An 802.1D spanning tree bridge (the demo's baseline).

This is the protocol the paper compares ARP-Path against: Linux
``bridge_utils`` bridges running classic STP. The implementation follows
the 802.1D conceptual model:

* distributed root election by priority-vector comparison,
* one root port per non-root bridge, one designated port per LAN,
  everything else blocked — redundant links carry no traffic,
* timer-driven state transitions (listening → learning → forwarding,
  each taking ``forward_delay``), message-age expiry for failure
  detection, and topology change notification with fast FDB aging.

The consequences the demo measures fall out naturally: traffic follows
the tree (not the lowest-latency path), and recovering from a failure
costs max-age expiry plus two forward delays (tens of seconds at IEEE
default timers).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Dict, Optional

from repro.frames.ethernet import (ETHERTYPE_BPDU, EthernetFrame,
                                   STP_MULTICAST)
from repro.frames.mac import MAC
from repro.netsim.engine import Simulator
from repro.netsim.node import Port
from repro.stp.bpdu import (BridgeId, ConfigBpdu, DEFAULT_BRIDGE_PRIORITY,
                            DEFAULT_PORT_PRIORITY, PATH_COST_1G, PortId,
                            PriorityVector, TcnBpdu)
from repro.switching.base import (Bridge, BridgeFamily, Dataplane,
                                  FamilyOption, register_family)
from repro.switching.table import ForwardingTable

#: Standard increment added to message age at each hop.
MESSAGE_AGE_INCREMENT = 1.0

#: The 802.1D pipeline: BPDUs are control, everything else is data.
STP_DATAPLANE = Dataplane(control_ethertypes=(ETHERTYPE_BPDU,))


@dataclass(frozen=True)
class StpTimers:
    """The three 802.1D timers (IEEE defaults).

    ``scaled`` produces proportionally faster timers — used by
    experiments that want STP's *behaviour* without simulating minutes
    of wall-clock convergence, and reported alongside the defaults.
    """

    hello_time: float = 2.0
    max_age: float = 20.0
    forward_delay: float = 15.0
    #: Added to message age per hop; must scale with max_age or the
    #: network diameter limit (max_age / increment hops) shrinks.
    message_age_increment: float = MESSAGE_AGE_INCREMENT

    def __post_init__(self):
        if min(self.hello_time, self.max_age, self.forward_delay,
               self.message_age_increment) <= 0:
            raise ValueError("STP timers must be positive")

    @property
    def diameter_limit(self) -> int:
        """How many hops from the root BPDUs can travel before aging out."""
        return int(self.max_age / self.message_age_increment)

    def scaled(self, factor: float) -> "StpTimers":
        """All timers (including the age increment) multiplied by *factor*."""
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        return StpTimers(
            hello_time=self.hello_time * factor,
            max_age=self.max_age * factor,
            forward_delay=self.forward_delay * factor,
            message_age_increment=self.message_age_increment * factor)


class PortRole(enum.Enum):
    DISABLED = "disabled"
    ROOT = "root"
    DESIGNATED = "designated"
    ALTERNATE = "alternate"


class PortState(enum.Enum):
    DISABLED = "disabled"
    BLOCKING = "blocking"
    LISTENING = "listening"
    LEARNING = "learning"
    FORWARDING = "forwarding"


@dataclass
class StoredInfo:
    """The best config BPDU received on a port, with its age deadline."""

    bpdu: ConfigBpdu
    received_at: float
    age_event: object = None

    def cancel(self) -> None:
        if self.age_event is not None:
            self.age_event.cancel()
            self.age_event = None


@dataclass
class StpCounters:
    bpdus_sent: int = 0
    bpdus_received: int = 0
    tcns_sent: int = 0
    tcns_received: int = 0
    topology_changes: int = 0
    root_changes: int = 0
    discards_not_forwarding: int = 0


class StpPortInfo:
    """Per-port spanning tree state."""

    __slots__ = ("port", "port_id", "path_cost", "role", "state",
                 "stored", "transition_event", "send_tca")

    def __init__(self, port: Port, path_cost: int):
        self.port = port
        self.port_id = PortId(DEFAULT_PORT_PRIORITY, port.index)
        self.path_cost = path_cost
        self.role = PortRole.DISABLED
        self.state = PortState.DISABLED
        self.stored: Optional[StoredInfo] = None
        self.transition_event = None
        self.send_tca = False

    def clear_stored(self) -> None:
        if self.stored is not None:
            self.stored.cancel()
            self.stored = None

    def cancel_transition(self) -> None:
        if self.transition_event is not None:
            self.transition_event.cancel()
            self.transition_event = None

    @property
    def can_learn(self) -> bool:
        return self.state in (PortState.LEARNING, PortState.FORWARDING)

    @property
    def can_forward(self) -> bool:
        return self.state is PortState.FORWARDING


class StpBridge(Bridge):
    """A transparent learning bridge running 802.1D spanning tree."""

    dataplane = STP_DATAPLANE

    def __init__(self, sim: Simulator, name: str, mac: MAC,
                 priority: int = DEFAULT_BRIDGE_PRIORITY,
                 timers: StpTimers = StpTimers(),
                 path_cost: int = PATH_COST_1G,
                 fdb_aging: float = 300.0):
        super().__init__(sim, name, mac)
        self.bid = BridgeId(priority, mac)
        self.timers = timers
        self.default_path_cost = path_cost
        self.fdb = ForwardingTable(aging_time=fdb_aging, sim=sim)
        self.stp_counters = StpCounters()
        self._port_info: Dict[int, StpPortInfo] = {}
        self.root_id = self.bid
        self.root_cost = 0
        self.root_port: Optional[StpPortInfo] = None
        self._hello_timer = None
        self._tc_while_event = None
        self._tc_active = False
        self._tcn_awaiting_ack = False

    # -- port bookkeeping --------------------------------------------------

    def info_for(self, port: Port) -> StpPortInfo:
        """The STP state for *port* (created on first access)."""
        info = self._port_info.get(port.index)
        if info is None:
            info = StpPortInfo(port, self.default_path_cost)
            self._port_info[port.index] = info
        return info

    @property
    def is_root(self) -> bool:
        return self.root_id == self.bid

    def ports_in(self, *roles: PortRole):
        return [info for info in self._port_info.values()
                if info.role in roles]

    def port_role(self, port: Port) -> PortRole:
        return self.info_for(port).role

    def port_state(self, port: Port) -> PortState:
        return self.info_for(port).state

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        super().start()
        for port in self.ports:
            info = self.info_for(port)
            if port.is_up:
                info.state = PortState.BLOCKING
        self._recompute()
        self._transmit_configs()
        self._hello_timer = self.sim.schedule_periodic(
            self.timers.hello_time, self._on_hello_tick)

    def stop(self) -> None:
        """Stop periodic processes."""
        if self._hello_timer is not None:
            self._hello_timer.stop()
            self._hello_timer = None

    def reset_state(self) -> None:
        """Power-cycle wipe: FDB, stored BPDUs, roles, root knowledge.

        A restarted 802.1D bridge boots believing it is the root; the
        next :meth:`start` re-runs election from BPDUs it receives.
        """
        self.fdb.flush()
        self.fdb.restore_aging()
        for info in self._port_info.values():
            info.clear_stored()
            info.cancel_transition()
            info.role = PortRole.DISABLED
            info.state = PortState.DISABLED
            info.send_tca = False
        self.root_id = self.bid
        self.root_cost = 0
        self.root_port = None
        if self._tc_while_event is not None:
            self._tc_while_event.cancel()
            self._tc_while_event = None
        self._tc_active = False
        self._tcn_awaiting_ack = False

    def link_state_changed(self, port: Port, up: bool) -> None:
        info = self.info_for(port)
        if up:
            info.state = PortState.BLOCKING
            self._recompute()
            return
        was_forwarding = info.can_forward
        info.role = PortRole.DISABLED
        info.state = PortState.DISABLED
        info.clear_stored()
        info.cancel_transition()
        self.fdb.flush_port(port)
        self._recompute()
        if was_forwarding:
            self._detect_topology_change()

    # -- data plane ----------------------------------------------------------

    def on_control(self, port: Port, frame: EthernetFrame) -> None:
        self._handle_bpdu(port, frame)

    def admit_data(self, port: Port, frame: EthernetFrame) -> bool:
        """The 802.1D port-state gate: learn only in LEARNING or
        FORWARDING, forward only in FORWARDING."""
        info = self.info_for(port)
        if not info.can_learn:
            self.stp_counters.discards_not_forwarding += 1
            self.filter_frame()
            return False
        self.fdb.learn(frame.src, port, self.sim.now)
        if not info.can_forward:
            self.stp_counters.discards_not_forwarding += 1
            self.filter_frame()
            return False
        return True

    def on_broadcast(self, port: Port, frame: EthernetFrame) -> None:
        self._flood_forwarding(frame, exclude=port)

    def on_unicast(self, port: Port, frame: EthernetFrame) -> None:
        out_port = self.fdb.lookup(frame.dst, self.sim.now)
        if out_port is None:
            self._flood_forwarding(frame, exclude=port)
        elif out_port is port:
            self.filter_frame()
        elif self.info_for(out_port).can_forward:
            self.forward(out_port, frame)
        else:
            self.filter_frame()

    def _flood_forwarding(self, frame: EthernetFrame,
                          exclude: Optional[Port]) -> None:
        copies = 0
        for port in self.ports:
            if port is exclude or not port.is_attached:
                continue
            if not self.info_for(port).can_forward:
                continue
            port.send(frame)
            copies += 1
        self.counters.flooded_frames += 1
        self.counters.flooded_copies += copies

    # -- BPDU reception ------------------------------------------------------

    def _handle_bpdu(self, port: Port, frame: EthernetFrame) -> None:
        payload = frame.payload
        info = self.info_for(port)
        if info.state is PortState.DISABLED:
            return
        if isinstance(payload, TcnBpdu):
            self._handle_tcn(info)
            return
        if not isinstance(payload, ConfigBpdu):
            return
        self.stp_counters.bpdus_received += 1
        self._handle_config(info, payload)

    def _handle_config(self, info: StpPortInfo, bpdu: ConfigBpdu) -> None:
        if bpdu.message_age >= bpdu.max_age:
            return
        if info.role is PortRole.DESIGNATED \
                and self._inferior_to_ours(info, bpdu):
            # Worse information on a LAN we are designated for: assert
            # our configuration immediately; never store the claim.
            self._tx_config(info)
            return
        if self._supersedes(info, bpdu):
            self._store(info, bpdu)
            was_root = self.is_root
            old_root = self.root_id
            self._recompute()
            if self.root_id != old_root:
                self.stp_counters.root_changes += 1
            if was_root and not self.is_root and self._tcn_awaiting_ack:
                # We stopped being root; TCN duty moves to the root port.
                pass
            if info is self.root_port:
                self._process_root_port_flags(bpdu)
                self._transmit_configs()
        elif info.role is PortRole.DESIGNATED:
            # Inferior information on our LAN: assert ours.
            self._tx_config(info)

    def _inferior_to_ours(self, info: StpPortInfo,
                          bpdu: ConfigBpdu) -> bool:
        """Is *bpdu* strictly worse than what we transmit on this LAN?

        Same-transmitter updates are never treated as inferior — a
        neighbour announcing worse news about itself must be stored.
        """
        if info.stored is not None \
                and bpdu.bridge == info.stored.bpdu.bridge \
                and bpdu.port == info.stored.bpdu.port:
            return False
        mine = PriorityVector(root=self.root_id, cost=self.root_cost,
                              bridge=self.bid, port=info.port_id)
        return mine < bpdu.vector

    def _supersedes(self, info: StpPortInfo, bpdu: ConfigBpdu) -> bool:
        """Does *bpdu* replace the stored protocol info on this port?"""
        if info.stored is None:
            return True
        held = info.stored.bpdu
        if bpdu.vector < held.vector:
            return True
        # Same transmitter: always refresh (it may announce worse news,
        # e.g. after losing its own root port).
        return (bpdu.bridge == held.bridge and bpdu.port == held.port)

    def _store(self, info: StpPortInfo, bpdu: ConfigBpdu) -> None:
        info.clear_stored()
        remaining = bpdu.max_age - bpdu.message_age
        stored = StoredInfo(bpdu=bpdu, received_at=self.sim.now)
        stored.age_event = self.sim.schedule(
            remaining, self._message_age_expired, info)
        info.stored = stored

    def _message_age_expired(self, info: StpPortInfo) -> None:
        """Stored info aged out: the path to the root through this port
        is gone. Reconverge (possibly claiming root ourselves)."""
        info.stored = None
        old_root = self.root_id
        self._recompute()
        if self.root_id != old_root:
            self.stp_counters.root_changes += 1
        self._transmit_configs()

    def _process_root_port_flags(self, bpdu: ConfigBpdu) -> None:
        if bpdu.topology_change_ack:
            self._tcn_awaiting_ack = False
        if bpdu.topology_change:
            self.fdb.set_aging(self.timers.forward_delay)
        else:
            self.fdb.restore_aging()

    def _handle_tcn(self, info: StpPortInfo) -> None:
        self.stp_counters.tcns_received += 1
        if info.role is not PortRole.DESIGNATED:
            return
        info.send_tca = True
        self._detect_topology_change()
        self._tx_config(info)

    # -- spanning tree computation ---------------------------------------

    def _recompute(self) -> None:
        """The 802.1D configuration update: elect root, assign roles."""
        own = PriorityVector(root=self.bid, cost=0, bridge=self.bid,
                             port=PortId(DEFAULT_PORT_PRIORITY, 0))
        # Candidates compare as (vector, receiving port id) — the port id
        # is the standard's final tie-break; our own vector uses a
        # sentinel key that loses every tie.
        best_vector, best_key = own, (1 << 16, 1 << 30)
        best_info: Optional[StpPortInfo] = None
        for info in self._port_info.values():
            if info.state is PortState.DISABLED or info.stored is None:
                continue
            held = info.stored.bpdu
            if held.bridge == self.bid:
                continue  # our own stale information echoed back
            candidate = held.vector.through(info.path_cost)
            if (candidate, info.port_id._key()) < (best_vector, best_key):
                best_vector, best_key = candidate, info.port_id._key()
                best_info = info
        if best_info is None or best_vector.root == self.bid:
            self.root_id = self.bid
            self.root_cost = 0
            self.root_port = None
        else:
            self.root_id = best_vector.root
            self.root_cost = best_vector.cost
            self.root_port = best_info
        for info in self._port_info.values():
            if info.state is PortState.DISABLED:
                continue
            self._assign_role(info)

    def _assign_role(self, info: StpPortInfo) -> None:
        if info is self.root_port:
            new_role = PortRole.ROOT
        else:
            mine = PriorityVector(root=self.root_id, cost=self.root_cost,
                                  bridge=self.bid, port=info.port_id)
            if info.stored is None or info.stored.bpdu.bridge == self.bid \
                    or mine < info.stored.bpdu.vector:
                new_role = PortRole.DESIGNATED
            else:
                new_role = PortRole.ALTERNATE
        if new_role == info.role:
            return
        info.role = new_role
        self._apply_state(info)

    def _apply_state(self, info: StpPortInfo) -> None:
        if info.role is PortRole.ALTERNATE:
            was_forwarding = info.can_forward
            info.cancel_transition()
            info.state = PortState.BLOCKING
            self.fdb.flush_port(info.port)
            if was_forwarding:
                self._detect_topology_change()
            return
        # ROOT or DESIGNATED: walk listening -> learning -> forwarding.
        if info.state in (PortState.BLOCKING, PortState.DISABLED):
            info.state = PortState.LISTENING
            info.cancel_transition()
            info.transition_event = self.sim.schedule(
                self.timers.forward_delay, self._forward_delay_expired, info)

    def _forward_delay_expired(self, info: StpPortInfo) -> None:
        info.transition_event = None
        if info.role not in (PortRole.ROOT, PortRole.DESIGNATED):
            return
        if info.state is PortState.LISTENING:
            info.state = PortState.LEARNING
            info.transition_event = self.sim.schedule(
                self.timers.forward_delay, self._forward_delay_expired, info)
        elif info.state is PortState.LEARNING:
            info.state = PortState.FORWARDING
            self._detect_topology_change()

    # -- BPDU transmission -----------------------------------------------

    def _on_hello_tick(self) -> None:
        if self.is_root:
            self._transmit_configs()
        if self._tcn_awaiting_ack and self.root_port is not None:
            self._tx_tcn()

    def _transmit_configs(self) -> None:
        """Send our configuration out every designated port."""
        for info in self.ports_in(PortRole.DESIGNATED):
            self._tx_config(info)

    def _message_age(self) -> float:
        if self.is_root:
            return 0.0
        if self.root_port is None or self.root_port.stored is None:
            return 0.0
        return (self.root_port.stored.bpdu.message_age
                + self.timers.message_age_increment)

    def _tx_config(self, info: StpPortInfo) -> None:
        if not info.port.is_up:
            return
        age = self._message_age()
        if age >= self.timers.max_age:
            return
        tc_flag = self._tc_active if self.is_root else (
            self.root_port is not None
            and self.root_port.stored is not None
            and self.root_port.stored.bpdu.topology_change)
        bpdu = ConfigBpdu(root=self.root_id, cost=self.root_cost,
                          bridge=self.bid, port=info.port_id,
                          message_age=age, max_age=self.timers.max_age,
                          hello_time=self.timers.hello_time,
                          forward_delay=self.timers.forward_delay,
                          topology_change=tc_flag,
                          topology_change_ack=info.send_tca)
        info.send_tca = False
        self.stp_counters.bpdus_sent += 1
        self.counters.control_sent += 1
        info.port.send(EthernetFrame(dst=STP_MULTICAST, src=self.mac,
                                     ethertype=ETHERTYPE_BPDU, payload=bpdu))

    def _tx_tcn(self) -> None:
        if self.root_port is None or not self.root_port.port.is_up:
            return
        self.stp_counters.tcns_sent += 1
        self.counters.control_sent += 1
        self.root_port.port.send(
            EthernetFrame(dst=STP_MULTICAST, src=self.mac,
                          ethertype=ETHERTYPE_BPDU,
                          payload=TcnBpdu(bridge=self.bid)))

    # -- topology change ---------------------------------------------------

    def _detect_topology_change(self) -> None:
        self.stp_counters.topology_changes += 1
        if self.is_root:
            self._start_tc_while()
        else:
            self._tcn_awaiting_ack = True
            self._tx_tcn()

    def _start_tc_while(self) -> None:
        """Set the TC flag in our BPDUs for max_age + forward_delay."""
        self._tc_active = True
        self.fdb.set_aging(self.timers.forward_delay)
        if self._tc_while_event is not None:
            self._tc_while_event.cancel()
        self._tc_while_event = self.sim.schedule(
            self.timers.max_age + self.timers.forward_delay, self._tc_done)

    def _tc_done(self) -> None:
        self._tc_active = False
        self._tc_while_event = None
        self.fdb.restore_aging()

    # -- introspection -----------------------------------------------------

    def forwarding_ports(self):
        """Ports currently in the FORWARDING state."""
        return [info.port for info in self._port_info.values()
                if info.can_forward]

    def tree_summary(self) -> dict:
        """A snapshot of the tree as seen from this bridge."""
        return {
            "bridge": str(self.bid),
            "root": str(self.root_id),
            "root_cost": self.root_cost,
            "root_port": (self.root_port.port.name
                          if self.root_port else None),
            "roles": {info.port.name: info.role.value
                      for info in self._port_info.values()},
            "states": {info.port.name: info.state.value
                       for info in self._port_info.values()},
        }

    def protocol_counters(self) -> Dict[str, int]:
        return {
            "bpdus_sent": self.stp_counters.bpdus_sent,
            "tcns_sent": self.stp_counters.tcns_sent,
            "topology_changes": self.stp_counters.topology_changes,
            "root_changes": self.stp_counters.root_changes,
        }

    def __repr__(self) -> str:
        role = "root" if self.is_root else f"root={self.root_id}"
        return f"<StpBridge {self.name} {role}>"


#: IEEE-default warmup: listening + learning (2 x forward delay) plus
#: margin for election to settle.
_STP_WARMUP = 45.0


def _stp_factory(timers: StpTimers = StpTimers(),
                 priority: Optional[int] = None):
    """A bridge factory producing 802.1D bridges.

    With the default *priority* of None every bridge uses 0x8000 and
    the lowest MAC wins root election (bridge creation order), exactly
    like an unconfigured ``bridge_utils`` deployment.
    """

    def build(sim: Simulator, name: str, mac: MAC) -> StpBridge:
        kwargs = {} if priority is None else {"priority": priority}
        return StpBridge(sim, name, mac, timers=timers, **kwargs)

    return build


def _stp_scaled(factor: float):
    """The family's timer-scaling hook: proportionally faster STP."""
    return (f"stp(x{factor:g})",
            _stp_factory(timers=StpTimers().scaled(factor)),
            _STP_WARMUP * factor)


register_family(BridgeFamily(
    name="stp",
    title="802.1D spanning tree: the demo's bridge_utils baseline",
    factory=_stp_factory,
    warmup=_STP_WARMUP,
    loop_safe=True,
    order=20,
    control_ethertypes=(ETHERTYPE_BPDU,),
    options=(
        FamilyOption("timers", "object", None,
                     "StpTimers: hello_time/max_age/forward_delay "
                     "(IEEE defaults; .scaled(f) for faster variants)"),
        FamilyOption("priority", "int", None,
                     "bridge priority (default 0x8000 everywhere: "
                     "lowest MAC wins root election)"),
    ),
    scaled=_stp_scaled,
))
