"""802.1D bridge/port identifiers and BPDUs.

The demo's baseline runs classic Spanning Tree (Linux ``bridge_utils``
is an 802.1D implementation). This module models the protocol's
identifiers and the two BPDU types with the standard comparison rules:
lower is better, compared as (root id, root path cost, transmitting
bridge id, transmitting port id).
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, replace

from repro.frames.mac import MAC

#: Default bridge priority (802.1D-2004 table 17-2).
DEFAULT_BRIDGE_PRIORITY = 0x8000
#: Default port priority.
DEFAULT_PORT_PRIORITY = 0x80
#: 802.1D-1998 path cost for a 1 Gb/s link (the NetFPGA line rate).
PATH_COST_1G = 4

CONFIG_BPDU_WIRE_SIZE = 35
TCN_BPDU_WIRE_SIZE = 4


@functools.total_ordering
@dataclass(frozen=True)
class BridgeId:
    """A (priority, MAC) bridge identifier; lower wins root election."""

    priority: int
    mac: MAC

    def __post_init__(self):
        if not 0 <= self.priority <= 0xFFFF:
            raise ValueError(f"bridge priority out of range: {self.priority}")

    def _key(self):
        return (self.priority, self.mac.value)

    def __lt__(self, other: "BridgeId") -> bool:
        return self._key() < other._key()

    def __str__(self) -> str:
        return f"{self.priority:04x}.{self.mac}"


@functools.total_ordering
@dataclass(frozen=True)
class PortId:
    """A (priority, port number) port identifier."""

    priority: int
    number: int

    def __post_init__(self):
        if not 0 <= self.priority <= 0xFF:
            raise ValueError(f"port priority out of range: {self.priority}")
        if self.number < 0:
            raise ValueError(f"negative port number: {self.number}")

    def _key(self):
        return (self.priority, self.number)

    def __lt__(self, other: "PortId") -> bool:
        return self._key() < other._key()

    def __str__(self) -> str:
        return f"{self.priority:02x}.{self.number}"


@functools.total_ordering
@dataclass(frozen=True)
class PriorityVector:
    """The spanning tree priority vector carried by config BPDUs.

    Lower compares better; the total order drives both root election
    and designated-bridge selection on each LAN.
    """

    root: BridgeId
    cost: int
    bridge: BridgeId
    port: PortId

    def _key(self):
        return (self.root._key(), self.cost, self.bridge._key(),
                self.port._key())

    def __lt__(self, other: "PriorityVector") -> bool:
        return self._key() < other._key()

    def through(self, link_cost: int) -> "PriorityVector":
        """The vector as seen after crossing a link of *link_cost*."""
        return replace(self, cost=self.cost + link_cost)


@dataclass(frozen=True)
class ConfigBpdu:
    """An 802.1D configuration BPDU."""

    root: BridgeId
    cost: int
    bridge: BridgeId
    port: PortId
    message_age: float = 0.0
    max_age: float = 20.0
    hello_time: float = 2.0
    forward_delay: float = 15.0
    topology_change: bool = False
    topology_change_ack: bool = False

    @property
    def wire_size(self) -> int:
        return CONFIG_BPDU_WIRE_SIZE

    @property
    def vector(self) -> PriorityVector:
        return PriorityVector(root=self.root, cost=self.cost,
                              bridge=self.bridge, port=self.port)

    def __str__(self) -> str:
        flags = ""
        if self.topology_change:
            flags += " TC"
        if self.topology_change_ack:
            flags += " TCA"
        return (f"BPDU root={self.root} cost={self.cost} "
                f"bridge={self.bridge} port={self.port} "
                f"age={self.message_age:.1f}{flags}")


@dataclass(frozen=True)
class TcnBpdu:
    """A topology change notification BPDU."""

    bridge: BridgeId

    @property
    def wire_size(self) -> int:
        return TCN_BPDU_WIRE_SIZE

    def __str__(self) -> str:
        return f"TCN from {self.bridge}"
