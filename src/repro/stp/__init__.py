"""802.1D spanning tree baseline (the protocol the demo compares against)."""

from repro.stp import codec as _codec  # registers the BPDU wire format
from repro.stp.bpdu import (BridgeId, ConfigBpdu, DEFAULT_BRIDGE_PRIORITY,
                            DEFAULT_PORT_PRIORITY, PATH_COST_1G, PortId,
                            PriorityVector, TcnBpdu)
from repro.stp.bridge import (MESSAGE_AGE_INCREMENT, PortRole, PortState,
                              StpBridge, StpCounters, StpPortInfo, StpTimers)
from repro.stp.codec import decode_bpdu, encode_bpdu

__all__ = [
    "BridgeId", "ConfigBpdu", "DEFAULT_BRIDGE_PRIORITY",
    "DEFAULT_PORT_PRIORITY", "PATH_COST_1G", "PortId", "PriorityVector",
    "TcnBpdu",
    "MESSAGE_AGE_INCREMENT", "PortRole", "PortState", "StpBridge",
    "StpCounters", "StpPortInfo", "StpTimers",
    "decode_bpdu", "encode_bpdu",
]
