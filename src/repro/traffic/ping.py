"""Ping workloads: the demo's latency probes.

The demo UI "builds graphs to show the latencies obtained" — these are
ping-style RTT series. :class:`PingSeries` sends a train of ICMP echoes
between two hosts and collects per-probe RTTs and losses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.frames.ipv4 import IPv4Address
from repro.hosts.host import Host


@dataclass
class PingResult:
    """The outcome of one probe."""

    seq: int
    sent_at: float
    rtt: Optional[float]  # None = lost

    @property
    def lost(self) -> bool:
        return self.rtt is None


class PingSeries:
    """A train of *count* pings from *host* to *dst_ip*.

    Results appear in :attr:`results` as replies arrive; probes never
    answered within *timeout* are recorded as losses when
    :meth:`finalize` runs (scheduled automatically after the last probe).
    """

    def __init__(self, host: Host, dst_ip: IPv4Address, count: int = 10,
                 interval: float = 0.1, payload_size: int = 56,
                 timeout: float = 1.0):
        if count < 1:
            raise ValueError("count must be at least 1")
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.host = host
        self.dst_ip = dst_ip
        self.count = count
        self.interval = interval
        self.payload_size = payload_size
        self.timeout = timeout
        self.results: List[PingResult] = []
        self._pending: Dict[int, float] = {}
        self._sent = 0
        self._done = False

    def start(self) -> None:
        """Send the first probe now, the rest at the configured interval."""
        self._send_next()

    def _send_next(self) -> None:
        seq = self._sent
        self._sent += 1
        now = self.host.sim.now
        self._pending[seq] = now
        self.host.ping(self.dst_ip, seq=seq, payload_size=self.payload_size,
                       on_reply=self._on_reply)
        if self._sent < self.count:
            self.host.sim.schedule(self.interval, self._send_next)
        else:
            self.host.sim.schedule(self.timeout, self.finalize)

    def _on_reply(self, seq: int, rtt: float) -> None:
        sent_at = self._pending.pop(seq, None)
        if sent_at is None:
            return  # duplicate or post-timeout reply
        self.results.append(PingResult(seq=seq, sent_at=sent_at, rtt=rtt))

    def finalize(self) -> None:
        """Mark every still-pending probe as lost (idempotent)."""
        if self._done:
            return
        self._done = True
        for seq, sent_at in sorted(self._pending.items()):
            self.results.append(PingResult(seq=seq, sent_at=sent_at,
                                           rtt=None))
        self._pending.clear()
        self.results.sort(key=lambda r: r.seq)

    # -- analysis ----------------------------------------------------------

    @property
    def rtts(self) -> List[float]:
        """RTTs of the answered probes, in probe order."""
        return [r.rtt for r in self.results if r.rtt is not None]

    @property
    def losses(self) -> int:
        return sum(1 for r in self.results if r.lost)

    @property
    def loss_rate(self) -> float:
        if not self.results:
            return 0.0
        return self.losses / len(self.results)

    def first_success_after(self, time: float) -> Optional[float]:
        """When the first answered probe sent at/after *time* was sent.

        Used to measure recovery: the time traffic started flowing again
        after a failure is ``first_success_after(t_fail) - t_fail``.
        """
        answered = sorted(r.sent_at for r in self.results
                          if not r.lost and r.sent_at >= time)
        return answered[0] if answered else None


def ping_between(net, src_host: str, dst_host: str, count: int = 10,
                 interval: float = 0.1, **kwargs) -> PingSeries:
    """Convenience: a ping series between two named hosts of *net*."""
    source = net.host(src_host)
    target = net.host(dst_host)
    series = PingSeries(source, target.ip, count=count, interval=interval,
                        **kwargs)
    series.start()
    return series
