"""Workloads: video streaming, ping trains, request/response, matrices."""

from repro.traffic.matrix import (DEFAULT_FLOW_PORT_BASE, Flow, TrafficMatrix,
                                  all_pairs_arp_warmup)
from repro.traffic.ping import PingResult, PingSeries, ping_between
from repro.traffic.reqresp import (DEFAULT_REQRESP_PORT, Request, RequesterApp,
                                   ResponderApp, Response)
from repro.traffic.video import (DEFAULT_CHUNK_SIZE, DEFAULT_FPS,
                                 DEFAULT_PORT, Interruption, VideoChunk,
                                 VideoSink, VideoSource, stream_between)

__all__ = [
    "DEFAULT_FLOW_PORT_BASE", "Flow", "TrafficMatrix",
    "all_pairs_arp_warmup",
    "PingResult", "PingSeries", "ping_between",
    "DEFAULT_REQRESP_PORT", "Request", "RequesterApp", "ResponderApp",
    "Response",
    "DEFAULT_CHUNK_SIZE", "DEFAULT_FPS", "DEFAULT_PORT", "Interruption",
    "VideoChunk", "VideoSink", "VideoSource", "stream_between",
]
