"""The demo's video stream: a CBR source and a gap-detecting sink.

Paper §3.2 streams a video between two hosts and shows that Path Repair
keeps the stream watchable across link failures. The observable is not
pixels but *continuity*: the sink records per-chunk arrivals, and any
interruption shows up as a gap in arrival times and a run of lost
sequence numbers — which is what we measure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional

from repro.frames.ipv4 import IPv4Address, IPv4Packet
from repro.hosts.host import Host
from repro.metrics.availability import DEFAULT_GAP_THRESHOLD

DEFAULT_FPS = 25.0
DEFAULT_CHUNK_SIZE = 1400
DEFAULT_PORT = 9000
#: Gap factor (in stream intervals) above which a stall is visible —
#: shared with the availability metrics so the sink's interruption
#: accounting and the churn experiment's outage detection agree.
DEFAULT_STALL_THRESHOLD = DEFAULT_GAP_THRESHOLD


@dataclass(frozen=True)
class VideoChunk:
    """One video frame's worth of payload."""

    seq: int
    sent_at: float
    size: int = DEFAULT_CHUNK_SIZE

    def __post_init__(self):
        if self.seq < 0:
            raise ValueError("chunk seq must be non-negative")
        if self.size <= 0:
            raise ValueError("chunk size must be positive")

    @property
    def wire_size(self) -> int:
        return self.size


@dataclass
class Interruption:
    """One continuous run of missing/late chunks seen by the sink."""

    start: float
    end: float
    chunks_lost: int

    @property
    def duration(self) -> float:
        return self.end - self.start


class VideoSource:
    """Sends CBR chunks from *host* to *dst_ip* at *fps*."""

    def __init__(self, host: Host, dst_ip: IPv4Address,
                 fps: float = DEFAULT_FPS,
                 chunk_size: int = DEFAULT_CHUNK_SIZE,
                 port: int = DEFAULT_PORT):
        if fps <= 0:
            raise ValueError("fps must be positive")
        self.host = host
        self.dst_ip = dst_ip
        self.interval = 1.0 / fps
        self.chunk_size = chunk_size
        self.port = port
        self.sent = 0
        self._timer = None

    def start(self) -> None:
        """Begin streaming (first chunk goes out after one interval)."""
        if self._timer is not None:
            raise RuntimeError("video source already started")
        self._timer = self.host.sim.schedule_periodic(
            self.interval, self._send_chunk)

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.stop()
            self._timer = None

    def _send_chunk(self) -> None:
        chunk = VideoChunk(seq=self.sent, sent_at=self.host.sim.now,
                           size=self.chunk_size)
        self.sent += 1
        self.host.send_udp(self.dst_ip, self.port, self.port, chunk)


class VideoSink:
    """Receives chunks, recording arrivals, losses and interruptions.

    *stall_threshold* is expressed in stream intervals: a gap between
    consecutive arrivals longer than ``threshold x interval`` counts as
    a visible interruption (a playback stall).
    """

    def __init__(self, host: Host, fps: float = DEFAULT_FPS,
                 port: int = DEFAULT_PORT,
                 stall_threshold: float = DEFAULT_STALL_THRESHOLD):
        self.host = host
        self.interval = 1.0 / fps
        self.stall_threshold = stall_threshold
        self.port = port
        self.arrivals: List[float] = []
        self.latencies: List[float] = []
        self.seqs: List[int] = []
        self.duplicates = 0
        self.reordered = 0
        self._seen: set = set()
        self._highest_seq: Optional[int] = None
        host.bind_udp(port, self._on_chunk)

    def _on_chunk(self, src_ip: IPv4Address, sport: int, payload: Any,
                  packet: IPv4Packet) -> None:
        if not isinstance(payload, VideoChunk):
            return
        now = self.host.sim.now
        if payload.seq in self._seen:
            self.duplicates += 1
            return
        self._seen.add(payload.seq)
        if self._highest_seq is not None and payload.seq < self._highest_seq:
            self.reordered += 1
        self._highest_seq = max(self._highest_seq or 0, payload.seq)
        self.arrivals.append(now)
        self.latencies.append(now - payload.sent_at)
        self.seqs.append(payload.seq)

    # -- analysis ----------------------------------------------------------

    @property
    def received(self) -> int:
        return len(self.arrivals)

    def lost_chunks(self, total_sent: int) -> int:
        """Chunks never delivered, given how many the source sent."""
        return total_sent - self.received - self.duplicates

    def interruptions(self) -> List[Interruption]:
        """Stalls: arrival gaps exceeding the stall threshold."""
        limit = self.stall_threshold * self.interval
        stalls: List[Interruption] = []
        for prev, cur, prev_seq, cur_seq in zip(
                self.arrivals, self.arrivals[1:], self.seqs, self.seqs[1:]):
            if cur - prev > limit:
                stalls.append(Interruption(start=prev, end=cur,
                                           chunks_lost=cur_seq - prev_seq - 1))
        return stalls

    def disruption_after(self, fail_time: float) -> Optional[Interruption]:
        """The first interruption starting at/after *fail_time*, if any."""
        for stall in self.interruptions():
            if stall.end >= fail_time:
                return stall
        return None

    def worst_gap(self) -> float:
        """The largest inter-arrival gap (0 for fewer than 2 arrivals)."""
        if len(self.arrivals) < 2:
            return 0.0
        return max(b - a for a, b in zip(self.arrivals, self.arrivals[1:]))


def stream_between(source_host: Host, sink_host: Host,
                   fps: float = DEFAULT_FPS,
                   chunk_size: int = DEFAULT_CHUNK_SIZE,
                   port: int = DEFAULT_PORT,
                   stall_threshold: float = DEFAULT_STALL_THRESHOLD):
    """Wire a source on *source_host* to a sink on *sink_host*.

    Returns ``(source, sink)``; the caller starts the source.
    """
    sink = VideoSink(sink_host, fps=fps, port=port,
                     stall_threshold=stall_threshold)
    source = VideoSource(source_host, sink_host.ip, fps=fps,
                         chunk_size=chunk_size, port=port)
    return source, sink
