"""Traffic matrices: many-flow workloads over a network.

The load-distribution and broadcast-overhead experiments need traffic
between many host pairs. A :class:`TrafficMatrix` schedules UDP flows
(or ping trains) between selected pairs with deterministic staggering so
runs replay identically.

Flow endpoints are *names* resolved through :meth:`Network.endpoint`,
so a flow can terminate on an ordinary :class:`~repro.hosts.host.Host`
or on one member of a flyweight :class:`~repro.hosts.population.
HostPopulation` (``"H0P#42"``) interchangeably.

Heavy-tailed workloads (:meth:`TrafficMatrix.zipf_pairs`,
:meth:`TrafficMatrix.elephant_mice`) follow the determinism contract:
every random draw happens at *generation* time from a caller-seeded
``random.Random``, so the flow list — and therefore the simulation — is
a pure function of (endpoint universe, count, seed), regardless of how
many jobs or shards later execute it.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.topology.builder import Network
from repro.traffic.ping import PingSeries

DEFAULT_FLOW_PORT_BASE = 20000

#: Zipf skew of heavy-tailed source popularity (must exceed 1 for the
#: rejection sampler); ~1.2 matches measured datacenter traffic skew.
DEFAULT_ZIPF_ALPHA = 1.2


def zipf_rank(rng: random.Random, alpha: float, n: int) -> int:
    """One Zipf(*alpha*)-distributed rank in ``[1, n]``.

    Devroye's rejection method: O(1) expected draws, no O(n) harmonic
    table — a million-endpoint universe costs the same as ten. Pure
    function of the *rng* stream, so generation-time draws keep the
    flow list deterministic.
    """
    if alpha <= 1.0:
        raise ValueError(f"zipf alpha must exceed 1.0, got {alpha}")
    if n < 1:
        raise ValueError(f"zipf needs a non-empty universe, got n={n}")
    b = 2.0 ** (alpha - 1.0)
    while True:
        u = rng.random()
        v = rng.random()
        x = int(u ** (-1.0 / (alpha - 1.0)))
        t = (1.0 + 1.0 / x) ** (alpha - 1.0)
        if x <= n and v * x * (t - 1.0) / (b - 1.0) <= t / b:
            return x


@dataclass
class Flow:
    """One unidirectional UDP flow between two named hosts."""

    src: str
    dst: str
    packets: int
    interval: float
    size: int
    port: int
    sent: int = 0
    received: int = 0
    latencies: List[float] = field(default_factory=list)


@dataclass(frozen=True)
class _Stamp:
    """Payload carrying the send timestamp for latency measurement."""

    sent_at: float
    size: int

    @property
    def wire_size(self) -> int:
        return self.size


class TrafficMatrix:
    """A set of concurrent flows over *net*.

    ``all_pairs`` builds the full bipartite host×host matrix;
    ``random_pairs`` samples a fixed number of distinct ordered pairs
    using the simulator's seeded RNG.
    """

    def __init__(self, net: Network):
        self.net = net
        self.flows: List[Flow] = []
        self._next_port = DEFAULT_FLOW_PORT_BASE

    # -- construction --------------------------------------------------------

    def add_flow(self, src: str, dst: str, packets: int = 50,
                 interval: float = 1e-3, size: int = 500) -> Flow:
        if src == dst:
            raise ValueError(f"flow endpoints must differ: {src}")
        port = self._next_port
        self._next_port += 1
        flow = Flow(src=src, dst=dst, packets=packets, interval=interval,
                    size=size, port=port)
        self.flows.append(flow)
        return flow

    def all_pairs(self, hosts: Optional[Sequence[str]] = None,
                  **flow_kwargs) -> List[Flow]:
        """One flow for every ordered pair of hosts."""
        names = list(hosts) if hosts is not None else sorted(self.net.hosts)
        return [self.add_flow(src, dst, **flow_kwargs)
                for src, dst in itertools.permutations(names, 2)]

    def random_pairs(self, count: int,
                     hosts: Optional[Sequence[str]] = None,
                     **flow_kwargs) -> List[Flow]:
        """*count* distinct ordered pairs drawn with the simulator RNG."""
        names = list(hosts) if hosts is not None else sorted(self.net.hosts)
        pairs = list(itertools.permutations(names, 2))
        if count > len(pairs):
            raise ValueError(
                f"only {len(pairs)} distinct pairs available, asked {count}")
        chosen = self.net.sim.rng.sample(pairs, count)
        return [self.add_flow(src, dst, **flow_kwargs)
                for src, dst in chosen]

    # -- heavy-tailed construction -------------------------------------------

    def _endpoint_universe(self, endpoints: Optional[Sequence[str]]) \
            -> List[Tuple[str, int]]:
        """``(name, member_count)`` blocks the tail generators draw over.

        *endpoints* names hosts and/or populations (a population name
        stands for its whole block); None means every host then every
        population, name-sorted. Never materialises per-endpoint names:
        a million-endpoint population is one ``(name, size)`` entry.
        """
        if endpoints is None:
            names = sorted(self.net.hosts) \
                + sorted(self.net.populations)
        else:
            names = list(endpoints)
        universe: List[Tuple[str, int]] = []
        for name in names:
            pop = self.net.populations.get(name)
            universe.append((name, pop.size if pop is not None else 1))
        if not universe:
            raise ValueError("no endpoints to draw flows over")
        return universe

    @staticmethod
    def _endpoint_at(universe: List[Tuple[str, int]], rank: int) -> str:
        """The endpoint name at 0-based *rank* in the universe order."""
        for name, size in universe:
            if rank < size:
                return name if size == 1 else f"{name}#{rank}"
            rank -= size
        raise IndexError(f"endpoint rank out of universe: {rank}")

    def _draw_pair(self, rng: random.Random,
                   universe: List[Tuple[str, int]], total: int,
                   alpha: float) -> Tuple[str, str]:
        """One (Zipf source, uniform destination) ordered pair."""
        src = self._endpoint_at(universe, zipf_rank(rng, alpha, total) - 1)
        while True:
            dst = self._endpoint_at(universe, rng.randrange(total))
            if dst != src:
                return src, dst

    def zipf_pairs(self, count: int, rng: random.Random,
                   alpha: float = DEFAULT_ZIPF_ALPHA,
                   endpoints: Optional[Sequence[str]] = None,
                   **flow_kwargs) -> List[Flow]:
        """*count* flows with Zipf(*alpha*)-popular sources.

        Sources are rank-skewed over the endpoint universe (rank 1 =
        first endpoint of the first name-sorted block), destinations
        uniform; all draws come from the caller-seeded *rng* at
        generation time, so the flow list is deterministic before the
        simulation runs a single event.
        """
        universe = self._endpoint_universe(endpoints)
        total = sum(size for _, size in universe)
        if total < 2:
            raise ValueError(f"need at least 2 endpoints, have {total}")
        flows = []
        for _ in range(count):
            src, dst = self._draw_pair(rng, universe, total, alpha)
            flows.append(self.add_flow(src, dst, **flow_kwargs))
        return flows

    def elephant_mice(self, count: int, rng: random.Random,
                      alpha: float = DEFAULT_ZIPF_ALPHA,
                      endpoints: Optional[Sequence[str]] = None,
                      elephant_fraction: float = 0.1,
                      elephant_packets: int = 40, elephant_size: int = 1400,
                      mouse_packets: int = 3, mouse_size: int = 120,
                      interval: float = 1e-3) -> List[Flow]:
        """*count* heavy-tailed flows: Zipf sources, bimodal flow sizes.

        Each flow is an elephant (long, full-size packets) with
        probability *elephant_fraction*, otherwise a mouse — the
        classic datacenter mix where a few flows carry most bytes.
        Deterministic for a given *rng* seed, like :meth:`zipf_pairs`.
        """
        universe = self._endpoint_universe(endpoints)
        total = sum(size for _, size in universe)
        if total < 2:
            raise ValueError(f"need at least 2 endpoints, have {total}")
        flows = []
        for _ in range(count):
            src, dst = self._draw_pair(rng, universe, total, alpha)
            if rng.random() < elephant_fraction:
                packets, size = elephant_packets, elephant_size
            else:
                packets, size = mouse_packets, mouse_size
            flows.append(self.add_flow(src, dst, packets=packets,
                                       interval=interval, size=size))
        return flows

    # -- execution -----------------------------------------------------------

    def start(self, stagger: float = 1e-4,
              owner: Optional[Callable[[str], bool]] = None,
              bulk: bool = False) -> None:
        """Bind sinks and schedule every flow, staggering flow starts.

        *owner* gates the work by endpoint name for sharded runs: a
        sink binds only when this engine owns the destination, a flow
        schedules only when it owns the source — while flow indices
        (and so ports and stagger offsets) stay globally identical.
        *bulk* files the flow starts through ``schedule_bulk`` (one
        heapify, not len(flows) pushes) for population-scale matrices.
        """
        specs = []
        for index, flow in enumerate(self.flows):
            if owner is None or owner(flow.dst):
                self._bind_sink(flow)
            if owner is None or owner(flow.src):
                specs.append((index * stagger, self._run_flow, flow))
        if bulk:
            self.net.sim.schedule_bulk(specs)
        else:
            for offset, run, flow in specs:
                self.net.sim.schedule(offset, run, flow)

    def _bind_sink(self, flow: Flow) -> None:
        sink = self.net.endpoint(flow.dst)

        def on_packet(src_ip, sport, payload, packet, flow=flow):
            flow.received += 1
            if isinstance(payload, _Stamp):
                flow.latencies.append(self.net.sim.now - payload.sent_at)

        sink.bind_udp(flow.port, on_packet)

    def _run_flow(self, flow: Flow) -> None:
        src = self.net.endpoint(flow.src)
        dst_ip = self.net.endpoint(flow.dst).ip

        def send_one() -> None:
            if flow.sent >= flow.packets:
                return
            stamp = _Stamp(sent_at=self.net.sim.now, size=flow.size)
            src.send_udp(dst_ip, flow.port, flow.port, stamp)
            flow.sent += 1
            if flow.sent < flow.packets:
                self.net.sim.schedule(flow.interval, send_one)

        send_one()

    # -- analysis ----------------------------------------------------------

    @property
    def total_sent(self) -> int:
        return sum(flow.sent for flow in self.flows)

    @property
    def total_received(self) -> int:
        return sum(flow.received for flow in self.flows)

    @property
    def delivery_rate(self) -> float:
        sent = self.total_sent
        return self.total_received / sent if sent else 0.0

    def flow_latencies(self) -> List[float]:
        """All per-packet one-way latencies across all flows."""
        out: List[float] = []
        for flow in self.flows:
            out.extend(flow.latencies)
        return out


def all_pairs_arp_warmup(net: Network, spacing: float = 5e-3) -> float:
    """Make every host resolve every other host's address.

    Returns the simulated time consumed. Used before load experiments so
    measurement traffic is pure unicast.
    """
    names = sorted(net.hosts)
    delay = 0.0
    for src, dst in itertools.permutations(names, 2):
        source = net.host(src)
        target = net.host(dst)
        net.sim.schedule(delay, source.ping, target.ip)
        delay += spacing
    total = delay + 1.0
    net.run(total)
    return total
