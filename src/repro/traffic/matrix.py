"""Traffic matrices: many-flow workloads over a network.

The load-distribution and broadcast-overhead experiments need traffic
between many host pairs. A :class:`TrafficMatrix` schedules UDP flows
(or ping trains) between selected pairs with deterministic staggering so
runs replay identically.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.topology.builder import Network
from repro.traffic.ping import PingSeries

DEFAULT_FLOW_PORT_BASE = 20000


@dataclass
class Flow:
    """One unidirectional UDP flow between two named hosts."""

    src: str
    dst: str
    packets: int
    interval: float
    size: int
    port: int
    sent: int = 0
    received: int = 0
    latencies: List[float] = field(default_factory=list)


@dataclass(frozen=True)
class _Stamp:
    """Payload carrying the send timestamp for latency measurement."""

    sent_at: float
    size: int

    @property
    def wire_size(self) -> int:
        return self.size


class TrafficMatrix:
    """A set of concurrent flows over *net*.

    ``all_pairs`` builds the full bipartite host×host matrix;
    ``random_pairs`` samples a fixed number of distinct ordered pairs
    using the simulator's seeded RNG.
    """

    def __init__(self, net: Network):
        self.net = net
        self.flows: List[Flow] = []
        self._next_port = DEFAULT_FLOW_PORT_BASE

    # -- construction --------------------------------------------------------

    def add_flow(self, src: str, dst: str, packets: int = 50,
                 interval: float = 1e-3, size: int = 500) -> Flow:
        if src == dst:
            raise ValueError(f"flow endpoints must differ: {src}")
        port = self._next_port
        self._next_port += 1
        flow = Flow(src=src, dst=dst, packets=packets, interval=interval,
                    size=size, port=port)
        self.flows.append(flow)
        return flow

    def all_pairs(self, hosts: Optional[Sequence[str]] = None,
                  **flow_kwargs) -> List[Flow]:
        """One flow for every ordered pair of hosts."""
        names = list(hosts) if hosts is not None else sorted(self.net.hosts)
        return [self.add_flow(src, dst, **flow_kwargs)
                for src, dst in itertools.permutations(names, 2)]

    def random_pairs(self, count: int,
                     hosts: Optional[Sequence[str]] = None,
                     **flow_kwargs) -> List[Flow]:
        """*count* distinct ordered pairs drawn with the simulator RNG."""
        names = list(hosts) if hosts is not None else sorted(self.net.hosts)
        pairs = list(itertools.permutations(names, 2))
        if count > len(pairs):
            raise ValueError(
                f"only {len(pairs)} distinct pairs available, asked {count}")
        chosen = self.net.sim.rng.sample(pairs, count)
        return [self.add_flow(src, dst, **flow_kwargs)
                for src, dst in chosen]

    # -- execution -----------------------------------------------------------

    def start(self, stagger: float = 1e-4) -> None:
        """Bind sinks and schedule every flow, staggering flow starts."""
        for index, flow in enumerate(self.flows):
            self._bind_sink(flow)
            self.net.sim.schedule(index * stagger, self._run_flow, flow)

    def _bind_sink(self, flow: Flow) -> None:
        sink_host = self.net.host(flow.dst)

        def on_packet(src_ip, sport, payload, packet, flow=flow):
            flow.received += 1
            if isinstance(payload, _Stamp):
                flow.latencies.append(self.net.sim.now - payload.sent_at)

        sink_host.bind_udp(flow.port, on_packet)

    def _run_flow(self, flow: Flow) -> None:
        src_host = self.net.host(flow.src)
        dst_host = self.net.host(flow.dst)

        def send_one() -> None:
            if flow.sent >= flow.packets:
                return
            stamp = _Stamp(sent_at=self.net.sim.now, size=flow.size)
            src_host.send_udp(dst_host.ip, flow.port, flow.port, stamp)
            flow.sent += 1
            if flow.sent < flow.packets:
                self.net.sim.schedule(flow.interval, send_one)

        send_one()

    # -- analysis ----------------------------------------------------------

    @property
    def total_sent(self) -> int:
        return sum(flow.sent for flow in self.flows)

    @property
    def total_received(self) -> int:
        return sum(flow.received for flow in self.flows)

    @property
    def delivery_rate(self) -> float:
        sent = self.total_sent
        return self.total_received / sent if sent else 0.0

    def flow_latencies(self) -> List[float]:
        """All per-packet one-way latencies across all flows."""
        out: List[float] = []
        for flow in self.flows:
            out.extend(flow.latencies)
        return out


def all_pairs_arp_warmup(net: Network, spacing: float = 5e-3) -> float:
    """Make every host resolve every other host's address.

    Returns the simulated time consumed. Used before load experiments so
    measurement traffic is pure unicast.
    """
    names = sorted(net.hosts)
    delay = 0.0
    for src, dst in itertools.permutations(names, 2):
        source = net.host(src)
        target = net.host(dst)
        net.sim.schedule(delay, source.ping, target.ip)
        delay += spacing
    total = delay + 1.0
    net.run(total)
    return total
