"""Request/response traffic (the demo's HTTP-like exchange).

Host A in the demo acts as an HTTP server; host B connects and pulls
data. We model the pattern over simulated UDP: a client sends a small
request; the server answers with a configurable-size response; the
client records the completion time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List

from repro.frames.ipv4 import IPv4Address, IPv4Packet
from repro.hosts.host import Host

DEFAULT_REQRESP_PORT = 8080


@dataclass(frozen=True)
class Request:
    rid: int
    sent_at: float
    response_size: int

    @property
    def wire_size(self) -> int:
        return 16


@dataclass(frozen=True)
class Response:
    rid: int
    request_sent_at: float
    size: int

    @property
    def wire_size(self) -> int:
        return self.size


class ResponderApp:
    """The server half: answers every request with *Response* bytes."""

    def __init__(self, host: Host, port: int = DEFAULT_REQRESP_PORT):
        self.host = host
        self.port = port
        self.requests_served = 0
        host.bind_udp(port, self._on_request)

    def _on_request(self, src_ip: IPv4Address, sport: int, payload: Any,
                    packet: IPv4Packet) -> None:
        if not isinstance(payload, Request):
            return
        self.requests_served += 1
        reply = Response(rid=payload.rid, request_sent_at=payload.sent_at,
                         size=payload.response_size)
        self.host.send_udp(src_ip, self.port, sport, reply)


class RequesterApp:
    """The client half: issues requests, records completion times."""

    def __init__(self, host: Host, server_ip: IPv4Address,
                 port: int = DEFAULT_REQRESP_PORT,
                 client_port: int = 30000,
                 response_size: int = 1000):
        self.host = host
        self.server_ip = server_ip
        self.port = port
        self.client_port = client_port
        self.response_size = response_size
        self.completion_times: List[float] = []
        self._outstanding: Dict[int, float] = {}
        self._next_rid = 0
        host.bind_udp(client_port, self._on_response)

    def send_request(self) -> int:
        """Issue one request; returns its id."""
        rid = self._next_rid
        self._next_rid += 1
        now = self.host.sim.now
        self._outstanding[rid] = now
        self.host.send_udp(self.server_ip, self.client_port, self.port,
                           Request(rid=rid, sent_at=now,
                                   response_size=self.response_size))
        return rid

    def send_many(self, count: int, interval: float) -> None:
        """Issue *count* requests spaced by *interval* seconds."""
        remaining = count - 1
        self.send_request()
        if remaining <= 0:
            return

        def tick() -> None:
            nonlocal remaining
            self.send_request()
            remaining -= 1
            if remaining > 0:
                self.host.sim.schedule(interval, tick)

        self.host.sim.schedule(interval, tick)

    def _on_response(self, src_ip: IPv4Address, sport: int, payload: Any,
                     packet: IPv4Packet) -> None:
        if not isinstance(payload, Response):
            return
        sent_at = self._outstanding.pop(payload.rid, None)
        if sent_at is None:
            return
        self.completion_times.append(self.host.sim.now - sent_at)

    @property
    def outstanding(self) -> int:
        return len(self._outstanding)
