"""ARP-Path (FastPath) low-latency transparent bridges.

A full reproduction of *"Implementing ARP-Path Low Latency Bridges in
NetFPGA"* (Rojas et al., SIGCOMM 2011 demo): the ARP-Path protocol, the
802.1D and link-state baselines it is compared against, a deterministic
discrete-event Ethernet simulator standing in for the NetFPGA hardware,
and the workloads, failure injection and measurement needed to
regenerate the demo's results.

Quick start::

    from repro import Simulator, netfpga_demo, arppath

    sim = Simulator(seed=1)
    net = netfpga_demo(sim, arppath())
    net.run(5.0)                       # control plane settles
    a, b = net.host("A"), net.host("B")
    a.ping(b.ip, on_reply=lambda seq, rtt: print(f"rtt={rtt*1e6:.1f}us"))
    sim.run_for(1.0)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from repro.core import (ArpPathBridge, ArpPathConfig, DEFAULT_CONFIG,
                        EntryState, LockedAddressTable)
from repro.hosts import Host
from repro.netsim import Link, Node, Port, Simulator
from repro.spb import SpbBridge
from repro.stp import StpBridge, StpTimers
from repro.switching import LearningSwitch
from repro.topology import (Network, arppath, factory_for, fat_tree, grid,
                            learning, line, netfpga_demo, pair, random_graph,
                            ring, spb, stp, stp_scaled)

__version__ = "1.0.0"

__all__ = [
    "ArpPathBridge", "ArpPathConfig", "DEFAULT_CONFIG", "EntryState",
    "LockedAddressTable",
    "Host",
    "Link", "Node", "Port", "Simulator",
    "SpbBridge",
    "StpBridge", "StpTimers",
    "LearningSwitch",
    "Network", "arppath", "factory_for", "fat_tree", "grid", "learning",
    "line", "netfpga_demo", "pair", "random_graph", "ring", "spb", "stp",
    "stp_scaled",
    "__version__",
]
