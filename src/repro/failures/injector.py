"""Failure injection: the demo's cable pulls, on a schedule.

Paper §3.2 shows "ARP-Path's Path Repair's effectiveness after
successive link failures". The injector schedules link down/up events
(and whole-bridge crashes) at exact simulation times and records what it
did, so experiments can correlate failures with observed disruptions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.netsim.link import Link
from repro.topology.builder import Network

ACTION_DOWN = "down"
ACTION_UP = "up"


@dataclass(frozen=True)
class FailureRecord:
    """One executed failure action."""

    time: float
    link: str
    action: str


class FailureInjector:
    """Schedules and records link failures on a network."""

    def __init__(self, net: Network):
        self.net = net
        self.records: List[FailureRecord] = []

    # -- primitives ---------------------------------------------------------

    def link_down(self, link_name: str, at: float) -> None:
        """Take the named link down at absolute simulation time *at*."""
        link = self._link(link_name)
        self.net.sim.at(at, self._do, link, ACTION_DOWN)

    def link_up(self, link_name: str, at: float) -> None:
        """Restore the named link at absolute simulation time *at*."""
        link = self._link(link_name)
        self.net.sim.at(at, self._do, link, ACTION_UP)

    def flap(self, link_name: str, at: float, down_for: float) -> None:
        """Down at *at*, back up *down_for* seconds later."""
        self.link_down(link_name, at)
        self.link_up(link_name, at + down_for)

    def bridge_crash(self, bridge_name: str, at: float) -> List[str]:
        """Take down every link of a bridge (a power failure).

        Returns the affected link names.
        """
        bridge = self.net.bridge(bridge_name)
        affected = []
        for name, link in self.net.links.items():
            if link.port_a.node is bridge or link.port_b.node is bridge:
                affected.append(name)
                self.link_down(name, at)
        return affected

    # -- scripted sequences ------------------------------------------------

    def successive_failures(self, link_names: Sequence[str], start: float,
                            spacing: float,
                            restore_after: Optional[float] = None
                            ) -> List[float]:
        """The demo's §3.2 script: kill links one after another.

        Each link goes down ``spacing`` seconds after the previous one;
        with *restore_after* set, each comes back that many seconds
        after failing (so the next failure hits a repaired path).
        Returns the failure times.
        """
        times = []
        for index, name in enumerate(link_names):
            at = start + index * spacing
            times.append(at)
            self.link_down(name, at)
            if restore_after is not None:
                self.link_up(name, at + restore_after)
        return times

    # -- internals -----------------------------------------------------------

    def _link(self, name: str) -> Link:
        if name not in self.net.links:
            raise KeyError(f"unknown link: {name}")
        return self.net.links[name]

    def _do(self, link: Link, action: str) -> None:
        if action == ACTION_DOWN:
            link.take_down()
        else:
            link.bring_up()
        self.records.append(FailureRecord(time=self.net.sim.now,
                                          link=link.name, action=action))

    def downs(self) -> List[FailureRecord]:
        """Executed down events, in time order."""
        return [r for r in self.records if r.action == ACTION_DOWN]

    def __len__(self) -> int:
        return len(self.records)
