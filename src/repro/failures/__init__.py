"""Failure injection: scheduled link failures and bridge crashes."""

from repro.failures.injector import (ACTION_DOWN, ACTION_UP, FailureInjector,
                                     FailureRecord)

__all__ = ["ACTION_DOWN", "ACTION_UP", "FailureInjector", "FailureRecord"]
