"""EXP-P1: minimum-latency path selection (paper §2.2, first bullet).

The claim: "The selected path is the minimum latency path as found by
the ARP Request message." We verify it against a Dijkstra oracle on
random topologies with heterogeneous link latencies, and measure the
same for STP (whose tree is built from bandwidth costs, blind to
latency). Stretch = chosen-path latency / optimal latency; 1.0 is
perfect.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.experiments import registry
from repro.experiments.common import ProtocolSpec, build_and_warm, spec
from repro.metrics.paths import (PathObserver, min_latency_path,
                                 path_latency)
from repro.metrics.report import format_table
from repro.metrics.stats import Summary, summarize
from repro.topology.library import random_graph
from repro.traffic.ping import PingSeries


@dataclass
class StretchSample:
    """One host pair's path quality under one protocol."""

    src: str
    dst: str
    oracle_latency: float
    observed_latency: Optional[float]
    stretch: Optional[float]


@dataclass
class ProtocolStretch:
    protocol: str
    topology_seed: int
    samples: List[StretchSample] = field(default_factory=list)

    @property
    def stretches(self) -> List[float]:
        return [s.stretch for s in self.samples if s.stretch is not None]

    @property
    def optimal_fraction(self) -> float:
        """Fraction of pairs routed at stretch == 1 (within 1%)."""
        values = self.stretches
        if not values:
            return 0.0
        return sum(1 for v in values if v <= 1.01) / len(values)

    def summary(self) -> Optional[Summary]:
        values = self.stretches
        return summarize(values) if values else None


@dataclass
class StretchResult:
    rows: List[ProtocolStretch] = field(default_factory=list)

    def table(self) -> str:
        headers = ["protocol", "seed", "pairs", "stretch_mean",
                   "stretch_p95", "stretch_max", "optimal_frac"]
        body = []
        for row in self.rows:
            stats = row.summary()
            if stats is None:
                body.append([row.protocol, row.topology_seed, 0,
                             None, None, None, None])
                continue
            body.append([row.protocol, row.topology_seed, stats.count,
                         stats.mean, stats.p95, stats.max,
                         f"{row.optimal_fraction:.2f}"])
        return format_table(headers, body,
                            title="EXP-P1 — path stretch vs latency oracle")

    def records(self) -> List[Dict[str, Any]]:
        out = []
        for row in self.rows:
            stats = row.summary()
            out.append({"protocol": row.protocol,
                        "seed": row.topology_seed,
                        "pairs": stats.count if stats else 0,
                        "stretch_mean": stats.mean if stats else None,
                        "stretch_p95": stats.p95 if stats else None,
                        "stretch_max": stats.max if stats else None,
                        "optimal_frac": row.optimal_fraction
                        if stats else None})
        return out


def measure_pair(net, src: str, dst: str, probes: int = 3
                 ) -> StretchSample:
    """Establish a path with pings, then compare to the oracle."""
    observer = PathObserver(net, dst)
    series = PingSeries(net.host(src), net.host(dst).ip, count=probes,
                        interval=0.05)
    series.start()
    net.run(probes * 0.05 + 1.5)
    series.finalize()
    oracle = min_latency_path(net, src, dst)
    bridges = observer.last_bridge_path()
    if not bridges or not series.rtts:
        return StretchSample(src=src, dst=dst,
                             oracle_latency=oracle.latency,
                             observed_latency=None, stretch=None)
    observed = path_latency(net, (src,) + bridges + (dst,))
    return StretchSample(src=src, dst=dst, oracle_latency=oracle.latency,
                         observed_latency=observed,
                         stretch=observed / oracle.latency)


def run_protocol(protocol: ProtocolSpec, n_bridges: int = 10,
                 hosts: int = 4, seed: int = 0,
                 extra_edge_prob: float = 0.35) -> ProtocolStretch:
    def topo(sim, factory):
        return random_graph(sim, factory, n=n_bridges,
                            extra_edge_prob=extra_edge_prob, seed=seed,
                            hosts=hosts)

    net = build_and_warm(topo, protocol, seed=seed, trace_hops=True,
                         keep_trace_records=False)
    row = ProtocolStretch(protocol=protocol.name, topology_seed=seed)
    names = sorted(net.hosts)
    for src, dst in itertools.permutations(names, 2):
        row.samples.append(measure_pair(net, src, dst))
    return row


def run(n_bridges: int = 10, hosts: int = 4, seeds: List[int] = [0, 1, 2],
        protocols: Optional[List[ProtocolSpec]] = None) -> StretchResult:
    chosen = protocols if protocols is not None else [
        spec("arppath"), spec("stp")]
    result = StretchResult()
    for protocol in chosen:
        for seed in seeds:
            result.rows.append(run_protocol(protocol, n_bridges=n_bridges,
                                            hosts=hosts, seed=seed))
    return result


def _stretch_scenario(seeds: List[int], bridges: int, hosts: int,
                      protocols: List[str],
                      stp_scale: Optional[float]) -> StretchResult:
    chosen = registry.protocol_specs(protocols, stp_scale=stp_scale)
    return run(n_bridges=bridges, hosts=hosts, seeds=seeds,
               protocols=chosen)


registry.register(registry.Scenario(
    name="stretch",
    title="EXP-P1: path stretch vs latency oracle",
    params=(
        registry.Param("bridges", int, 10, help="bridges per random graph"),
        registry.Param("hosts", int, 4, help="hosts per random graph"),
        registry.Param("protocols", str, ["arppath", "stp"],
                       nargs="+", choices=("arppath", "stp", "spb"),
                       help="protocols to compare"),
        registry.Param("stp_scale", float, None,
                       help="STP timer scale factor (omitted = IEEE "
                            "default timers)"),
        registry.seeds_param([0, 1, 2]),
    ),
    run=_stretch_scenario,
    smoke={"bridges": 5, "hosts": 2, "seeds": [0],
           "protocols": ["arppath"]},
))
