"""EXP-F2: ARP-Path vs STP latency on the NetFPGA demo topology.

Reproduces the demo's main result (paper §3.1, Figure 2): the same
4-bridge wiring runs once with ARP-Path bridges and once with 802.1D
STP bridges; ping trains between hosts A and B measure the RTT each
protocol's path choice yields. ARP-Path races the flooded ARP Request
over every physical path and keeps the fastest; STP forwards along the
tree, which follows 802.1D costs (bandwidth only) and happily picks the
high-latency cross cable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.experiments import registry
from repro.experiments.common import ProtocolSpec, build_and_warm, spec
from repro.metrics.paths import PathObserver, min_latency_path
from repro.metrics.report import format_table
from repro.metrics.stats import Summary, mean, summarize
from repro.topology.library import DemoParams, netfpga_demo
from repro.traffic.ping import PingSeries


@dataclass
class ProtocolLatency:
    """One protocol's measured latency on the demo wiring."""

    protocol: str
    rtt: Summary
    losses: int
    bridge_path: Optional[Tuple[str, ...]]
    oracle_latency: float
    path_latency_one_way: Optional[float]

    @property
    def path_str(self) -> str:
        if not self.bridge_path:
            return "-"
        return "->".join(self.bridge_path)


@dataclass
class Fig2Result:
    """All protocols' results plus the latency oracle."""

    rows: List[ProtocolLatency] = field(default_factory=list)

    def table(self) -> str:
        headers = ["protocol", "path (bridges)", "rtt_mean_us",
                   "rtt_p95_us", "losses", "one_way_oracle_us"]
        body = [[row.protocol, row.path_str, row.rtt.mean * 1e6,
                 row.rtt.p95 * 1e6, row.losses, row.oracle_latency * 1e6]
                for row in self.rows]
        return format_table(headers, body,
                            title="Fig.2 — ARP-Path vs STP latency (A<->B)")

    def speedup(self) -> Optional[float]:
        """STP mean RTT / ARP-Path mean RTT (the headline factor).

        Multi-seed runs hold one row per protocol per seed; the factor
        averages each protocol's mean RTT over its rows.
        """
        by_name: Dict[str, List[float]] = {}
        for row in self.rows:
            by_name.setdefault(row.protocol.split("(")[0],
                               []).append(row.rtt.mean)
        if "arppath" not in by_name or "stp" not in by_name:
            return None
        return mean(by_name["stp"]) / mean(by_name["arppath"])

    def records(self) -> List[Dict[str, Any]]:
        """Machine-readable rows (seconds, raw counts)."""
        return [{"protocol": row.protocol, "path": row.path_str,
                 "rtt_mean": row.rtt.mean, "rtt_p95": row.rtt.p95,
                 "losses": row.losses,
                 "oracle_latency": row.oracle_latency}
                for row in self.rows]


def run_protocol(protocol: ProtocolSpec, params: DemoParams = DemoParams(),
                 probes: int = 20, seed: int = 0) -> ProtocolLatency:
    """Measure one protocol on the demo topology."""
    net = build_and_warm(netfpga_demo, protocol, seed=seed, trace_hops=True,
                         keep_trace_records=False, params=params)
    observer = PathObserver(net, "B")
    series = PingSeries(net.host("A"), net.host("B").ip, count=probes,
                        interval=0.05)
    series.start()
    net.run(probes * 0.05 + 2.0)
    series.finalize()
    oracle = min_latency_path(net, "A", "B")
    bridge_path = observer.last_bridge_path()
    one_way = None
    if bridge_path:
        try:
            from repro.metrics.paths import path_latency
            one_way = path_latency(net, ("A",) + bridge_path + ("B",))
        except Exception:
            one_way = None
    rtts = series.rtts
    if not rtts:
        raise RuntimeError(
            f"{protocol.name}: no probe answered — warmup too short?")
    return ProtocolLatency(protocol=protocol.name, rtt=summarize(rtts),
                           losses=series.losses, bridge_path=bridge_path,
                           oracle_latency=oracle.latency,
                           path_latency_one_way=one_way)


def run(params: DemoParams = DemoParams(), probes: int = 20, seed: int = 0,
        protocols: Optional[List[ProtocolSpec]] = None) -> Fig2Result:
    """The full Figure 2 comparison (default: arppath, stp, spb)."""
    chosen = protocols if protocols is not None else [
        spec("arppath"), spec("stp"), spec("spb")]
    result = Fig2Result()
    for protocol in chosen:
        result.rows.append(run_protocol(protocol, params=params,
                                        probes=probes, seed=seed))
    return result


@dataclass
class PingResult:
    """The interactive ping check: one block per seed."""

    rows: List[ProtocolLatency] = field(default_factory=list)

    def table(self) -> str:
        blocks = []
        for row in self.rows:
            blocks.append(
                f"protocol: {row.protocol}\n"
                f"path:     A -> {row.path_str} -> B\n"
                f"rtt:      mean {row.rtt.mean * 1e6:.1f}us  "
                f"p95 {row.rtt.p95 * 1e6:.1f}us  losses {row.losses}")
        return "\n\n".join(blocks)

    def records(self) -> List[Dict[str, Any]]:
        return [{"protocol": row.protocol, "path": row.path_str,
                 "rtt_mean": row.rtt.mean, "rtt_p95": row.rtt.p95,
                 "losses": row.losses} for row in self.rows]


def _fig2_scenario(seeds: List[int], probes: int, cross_latency_us: float,
                   protocols: List[str], stp_scale: float) -> Fig2Result:
    chosen = registry.protocol_specs(protocols, stp_scale=stp_scale)
    return registry.seeded(
        lambda seed: run(probes=probes, seed=seed,
                         params=DemoParams(
                             cross_latency=cross_latency_us * 1e-6),
                         protocols=chosen))(seeds)


def _fig2_render(result: Fig2Result) -> str:
    text = result.table()
    speedup = result.speedup()
    if speedup is not None:
        text += f"\n\nARP-Path speedup over STP: {speedup:.1f}x"
    return text


def _ping_scenario(seeds: List[int], protocol: str, count: int) -> PingResult:
    chosen = spec(protocol) if protocol != "stp" \
        else spec("stp", stp_scale=0.1)
    return PingResult(rows=[run_protocol(chosen, probes=count, seed=seed)
                            for seed in seeds])


registry.register(registry.Scenario(
    name="fig2",
    title="Fig. 2: ARP-Path vs STP vs SPB latency",
    params=(
        registry.Param("probes", int, 20, help="ping probes per protocol"),
        registry.Param("cross_latency_us", float, 500.0,
                       help="demo cross-cable latency in microseconds"),
        registry.protocols_param(["arppath", "stp", "spb"],
                                 loop_safe_only=True),
        registry.Param("stp_scale", float, 0.1,
                       help="STP timer scale factor (1.0 = IEEE "
                            "default timers)"),
        registry.seeds_param(),
    ),
    run=_fig2_scenario,
    render=_fig2_render,
    smoke={"probes": 2, "protocols": ["arppath"]},
))

registry.register(registry.Scenario(
    name="ping",
    title="interactive check: ping A<->B on the demo topology",
    # No "learning" choice: a plain learning switch melts down on the
    # demo topology's loops (that failure mode is demonstrated in the
    # loop-freedom bench instead).
    params=(
        registry.protocols_param("arppath", loop_safe_only=True,
                                 name="protocol", nargs=None, sweep=True),
        registry.Param("count", int, 5, help="number of probes"),
        registry.seeds_param(),
    ),
    run=_ping_scenario,
    smoke={"count": 2},
))
