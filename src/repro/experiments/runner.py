"""Parallel sweep runner: expand scenario grids, execute on a pool.

A sweep is a list of :class:`SweepCell` — one (scenario, seed, param
overrides) triple per cell, produced by :func:`expand_grid` from the
cross product of scenarios x seeds x sweep axes. :class:`SweepRunner`
executes cells on a crash-isolated worker pool (``jobs=1`` runs in
process, no pool) and streams :class:`CellResult` objects as they
complete.

Determinism: each cell carries its own seed, every experiment builds a
fresh ``Simulator(seed=cell.seed)``, and cells share no state — so the
per-cell rows are identical at any ``jobs`` level, and the aggregation
(:func:`repro.metrics.stats.aggregate_rows`) sorts its groups, making
the summary byte-identical too.

Fault tolerance: the pool assigns each cell to exactly one worker
process at a time and watches worker liveness, so a worker that dies
mid-cell (segfault, OOM kill, ``os._exit``) fails only *its* cell — the
parent synthesizes a :class:`WorkerCrashError` result naming the cell
and respawns a fresh worker; the stream never aborts mid-iteration.
Failed attempts (crash or raise) are retried up to ``retries`` times
with a deterministic exponential-backoff schedule
(:func:`backoff_schedule`: seeded jitter, monotone non-decreasing), and
a cell that exhausts its budget terminates as
:data:`FAILED_PERMANENT` — partial sweeps still return every good row.
``cell_hook`` is the chaos-injection seam (:mod:`repro.chaos`): a
picklable callable run inside the worker before each attempt.
"""

from __future__ import annotations

import heapq
import multiprocessing
import pickle
import random
import time
import traceback
from multiprocessing import connection as mp_connection
from collections import deque
from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, Iterable, Iterator, List, Optional,
                    Sequence, Tuple)

from repro.experiments import registry
from repro.metrics.stats import aggregate_rows

#: Overrides are stored as a sorted tuple of (name, value) pairs with
#: list values frozen to tuples, so cells are hashable and picklable.
Overrides = Tuple[Tuple[str, Any], ...]

#: Terminal cell statuses: every yielded CellResult carries one.
OK = "ok"
FAILED_PERMANENT = "failed_permanent"


class WorkerCrashError(RuntimeError):
    """A pool worker died (signal/exit) while executing a sweep cell.

    Raised nowhere — the pool *synthesizes* the failed attempt instead
    of aborting the stream — but its name prefixes the cell's error
    text so callers (and ``job.error`` over HTTP) can tell a worker
    death from an ordinary experiment exception.
    """

    def __init__(self, cell: "SweepCell", exitcode: Optional[int],
                 attempt: int):
        super().__init__(
            f"pool worker died running cell {cell.label()} "
            f"(exitcode {exitcode}, attempt {attempt + 1})")
        self.cell = cell
        self.exitcode = exitcode
        self.attempt = attempt

    def describe(self) -> str:
        """The error text stored on the cell result."""
        return f"WorkerCrashError: {self}"


@dataclass(frozen=True)
class SweepCell:
    """One unit of sweep work: a scenario at one seed and param point."""

    index: int
    scenario: str
    seed: int
    overrides: Overrides = ()

    def params(self) -> Dict[str, Any]:
        """Overrides as run kwargs (tuples thawed back to lists)."""
        return {name: list(value) if isinstance(value, tuple) else value
                for name, value in self.overrides}

    def label(self) -> str:
        parts = [self.scenario, f"seed={self.seed}"]
        parts += [f"{name}={_brief(value)}"
                  for name, value in self.overrides]
        return " ".join(parts)


def _brief(value: Any) -> str:
    if isinstance(value, tuple):
        return "+".join(str(v) for v in value)
    return str(value)


@dataclass
class CellResult:
    """A finished cell: its rows (tagged with cell identity) or error.

    ``attempts`` counts every execution try (1 = first attempt
    succeeded); ``retried`` is true when at least one earlier attempt
    failed; ``status`` is :data:`OK` or :data:`FAILED_PERMANENT` (the
    retry budget is spent and ``error`` holds the last attempt's
    failure).
    """

    cell: SweepCell
    rows: List[Dict[str, Any]] = field(default_factory=list)
    elapsed: float = 0.0
    error: Optional[str] = None
    attempts: int = 1
    retried: bool = False
    status: str = OK

    @property
    def ok(self) -> bool:
        return self.error is None


def freeze_overrides(overrides: Dict[str, Any]) -> Overrides:
    return tuple(sorted(
        (name, tuple(value) if isinstance(value, list) else value)
        for name, value in overrides.items()))


def expand_grid(scenarios: Sequence[str], seeds: Sequence[int],
                axes: Optional[Dict[str, Sequence[Any]]] = None
                ) -> List[SweepCell]:
    """The cross product scenario x seed x (every axis value combo).

    *axes* maps param names to the values to sweep; every named param
    must exist (and be sweepable) on every selected scenario. For
    list-typed params each axis value becomes a singleton list — e.g.
    sweeping ``protocols`` over ``arppath,stp`` runs each protocol as
    its own cell.
    """
    points: List[Dict[str, Any]] = [{}]
    for name, values in (axes or {}).items():
        for scenario_name in scenarios:
            scenario = registry.get(scenario_name)
            param = scenario.param(name)  # raises on unknown
            if not param.sweep:
                raise ValueError(
                    f"{scenario_name}: parameter {name!r} cannot be a "
                    "sweep axis")
        points = [dict(point, **{name: value})
                  for point in points for value in values]

    cells = []
    for scenario_name in scenarios:
        scenario = registry.get(scenario_name)
        for point in points:
            shaped = {
                name: [value] if scenario.param(name).is_list
                and not isinstance(value, (list, tuple)) else value
                for name, value in point.items()}
            for seed in seeds:
                cells.append(SweepCell(index=len(cells),
                                       scenario=scenario_name, seed=seed,
                                       overrides=freeze_overrides(shaped)))
    return cells


#: Backoff jitter spread: each delay is the exponential base scaled by
#: a seeded factor in [1, 1 + _JITTER). The spread stays below the 2x
#: growth between attempts, so the schedule is monotone by
#: construction (2 / (1 + _JITTER) > 1).
_JITTER = 0.5

#: Golden-ratio multiplier decorrelating per-cell jitter streams.
_BACKOFF_MIX = 0x9E3779B9


def backoff_schedule(retries: int, base: float = 0.05, cap: float = 2.0,
                     seed: int = 0, cell_index: int = 0) -> List[float]:
    """Delays (seconds) before each retry of one cell.

    Deterministic: a pure function of ``(retries, base, cap, seed,
    cell_index)`` — re-running a sweep replays the identical schedule.
    Exponential with seeded jitter, clamped to *cap*, and monotone
    non-decreasing (pinned by a hypothesis property test): the jitter
    spread is smaller than the 2x growth step, and clamping a monotone
    sequence preserves monotonicity.
    """
    rng = random.Random((seed * _BACKOFF_MIX) ^ cell_index ^ 0x5EED)
    return [min(cap, base * (2.0 ** attempt) * (1.0 + _JITTER
                                                * rng.random()))
            for attempt in range(max(retries, 0))]


def execute_cell(cell: SweepCell, attempt: int = 0,
                 hook: Optional[Callable[[SweepCell, int], None]] = None
                 ) -> CellResult:
    """Run one cell to rows (module-level so pool workers can pickle it).

    *hook* is the chaos-injection seam: called as ``hook(cell,
    attempt)`` before the experiment runs, inside the error boundary —
    a hook that raises fails this attempt like any experiment error
    (and a hook that ``os._exit``\\ s kills the worker, exercising the
    crash path). The attempt number never reaches the experiment, so
    retried cells reproduce byte-identical rows.
    """
    registry.load_all()
    scenario = registry.get(cell.scenario)
    started = time.perf_counter()
    try:
        if hook is not None:
            hook(cell, attempt)
        params = scenario.bind(cell.params())
        params["seeds"] = [cell.seed]
        result = scenario.run(**params)
        rows = []
        for row in scenario.records(result):
            tagged: Dict[str, Any] = {"scenario": cell.scenario}
            tagged.update(row)
            tagged["seed"] = cell.seed
            for name, value in cell.overrides:
                tagged.setdefault(name, _brief(value)
                                  if isinstance(value, tuple) else value)
            rows.append(tagged)
    except Exception:
        return CellResult(cell=cell, error=traceback.format_exc(),
                          elapsed=time.perf_counter() - started)
    return CellResult(cell=cell, rows=rows,
                      elapsed=time.perf_counter() - started)


#: How often a parallel stream wakes up to poll its cancel callable
#: while no cell result is ready (seconds).
_CANCEL_POLL_S = 0.05


def _pool_worker_main(tasks: Any, results: Any) -> None:
    """One pool worker: run assigned cells until the sentinel.

    Results are pickled explicitly (an unpicklable payload surfaces as
    this attempt's error instead of a silent death) and sent over this
    worker's *private* pipe — no queue or lock is shared between
    workers, so a worker dying mid-write (``os._exit``, OOM kill)
    corrupts only its own channel, never a sibling's.
    """
    registry.load_all()
    while True:
        task = tasks.get()
        if task is None:
            return
        cell, attempt, hook = task
        result = execute_cell(cell, attempt=attempt, hook=hook)
        try:
            payload = pickle.dumps((cell.index, result))
        except Exception:
            payload = pickle.dumps((cell.index, CellResult(
                cell=cell, error="result not picklable:\n"
                + traceback.format_exc())))
        results.send_bytes(payload)


class _PoolWorker:
    """One crash-isolated worker: private task queue + result pipe."""

    def __init__(self, context):
        self.tasks = context.SimpleQueue()
        self.conn, child_conn = context.Pipe(duplex=False)
        self.process = context.Process(
            target=_pool_worker_main, args=(self.tasks, child_conn),
            daemon=True)
        self.process.start()
        child_conn.close()  # parent keeps only the read end

    def assign(self, cell: SweepCell, attempt: int,
               hook: Optional[Callable]) -> None:
        self.tasks.put((cell, attempt, hook))

    def drain(self) -> List[bytes]:
        """Every complete result payload currently buffered.

        A dead worker's pipe is drained the same way: complete
        messages sent before the crash are preserved, and the torn
        tail (or plain EOF) is swallowed — the liveness check turns
        the missing result into a :class:`WorkerCrashError` attempt.
        """
        payloads: List[bytes] = []
        try:
            while self.conn.poll():
                payloads.append(self.conn.recv_bytes())
        except (EOFError, OSError):
            pass
        return payloads

    def alive(self) -> bool:
        return self.process.is_alive()

    def stop(self) -> None:
        self.process.terminate()
        self.process.join()
        self.conn.close()


class SweepRunner:
    """Execute sweep cells, in process or on a crash-isolated pool.

    ``retries`` is the per-cell retry budget: a failed attempt (raise
    or worker death) re-runs after its :func:`backoff_schedule` delay,
    up to ``retries`` extra attempts; ``retry_seed`` seeds the backoff
    jitter. ``cell_hook`` (picklable, run inside the worker) and
    ``sleep`` (serial-path delay, injectable for tests) are the chaos
    seams.
    """

    def __init__(self, cells: Sequence[SweepCell], jobs: int = 1,
                 retries: int = 0, backoff_base: float = 0.05,
                 backoff_cap: float = 2.0, retry_seed: int = 0,
                 cell_hook: Optional[Callable[[SweepCell, int],
                                              None]] = None,
                 sleep: Callable[[float], None] = time.sleep):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.cells = list(cells)
        self.jobs = jobs
        self.retries = retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.retry_seed = retry_seed
        self.cell_hook = cell_hook
        self._sleep = sleep

    def _delays(self, cell: SweepCell) -> List[float]:
        return backoff_schedule(self.retries, base=self.backoff_base,
                                cap=self.backoff_cap,
                                seed=self.retry_seed,
                                cell_index=cell.index)

    @staticmethod
    def _finalize(result: CellResult, attempt: int) -> CellResult:
        result.attempts = attempt + 1
        result.retried = attempt > 0
        result.status = OK if result.ok else FAILED_PERMANENT
        return result

    def stream(self, cancel: Optional[Callable[[], bool]] = None
               ) -> Iterator[CellResult]:
        """Yield each cell's result as it completes (unordered when
        parallel).

        *cancel* is polled between cells (and, on the pool path, while
        waiting for results): once it returns true the stream stops
        issuing work, terminates any pool workers and ends early —
        already-yielded results stay valid, unfinished cells are simply
        never yielded. This is the primitive the ``repro serve`` job
        queue builds cancellation and per-job timeouts on.
        """
        cancelled = cancel if cancel is not None else (lambda: False)
        if self.jobs == 1 or len(self.cells) <= 1:
            yield from self._stream_serial(cancelled)
            return
        yield from self._stream_pool(cancelled)

    def _stream_serial(self, cancelled: Callable[[], bool]
                       ) -> Iterator[CellResult]:
        for cell in self.cells:
            if cancelled():
                return
            delays = self._delays(cell)
            for attempt in range(self.retries + 1):
                result = execute_cell(cell, attempt=attempt,
                                      hook=self.cell_hook)
                if result.ok or attempt >= self.retries:
                    yield self._finalize(result, attempt)
                    break
                self._sleep(delays[attempt])
                if cancelled():
                    return

    def _stream_pool(self, cancelled: Callable[[], bool]
                     ) -> Iterator[CellResult]:
        context = multiprocessing.get_context()
        workers = [_PoolWorker(context)
                   for _ in range(min(self.jobs, len(self.cells)))]
        pending = deque(self.cells)     # cells awaiting (re)dispatch
        retry_at: List[Tuple[float, int, SweepCell]] = []  # backoff heap
        attempts: Dict[int, int] = {cell.index: 0 for cell in self.cells}
        busy: Dict[int, SweepCell] = {}  # worker slot -> running cell
        done: set = set()
        try:
            while len(done) < len(self.cells):
                if cancelled():
                    return
                now = time.monotonic()
                while retry_at and retry_at[0][0] <= now:
                    cell = heapq.heappop(retry_at)[2]
                    if cell.index not in done:
                        pending.append(cell)
                # Dispatch: one cell per idle worker.
                for slot, worker in enumerate(workers):
                    if slot in busy or not pending:
                        continue
                    cell = pending.popleft()
                    if cell.index in done:
                        continue
                    worker.assign(cell, attempts[cell.index],
                                  self.cell_hook)
                    busy[slot] = cell
                def handle(payloads: List[bytes]
                           ) -> Iterator[CellResult]:
                    for payload in payloads:
                        index, result = pickle.loads(payload)
                        if index in done:
                            continue  # stale dup of a settled cell
                        for slot, cell in list(busy.items()):
                            if cell.index == index:
                                del busy[slot]
                                break
                        settled = self._settle(result, attempts,
                                               retry_at, done)
                        if settled is not None:
                            yield settled

                # Reap: bounded wait keeps cancel + the liveness check
                # responsive; drain every ready pipe (a dead worker's
                # conn reports ready too — drain() preserves complete
                # messages it sent before dying and swallows the tear).
                raw: List[bytes] = []
                if mp_connection.wait([w.conn for w in workers],
                                      timeout=_CANCEL_POLL_S):
                    for worker in workers:
                        raw.extend(worker.drain())
                yield from handle(raw)
                # Liveness: a dead worker fails only the cell it was
                # running; the pool heals with a fresh process.
                for slot, worker in enumerate(workers):
                    if worker.alive():
                        continue
                    # Results it finished sending before dying still
                    # count; only the torn tail becomes a crash.
                    yield from handle(worker.drain())
                    exitcode = worker.process.exitcode
                    worker.process.join()
                    worker.conn.close()
                    crashed = busy.pop(slot, None)
                    workers[slot] = _PoolWorker(context)
                    if crashed is None or crashed.index in done:
                        continue
                    attempt = attempts[crashed.index]
                    crash = WorkerCrashError(crashed, exitcode, attempt)
                    settled = self._settle(
                        CellResult(cell=crashed, error=crash.describe()),
                        attempts, retry_at, done)
                    if settled is not None:
                        yield settled
        finally:
            for worker in workers:
                worker.stop()

    def _settle(self, result: CellResult, attempts: Dict[int, int],
                retry_at: List[Tuple[float, int, SweepCell]],
                done: set) -> Optional[CellResult]:
        """Finalize a pool attempt, or schedule its backoff retry."""
        cell = result.cell
        attempt = attempts[cell.index]
        if result.ok or attempt >= self.retries:
            done.add(cell.index)
            return self._finalize(result, attempt)
        attempts[cell.index] = attempt + 1
        delay = self._delays(cell)[attempt]
        heapq.heappush(retry_at,
                       (time.monotonic() + delay, cell.index, cell))
        return None

    def run(self) -> "SweepReport":
        """Execute every cell and return the collected report."""
        results = sorted(self.stream(), key=lambda r: r.cell.index)
        return SweepReport(cells=results)


@dataclass
class SweepReport:
    """All cell results plus seed-aggregated summaries."""

    cells: List[CellResult]

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.cells)

    @property
    def errors(self) -> List[CellResult]:
        return [result for result in self.cells if not result.ok]

    @property
    def attempts(self) -> int:
        """Total execution attempts across the sweep (>= len(cells))."""
        return sum(result.attempts for result in self.cells)

    @property
    def retried(self) -> List[CellResult]:
        """Cells that needed more than one attempt."""
        return [result for result in self.cells if result.retried]

    @property
    def permanent_failures(self) -> List[CellResult]:
        """Cells that exhausted their retry budget."""
        return [result for result in self.cells
                if result.status == FAILED_PERMANENT]

    def rows(self) -> List[Dict[str, Any]]:
        """Every tagged row from every successful cell, in cell order."""
        out: List[Dict[str, Any]] = []
        for result in self.cells:
            out.extend(result.rows)
        return out

    def summary_rows(self) -> List[Dict[str, Any]]:
        """Rows aggregated over seeds (mean/ci95 per numeric column).

        Sweep-axis columns identify a grid point rather than measure
        it, so they join the scenario's ``row_keys`` as group keys.
        """
        by_scenario: Dict[str, List[Dict[str, Any]]] = {}
        axis_names: Dict[str, set] = {}
        for result in self.cells:
            names = axis_names.setdefault(result.cell.scenario, set())
            names.update(name for name, _ in result.cell.overrides)
        for row in self.rows():
            by_scenario.setdefault(row["scenario"], []).append(row)
        out: List[Dict[str, Any]] = []
        for name in sorted(by_scenario):
            scenario = registry.get(name)
            keys = tuple(scenario.row_keys) \
                + tuple(sorted(axis_names.get(name, ())))
            out.extend(aggregate_rows(by_scenario[name], key_fields=keys))
        return out

    def as_payload(self) -> Dict[str, Any]:
        """The JSON artifact: cells, raw rows and aggregated summary."""
        return {
            "cells": [{"index": r.cell.index,
                       "scenario": r.cell.scenario,
                       "seed": r.cell.seed,
                       "overrides": dict((k, list(v)
                                          if isinstance(v, tuple) else v)
                                         for k, v in r.cell.overrides),
                       "elapsed_s": round(r.elapsed, 6),
                       "attempts": r.attempts,
                       "retried": r.retried,
                       "status": r.status,
                       "error": r.error}
                      for r in self.cells],
            "rows": self.rows(),
            "summary": self.summary_rows(),
        }
