"""Parallel sweep runner: expand scenario grids, execute on a pool.

A sweep is a list of :class:`SweepCell` — one (scenario, seed, param
overrides) triple per cell, produced by :func:`expand_grid` from the
cross product of scenarios x seeds x sweep axes. :class:`SweepRunner`
executes cells on a ``multiprocessing`` pool (``jobs=1`` runs in
process, no pool) and streams :class:`CellResult` objects as they
complete.

Determinism: each cell carries its own seed, every experiment builds a
fresh ``Simulator(seed=cell.seed)``, and cells share no state — so the
per-cell rows are identical at any ``jobs`` level, and the aggregation
(:func:`repro.metrics.stats.aggregate_rows`) sorts its groups, making
the summary byte-identical too.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, Iterable, Iterator, List, Optional,
                    Sequence, Tuple)

from repro.experiments import registry
from repro.metrics.stats import aggregate_rows

#: Overrides are stored as a sorted tuple of (name, value) pairs with
#: list values frozen to tuples, so cells are hashable and picklable.
Overrides = Tuple[Tuple[str, Any], ...]


@dataclass(frozen=True)
class SweepCell:
    """One unit of sweep work: a scenario at one seed and param point."""

    index: int
    scenario: str
    seed: int
    overrides: Overrides = ()

    def params(self) -> Dict[str, Any]:
        """Overrides as run kwargs (tuples thawed back to lists)."""
        return {name: list(value) if isinstance(value, tuple) else value
                for name, value in self.overrides}

    def label(self) -> str:
        parts = [self.scenario, f"seed={self.seed}"]
        parts += [f"{name}={_brief(value)}"
                  for name, value in self.overrides]
        return " ".join(parts)


def _brief(value: Any) -> str:
    if isinstance(value, tuple):
        return "+".join(str(v) for v in value)
    return str(value)


@dataclass
class CellResult:
    """A finished cell: its rows (tagged with cell identity) or error."""

    cell: SweepCell
    rows: List[Dict[str, Any]] = field(default_factory=list)
    elapsed: float = 0.0
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None


def freeze_overrides(overrides: Dict[str, Any]) -> Overrides:
    return tuple(sorted(
        (name, tuple(value) if isinstance(value, list) else value)
        for name, value in overrides.items()))


def expand_grid(scenarios: Sequence[str], seeds: Sequence[int],
                axes: Optional[Dict[str, Sequence[Any]]] = None
                ) -> List[SweepCell]:
    """The cross product scenario x seed x (every axis value combo).

    *axes* maps param names to the values to sweep; every named param
    must exist (and be sweepable) on every selected scenario. For
    list-typed params each axis value becomes a singleton list — e.g.
    sweeping ``protocols`` over ``arppath,stp`` runs each protocol as
    its own cell.
    """
    points: List[Dict[str, Any]] = [{}]
    for name, values in (axes or {}).items():
        for scenario_name in scenarios:
            scenario = registry.get(scenario_name)
            param = scenario.param(name)  # raises on unknown
            if not param.sweep:
                raise ValueError(
                    f"{scenario_name}: parameter {name!r} cannot be a "
                    "sweep axis")
        points = [dict(point, **{name: value})
                  for point in points for value in values]

    cells = []
    for scenario_name in scenarios:
        scenario = registry.get(scenario_name)
        for point in points:
            shaped = {
                name: [value] if scenario.param(name).is_list
                and not isinstance(value, (list, tuple)) else value
                for name, value in point.items()}
            for seed in seeds:
                cells.append(SweepCell(index=len(cells),
                                       scenario=scenario_name, seed=seed,
                                       overrides=freeze_overrides(shaped)))
    return cells


def execute_cell(cell: SweepCell) -> CellResult:
    """Run one cell to rows (module-level so pool workers can pickle it)."""
    registry.load_all()
    scenario = registry.get(cell.scenario)
    started = time.perf_counter()
    try:
        params = scenario.bind(cell.params())
        params["seeds"] = [cell.seed]
        result = scenario.run(**params)
        rows = []
        for row in scenario.records(result):
            tagged: Dict[str, Any] = {"scenario": cell.scenario}
            tagged.update(row)
            tagged["seed"] = cell.seed
            for name, value in cell.overrides:
                tagged.setdefault(name, _brief(value)
                                  if isinstance(value, tuple) else value)
            rows.append(tagged)
    except Exception:
        return CellResult(cell=cell, error=traceback.format_exc(),
                          elapsed=time.perf_counter() - started)
    return CellResult(cell=cell, rows=rows,
                      elapsed=time.perf_counter() - started)


#: How often a parallel stream wakes up to poll its cancel callable
#: while no cell result is ready (seconds).
_CANCEL_POLL_S = 0.05


class SweepRunner:
    """Execute sweep cells, in process or on a multiprocessing pool."""

    def __init__(self, cells: Sequence[SweepCell], jobs: int = 1):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.cells = list(cells)
        self.jobs = jobs

    def stream(self, cancel: Optional[Callable[[], bool]] = None
               ) -> Iterator[CellResult]:
        """Yield each cell's result as it completes (unordered when
        parallel).

        *cancel* is polled between cells (and, on the pool path, while
        waiting for results): once it returns true the stream stops
        issuing work, terminates any pool workers and ends early —
        already-yielded results stay valid, unfinished cells are simply
        never yielded. This is the primitive the ``repro serve`` job
        queue builds cancellation and per-job timeouts on.
        """
        cancelled = cancel if cancel is not None else (lambda: False)
        if self.jobs == 1 or len(self.cells) <= 1:
            for cell in self.cells:
                if cancelled():
                    return
                yield execute_cell(cell)
            return
        context = multiprocessing.get_context()
        pool = context.Pool(processes=min(self.jobs, len(self.cells)))
        try:
            results = pool.imap_unordered(execute_cell, self.cells)
            pending = len(self.cells)
            while pending:
                if cancelled():
                    pool.terminate()
                    return
                try:
                    result = results.next(timeout=_CANCEL_POLL_S)
                except multiprocessing.TimeoutError:
                    continue
                except StopIteration:
                    return
                pending -= 1
                yield result
        finally:
            # terminate() is idempotent; on the normal path the workers
            # are already idle, so this is just the fast close.
            pool.terminate()
            pool.join()

    def run(self) -> "SweepReport":
        """Execute every cell and return the collected report."""
        results = sorted(self.stream(), key=lambda r: r.cell.index)
        return SweepReport(cells=results)


@dataclass
class SweepReport:
    """All cell results plus seed-aggregated summaries."""

    cells: List[CellResult]

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.cells)

    @property
    def errors(self) -> List[CellResult]:
        return [result for result in self.cells if not result.ok]

    def rows(self) -> List[Dict[str, Any]]:
        """Every tagged row from every successful cell, in cell order."""
        out: List[Dict[str, Any]] = []
        for result in self.cells:
            out.extend(result.rows)
        return out

    def summary_rows(self) -> List[Dict[str, Any]]:
        """Rows aggregated over seeds (mean/ci95 per numeric column).

        Sweep-axis columns identify a grid point rather than measure
        it, so they join the scenario's ``row_keys`` as group keys.
        """
        by_scenario: Dict[str, List[Dict[str, Any]]] = {}
        axis_names: Dict[str, set] = {}
        for result in self.cells:
            names = axis_names.setdefault(result.cell.scenario, set())
            names.update(name for name, _ in result.cell.overrides)
        for row in self.rows():
            by_scenario.setdefault(row["scenario"], []).append(row)
        out: List[Dict[str, Any]] = []
        for name in sorted(by_scenario):
            scenario = registry.get(name)
            keys = tuple(scenario.row_keys) \
                + tuple(sorted(axis_names.get(name, ())))
            out.extend(aggregate_rows(by_scenario[name], key_fields=keys))
        return out

    def as_payload(self) -> Dict[str, Any]:
        """The JSON artifact: cells, raw rows and aggregated summary."""
        return {
            "cells": [{"index": r.cell.index,
                       "scenario": r.cell.scenario,
                       "seed": r.cell.seed,
                       "overrides": dict((k, list(v)
                                          if isinstance(v, tuple) else v)
                                         for k, v in r.cell.overrides),
                       "elapsed_s": round(r.elapsed, 6),
                       "error": r.error}
                      for r in self.cells],
            "rows": self.rows(),
            "summary": self.summary_rows(),
        }
