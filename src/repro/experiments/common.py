"""Shared experiment plumbing.

Each experiment module exposes a ``run(...)`` returning a result object
with a ``table()`` method; benches and examples print that table. The
helpers here standardise protocol selection, warmup and probe running.

Protocol knowledge (factories, warmup budgets, loop-safety, per-family
config options) lives in the :class:`~repro.switching.base.BridgeFamily`
registry; :func:`spec` is a view over it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.core.config import ArpPathConfig
from repro.netsim.engine import Simulator
from repro.switching import base
from repro.topology.builder import BridgeFactory, Network


def _warmups() -> Dict[str, float]:
    return {fam.name: fam.warmup for fam in base.all_families()}


#: Warmup budget (simulated seconds) per protocol: long enough for the
#: control plane to settle before measurement traffic starts. Derived
#: from the family registry.
WARMUP = _warmups()


@dataclass(frozen=True)
class ProtocolSpec:
    """A named protocol configuration an experiment compares."""

    name: str
    factory: BridgeFactory
    warmup: float
    #: The :func:`spec` lookup key that built this (``"stp"``, not the
    #: display name ``"stp(x0.1)"``) — what a shard worker passes back
    #: to :func:`repro.experiments.registry.protocol_specs` to rebuild
    #: the identical spec in its own process.
    key: str = ""

    @property
    def label(self) -> str:
        return self.name


def spec(protocol: str, *, arppath_config: Optional[ArpPathConfig] = None,
         stp_scale: Optional[float] = None,
         warmup: Optional[float] = None,
         family_options: Optional[Dict[str, object]] = None) -> ProtocolSpec:
    """Build a :class:`ProtocolSpec` by name with common tweaks."""
    try:
        fam = base.family(protocol)
    except KeyError:
        raise ValueError(f"unknown protocol: {protocol}")
    name = fam.name
    if protocol == "arppath" and arppath_config is not None:
        factory = fam.factory(arppath_config)
        default_warmup = fam.warmup
    elif stp_scale is not None and fam.scaled is not None:
        name, factory, default_warmup = fam.scaled(stp_scale)
    elif family_options:
        factory = fam.factory(**family_options)
        default_warmup = fam.warmup
    else:
        factory = fam.factory()
        default_warmup = fam.warmup
    return ProtocolSpec(name=name, factory=factory,
                        warmup=warmup if warmup is not None else default_warmup,
                        key=protocol)


def default_comparison() -> List[ProtocolSpec]:
    """The demo's comparison set: ARP-Path vs 802.1D STP."""
    return [spec("arppath"), spec("stp")]


def build_and_warm(topology: Callable[..., Network], protocol: ProtocolSpec,
                   seed: int = 0, trace_hops: bool = False,
                   keep_trace_records: bool = True,
                   **topo_kwargs) -> Network:
    """Instantiate *topology* under *protocol* and run its warmup."""
    sim = Simulator(seed=seed, trace_hops=trace_hops,
                    keep_trace_records=keep_trace_records)
    net = topology(sim, protocol.factory, **topo_kwargs)
    net.run(protocol.warmup)
    return net
