"""Shared experiment plumbing.

Each experiment module exposes a ``run(...)`` returning a result object
with a ``table()`` method; benches and examples print that table. The
helpers here standardise protocol selection, warmup and probe running.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.config import ArpPathConfig
from repro.netsim.engine import Simulator
from repro.stp.bridge import StpTimers
from repro.topology import factories
from repro.topology.builder import BridgeFactory, Network

#: Warmup budget (simulated seconds) per protocol: long enough for the
#: control plane to settle before measurement traffic starts.
WARMUP = {
    "arppath": 5.0,
    "learning": 1.0,
    "spb": 8.0,
    # 802.1D needs listening+learning (2 x forward delay) plus margin.
    "stp": 45.0,
}


@dataclass(frozen=True)
class ProtocolSpec:
    """A named protocol configuration an experiment compares."""

    name: str
    factory: BridgeFactory
    warmup: float
    #: The :func:`spec` lookup key that built this (``"stp"``, not the
    #: display name ``"stp(x0.1)"``) — what a shard worker passes back
    #: to :func:`repro.experiments.registry.protocol_specs` to rebuild
    #: the identical spec in its own process.
    key: str = ""

    @property
    def label(self) -> str:
        return self.name


def spec(protocol: str, *, arppath_config: Optional[ArpPathConfig] = None,
         stp_scale: Optional[float] = None,
         warmup: Optional[float] = None) -> ProtocolSpec:
    """Build a :class:`ProtocolSpec` by name with common tweaks."""
    if protocol == "arppath":
        factory = (factories.arppath(arppath_config)
                   if arppath_config is not None else factories.arppath())
        default_warmup = WARMUP["arppath"]
        name = "arppath"
    elif protocol == "stp":
        if stp_scale is not None:
            factory = factories.stp(timers=StpTimers().scaled(stp_scale))
            default_warmup = WARMUP["stp"] * stp_scale
            name = f"stp(x{stp_scale:g})"
        else:
            factory = factories.stp()
            default_warmup = WARMUP["stp"]
            name = "stp"
    elif protocol == "spb":
        factory = factories.spb()
        default_warmup = WARMUP["spb"]
        name = "spb"
    elif protocol == "learning":
        factory = factories.learning()
        default_warmup = WARMUP["learning"]
        name = "learning"
    else:
        raise ValueError(f"unknown protocol: {protocol}")
    return ProtocolSpec(name=name, factory=factory,
                        warmup=warmup if warmup is not None else default_warmup,
                        key=protocol)


def default_comparison() -> List[ProtocolSpec]:
    """The demo's comparison set: ARP-Path vs 802.1D STP."""
    return [spec("arppath"), spec("stp")]


def build_and_warm(topology: Callable[..., Network], protocol: ProtocolSpec,
                   seed: int = 0, trace_hops: bool = False,
                   keep_trace_records: bool = True,
                   **topo_kwargs) -> Network:
    """Instantiate *topology* under *protocol* and run its warmup."""
    sim = Simulator(seed=seed, trace_hops=trace_hops,
                    keep_trace_records=keep_trace_records)
    net = topology(sim, protocol.factory, **topo_kwargs)
    net.run(protocol.warmup)
    return net
