"""Scenario registry: declarative experiment metadata.

Every experiment module declares a :class:`Scenario` — a name, a typed
parameter spec with defaults, a run callable and result adapters — and
self-registers at import time. Everything downstream is generated from
this one table:

* ``repro.cli`` builds its subcommands (flags, help, defaults) from the
  param specs instead of hand-rolled parser functions,
* ``repro.experiments.runner`` expands (scenario x seed x param) grids
  over it and executes the cells on a process pool,
* the smoke-test suite iterates every registered scenario at its
  declared smallest parameters.

Seeds are uniform by construction: every scenario declares a ``seeds``
parameter (a list of ints), so every subcommand accepts ``--seeds 0 1 2``
and the single-seed alias ``--seed N``. Scenarios whose underlying
``run()`` takes one seed are adapted with :func:`seeded`, which runs
once per seed and concatenates result rows.

The same table is the API surface of the ``repro serve`` daemon
(:mod:`repro.server`): :meth:`Param.schema` / :meth:`Scenario.schema`
export each spec as a JSON-schema fragment (``GET /v1/scenarios``
returns it verbatim, ``repro.server.docgen`` renders it into
``docs/API.md``), and :meth:`Scenario.validate_submission` checks a
decoded JSON submission against the spec — same defaults, same choices,
same list shaping as the CLI, so the HTTP surface can never drift from
the command line.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, Iterable, List, Optional, Sequence,
                    Tuple)

#: Module-level registry, keyed by scenario name.
_SCENARIOS: Dict[str, "Scenario"] = {}

#: Canonical presentation order (CLI subcommands, listings). Scenarios
#: not named here are appended in registration order.
_ORDER = ("fig2", "fig3", "churn", "stretch", "loopfree", "proxy",
          "loadbalance", "ablations", "occupancy", "scale", "ping")

#: The experiment modules that self-register scenarios, in the order
#: their subcommands should appear.
_MODULES = (
    "repro.experiments.fig2_latency",
    "repro.experiments.fig3_repair",
    "repro.experiments.churn",
    "repro.experiments.stretch",
    "repro.experiments.loopfree",
    "repro.experiments.broadcast",
    "repro.experiments.loadbalance",
    "repro.experiments.ablations",
    "repro.experiments.occupancy",
    "repro.experiments.scale",
)

_loaded = False

#: Python param types -> JSON-schema scalar type names.
_JSON_TYPES = {int: "integer", float: "number", str: "string",
               bool: "boolean"}

#: JSON-schema scalar type names -> accepted decoded-JSON types.
#: ``bool`` is an ``int`` subclass in Python, so integer/number checks
#: must reject it explicitly; numbers accept ints (JSON has one number
#: type) and coerce them to float.
_ACCEPTS = {"integer": (int,), "number": (int, float), "string": (str,),
            "boolean": (bool,)}


class SubmissionError(ValueError):
    """A job submission does not match the registry's param specs.

    Carries the offending field path (``"sizes"``, ``"set.protocols"``)
    so API error payloads can point at the exact input field.
    """

    def __init__(self, field_path: str, message: str):
        super().__init__(f"{field_path}: {message}")
        self.field = field_path
        self.reason = message


@dataclass(frozen=True)
class Param:
    """One typed scenario parameter, mirrored as a CLI flag."""

    name: str
    type: Callable[[str], Any] = int
    default: Any = None
    nargs: Optional[str] = None
    choices: Optional[Tuple[Any, ...]] = None
    help: str = ""
    #: May be used as a sweep axis (``--set name=v1,v2``).
    sweep: bool = True

    @property
    def flag(self) -> str:
        return "--" + self.name.replace("_", "-")

    @property
    def is_list(self) -> bool:
        return self.nargs == "+"

    def parse(self, token: str) -> Any:
        """Coerce one textual value (a sweep-axis token) to this type."""
        value = self.type(token)
        if self.choices is not None and value not in self.choices:
            raise ValueError(
                f"--{self.name}: {value!r} not in {list(self.choices)}")
        return value

    @property
    def json_type(self) -> str:
        """The JSON-schema scalar type of one item of this parameter."""
        return _JSON_TYPES.get(self.type, "string")

    def schema(self) -> Dict[str, Any]:
        """This parameter as a JSON-schema fragment.

        List parameters (``nargs="+"``) become non-empty arrays; a
        ``None`` default means null is a meaningful value (e.g.
        ``stp_scale``: null = IEEE default timers) and widens the type
        to include ``"null"``.
        """
        item: Dict[str, Any] = {"type": self.json_type}
        if self.choices is not None:
            item["enum"] = list(self.choices)
        out: Dict[str, Any] = (
            {"type": "array", "items": item, "minItems": 1}
            if self.is_list else item)
        if self.default is None:
            out = {"anyOf": [out, {"type": "null"}]}
        if self.help:
            out["description"] = self.help
        out["default"] = copy.copy(self.default)
        return out

    def validate(self, value: Any, field_path: Optional[str] = None
                 ) -> Any:
        """Check one decoded-JSON *value* against this spec.

        Returns the value coerced to the param's Python shape (numbers
        to float for float params, sequences to lists) or raises
        :class:`SubmissionError` naming *field_path*.
        """
        path = field_path if field_path is not None else self.name
        if value is None:
            if self.default is None:
                return None
            raise SubmissionError(path, "null not allowed "
                                        f"(expected {self.json_type})")
        if self.is_list:
            if not isinstance(value, (list, tuple)):
                raise SubmissionError(
                    path, f"expected an array of {self.json_type}")
            if not value:
                raise SubmissionError(path, "array must be non-empty")
            return [self._validate_item(item, f"{path}[{i}]")
                    for i, item in enumerate(value)]
        return self._validate_item(value, path)

    def _validate_item(self, value: Any, path: str) -> Any:
        accepted = _ACCEPTS.get(self.json_type, (str,))
        if isinstance(value, bool) and self.json_type != "boolean":
            raise SubmissionError(
                path, f"expected {self.json_type}, got boolean")
        if not isinstance(value, accepted):
            raise SubmissionError(
                path, f"expected {self.json_type}, "
                      f"got {type(value).__name__}")
        if self.type is float:
            value = float(value)
        if self.choices is not None and value not in self.choices:
            raise SubmissionError(
                path, f"{value!r} not one of {list(self.choices)}")
        return value


def seeds_param(default: Sequence[int] = (0,)) -> Param:
    """The uniform ``seeds`` parameter every scenario declares."""
    return Param(name="seeds", type=int, nargs="+",
                 default=list(default), help="RNG seeds (one run per seed)",
                 sweep=False)


@dataclass(frozen=True)
class Scenario:
    """A registered experiment: param spec + run callable + adapters."""

    name: str
    title: str
    params: Tuple[Param, ...]
    #: ``run(**{p.name: value})`` -> result object (has ``.table()``).
    run: Callable[..., Any]
    #: Full stdout text for a single CLI run (defaults to ``table()``).
    render: Optional[Callable[[Any], str]] = None
    #: Machine-readable rows (defaults to ``result.records()``).
    rows: Optional[Callable[[Any], List[Dict[str, Any]]]] = None
    #: Row fields (beyond strings/bools) identifying a row when
    #: aggregating repeated seeds — e.g. a failure index.
    row_keys: Tuple[str, ...] = ()
    #: Param overrides for the fastest meaningful run (smoke tests).
    smoke: Dict[str, Any] = field(default_factory=dict)

    def param(self, name: str) -> Param:
        for param in self.params:
            if param.name == name:
                return param
        raise KeyError(f"{self.name}: unknown parameter {name!r}")

    def defaults(self) -> Dict[str, Any]:
        """A fresh copy of every parameter's default value."""
        return {p.name: copy.copy(p.default) for p in self.params}

    def bind(self, overrides: Optional[Dict[str, Any]] = None
             ) -> Dict[str, Any]:
        """Defaults merged with *overrides*; unknown names raise."""
        bound = self.defaults()
        for name, value in (overrides or {}).items():
            if name not in bound:
                raise KeyError(
                    f"{self.name}: unknown parameter {name!r} "
                    f"(has: {', '.join(sorted(bound))})")
            param = self.param(name)
            if param.is_list and isinstance(value, tuple):
                value = list(value)
            bound[name] = value
        return bound

    def execute(self, **overrides: Any) -> Any:
        """Run with defaults filled in: ``scenario.execute(probes=5)``."""
        return self.run(**self.bind(overrides))

    def report(self, result: Any) -> str:
        """The single-run stdout text (table plus any epilogue lines)."""
        if self.render is not None:
            return self.render(result)
        return result.table()

    def records(self, result: Any) -> List[Dict[str, Any]]:
        """Flat machine-readable rows for aggregation and artifacts."""
        if self.rows is not None:
            return self.rows(result)
        from repro.metrics.report import records
        return records(result)

    def schema(self) -> Dict[str, Any]:
        """This scenario's param spec as a JSON-schema object.

        Every parameter has a registry default, so none is required at
        the scenario level — a submission's required fields live in the
        job-envelope schema (:func:`submission_schema`).

        Scenarios with a protocol choice additionally carry a
        ``families`` section: the per-family config sub-schema
        (:meth:`repro.switching.base.BridgeFamily.describe`) of every
        family the scenario accepts.
        """
        out: Dict[str, Any] = {
            "type": "object",
            "title": self.name,
            "description": self.title,
            "properties": {p.name: p.schema() for p in self.params},
            "additionalProperties": False,
            "required": [],
        }
        choices: List[str] = []
        for param in self.params:
            if param.name in ("protocol", "protocols") and param.choices:
                choices = list(param.choices)
        if choices:
            from repro.switching import base
            out["families"] = {
                fam.name: fam.describe() for fam in base.all_families()
                if fam.name in choices}
        return out

    def validate_submission(self, overrides: Optional[Dict[str, Any]],
                            field_prefix: str = ""
                            ) -> Dict[str, Any]:
        """Check decoded-JSON *overrides* against this scenario's spec.

        Unknown names and type/choices mismatches raise
        :class:`SubmissionError` (with *field_prefix* prepended to the
        offending field path); valid values come back coerced to their
        Python shapes, ready for :meth:`bind`.
        """
        validated: Dict[str, Any] = {}
        for name, value in (overrides or {}).items():
            path = field_prefix + name
            try:
                param = self.param(name)
            except KeyError:
                raise SubmissionError(
                    path, f"unknown parameter of scenario "
                          f"{self.name!r} (has: "
                          f"{', '.join(p.name for p in self.params)})"
                ) from None
            validated[name] = param.validate(value, path)
        return validated


def register(scenario: Scenario) -> Scenario:
    """Add *scenario* to the registry (import-time self-registration)."""
    if scenario.name in _SCENARIOS:
        raise ValueError(f"duplicate scenario: {scenario.name}")
    names = [p.name for p in scenario.params]
    if len(set(names)) != len(names):
        raise ValueError(f"{scenario.name}: duplicate parameter names")
    if "seeds" not in names:
        raise ValueError(f"{scenario.name}: missing the uniform 'seeds' "
                         "parameter (use registry.seeds_param())")
    _SCENARIOS[scenario.name] = scenario
    return scenario


def load_all() -> None:
    """Import every experiment module so it self-registers (idempotent)."""
    global _loaded
    if _loaded:
        return
    import importlib
    for module in _MODULES:
        importlib.import_module(module)
    _loaded = True


def get(name: str) -> Scenario:
    load_all()
    try:
        return _SCENARIOS[name]
    except KeyError:
        raise KeyError(f"unknown scenario {name!r} "
                       f"(have: {', '.join(names())})") from None


def names() -> List[str]:
    load_all()
    ordered = [name for name in _ORDER if name in _SCENARIOS]
    ordered += [name for name in _SCENARIOS if name not in _ORDER]
    return ordered


def all_scenarios() -> List[Scenario]:
    return [_SCENARIOS[name] for name in names()]


def schema() -> Dict[str, Any]:
    """Every registered scenario's JSON schema, in presentation order.

    This is the payload of ``GET /v1/scenarios`` and the source of
    ``docs/API.md``'s parameter tables — both are generated from the
    same :class:`Param` specs the CLI parses, so none of the three
    surfaces can drift from the others.
    """
    load_all()
    from repro.switching import base
    return {
        "scenarios": [get(name).schema() for name in names()],
        "families": {fam.name: fam.describe()
                     for fam in base.all_families()},
        "submission": submission_schema(),
    }


def submission_schema() -> Dict[str, Any]:
    """The job envelope accepted by ``POST /v1/jobs``.

    ``scenario`` is the one required field; ``seeds`` and the ``set``
    sweep axes default exactly as ``repro sweep`` defaults them, so an
    HTTP submission and the equivalent CLI invocation expand to the
    same grid.
    """
    load_all()
    return {
        "type": "object",
        "title": "job",
        "description": "A sweep-grid submission: scenario x seeds x "
                       "set-axis values, mirroring `repro sweep`.",
        "properties": {
            "scenario": {
                "type": "string",
                "enum": names(),
                "description": "registered scenario to run",
            },
            "seeds": {
                "type": "array",
                "items": {"type": "integer"},
                "minItems": 1,
                "default": [0],
                "description": "RNG seeds: one run of every grid "
                               "point per seed",
            },
            "set": {
                "type": "object",
                "default": {},
                "description": "sweep axes: scenario parameter name "
                               "-> array of values to grid over "
                               "(`repro sweep --set name=v1,v2`)",
            },
            "jobs": {
                "type": "integer",
                "minimum": 1,
                "default": 1,
                "description": "worker processes for this job's cells "
                               "(capped by the server's --pool)",
            },
            "timeout": {
                "anyOf": [{"type": "number", "exclusiveMinimum": 0},
                          {"type": "null"}],
                "default": None,
                "description": "per-job wall-clock budget in seconds "
                               "(null = the server's --job-timeout)",
            },
            "retries": {
                "type": "integer",
                "minimum": 0,
                "maximum": 10,
                "default": 0,
                "description": "per-cell retry budget: re-run a "
                               "failed or crashed cell up to N extra "
                               "times with deterministic backoff "
                               "(`repro sweep --retries N`)",
            },
        },
        "additionalProperties": False,
        "required": ["scenario"],
    }


def seeded(run_one: Callable[..., Any],
           merge: Optional[Callable[[Any, Any], None]] = None
           ) -> Callable[..., Any]:
    """Adapt a single-seed ``run(seed=..., **kw)`` to the uniform
    ``seeds`` list parameter.

    Runs once per seed; with multiple seeds, later results are folded
    into the first with *merge* (default: concatenate ``result.rows``).
    """
    def fold(into: Any, extra: Any) -> None:
        into.rows.extend(extra.rows)

    combine = merge if merge is not None else fold

    def run(seeds: List[int], **kwargs: Any) -> Any:
        if not seeds:
            raise ValueError("seeds must be non-empty")
        results = [run_one(seed=seed, **kwargs) for seed in seeds]
        merged = results[0]
        for extra in results[1:]:
            combine(merged, extra)
        return merged

    return run


def protocols_param(default: Sequence[str], *, loop_safe_only: bool = False,
                    name: str = "protocols", nargs: Optional[str] = "+",
                    sweep: bool = True) -> Param:
    """The ``protocols`` parameter, derived from the family registry.

    Choices and the help string come from the registered
    :class:`~repro.switching.base.BridgeFamily` descriptors, so a newly
    registered family appears in every scenario's CLI/API surface
    without touching the scenario. ``loop_safe_only`` excludes families
    that melt down on loops (the plain learning switch) from scenarios
    whose topologies have them.
    """
    from repro.switching import base
    choices = base.family_names(loop_safe_only=loop_safe_only)
    help_text = ("bridge famil{y} to compare: "
                 .format(y="ies" if nargs == "+" else "y")
                 + ", ".join(choices))
    if loop_safe_only:
        help_text += " (loop-safe families only)"
    return Param(name=name, type=str,
                 default=list(default) if nargs == "+" else default,
                 nargs=nargs, choices=choices, help=help_text, sweep=sweep)


def protocol_specs(names: Iterable[str],
                   stp_scale: Optional[float] = None) -> List[Any]:
    """Map protocol *names* to :class:`ProtocolSpec` objects.

    ``stp_scale`` applies to the ``stp`` entry only (None = IEEE default
    timers) — each scenario passes whatever its pre-registry CLI used.
    """
    from repro.experiments.common import spec
    specs = []
    for name in names:
        if name == "stp" and stp_scale is not None:
            specs.append(spec("stp", stp_scale=stp_scale))
        else:
            specs.append(spec(name))
    return specs
