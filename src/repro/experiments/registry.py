"""Scenario registry: declarative experiment metadata.

Every experiment module declares a :class:`Scenario` — a name, a typed
parameter spec with defaults, a run callable and result adapters — and
self-registers at import time. Everything downstream is generated from
this one table:

* ``repro.cli`` builds its subcommands (flags, help, defaults) from the
  param specs instead of hand-rolled parser functions,
* ``repro.experiments.runner`` expands (scenario x seed x param) grids
  over it and executes the cells on a process pool,
* the smoke-test suite iterates every registered scenario at its
  declared smallest parameters.

Seeds are uniform by construction: every scenario declares a ``seeds``
parameter (a list of ints), so every subcommand accepts ``--seeds 0 1 2``
and the single-seed alias ``--seed N``. Scenarios whose underlying
``run()`` takes one seed are adapted with :func:`seeded`, which runs
once per seed and concatenates result rows.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, Iterable, List, Optional, Sequence,
                    Tuple)

#: Module-level registry, keyed by scenario name.
_SCENARIOS: Dict[str, "Scenario"] = {}

#: Canonical presentation order (CLI subcommands, listings). Scenarios
#: not named here are appended in registration order.
_ORDER = ("fig2", "fig3", "churn", "stretch", "loopfree", "proxy",
          "loadbalance", "ablations", "occupancy", "scale", "ping")

#: The experiment modules that self-register scenarios, in the order
#: their subcommands should appear.
_MODULES = (
    "repro.experiments.fig2_latency",
    "repro.experiments.fig3_repair",
    "repro.experiments.churn",
    "repro.experiments.stretch",
    "repro.experiments.loopfree",
    "repro.experiments.broadcast",
    "repro.experiments.loadbalance",
    "repro.experiments.ablations",
    "repro.experiments.occupancy",
    "repro.experiments.scale",
)

_loaded = False


@dataclass(frozen=True)
class Param:
    """One typed scenario parameter, mirrored as a CLI flag."""

    name: str
    type: Callable[[str], Any] = int
    default: Any = None
    nargs: Optional[str] = None
    choices: Optional[Tuple[Any, ...]] = None
    help: str = ""
    #: May be used as a sweep axis (``--set name=v1,v2``).
    sweep: bool = True

    @property
    def flag(self) -> str:
        return "--" + self.name.replace("_", "-")

    @property
    def is_list(self) -> bool:
        return self.nargs == "+"

    def parse(self, token: str) -> Any:
        """Coerce one textual value (a sweep-axis token) to this type."""
        value = self.type(token)
        if self.choices is not None and value not in self.choices:
            raise ValueError(
                f"--{self.name}: {value!r} not in {list(self.choices)}")
        return value


def seeds_param(default: Sequence[int] = (0,)) -> Param:
    """The uniform ``seeds`` parameter every scenario declares."""
    return Param(name="seeds", type=int, nargs="+",
                 default=list(default), help="RNG seeds (one run per seed)",
                 sweep=False)


@dataclass(frozen=True)
class Scenario:
    """A registered experiment: param spec + run callable + adapters."""

    name: str
    title: str
    params: Tuple[Param, ...]
    #: ``run(**{p.name: value})`` -> result object (has ``.table()``).
    run: Callable[..., Any]
    #: Full stdout text for a single CLI run (defaults to ``table()``).
    render: Optional[Callable[[Any], str]] = None
    #: Machine-readable rows (defaults to ``result.records()``).
    rows: Optional[Callable[[Any], List[Dict[str, Any]]]] = None
    #: Row fields (beyond strings/bools) identifying a row when
    #: aggregating repeated seeds — e.g. a failure index.
    row_keys: Tuple[str, ...] = ()
    #: Param overrides for the fastest meaningful run (smoke tests).
    smoke: Dict[str, Any] = field(default_factory=dict)

    def param(self, name: str) -> Param:
        for param in self.params:
            if param.name == name:
                return param
        raise KeyError(f"{self.name}: unknown parameter {name!r}")

    def defaults(self) -> Dict[str, Any]:
        """A fresh copy of every parameter's default value."""
        return {p.name: copy.copy(p.default) for p in self.params}

    def bind(self, overrides: Optional[Dict[str, Any]] = None
             ) -> Dict[str, Any]:
        """Defaults merged with *overrides*; unknown names raise."""
        bound = self.defaults()
        for name, value in (overrides or {}).items():
            if name not in bound:
                raise KeyError(
                    f"{self.name}: unknown parameter {name!r} "
                    f"(has: {', '.join(sorted(bound))})")
            param = self.param(name)
            if param.is_list and isinstance(value, tuple):
                value = list(value)
            bound[name] = value
        return bound

    def execute(self, **overrides: Any) -> Any:
        """Run with defaults filled in: ``scenario.execute(probes=5)``."""
        return self.run(**self.bind(overrides))

    def report(self, result: Any) -> str:
        """The single-run stdout text (table plus any epilogue lines)."""
        if self.render is not None:
            return self.render(result)
        return result.table()

    def records(self, result: Any) -> List[Dict[str, Any]]:
        """Flat machine-readable rows for aggregation and artifacts."""
        if self.rows is not None:
            return self.rows(result)
        from repro.metrics.report import records
        return records(result)


def register(scenario: Scenario) -> Scenario:
    """Add *scenario* to the registry (import-time self-registration)."""
    if scenario.name in _SCENARIOS:
        raise ValueError(f"duplicate scenario: {scenario.name}")
    names = [p.name for p in scenario.params]
    if len(set(names)) != len(names):
        raise ValueError(f"{scenario.name}: duplicate parameter names")
    if "seeds" not in names:
        raise ValueError(f"{scenario.name}: missing the uniform 'seeds' "
                         "parameter (use registry.seeds_param())")
    _SCENARIOS[scenario.name] = scenario
    return scenario


def load_all() -> None:
    """Import every experiment module so it self-registers (idempotent)."""
    global _loaded
    if _loaded:
        return
    import importlib
    for module in _MODULES:
        importlib.import_module(module)
    _loaded = True


def get(name: str) -> Scenario:
    load_all()
    try:
        return _SCENARIOS[name]
    except KeyError:
        raise KeyError(f"unknown scenario {name!r} "
                       f"(have: {', '.join(names())})") from None


def names() -> List[str]:
    load_all()
    ordered = [name for name in _ORDER if name in _SCENARIOS]
    ordered += [name for name in _SCENARIOS if name not in _ORDER]
    return ordered


def all_scenarios() -> List[Scenario]:
    return [_SCENARIOS[name] for name in names()]


def seeded(run_one: Callable[..., Any],
           merge: Optional[Callable[[Any, Any], None]] = None
           ) -> Callable[..., Any]:
    """Adapt a single-seed ``run(seed=..., **kw)`` to the uniform
    ``seeds`` list parameter.

    Runs once per seed; with multiple seeds, later results are folded
    into the first with *merge* (default: concatenate ``result.rows``).
    """
    def fold(into: Any, extra: Any) -> None:
        into.rows.extend(extra.rows)

    combine = merge if merge is not None else fold

    def run(seeds: List[int], **kwargs: Any) -> Any:
        if not seeds:
            raise ValueError("seeds must be non-empty")
        results = [run_one(seed=seed, **kwargs) for seed in seeds]
        merged = results[0]
        for extra in results[1:]:
            combine(merged, extra)
        return merged

    return run


def protocol_specs(names: Iterable[str],
                   stp_scale: Optional[float] = None) -> List[Any]:
    """Map protocol *names* to :class:`ProtocolSpec` objects.

    ``stp_scale`` applies to the ``stp`` entry only (None = IEEE default
    timers) — each scenario passes whatever its pre-registry CLI used.
    """
    from repro.experiments.common import spec
    specs = []
    for name in names:
        if name == "stp" and stp_scale is not None:
            specs.append(spec("stp", stp_scale=stp_scale))
        else:
            specs.append(spec(name))
    return specs
