"""Reproductions of the paper's experiments plus property checks and
ablations. See DESIGN.md §3 for the experiment index.

Each experiment module self-registers a scenario (name, typed param
spec, run callable) in :mod:`repro.experiments.registry`; the CLI and
the parallel sweep runner (:mod:`repro.experiments.runner`) are
generated from that table.
"""

from repro.experiments import (ablations, broadcast, fig2_latency,
                               fig3_repair, loadbalance, loopfree,
                               occupancy, registry, stretch)
from repro.experiments.common import (ProtocolSpec, WARMUP, build_and_warm,
                                      default_comparison, spec)

__all__ = [
    "ablations", "broadcast", "fig2_latency", "fig3_repair", "loadbalance",
    "loopfree", "occupancy", "registry", "stretch",
    "ProtocolSpec", "WARMUP", "build_and_warm", "default_comparison", "spec",
]
