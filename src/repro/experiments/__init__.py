"""Reproductions of the paper's experiments plus property checks and
ablations. See DESIGN.md §3 for the experiment index."""

from repro.experiments import (ablations, broadcast, fig2_latency,
                               fig3_repair, loadbalance, loopfree,
                               occupancy, stretch)
from repro.experiments.common import (ProtocolSpec, WARMUP, build_and_warm,
                                      default_comparison, spec)

__all__ = [
    "ablations", "broadcast", "fig2_latency", "fig3_repair", "loadbalance",
    "loopfree", "occupancy", "stretch",
    "ProtocolSpec", "WARMUP", "build_and_warm", "default_comparison", "spec",
]
