"""EXP-A2: load distribution and path diversity (paper §2.2).

Many flows cross a leaf/spine fabric. ARP-Path assigns each
source-destination pair whichever path its own ARP race won — under
concurrent load the races resolve differently per pair, spreading flows
over the fabric. STP funnels everything through the single spanning
tree. We measure bytes per fabric link: the coefficient of variation
and max/mean quantify the spread, and the used-link count shows the
blocked-link effect directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.experiments import registry
from repro.experiments.common import ProtocolSpec, build_and_warm, spec
from repro.frames.ethernet import ETHERTYPE_IPV4
from repro.metrics.load import LoadReport, fabric_load
from repro.metrics.report import format_table
from repro.topology.library import fat_tree
from repro.traffic.matrix import TrafficMatrix, all_pairs_arp_warmup


@dataclass
class LoadRow:
    protocol: str
    flows: int
    delivery_rate: float
    report: LoadReport


@dataclass
class LoadResult:
    rows: List[LoadRow] = field(default_factory=list)

    def table(self) -> str:
        headers = ["protocol", "flows", "delivered", "links_used",
                   "links_total", "load_cv", "max/mean"]
        body = [[r.protocol, r.flows, f"{r.delivery_rate:.3f}",
                 r.report.used_links, r.report.total_links, r.report.cv,
                 r.report.max_over_mean] for r in self.rows]
        return format_table(
            headers, body,
            title="EXP-A2 — load distribution over a leaf/spine fabric")

    def records(self) -> List[Dict[str, Any]]:
        return [{"protocol": r.protocol, "flows": r.flows,
                 "delivery_rate": r.delivery_rate,
                 "links_used": r.report.used_links,
                 "links_total": r.report.total_links,
                 "load_cv": r.report.cv,
                 "max_over_mean": r.report.max_over_mean}
                for r in self.rows]


def run_protocol(protocol: ProtocolSpec, pods: int = 4,
                 hosts_per_edge: int = 2, packets: int = 50,
                 interval: float = 5e-4, size: int = 1200,
                 seed: int = 0, resolve_under_load: bool = True) -> LoadRow:
    """Measure per-link load for one protocol.

    With *resolve_under_load* (the realistic case, and the default)
    flows start cold: their ARP races run while other flows are already
    loading the fabric, so serialization queues steer each pair's race
    to whichever spine is least busy — the mechanism behind the paper's
    "load distribution" claim. With it off, paths are established on an
    idle network first (pure topology-driven selection).
    """
    def topo(sim, factory):
        return fat_tree(sim, factory, pods=pods,
                        hosts_per_edge=hosts_per_edge, seed=seed)

    net = build_and_warm(topo, protocol, seed=seed, keep_trace_records=True)
    if not resolve_under_load:
        all_pairs_arp_warmup(net, spacing=5e-3)
    net.sim.tracer.reset()

    matrix = TrafficMatrix(net)
    matrix.all_pairs(packets=packets, interval=interval, size=size)
    matrix.start(stagger=2e-5)
    net.run(packets * interval + 2.0)

    return LoadRow(protocol=protocol.name, flows=len(matrix.flows),
                   delivery_rate=matrix.delivery_rate,
                   report=fabric_load(net, ethertype=ETHERTYPE_IPV4))


def run(pods: int = 4, hosts_per_edge: int = 2, packets: int = 30,
        seed: int = 0,
        protocols: Optional[List[ProtocolSpec]] = None) -> LoadResult:
    chosen = protocols if protocols is not None else [
        spec("arppath"), spec("stp"), spec("spb")]
    result = LoadResult()
    for protocol in chosen:
        result.rows.append(run_protocol(protocol, pods=pods,
                                        hosts_per_edge=hosts_per_edge,
                                        packets=packets, seed=seed))
    return result


def _loadbalance_scenario(seeds: List[int], pods: int, hosts_per_edge: int,
                          packets: int, protocols: List[str],
                          stp_scale: Optional[float]) -> LoadResult:
    chosen = registry.protocol_specs(protocols, stp_scale=stp_scale)
    return registry.seeded(
        lambda seed: run(pods=pods, hosts_per_edge=hosts_per_edge,
                         packets=packets, seed=seed,
                         protocols=chosen))(seeds)


registry.register(registry.Scenario(
    name="loadbalance",
    title="EXP-A2: load distribution over a fabric",
    params=(
        registry.Param("pods", int, 4,
                       help="edge (leaf) switches in the two-tier "
                            "fabric"),
        registry.Param("hosts_per_edge", int, 2,
                       help="hosts per edge switch"),
        registry.Param("packets", int, 50, help="packets per flow"),
        registry.protocols_param(["arppath", "stp", "spb"],
                                 loop_safe_only=True),
        registry.Param("stp_scale", float, None,
                       help="STP timer scale factor (omitted = IEEE "
                            "default timers)"),
        registry.seeds_param(),
    ),
    run=_loadbalance_scenario,
    smoke={"packets": 5, "protocols": ["arppath"]},
))
