"""EXP-C1: availability under sustained network churn.

The paper's headline resilience claim — Path Repair fixes paths without
a convergence protocol — is demonstrated in §3.2 with one-shot cable
pulls (:mod:`repro.experiments.fig3_repair`). This experiment
stress-tests the same claim the way resilience architectures are
actually evaluated: a *churn regime*. A probe stream runs between two
hosts while a scripted :class:`~repro.netsim.dynamics.EventTimeline`
flaps fabric links (Poisson arrivals, exponential down times), crashes
and power-cycles bridges (tables wiped), and migrates hosts between
edge bridges; the observable is the stream's availability — fraction
of the window traffic flowed, total downtime, and the repair-latency
distribution of the outages.

``scripted_failures`` additionally replays Fig. 3's deterministic cuts
of the *active* path, so a churn run with ``flap_rate=0`` reproduces
the static repair-latency numbers — the bridge between the two
experiments, and a regression anchor for both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.experiments import registry
from repro.experiments.common import ProtocolSpec
from repro.metrics.availability import Availability, measure_availability
from repro.metrics.paths import PathObserver
from repro.metrics.report import format_table
from repro.netsim.dynamics import EventTimeline
from repro.netsim.engine import Simulator
from repro.netsim.shard import ShardRuntime, ShardedSimulator, \
    derive_shard_seed, migration_lookahead
from repro.topology.library import (CHURN_TOPOLOGIES, LOOP_FREE_TOPOLOGIES,
                                    churn_topology)
from repro.topology.partition import partition_network
from repro.traffic.video import stream_between

#: Seconds the stream runs before churn starts (path establishment).
SETTLE = 2.0
#: Offset and spacing of the fig3-style scripted active-path cuts —
#: kept identical to fig3_repair's defaults so repair latencies match.
SCRIPTED_OFFSET = 1.0
SCRIPTED_SPACING = 2.0


@dataclass
class ChurnRow:
    """One protocol's behaviour under one churn schedule."""

    protocol: str
    topology: str
    flap_rate: float
    down_time: float
    duration: float
    crashes: int
    migrations: int
    scripted_failures: int
    flaps: int
    availability: Availability
    chunks_sent: int
    chunks_received: int
    duplicates: int
    repair_times: List[float] = field(default_factory=list)

    @property
    def delivery_rate(self) -> float:
        return self.chunks_received / self.chunks_sent \
            if self.chunks_sent else 0.0


@dataclass
class ChurnResult:
    rows: List[ChurnRow] = field(default_factory=list)

    def table(self) -> str:
        headers = ["protocol", "topology", "flaps", "availability",
                   "downtime_ms", "outages", "mttr_ms", "delivered",
                   "repairs", "repair_ms"]
        body = []
        for row in self.rows:
            avail = row.availability
            repairs = row.repair_times
            body.append([
                row.protocol, row.topology, row.flaps,
                f"{avail.availability:.4f}", avail.downtime * 1e3,
                avail.outages,
                avail.mttr * 1e3 if avail.repaired else None,
                f"{row.delivery_rate:.3f}", len(repairs),
                sum(repairs) / len(repairs) * 1e3 if repairs else None,
            ])
        return format_table(
            headers, body,
            title="Churn — stream availability under sustained dynamics "
                  "(flaps + crashes + migrations)")

    def records(self) -> List[Dict[str, Any]]:
        out = []
        for row in self.rows:
            repairs = row.repair_times
            record: Dict[str, Any] = {
                "protocol": row.protocol,
                "topology": row.topology,
                "flap_rate": row.flap_rate,
                "down_time": row.down_time,
                "duration": row.duration,
                "crashes": row.crashes,
                "migrations": row.migrations,
                "scripted_failures": row.scripted_failures,
                "flaps": row.flaps,
            }
            record.update(row.availability.as_row())
            record.update({
                "chunks_sent": row.chunks_sent,
                "chunks_received": row.chunks_received,
                "delivery_rate": row.delivery_rate,
                "duplicates": row.duplicates,
                "repair_count": len(repairs),
                "repair_latency_mean": (sum(repairs) / len(repairs)
                                        if repairs else None),
                "repair_latency_worst": max(repairs) if repairs else None,
            })
            out.append(record)
        return out


def run_protocol(protocol: ProtocolSpec, topology: str = "demo",
                 flap_rate: float = 0.2, down_time: float = 0.5,
                 duration: float = 20.0, crashes: int = 0,
                 migrations: int = 0, scripted_failures: int = 0,
                 fps: float = 25.0, seed: int = 0) -> ChurnRow:
    """Stream src→dst through *duration* seconds of scripted churn."""
    sim = Simulator(seed=seed, trace_hops=scripted_failures > 0,
                    keep_trace_records=False)
    net, src, dst = churn_topology(sim, protocol.factory, topology,
                                   seed=seed)
    net.run(protocol.warmup)
    observer = PathObserver(net, dst) if scripted_failures > 0 else None
    source, sink = stream_between(net.host(src), net.host(dst), fps=fps)
    source.start()
    net.run(SETTLE)  # the stream establishes its path

    start = net.sim.now
    timeline = EventTimeline(net)
    timeline.random_churn(seed=seed, start=start, duration=duration,
                          flap_rate=flap_rate, mean_down_time=down_time,
                          crashes=crashes, migrations=migrations)
    timeline.arm()

    def cut_active_path() -> None:
        """Fig. 3's cable pull: kill the path the stream is using.

        The cut goes through the timeline's hold_down so a random flap
        of the same link cannot silently restore carrier."""
        bridges = observer.last_bridge_path()
        if not bridges:
            return
        path = (src,) + bridges + (dst,)
        for a, b in zip(path, path[1:]):
            if a in net.hosts or b in net.hosts:
                continue
            link = net.link_between(a, b)
            if link.up:
                timeline.hold_down(link.name)
                return

    for index in range(scripted_failures):
        net.sim.at(start + SCRIPTED_OFFSET + index * SCRIPTED_SPACING,
                   cut_active_path)

    net.run(start + duration - net.sim.now)
    end = net.sim.now
    source.stop()
    net.run(1.0)  # drain in-flight chunks

    availability = measure_availability(sink.arrivals, 1.0 / fps,
                                        window_start=start, window_end=end)
    repair_times: List[float] = []
    for bridge in net.bridges.values():
        repair_times.extend(bridge.repair_events())
    return ChurnRow(protocol=protocol.name, topology=topology,
                    flap_rate=flap_rate, down_time=down_time,
                    duration=duration, crashes=timeline.counts["crashes"],
                    migrations=timeline.counts["migrations"],
                    scripted_failures=scripted_failures,
                    flaps=timeline.counts["flaps"],
                    availability=availability,
                    chunks_sent=source.sent, chunks_received=sink.received,
                    duplicates=sink.duplicates, repair_times=repair_times)


def _churn_shard_worker(shard_id: int, shard_count: int, endpoint,
                        protocol_name: str, stp_scale: float, topology: str,
                        flap_rate: float, down_time: float, duration: float,
                        crashes: int, migrations: int, fps: float,
                        seed: int) -> Dict[str, Any]:
    """One shard's portion of :func:`run_protocol` (run_protocol_sharded).

    The churn timeline is *replicated*: every worker arms the full
    schedule and replays every flap, crash and migration against its
    own replica topology, so link state and wiring stay globally
    consistent without any coordination — only the churn schedule's
    determinism (a pure function of wiring and seed) makes this sound.
    Node-level actions stay owner-only: the source starts and stops on
    the shard owning the source host; the sink counts arrivals on the
    shard owning the destination.
    """
    protocol = registry.protocol_specs([protocol_name],
                                       stp_scale=stp_scale)[0]
    sim = Simulator(seed=derive_shard_seed(seed, shard_id),
                    keep_trace_records=False)
    net, src, dst = churn_topology(sim, protocol.factory, topology,
                                   seed=seed)
    runtime = ShardRuntime(sim, shard_id, endpoint)
    plan = partition_network(net, shard_count)
    # A migration can make any host link a cut link, so the plan's
    # static cut-latency lookahead is only valid while hosts sit still.
    lookahead = migration_lookahead(net) if migrations > 0 else None
    runtime.adopt(net, plan, lookahead=lookahead)
    net.start()
    runtime.run_for(protocol.warmup)
    source, sink = stream_between(net.host(src), net.host(dst), fps=fps)
    if runtime.owns(src):
        source.start()
    runtime.run_for(SETTLE)

    start = sim.now
    timeline = EventTimeline(net)
    timeline.random_churn(seed=seed, start=start, duration=duration,
                          flap_rate=flap_rate, mean_down_time=down_time,
                          crashes=crashes, migrations=migrations)
    timeline.arm()
    runtime.run_until(start + duration)
    end = sim.now
    if runtime.owns(src):
        source.stop()
    runtime.run_for(1.0)

    availability = None
    if runtime.owns(dst):
        availability = measure_availability(sink.arrivals, 1.0 / fps,
                                            window_start=start,
                                            window_end=end)
    return {
        "availability": availability,
        "chunks_sent": source.sent if runtime.owns(src) else 0,
        "chunks_received": sink.received if runtime.owns(dst) else 0,
        "duplicates": sink.duplicates if runtime.owns(dst) else 0,
        # Keyed by name so the merge can restore the global
        # net.bridges order the single-process row concatenates in.
        "repair_times": {name: bridge.repair_events()
                         for name, bridge in net.bridges.items()
                         if runtime.owns(name)},
        "bridge_order": list(net.bridges),
        "counts": dict(timeline.counts),
    }


def run_protocol_sharded(protocol: ProtocolSpec, topology: str = "demo",
                         flap_rate: float = 0.2, down_time: float = 0.5,
                         duration: float = 20.0, crashes: int = 0,
                         migrations: int = 0, fps: float = 25.0,
                         seed: int = 0, shards: int = 2,
                         stp_scale: float = 0.1,
                         mode: str = "auto") -> ChurnRow:
    """:func:`run_protocol` across *shards* engines, byte-identically.

    ``scripted_failures`` is unsupported sharded (its PathObserver
    needs hop tracing, a whole-simulation observable) — :func:`run`
    rejects that combination before dispatching here. ``shards=1``
    short-circuits to :func:`run_protocol`.
    """
    if shards == 1:
        return run_protocol(protocol, topology=topology,
                            flap_rate=flap_rate, down_time=down_time,
                            duration=duration, crashes=crashes,
                            migrations=migrations, fps=fps, seed=seed)
    results = ShardedSimulator(shards, mode=mode).run(
        _churn_shard_worker, protocol.key or protocol.name, stp_scale,
        topology, flap_rate, down_time, duration, crashes, migrations,
        fps, seed)
    availability = next(result["availability"] for result in results
                        if result["availability"] is not None)
    merged_repairs: Dict[str, List[float]] = {}
    for result in results:
        merged_repairs.update(result["repair_times"])
    repair_times = [value for name in results[0]["bridge_order"]
                    for value in merged_repairs.get(name, ())]
    counts = results[0]["counts"]
    return ChurnRow(protocol=protocol.name, topology=topology,
                    flap_rate=flap_rate, down_time=down_time,
                    duration=duration, crashes=counts["crashes"],
                    migrations=counts["migrations"],
                    scripted_failures=0, flaps=counts["flaps"],
                    availability=availability,
                    chunks_sent=sum(result["chunks_sent"]
                                    for result in results),
                    chunks_received=sum(result["chunks_received"]
                                        for result in results),
                    duplicates=sum(result["duplicates"]
                                   for result in results),
                    repair_times=repair_times)


def run(topology: str = "demo",
        protocols: Optional[List[str]] = None, flap_rate: float = 0.2,
        down_time: float = 0.5, duration: float = 20.0, crashes: int = 0,
        migrations: int = 0, scripted_failures: int = 0, fps: float = 25.0,
        stp_scale: float = 0.1, shards: int = 1,
        seed: int = 0) -> ChurnResult:
    """The churn comparison across bridge families.

    A plain learning switch storms on any wiring with redundant paths,
    so requesting it on a loopy topology is refused up front. ``shards``
    splits every run's simulation across that many engines
    (:func:`run_protocol_sharded`); rows are byte-identical at any
    shard count. Scripted failures need whole-simulation hop tracing,
    which no shard has, so that combination is refused.
    """
    names = protocols if protocols is not None else ["arppath", "stp",
                                                     "spb"]
    if "learning" in names and topology not in LOOP_FREE_TOPOLOGIES:
        raise ValueError(
            f"protocol 'learning' storms on loopy topologies; use one of "
            f"{', '.join(LOOP_FREE_TOPOLOGIES)} (got {topology!r})")
    if scripted_failures > 0 and shards > 1:
        raise ValueError(
            "scripted_failures needs whole-simulation hop tracing (the "
            "PathObserver); run it with shards=1")
    chosen = registry.protocol_specs(names, stp_scale=stp_scale)
    result = ChurnResult()
    for protocol in chosen:
        if shards == 1:
            row = run_protocol(
                protocol, topology=topology, flap_rate=flap_rate,
                down_time=down_time, duration=duration, crashes=crashes,
                migrations=migrations,
                scripted_failures=scripted_failures, fps=fps, seed=seed)
        else:
            row = run_protocol_sharded(
                protocol, topology=topology, flap_rate=flap_rate,
                down_time=down_time, duration=duration, crashes=crashes,
                migrations=migrations, fps=fps, seed=seed, shards=shards,
                stp_scale=stp_scale)
        result.rows.append(row)
    return result


def _churn_scenario(seeds: List[int], topology: str, protocols: List[str],
                    flap_rate: float, down_time: float, duration: float,
                    crashes: int, migrations: int, scripted_failures: int,
                    fps: float, stp_scale: float, shards: int) -> ChurnResult:
    return registry.seeded(
        lambda seed: run(topology=topology, protocols=protocols,
                         flap_rate=flap_rate, down_time=down_time,
                         duration=duration, crashes=crashes,
                         migrations=migrations,
                         scripted_failures=scripted_failures, fps=fps,
                         stp_scale=stp_scale, shards=shards,
                         seed=seed))(seeds)


registry.register(registry.Scenario(
    name="churn",
    title="Churn: availability under sustained link/bridge/host dynamics",
    params=(
        registry.Param("topology", str, "demo", choices=CHURN_TOPOLOGIES,
                       help="named wiring (demo, line, ring, grid)"),
        registry.protocols_param(["arppath", "stp", "spb"]),
        registry.Param("flap_rate", float, 0.2,
                       help="fabric link flaps per second (Poisson)"),
        registry.Param("down_time", float, 0.5,
                       help="mean seconds a flapped link stays down"),
        registry.Param("duration", float, 20.0,
                       help="measurement window seconds"),
        registry.Param("crashes", int, 0,
                       help="bridge crash/restart cycles (tables wiped)"),
        registry.Param("migrations", int, 0,
                       help="host migrations between edge bridges"),
        registry.Param("scripted_failures", int, 0,
                       help="fig3-style deterministic cuts of the probe "
                            "stream's active path, replayed on top of "
                            "the Poisson churn (needs shards=1)"),
        registry.Param("fps", float, 25.0,
                       help="probe stream rate in frames per second"),
        registry.Param("stp_scale", float, 0.1,
                       help="STP timer scale factor (1.0 = IEEE "
                            "default timers)"),
        registry.Param("shards", int, 1,
                       help="engines per run (conservative PDES; rows "
                            "are byte-identical at any shard count)"),
        registry.seeds_param(),
    ),
    run=_churn_scenario,
    row_keys=("topology", "flap_rate", "down_time", "duration", "crashes",
              "migrations", "scripted_failures"),
    smoke={"duration": 2.0, "protocols": ["arppath"], "flap_rate": 0.5},
))
