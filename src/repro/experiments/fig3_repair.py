"""EXP-F3: Path Repair under successive link failures (paper §3.2, Fig. 3).

A video stream runs from host A to host B across the four demo bridges;
links *on the stream's active path* fail one after another — exactly the
demo's cable pulls. The active path is observed live (per protocol, via
frame hop traces), so each failure hits whatever path the protocol is
currently using.

For ARP-Path the PathFail/PathRequest/PathReply exchange restores the
path in well under one frame interval; for STP the stream stalls for the
reconvergence time (max-age expiry plus two forward delays — tens of
seconds at IEEE defaults, so the comparison runs STP at scaled timers
and reports the scale alongside).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.experiments import registry
from repro.experiments.common import ProtocolSpec, build_and_warm, spec
from repro.metrics.convergence import Recovery, recoveries_for_failures
from repro.metrics.paths import PathObserver
from repro.metrics.report import format_table
from repro.topology.library import DemoParams, netfpga_demo
from repro.traffic.video import stream_between


@dataclass
class FailureOutcome:
    """One injected failure and how the stream fared."""

    link: Optional[str]
    fail_time: float
    recovery: Optional[Recovery]

    @property
    def outage(self) -> Optional[float]:
        return self.recovery.outage if self.recovery else None

    @property
    def chunks_lost(self) -> Optional[int]:
        return self.recovery.packets_lost if self.recovery else None


@dataclass
class ProtocolRepair:
    """One protocol's behaviour across the failure script."""

    protocol: str
    outcomes: List[FailureOutcome]
    chunks_sent: int
    chunks_received: int
    duplicates: int
    bridge_repair_times: List[float] = field(default_factory=list)

    @property
    def delivery_rate(self) -> float:
        return self.chunks_received / self.chunks_sent if self.chunks_sent \
            else 0.0


@dataclass
class Fig3Result:
    rows: List[ProtocolRepair] = field(default_factory=list)

    def table(self) -> str:
        headers = ["protocol", "failure#", "link", "outage_ms",
                   "chunks_lost", "delivered"]
        body = []
        for row in self.rows:
            for index, outcome in enumerate(row.outcomes, start=1):
                outage_ms = (outcome.outage * 1e3
                             if outcome.outage is not None else None)
                body.append([row.protocol, index, outcome.link or "-",
                             outage_ms, outcome.chunks_lost,
                             f"{row.delivery_rate:.3f}"])
        return format_table(
            headers, body,
            title="Fig.3 — stream disruption per link failure "
                  "(failures hit the active path)")

    def records(self) -> List[Dict[str, Any]]:
        out = []
        for row in self.rows:
            for index, outcome in enumerate(row.outcomes, start=1):
                out.append({"protocol": row.protocol,
                            "failure_index": index,
                            "link": outcome.link,
                            "outage": outcome.outage,
                            "chunks_lost": outcome.chunks_lost,
                            "delivery_rate": row.delivery_rate,
                            "duplicates": row.duplicates})
        return out


def run_protocol(protocol: ProtocolSpec, failures: int = 2,
                 params: DemoParams = DemoParams(), fps: float = 25.0,
                 failure_spacing: float = 2.0, seed: int = 0,
                 settle: float = 2.0) -> ProtocolRepair:
    """Stream A→B and successively fail the path's first fabric link.

    At each failure instant the stream's current bridge path is read
    from the hop trace of the last delivered chunk, and the first
    still-up bridge-to-bridge link on it is cut — the simulated
    equivalent of pulling the cable the video is flowing through.
    """
    net = build_and_warm(netfpga_demo, protocol, seed=seed, trace_hops=True,
                         keep_trace_records=False, params=params)
    observer = PathObserver(net, "B")
    source, sink = stream_between(net.host("A"), net.host("B"), fps=fps)
    source.start()
    net.run(settle)  # stream establishes its path

    failed: List[Optional[str]] = []
    fail_times: List[float] = []

    def cut_active_path() -> None:
        fail_times.append(net.sim.now)
        bridges = observer.last_bridge_path()
        if not bridges:
            failed.append(None)
            return
        path = ("A",) + bridges + ("B",)
        for a, b in zip(path, path[1:]):
            if a in net.hosts or b in net.hosts:
                continue
            link = net.link_between(a, b)
            if link.up:
                link.take_down()
                failed.append(link.name)
                return
        failed.append(None)

    start = net.sim.now + 1.0
    for index in range(failures):
        net.sim.at(start + index * failure_spacing, cut_active_path)
    horizon = start + failures * failure_spacing + 2.0
    net.run(horizon - net.sim.now)
    source.stop()
    net.run(1.0)

    recoveries = recoveries_for_failures(sink.arrivals, fail_times,
                                         send_interval=1.0 / fps)
    outcomes = [FailureOutcome(link=link, fail_time=when, recovery=rec)
                for link, when, rec in zip(failed, fail_times, recoveries)]
    repair_times: List[float] = []
    for bridge in net.bridges.values():
        repair_times.extend(bridge.repair_events())
    return ProtocolRepair(protocol=protocol.name, outcomes=outcomes,
                          chunks_sent=source.sent,
                          chunks_received=sink.received,
                          duplicates=sink.duplicates,
                          bridge_repair_times=repair_times)


def run(failures: int = 2, params: DemoParams = DemoParams(),
        fps: float = 25.0, failure_spacing: float = 2.0, seed: int = 0,
        stp_scale: float = 0.1,
        protocols: Optional[List[ProtocolSpec]] = None) -> Fig3Result:
    """The Figure 3 comparison.

    STP runs with scaled timers (default 10x faster) so one run stays
    short; its outages scale linearly with the factor, and
    EXPERIMENTS.md reports both measured and implied default-timer
    numbers.
    """
    chosen = protocols if protocols is not None else [
        spec("arppath"),
        spec("stp", stp_scale=stp_scale),
    ]
    result = Fig3Result()
    for protocol in chosen:
        # STP reconvergence needs max_age + 2*forward_delay between
        # failures (plus margin) so outages don't overlap.
        spacing = failure_spacing
        if protocol.name.startswith("stp"):
            spacing = max(failure_spacing, 60.0 * stp_scale)
        result.rows.append(run_protocol(
            protocol, failures=failures, params=params, fps=fps,
            failure_spacing=spacing, seed=seed))
    return result


def _fig3_scenario(seeds: List[int], failures: int, fps: float,
                   failure_spacing: float, stp_scale: float,
                   protocols: List[str]) -> Fig3Result:
    chosen = registry.protocol_specs(protocols, stp_scale=stp_scale)
    return registry.seeded(
        lambda seed: run(failures=failures, fps=fps,
                         failure_spacing=failure_spacing, seed=seed,
                         stp_scale=stp_scale, protocols=chosen))(seeds)


registry.register(registry.Scenario(
    name="fig3",
    title="Fig. 3: path repair under successive failures",
    params=(
        registry.Param("failures", int, 2, help="successive link failures"),
        registry.Param("fps", float, 25.0,
                       help="video stream rate in frames per second"),
        registry.Param("failure_spacing", float, 2.0,
                       help="seconds between failures (STP runs use "
                            "max(this, reconvergence time))"),
        registry.Param("stp_scale", float, 0.1,
                       help="STP timer scale factor (1.0 = IEEE "
                            "default timers)"),
        registry.protocols_param(["arppath", "stp"], loop_safe_only=True),
        registry.seeds_param(),
    ),
    run=_fig3_scenario,
    row_keys=("failure_index",),
    smoke={"failures": 1, "protocols": ["arppath"]},
))
