"""EXP-A3: ablations on the ARP-Path design knobs.

Three sweeps over the design decisions DESIGN.md calls out:

* **Lock timeout** — too short and slow race copies out-live the guard
  (risking re-lock churn); long values only delay re-discovery. We
  measure discovery success and filtered-copy counts across timeouts.
* **Repair buffer** — with the buffer disabled, frames arriving while a
  repair is racing are lost; with it, they are forwarded on completion.
* **Hellos vs static roles** — port classification off (with
  cache-answered repairs) must still repair, at the cost of answering
  from possibly-stale mid-fabric entries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.core.config import ArpPathConfig
from repro.experiments import registry
from repro.experiments.common import build_and_warm, spec
from repro.failures.injector import FailureInjector
from repro.metrics.convergence import recovery_from_arrivals
from repro.metrics.report import format_table
from repro.topology.library import DemoParams, netfpga_demo
from repro.traffic.ping import PingSeries
from repro.traffic.video import stream_between


@dataclass
class LockTimeoutRow:
    lock_timeout: float
    rtt_mean: Optional[float]
    losses: int
    relocks: int
    discovery_filtered: int


@dataclass
class RepairBufferRow:
    buffer_size: int
    outage_ms: Optional[float]
    chunks_lost: Optional[int]
    buffered: int
    buffer_drops: int


@dataclass
class HelloRow:
    hello_enabled: bool
    static_roles: bool
    repaired: bool
    outage_ms: Optional[float]


@dataclass
class AblationResult:
    lock_rows: List[LockTimeoutRow] = field(default_factory=list)
    buffer_rows: List[RepairBufferRow] = field(default_factory=list)
    hello_rows: List[HelloRow] = field(default_factory=list)

    def table(self) -> str:
        parts = []
        parts.append(format_table(
            ["lock_timeout_s", "rtt_mean_us", "losses", "relocks",
             "filtered"],
            [[r.lock_timeout,
              r.rtt_mean * 1e6 if r.rtt_mean is not None else None,
              r.losses, r.relocks, r.discovery_filtered]
             for r in self.lock_rows],
            title="EXP-A3a — lock timeout sweep"))
        parts.append(format_table(
            ["buffer_size", "outage_ms", "chunks_lost", "buffered",
             "buffer_drops"],
            [[r.buffer_size, r.outage_ms, r.chunks_lost, r.buffered,
              r.buffer_drops] for r in self.buffer_rows],
            title="EXP-A3b — repair buffer"))
        parts.append(format_table(
            ["hellos", "static_roles", "repaired", "outage_ms"],
            [[r.hello_enabled, r.static_roles, r.repaired, r.outage_ms]
             for r in self.hello_rows],
            title="EXP-A3c — port classification"))
        return "\n\n".join(parts)

    def records(self) -> List[Dict[str, Any]]:
        out: List[Dict[str, Any]] = []
        for lock in self.lock_rows:
            out.append({"sweep": "lock_timeout",
                        "lock_timeout": lock.lock_timeout,
                        "rtt_mean": lock.rtt_mean, "losses": lock.losses,
                        "relocks": lock.relocks,
                        "discovery_filtered": lock.discovery_filtered})
        for buf in self.buffer_rows:
            out.append({"sweep": "repair_buffer",
                        "buffer_size": buf.buffer_size,
                        "outage_ms": buf.outage_ms,
                        "chunks_lost": buf.chunks_lost,
                        "buffered": buf.buffered,
                        "buffer_drops": buf.buffer_drops})
        for hello in self.hello_rows:
            out.append({"sweep": "hello",
                        "hello_enabled": hello.hello_enabled,
                        "static_roles": hello.static_roles,
                        "repaired": hello.repaired,
                        "outage_ms": hello.outage_ms})
        return out


def sweep_lock_timeout(timeouts: List[float] = [0.0002, 0.002, 0.8, 5.0],
                       seed: int = 0) -> List[LockTimeoutRow]:
    """Ping across the demo topology under each lock timeout.

    The demo's slowest race copy crosses the 500 µs link, so a lock
    timeout below that lets the losing copy re-lock after the guard
    expires (visible as relocks); above it the race resolves cleanly.
    """
    rows = []
    for timeout in timeouts:
        config = ArpPathConfig(lock_timeout=timeout)
        protocol = spec("arppath", arppath_config=config)
        net = build_and_warm(netfpga_demo, protocol, seed=seed,
                             keep_trace_records=False)
        series = PingSeries(net.host("A"), net.host("B").ip, count=10,
                            interval=0.2)
        series.start()
        net.run(4.0)
        series.finalize()
        relocks = sum(b.protocol_counters().get("relocks", 0)
                      for b in net.bridges.values())
        filtered = sum(b.protocol_counters().get("discovery_filtered", 0)
                       for b in net.bridges.values())
        rtts = series.rtts
        rows.append(LockTimeoutRow(
            lock_timeout=timeout,
            rtt_mean=sum(rtts) / len(rtts) if rtts else None,
            losses=series.losses, relocks=relocks,
            discovery_filtered=filtered))
    return rows


def _run_repair_scenario(config: ArpPathConfig, seed: int = 0,
                         static_roles: bool = False):
    """Stream A→B, kill the active path's first fabric link once."""
    protocol = spec("arppath", arppath_config=config)

    def topo(sim, factory):
        net = netfpga_demo(sim, factory)
        if static_roles:
            net.mark_static_roles()
        return net

    net = build_and_warm(topo, protocol, seed=seed,
                         keep_trace_records=False)
    source, sink = stream_between(net.host("A"), net.host("B"), fps=100.0)
    source.start()
    net.run(1.0)
    injector = FailureInjector(net)
    fail_at = net.sim.now + 0.5
    injector.link_down("NF1-NF2", fail_at)
    net.run(3.0)
    source.stop()
    net.run(0.5)
    recovery = recovery_from_arrivals(sink.arrivals, fail_at,
                                      send_interval=1 / 100.0)
    return net, recovery


def sweep_repair_buffer(sizes: List[int] = [0, 4, 32],
                        seed: int = 0) -> List[RepairBufferRow]:
    rows = []
    for size in sizes:
        config = ArpPathConfig(repair_buffer_size=size)
        net, recovery = _run_repair_scenario(config, seed=seed)
        buffered = sum(b.protocol_counters().get("frames_buffered", 0)
                       for b in net.bridges.values())
        drops = sum(b.protocol_counters().get("drops_buffer", 0)
                    for b in net.bridges.values())
        rows.append(RepairBufferRow(
            buffer_size=size,
            outage_ms=recovery.outage * 1e3 if recovery else None,
            chunks_lost=recovery.packets_lost if recovery else None,
            buffered=buffered, buffer_drops=drops))
    return rows


def sweep_hello(seed: int = 0) -> List[HelloRow]:
    """Port classification: hello-based (zero-conf) vs static (NetFPGA)
    vs none — repair needs *some* way to know where the hosts are."""
    cases = [
        # (config, static_roles)
        (ArpPathConfig(hello_enabled=True), False),
        (ArpPathConfig(hello_enabled=False), True),
        (ArpPathConfig(hello_enabled=False,
                       repair_reply_from_cache=True), False),
    ]
    rows = []
    for config, static_roles in cases:
        net, recovery = _run_repair_scenario(config, seed=seed,
                                             static_roles=static_roles)
        completed = sum(b.protocol_counters().get("repairs_completed", 0)
                        for b in net.bridges.values())
        rows.append(HelloRow(
            hello_enabled=config.hello_enabled,
            static_roles=static_roles,
            repaired=completed > 0 and recovery is not None,
            outage_ms=recovery.outage * 1e3 if recovery else None))
    return rows


def run(seed: int = 0,
        lock_timeouts: List[float] = [0.0002, 0.002, 0.8, 5.0],
        buffer_sizes: List[int] = [0, 4, 32]) -> AblationResult:
    return AblationResult(
        lock_rows=sweep_lock_timeout(timeouts=list(lock_timeouts),
                                     seed=seed),
        buffer_rows=sweep_repair_buffer(sizes=list(buffer_sizes),
                                        seed=seed),
        hello_rows=sweep_hello(seed=seed))


def _merge_ablations(into: AblationResult, extra: AblationResult) -> None:
    into.lock_rows.extend(extra.lock_rows)
    into.buffer_rows.extend(extra.buffer_rows)
    into.hello_rows.extend(extra.hello_rows)


def _ablations_scenario(seeds: List[int], lock_timeouts: List[float],
                        buffer_sizes: List[int]) -> AblationResult:
    return registry.seeded(
        lambda seed: run(seed=seed, lock_timeouts=lock_timeouts,
                         buffer_sizes=buffer_sizes),
        merge=_merge_ablations)(seeds)


registry.register(registry.Scenario(
    name="ablations",
    title="EXP-A3: design-knob sweeps",
    params=(
        registry.Param("lock_timeouts", float, [0.0002, 0.002, 0.8, 5.0],
                       nargs="+",
                       help="locked-table lock timeouts to sweep, in "
                            "seconds"),
        registry.Param("buffer_sizes", int, [0, 4, 32], nargs="+",
                       help="repair buffer capacities to sweep, in "
                            "frames (0 = drop while repairing)"),
        registry.seeds_param(),
    ),
    run=_ablations_scenario,
    row_keys=("lock_timeout", "buffer_size"),
    smoke={"lock_timeouts": [0.8], "buffer_sizes": [0]},
))
