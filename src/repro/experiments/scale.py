"""EXP-X1: scalability — state, overhead and convergence vs network size.

The paper's §2.2 argues ARP-Path bridging stays viable as the network
grows: per-bridge state follows *active communication* (not topology
size), discovery overhead is one race per conversation, and path setup
needs no convergence protocol. Every other experiment in this repo runs
at a fixed, small size, so none of them can show those claims *scaling*.
This experiment makes topology size a first-class axis: it sweeps
grids, fat trees and random graphs from ~16 up to 200+ bridges across
the bridge families and measures, per (kind, size, protocol) cell:

* **table occupancy per bridge** — peak and mean dynamic state
  (:func:`repro.experiments.occupancy.bridge_state_entries`), the
  quantity §2.2 predicts stays flat for ARP-Path while link-state grows
  with the network;
* **broadcast/discovery overhead** — link-level frames transmitted per
  payload delivered to a host, covering the ARP races, control
  protocol and flooding a cold conversation costs;
* **convergence time** — cold-path discovery latency: the time from
  the first probe until its reply arrives (ARP race + path lock);
* **peak engine memory** — the simulator's logical footprint (pending
  events + wheel timers) sampled on the timer wheel by
  :class:`repro.netsim.meminfo.MemorySampler`. Process RSS is
  machine-dependent and deliberately *not* in the rows (the sweep
  determinism invariant); ``benchmarks/bench_scale.py`` records it.

Traffic is injected with :meth:`Network.announce_hosts`-style bulk
scheduling (:meth:`~repro.netsim.engine.Simulator.schedule_bulk`), so
building a 200-bridge cell stays cheap.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.experiments import registry
from repro.experiments.common import ProtocolSpec
from repro.experiments.occupancy import bridge_state_entries
from repro.frames.ethernet import ETHERTYPE_ARP
from repro.switching import base
from repro.metrics.report import format_table
from repro.netsim import tracer as trc
from repro.netsim.engine import Simulator
from repro.netsim.meminfo import MemorySampler
from repro.netsim.shard import ShardRuntime, ShardedSimulator, \
    derive_shard_seed
from repro.topology.library import SCALE_TOPOLOGIES, scale_topology
from repro.topology.partition import partition_network
from repro.traffic.matrix import TrafficMatrix

#: Wirings without redundant paths — the only ones a plain learning
#: switch survives (mirrors the churn scenario's gate).
LOOP_FREE_SCALE = ("line",)

#: Spacing between successive probe rounds of one pair (seconds).
PROBE_SPACING = 10e-3
#: Stagger between pairs' first probes (seconds).
PAIR_STAGGER = 1e-3
#: Drain budget after the last scheduled probe (seconds).
DRAIN = 1.0
#: Stagger between population flow starts (seconds).
POP_STAGGER = 1e-4
#: Simulated window for the population flow phase: covers the longest
#: elephant (40 packets x 1 ms) plus one full ARP retry interval.
POP_WINDOW = 2.0


@dataclass
class ScaleRow:
    """One (protocol, kind, size) cell of the size sweep."""

    protocol: str
    kind: str
    size: int
    bridges: int
    links: int
    hosts: int
    convergence_s: Optional[float]
    frames_sent: int
    arp_frames: int
    control_frames: int
    payloads_delivered: int
    peak_state: int
    mean_state: float
    peak_pending_events: int
    peak_wheel_timers: int
    probes_sent: int
    probes_answered: int
    events_processed: int
    #: Simulated endpoints (hosts + population members); equals
    #: ``hosts`` unless the cell ran with ``endpoints_per_port`` > 1.
    endpoints: int = 0

    def __post_init__(self):
        if not self.endpoints:
            self.endpoints = self.hosts

    @property
    def frames_per_payload(self) -> float:
        """Link transmissions per payload delivered to a host."""
        return self.frames_sent / max(self.payloads_delivered, 1)

    @property
    def events_per_payload(self) -> float:
        """Engine events burnt per payload delivered to a host.

        The event-economy counterpart of :attr:`frames_per_payload`:
        deterministic (event scheduling is part of the simulation), so
        CI's ``--jobs`` byte-parity gate also pins the event count, and
        event-count regressions in the dataplane fast path show up as
        row diffs, not just wall-clock noise.
        """
        return self.events_processed / max(self.payloads_delivered, 1)


@dataclass
class ScaleResult:
    rows: List[ScaleRow] = field(default_factory=list)

    def table(self) -> str:
        headers = ["protocol", "kind", "bridges", "links",
                   "convergence_ms", "frames/payload", "arp_frames",
                   "peak_state", "mean_state", "peak_pending"]
        body = []
        for row in self.rows:
            body.append([
                row.protocol, row.kind, row.bridges, row.links,
                row.convergence_s * 1e3
                if row.convergence_s is not None else None,
                f"{row.frames_per_payload:.1f}", row.arp_frames,
                row.peak_state, f"{row.mean_state:.1f}",
                row.peak_pending_events,
            ])
        return format_table(
            headers, body,
            title="EXP-X1 — scalability: state, overhead and convergence "
                  "vs network size")

    def records(self) -> List[Dict[str, Any]]:
        out = []
        for row in self.rows:
            out.append({
                "protocol": row.protocol,
                "kind": row.kind,
                "size": row.size,
                "bridges": row.bridges,
                "links": row.links,
                "hosts": row.hosts,
                "endpoints": row.endpoints,
                "convergence_ms": row.convergence_s * 1e3
                if row.convergence_s is not None else None,
                "frames_per_payload": row.frames_per_payload,
                "frames_sent": row.frames_sent,
                "arp_frames": row.arp_frames,
                "control_frames": row.control_frames,
                "payloads_delivered": row.payloads_delivered,
                "peak_state": row.peak_state,
                "mean_state": row.mean_state,
                "peak_pending_events": row.peak_pending_events,
                "peak_wheel_timers": row.peak_wheel_timers,
                "probes_sent": row.probes_sent,
                "probes_answered": row.probes_answered,
                "events_processed": row.events_processed,
                "events_per_payload": row.events_per_payload,
            })
        return out


def _natural(names) -> List[str]:
    """Host names in natural (H0, H1, ..., H10) order."""
    return sorted(names, key=lambda name: (len(name), name))


def run_case(protocol: ProtocolSpec, kind: str, size: int, pairs: int = 3,
             probes: int = 3, seed: int = 0,
             endpoints_per_port: int = 1) -> ScaleRow:
    """One cell: build, warm, probe, measure.

    *endpoints_per_port* > 1 parks a flyweight population behind every
    access port and runs a heavy-tailed elephant/mice flow phase over
    the population endpoints after the probe workload — the
    million-endpoint configuration. All flow draws happen at generation
    time from a ``seed``-seeded RNG, so the row stays a pure function
    of the cell at any job or shard count.
    """
    sim = Simulator(seed=seed, keep_trace_records=False)
    net, src, dst = scale_topology(sim, protocol.factory, kind, size,
                                   seed=seed,
                                   endpoints_per_port=endpoints_per_port)
    sampler = MemorySampler(sim, interval=0.5)
    sampler.start()
    net.run(protocol.warmup)

    # Measurement window: count every frame from here on, so the ARP
    # discovery races are part of the overhead (that is the point).
    sim.tracer.reset()
    hosts = _natural(net.hosts)
    replies_before = sum(net.host(name).counters.echo_replies_received
                         for name in hosts)

    # Cold-path convergence: first probe of the maximally separated
    # pair, timed to its reply.
    arrivals: List[float] = []
    started = sim.now
    net.host(src).ping(net.host(dst).ip,
                       on_reply=lambda seq, rtt: arrivals.append(sim.now))
    net.run(0.5)
    convergence = arrivals[0] - started if arrivals else None

    # Bulk probe workload over up to *pairs* maximally separated host
    # pairs — one schedule_bulk batch, not len(specs) heap pushes.
    count = min(pairs, len(hosts) // 2)
    chosen = [(hosts[i], hosts[-1 - i]) for i in range(count)]
    specs = []
    for index, (a, b) in enumerate(chosen):
        target = net.host(b).ip
        ping = net.host(a).ping
        for round_index in range(probes):
            specs.append((index * PAIR_STAGGER
                          + round_index * PROBE_SPACING, ping, target,
                          round_index))
    sim.schedule_bulk(specs)
    net.run(count * PAIR_STAGGER + probes * PROBE_SPACING + DRAIN)

    # Population phase: heavy-tailed flows over the flyweight
    # endpoints, scheduled in one bulk batch. Empty at
    # endpoints_per_port=1, so legacy cells are untouched.
    if net.populations:
        matrix = TrafficMatrix(net)
        matrix.elephant_mice(count=max(pairs * probes, 1),
                             rng=random.Random(seed),
                             endpoints=sorted(net.populations))
        matrix.start(stagger=POP_STAGGER, bulk=True)
        net.run(POP_WINDOW)
    sampler.stop()

    sent = sim.tracer.by_ethertype[trc.SENT]
    control = sum(sent.get(ethertype, 0)
                  for ethertype in base.control_ethertypes())
    payloads = sum(net.host(name).counters.ip_received for name in hosts) \
        + sum(pop.counters.ip_received for pop in net.populations.values())
    answered = sum(net.host(name).counters.echo_replies_received
                   for name in hosts) - replies_before
    states = [bridge_state_entries(bridge)
              for bridge in net.bridges.values()]
    return ScaleRow(
        protocol=protocol.name, kind=kind, size=size,
        bridges=len(net.bridges), links=len(net.links),
        hosts=len(net.hosts), convergence_s=convergence,
        frames_sent=sim.tracer.counts[trc.SENT],
        arp_frames=sent.get(ETHERTYPE_ARP, 0), control_frames=control,
        payloads_delivered=payloads, peak_state=max(states),
        mean_state=sum(states) / len(states),
        peak_pending_events=sampler.peak_pending_events,
        peak_wheel_timers=sampler.peak_wheel_timers,
        probes_sent=len(specs) + 1, probes_answered=answered,
        events_processed=sim.events_processed,
        endpoints=net.endpoint_count())


def _scale_shard_worker(shard_id: int, shard_count: int, endpoint,
                        protocol_name: str, stp_scale: float, kind: str,
                        size: int, pairs: int, probes: int, seed: int,
                        endpoints_per_port: int = 1) -> Dict[str, Any]:
    """One shard's portion of :func:`run_case` (see run_case_sharded).

    The phase schedule — warmup, convergence probe, bulk probes — and
    every scheduling instant mirror :func:`run_case` exactly; the only
    differences are ownership guards (a shard touches only its own
    nodes) and the boundary machinery. Returns plain picklable data
    for :func:`_merge_scale_shards`.
    """
    protocol = registry.protocol_specs([protocol_name],
                                       stp_scale=stp_scale)[0]
    sim = Simulator(seed=derive_shard_seed(seed, shard_id),
                    keep_trace_records=False)
    # Builders take the *base* seed: the wiring must be identical in
    # every worker; only the engine stream is per-shard.
    net, src, dst = scale_topology(sim, protocol.factory, kind, size,
                                   seed=seed,
                                   endpoints_per_port=endpoints_per_port)
    runtime = ShardRuntime(sim, shard_id, endpoint)
    runtime.adopt(net, partition_network(net, shard_count))
    # record_series: whole-run peaks are maxima of *per-instant sums*
    # across shards, so the merge needs every sample, not two peaks.
    sampler = MemorySampler(sim, interval=0.5, record_series=True,
                            adjust=runtime.pending_adjust,
                            count_self=(shard_id == 0))
    sampler.start()
    net.start()
    runtime.run_for(protocol.warmup)

    sim.tracer.reset()
    hosts = _natural(net.hosts)
    owned = [name for name in hosts if runtime.owns(name)]
    replies_before = sum(net.host(name).counters.echo_replies_received
                        for name in owned)

    arrivals: List[float] = []
    started = sim.now
    if runtime.owns(src):
        net.host(src).ping(net.host(dst).ip,
                           on_reply=lambda seq, rtt:
                           arrivals.append(sim.now))
    runtime.run_for(0.5)
    convergence = arrivals[0] - started if arrivals else None

    count = min(pairs, len(hosts) // 2)
    chosen = [(hosts[i], hosts[-1 - i]) for i in range(count)]
    specs = []
    full_specs = 0
    for index, (a, b) in enumerate(chosen):
        target = net.host(b).ip
        ping = net.host(a).ping
        for round_index in range(probes):
            full_specs += 1
            if runtime.owns(a):
                specs.append((index * PAIR_STAGGER
                              + round_index * PROBE_SPACING, ping, target,
                              round_index))
    sim.schedule_bulk(specs)
    runtime.run_for(count * PAIR_STAGGER + probes * PROBE_SPACING + DRAIN)

    # Population phase — the flow list is drawn identically on every
    # shard (generation-time draws from the base seed); ownership
    # gates which engine binds each sink and schedules each source.
    if net.populations:
        matrix = TrafficMatrix(net)
        matrix.elephant_mice(count=max(pairs * probes, 1),
                             rng=random.Random(seed),
                             endpoints=sorted(net.populations))
        matrix.start(stagger=POP_STAGGER, owner=runtime.owns, bulk=True)
        runtime.run_for(POP_WINDOW)
    sampler.stop()

    owned_pops = [pop for name, pop in net.populations.items()
                  if runtime.owns(name)]
    return {
        "frames_sent": sim.tracer.counts[trc.SENT],
        "sent": dict(sim.tracer.by_ethertype[trc.SENT]),
        "payloads": sum(net.host(name).counters.ip_received
                        for name in owned)
        + sum(pop.counters.ip_received for pop in owned_pops),
        "answered": sum(net.host(name).counters.echo_replies_received
                        for name in owned) - replies_before,
        "states": [bridge_state_entries(bridge)
                   for name, bridge in net.bridges.items()
                   if runtime.owns(name)],
        "convergence": convergence,
        "src_owner": runtime.owns(src),
        "bridges": len(net.bridges),
        "links": len(net.links),
        "hosts": len(net.hosts),
        "endpoints": net.endpoint_count(),
        "probes_sent": full_specs + 1,
        "events": sim.events_processed,
        "samples": sampler.samples,
        "series": sampler.series,
    }


def _merge_scale_shards(protocol: ProtocolSpec, kind: str, size: int,
                        shards: List[Dict[str, Any]]) -> ScaleRow:
    """Fold per-shard results into the single-process :class:`ScaleRow`.

    Every field is either owned-once (summable: tracer counts, host
    counters, bridge states), a single-owner scalar (convergence), or
    needs instant-alignment (the sampler series — per-shard peaks fall
    at different instants, so the simulation's peak is the max of the
    per-sample sums). ``events_processed`` subtracts the K-1 replica
    samplers' tick events (``samples - 2``: start and stop are inline,
    not events) — the one place a shard engine processes an event the
    single engine does not.
    """
    first = shards[0]
    sent: Dict[int, int] = {}
    for result in shards:
        for ethertype, count in result["sent"].items():
            sent[ethertype] = sent.get(ethertype, 0) + count
    control = sum(sent.get(ethertype, 0)
                  for ethertype in base.control_ethertypes())
    states = [entry for result in shards for entry in result["states"]]
    convergence = next((result["convergence"] for result in shards
                        if result["src_owner"]), None)

    lengths = {len(result["series"]) for result in shards}
    if len(lengths) != 1:
        raise RuntimeError(
            f"shard sampler series diverged in length: {sorted(lengths)}")
    peak_pending = 0
    peak_wheel = 0
    for index in range(lengths.pop()):
        pending = sum(result["series"][index][0] for result in shards)
        wheel = sum(result["series"][index][1] for result in shards)
        if pending > peak_pending:
            peak_pending = pending
        if wheel > peak_wheel:
            peak_wheel = wheel

    events = sum(result["events"] for result in shards) \
        - sum(result["samples"] - 2 for result in shards[1:])
    return ScaleRow(
        protocol=protocol.name, kind=kind, size=size,
        bridges=first["bridges"], links=first["links"],
        hosts=first["hosts"], convergence_s=convergence,
        frames_sent=sum(result["frames_sent"] for result in shards),
        arp_frames=sent.get(ETHERTYPE_ARP, 0), control_frames=control,
        payloads_delivered=sum(result["payloads"] for result in shards),
        peak_state=max(states), mean_state=sum(states) / len(states),
        peak_pending_events=peak_pending, peak_wheel_timers=peak_wheel,
        probes_sent=first["probes_sent"],
        probes_answered=sum(result["answered"] for result in shards),
        events_processed=events, endpoints=first["endpoints"])


def run_case_sharded(protocol: ProtocolSpec, kind: str, size: int,
                     pairs: int = 3, probes: int = 3, seed: int = 0,
                     shards: int = 2, stp_scale: float = 0.1,
                     mode: str = "auto",
                     endpoints_per_port: int = 1) -> ScaleRow:
    """One cell of :func:`run_case`, executed across *shards* engines.

    Produces the byte-identical row :func:`run_case` would — the
    partition, boundary synchronisation and merge are all exact (see
    :mod:`repro.netsim.shard`). ``shards=1`` short-circuits to
    :func:`run_case` itself: no fabric, no worker, no overhead.
    """
    if shards == 1:
        return run_case(protocol, kind, size, pairs=pairs, probes=probes,
                        seed=seed, endpoints_per_port=endpoints_per_port)
    results = ShardedSimulator(shards, mode=mode).run(
        _scale_shard_worker, protocol.key or protocol.name, stp_scale,
        kind, size, pairs, probes, seed, endpoints_per_port)
    return _merge_scale_shards(protocol, kind, size, results)


def run(kind: str = "grid", sizes: List[int] = [16, 36, 64],
        protocols: Optional[List[str]] = None, pairs: int = 3,
        probes: int = 3, stp_scale: float = 0.1, shards: int = 1,
        endpoints_per_port: int = 1, seed: int = 0) -> ScaleResult:
    """The size sweep across bridge families.

    A plain learning switch storms on any wiring with redundant paths,
    so requesting it outside ``line`` is refused up front. ``shards``
    splits every cell's simulation across that many engines
    (:func:`run_case_sharded`); the rows are byte-identical at any
    shard count.
    """
    names = protocols if protocols is not None else ["arppath", "spb"]
    if "learning" in names and kind not in LOOP_FREE_SCALE:
        raise ValueError(
            f"protocol 'learning' storms on loopy topologies; use one of "
            f"{', '.join(LOOP_FREE_SCALE)} (got {kind!r})")
    chosen = registry.protocol_specs(names, stp_scale=stp_scale)
    result = ScaleResult()
    for protocol in chosen:
        for size in sizes:
            if shards == 1:
                row = run_case(protocol, kind, size, pairs=pairs,
                               probes=probes, seed=seed,
                               endpoints_per_port=endpoints_per_port)
            else:
                row = run_case_sharded(
                    protocol, kind, size, pairs=pairs, probes=probes,
                    seed=seed, shards=shards, stp_scale=stp_scale,
                    endpoints_per_port=endpoints_per_port)
            result.rows.append(row)
    return result


def _scale_scenario(seeds: List[int], kind: str, sizes: List[int],
                    protocols: List[str], pairs: int, probes: int,
                    stp_scale: float, shards: int,
                    endpoints_per_port: int) -> ScaleResult:
    return registry.seeded(
        lambda seed: run(kind=kind, sizes=sizes, protocols=protocols,
                         pairs=pairs, probes=probes, stp_scale=stp_scale,
                         shards=shards,
                         endpoints_per_port=endpoints_per_port,
                         seed=seed))(seeds)


registry.register(registry.Scenario(
    name="scale",
    title="EXP-X1: scalability — state, overhead, convergence vs size",
    params=(
        registry.Param("kind", str, "grid", choices=SCALE_TOPOLOGIES,
                       help="size-parameterised wiring (grid, fat_tree, "
                            "random, line)"),
        registry.Param("sizes", int, [16, 36, 64], nargs="+",
                       help="target bridge counts, one cell per value"),
        registry.protocols_param(["arppath", "spb"]),
        registry.Param("pairs", int, 3,
                       help="probe host pairs (capped at hosts//2)"),
        registry.Param("probes", int, 3, help="probe rounds per pair"),
        registry.Param("stp_scale", float, 0.1,
                       help="STP timer scale factor (1.0 = IEEE "
                            "default timers)"),
        registry.Param("shards", int, 1,
                       help="engines per cell (conservative PDES; rows "
                            "are byte-identical at any shard count)"),
        registry.Param("endpoints_per_port", int, 1,
                       help="simulated endpoints behind each access "
                            "port (1 = plain hosts; >1 swaps in "
                            "flyweight populations and adds the "
                            "heavy-tailed Zipf elephant/mice flow "
                            "phase)"),
        registry.seeds_param(),
    ),
    run=_scale_scenario,
    row_keys=("size", "bridges", "links", "hosts"),
    smoke={"sizes": [9], "protocols": ["arppath"], "pairs": 1,
           "probes": 1},
))
