"""EXP-A1: ARP-Proxy broadcast suppression (paper §2.2 "Scalability").

The paper: "ARP broadcast traffic can be reduced dramatically by
implementing ARP Proxy function inside the switches" (citing
EtherProxy). We run an all-pairs ARP workload on a grid fabric with the
proxy off and on and count link-level ARP transmissions. With the proxy
on, only the first resolution of each target floods; later requests are
answered at the ingress bridge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.bridge import ArpPathBridge
from repro.core.config import ArpPathConfig
from repro.experiments.common import ProtocolSpec, build_and_warm, spec
from repro.frames.ethernet import ETHERTYPE_ARP
from repro.metrics.load import broadcast_frames_sent
from repro.metrics.report import format_table
from repro.topology.library import grid


@dataclass
class BroadcastRow:
    proxy: bool
    rounds: int
    hosts: int
    arp_frames_on_links: int
    proxy_answers: int
    resolution_failures: int


@dataclass
class BroadcastResult:
    rows: List[BroadcastRow] = field(default_factory=list)

    def table(self) -> str:
        headers = ["proxy", "hosts", "rounds", "arp_link_frames",
                   "proxy_answers", "failures"]
        body = [[r.proxy, r.hosts, r.rounds, r.arp_frames_on_links,
                 r.proxy_answers, r.resolution_failures] for r in self.rows]
        return format_table(
            headers, body,
            title="EXP-A1 — ARP broadcast suppression with proxy")

    def reduction(self) -> Optional[float]:
        """Frames(off) / frames(on) — the suppression factor."""
        off = next((r for r in self.rows if not r.proxy), None)
        on = next((r for r in self.rows if r.proxy), None)
        if off is None or on is None or on.arp_frames_on_links == 0:
            return None
        return off.arp_frames_on_links / on.arp_frames_on_links


def run_case(proxy: bool, rows: int = 3, cols: int = 3, rounds: int = 3,
             seed: int = 0) -> BroadcastRow:
    """All-pairs ARP, repeated *rounds* times with expiring host caches.

    Host ARP caches are set shorter than the round spacing so every
    round re-resolves; bridge proxy caches are long so rounds 2+ hit the
    proxy.
    """
    config = ArpPathConfig(proxy_enabled=proxy, proxy_timeout=600.0)
    protocol = spec("arppath", arppath_config=config)
    round_spacing = 10.0

    def topo(sim, factory):
        net = grid(sim, factory, rows, cols, hosts_at_corners=True,
                   latency_jitter=2e-6, seed=seed)
        for host in net.hosts.values():
            host.arp_cache.timeout = round_spacing / 2
        return net

    net = build_and_warm(topo, protocol, seed=seed, keep_trace_records=False)
    net.sim.tracer.reset()

    hosts = sorted(net.hosts)
    for round_index in range(rounds):
        base = round_index * round_spacing
        offset = 0.0
        for src in hosts:
            for dst in hosts:
                if src == dst:
                    continue
                net.sim.schedule(base + offset, net.host(src).ping,
                                 net.host(dst).ip)
                offset += 0.02
    net.run(rounds * round_spacing + 2.0)

    answers = sum(b.apc.proxy_suppressed for b in net.bridges.values()
                  if isinstance(b, ArpPathBridge))
    failures = sum(h.counters.resolution_failures
                   for h in net.hosts.values())
    return BroadcastRow(
        proxy=proxy, rounds=rounds, hosts=len(hosts),
        arp_frames_on_links=broadcast_frames_sent(net.sim.tracer,
                                                  ETHERTYPE_ARP),
        proxy_answers=answers, resolution_failures=failures)


def run(rows: int = 3, cols: int = 3, rounds: int = 3,
        seed: int = 0) -> BroadcastResult:
    result = BroadcastResult()
    for proxy in (False, True):
        result.rows.append(run_case(proxy, rows=rows, cols=cols,
                                    rounds=rounds, seed=seed))
    return result
