"""EXP-A1: ARP-Proxy broadcast suppression (paper §2.2 "Scalability").

The paper: "ARP broadcast traffic can be reduced dramatically by
implementing ARP Proxy function inside the switches" (citing
EtherProxy). We run an all-pairs ARP workload on a grid fabric with the
proxy off and on and count link-level ARP transmissions. With the proxy
on, only the first resolution of each target floods; later requests are
answered at the ingress bridge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.core.config import ArpPathConfig
from repro.experiments import registry
from repro.experiments.common import ProtocolSpec, build_and_warm, spec
from repro.frames.ethernet import ETHERTYPE_ARP
from repro.metrics.load import broadcast_frames_sent
from repro.metrics.report import format_table
from repro.topology.library import grid


@dataclass
class BroadcastRow:
    proxy: bool
    rounds: int
    hosts: int
    arp_frames_on_links: int
    proxy_answers: int
    resolution_failures: int


@dataclass
class BroadcastResult:
    rows: List[BroadcastRow] = field(default_factory=list)

    def table(self) -> str:
        headers = ["proxy", "hosts", "rounds", "arp_link_frames",
                   "proxy_answers", "failures"]
        body = [[r.proxy, r.hosts, r.rounds, r.arp_frames_on_links,
                 r.proxy_answers, r.resolution_failures] for r in self.rows]
        return format_table(
            headers, body,
            title="EXP-A1 — ARP broadcast suppression with proxy")

    def reduction(self) -> Optional[float]:
        """Frames(off) / frames(on) — the suppression factor.

        Multi-seed runs hold one off/on row pair per seed; the factor
        uses the frame totals across all rows of each kind.
        """
        off = sum(r.arp_frames_on_links for r in self.rows if not r.proxy)
        on = sum(r.arp_frames_on_links for r in self.rows if r.proxy)
        if not any(not r.proxy for r in self.rows) or on == 0:
            return None
        return off / on

    def records(self) -> List[Dict[str, Any]]:
        return [{"proxy": r.proxy, "hosts": r.hosts, "rounds": r.rounds,
                 "arp_link_frames": r.arp_frames_on_links,
                 "proxy_answers": r.proxy_answers,
                 "resolution_failures": r.resolution_failures}
                for r in self.rows]


def run_case(proxy: bool, rows: int = 3, cols: int = 3, rounds: int = 3,
             seed: int = 0) -> BroadcastRow:
    """All-pairs ARP, repeated *rounds* times with expiring host caches.

    Host ARP caches are set shorter than the round spacing so every
    round re-resolves; bridge proxy caches are long so rounds 2+ hit the
    proxy.
    """
    config = ArpPathConfig(proxy_enabled=proxy, proxy_timeout=600.0)
    protocol = spec("arppath", arppath_config=config)
    round_spacing = 10.0

    def topo(sim, factory):
        net = grid(sim, factory, rows, cols, hosts_at_corners=True,
                   latency_jitter=2e-6, seed=seed)
        for host in net.hosts.values():
            host.arp_cache.timeout = round_spacing / 2
        return net

    net = build_and_warm(topo, protocol, seed=seed, keep_trace_records=False)
    net.sim.tracer.reset()

    hosts = sorted(net.hosts)
    for round_index in range(rounds):
        base = round_index * round_spacing
        offset = 0.0
        for src in hosts:
            for dst in hosts:
                if src == dst:
                    continue
                net.sim.schedule(base + offset, net.host(src).ping,
                                 net.host(dst).ip)
                offset += 0.02
    net.run(rounds * round_spacing + 2.0)

    answers = sum(b.protocol_counters().get("proxy_suppressed", 0)
                  for b in net.bridges.values())
    failures = sum(h.counters.resolution_failures
                   for h in net.hosts.values())
    return BroadcastRow(
        proxy=proxy, rounds=rounds, hosts=len(hosts),
        arp_frames_on_links=broadcast_frames_sent(net.sim.tracer,
                                                  ETHERTYPE_ARP),
        proxy_answers=answers, resolution_failures=failures)


def run(rows: int = 3, cols: int = 3, rounds: int = 3,
        seed: int = 0) -> BroadcastResult:
    result = BroadcastResult()
    for proxy in (False, True):
        result.rows.append(run_case(proxy, rows=rows, cols=cols,
                                    rounds=rounds, seed=seed))
    return result


def _proxy_scenario(seeds: List[int], rows: int, cols: int,
                    rounds: int) -> BroadcastResult:
    return registry.seeded(
        lambda seed: run(rows=rows, cols=cols, rounds=rounds,
                         seed=seed))(seeds)


def _proxy_render(result: BroadcastResult) -> str:
    text = result.table()
    reduction = result.reduction()
    if reduction is not None:
        text += f"\n\nsuppression factor: {reduction:.2f}x"
    return text


registry.register(registry.Scenario(
    name="proxy",
    title="EXP-A1: ARP proxy broadcast suppression",
    params=(
        registry.Param("rows", int, 3, help="grid rows"),
        registry.Param("cols", int, 3, help="grid columns"),
        registry.Param("rounds", int, 3, help="all-pairs ARP rounds"),
        registry.seeds_param(),
    ),
    run=_proxy_scenario,
    render=_proxy_render,
    smoke={"rows": 2, "cols": 2, "rounds": 1},
))
