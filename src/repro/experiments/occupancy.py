"""EXP-S1 (supporting): bridge state vs network size.

The paper's scalability discussion (§2.2) argues ARP-Path keeps bridges
simple: state is one table entry per *active* conversation endpoint,
learnt on demand, against the link-state alternative that must store
the whole topology plus every advertised host everywhere.

This experiment measures state directly: peak locked-table occupancy
for ARP-Path vs LSDB size (bridges + advertised hosts) for SPB, as the
number of hosts grows on a fixed fabric, under (a) all-pairs traffic
and (b) a sparse traffic matrix — showing ARP-Path state scales with
*communication*, not with network size.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.experiments import registry
from repro.experiments.common import ProtocolSpec, build_and_warm, spec
from repro.metrics.report import format_table
from repro.topology.library import populate_access_ports, ring
from repro.traffic.matrix import TrafficMatrix


@dataclass
class OccupancyRow:
    protocol: str
    hosts: int
    active_pairs: int
    peak_entries_per_bridge: int
    mean_entries_per_bridge: float
    #: Simulated endpoints (hosts + population members); equals
    #: ``hosts`` unless the run used ``endpoints_per_port`` > 1.
    endpoints: int = 0

    def __post_init__(self):
        if not self.endpoints:
            self.endpoints = self.hosts


@dataclass
class OccupancyResult:
    rows: List[OccupancyRow] = field(default_factory=list)

    def table(self) -> str:
        headers = ["protocol", "hosts", "talking_pairs",
                   "peak_state/bridge", "mean_state/bridge"]
        body = [[r.protocol, r.hosts, r.active_pairs,
                 r.peak_entries_per_bridge,
                 f"{r.mean_entries_per_bridge:.1f}"] for r in self.rows]
        return format_table(
            headers, body,
            title="EXP-S1 — per-bridge state vs hosts and traffic")

    def records(self) -> List[Dict[str, Any]]:
        return [{"protocol": r.protocol, "hosts": r.hosts,
                 "endpoints": r.endpoints,
                 "talking_pairs": r.active_pairs,
                 "peak_state": r.peak_entries_per_bridge,
                 "mean_state": r.mean_entries_per_bridge}
                for r in self.rows]


def bridge_state_entries(bridge, now: Optional[float] = None) -> int:
    """Comparable dynamic-state size of any bridge family.

    Thin wrapper over the protocol-neutral
    :meth:`~repro.switching.base.Bridge.state_entries` hook each family
    implements (ARP-Path: live locked+learnt entries; SPB: LSDB entries
    plus advertised hosts; controller: live flow entries; STP and the
    learning switch: live FDB entries). Shared by this experiment and
    the ``scale`` scenario so the two report the same quantity.
    """
    return bridge.state_entries(now)


#: Backwards-compatible alias (pre-scale name).
_bridge_state = bridge_state_entries


def run_case(protocol: ProtocolSpec, hosts_per_bridge: int,
             pairs: Optional[int], n_bridges: int = 4,
             seed: int = 0, endpoints_per_port: int = 1) -> OccupancyRow:
    """One protocol/host-count/traffic-density cell.

    *pairs* = None means all-pairs; otherwise that many random ordered
    pairs talk. *endpoints_per_port* > 1 puts a flyweight population
    behind every access port and adds a heavy-tailed flow set over the
    population endpoints, so the occupancy contrast is measured at
    population scale (all draws from a ``seed``-seeded RNG at
    generation time — the rows stay a pure function of the cell).
    """

    def topo(sim, factory):
        net = ring(sim, factory, n_bridges,
                   hosts_per_bridge=hosts_per_bridge)
        populate_access_ports(net, endpoints_per_port)
        return net

    net = build_and_warm(topo, protocol, seed=seed,
                         keep_trace_records=False)
    matrix = TrafficMatrix(net)
    if pairs is None:
        flows = matrix.all_pairs(hosts=sorted(net.hosts), packets=3,
                                 interval=2e-3, size=200)
    else:
        flows = matrix.random_pairs(pairs, hosts=sorted(net.hosts),
                                    packets=3, interval=2e-3, size=200)
    if endpoints_per_port > 1:
        flows += matrix.elephant_mice(
            count=pairs if pairs is not None else len(net.hosts),
            rng=random.Random(seed), endpoints=sorted(net.populations))
    matrix.start(stagger=1e-3)
    net.run(1.0)

    sizes = [_bridge_state(b) for b in net.bridges.values()]
    return OccupancyRow(
        protocol=protocol.name, hosts=len(net.hosts),
        active_pairs=len(flows),
        peak_entries_per_bridge=max(sizes),
        mean_entries_per_bridge=sum(sizes) / len(sizes),
        endpoints=net.endpoint_count())


def run(host_counts: List[int] = [1, 2, 4], sparse_pairs: int = 4,
        endpoints_per_port: int = 1, seed: int = 0,
        protocols: Optional[List[str]] = None) -> OccupancyResult:
    """Sweep host density per family, dense and sparse traffic."""
    result = OccupancyResult()
    for protocol_name in (protocols if protocols is not None
                          else ("arppath", "spb")):
        for hosts_per_bridge in host_counts:
            protocol = spec(protocol_name)
            result.rows.append(run_case(
                protocol, hosts_per_bridge, pairs=None, seed=seed,
                endpoints_per_port=endpoints_per_port))
            total_hosts = hosts_per_bridge * 4
            if total_hosts * (total_hosts - 1) > sparse_pairs:
                sparse = run_case(protocol, hosts_per_bridge,
                                  pairs=sparse_pairs, seed=seed,
                                  endpoints_per_port=endpoints_per_port)
                sparse.protocol += " (sparse)"
                result.rows.append(sparse)
    return result


def _occupancy_scenario(seeds: List[int], host_counts: List[int],
                        sparse_pairs: int, endpoints_per_port: int,
                        protocols: List[str]) -> OccupancyResult:
    return registry.seeded(
        lambda seed: run(host_counts=host_counts,
                         sparse_pairs=sparse_pairs,
                         endpoints_per_port=endpoints_per_port,
                         seed=seed, protocols=protocols))(seeds)


registry.register(registry.Scenario(
    name="occupancy",
    title="EXP-S1: per-bridge state vs hosts and traffic",
    params=(
        registry.Param("host_counts", int, [1, 2, 4], nargs="+",
                       help="hosts per bridge, one case per value"),
        registry.Param("sparse_pairs", int, 4,
                       help="talking pairs in the sparse traffic case"),
        registry.Param("endpoints_per_port", int, 1,
                       help="simulated endpoints behind each access "
                            "port (1 = plain hosts; >1 swaps in "
                            "flyweight populations and adds the "
                            "heavy-tailed Zipf elephant/mice flow "
                            "phase)"),
        registry.protocols_param(["arppath", "spb"], loop_safe_only=True),
        registry.seeds_param(),
    ),
    run=_occupancy_scenario,
    row_keys=("hosts", "talking_pairs"),
    smoke={"host_counts": [1]},
))
