"""EXP-P2: loop freedom and no blocked links (paper abstract & §2.2).

Two claims in one experiment, run on deliberately loopy topologies:

* **Loop freedom** — a broadcast is delivered to every other host
  exactly once; no frame circulates. We count per-host deliveries of
  each logical broadcast (clone uid) and total link transmissions
  (bounded; a storm grows without bound — the plain learning switch
  demonstrates that failure mode).
* **No blocked links** — after an all-pairs workload, every physical
  link has carried traffic under ARP-Path, while STP's blocked links
  carried none.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.experiments import registry
from repro.experiments.common import ProtocolSpec, build_and_warm, spec
from repro.frames.ethernet import ETHERTYPE_ARP, ETHERTYPE_IPV4
from repro.metrics.load import fabric_load
from repro.metrics.report import format_table
from repro.netsim.tracer import DELIVERED
from repro.topology.library import grid, ring
from repro.traffic.matrix import TrafficMatrix, all_pairs_arp_warmup


@dataclass
class LoopfreeRow:
    protocol: str
    topology: str
    broadcast_copies_per_bridge_max: float
    duplicate_deliveries: int
    storm: bool
    used_links: int
    total_links: int

    @property
    def all_links_used(self) -> bool:
        return self.used_links == self.total_links


@dataclass
class LoopfreeResult:
    rows: List[LoopfreeRow] = field(default_factory=list)

    def table(self) -> str:
        headers = ["protocol", "topology", "dup_deliveries", "storm",
                   "links_used", "links_total"]
        body = [[r.protocol, r.topology, r.duplicate_deliveries, r.storm,
                 r.used_links, r.total_links] for r in self.rows]
        return format_table(
            headers, body,
            title="EXP-P2 — loop freedom and link utilisation")

    def records(self) -> List[Dict[str, Any]]:
        return [{"protocol": r.protocol, "topology": r.topology,
                 "duplicate_deliveries": r.duplicate_deliveries,
                 "storm": r.storm, "links_used": r.used_links,
                 "links_total": r.total_links} for r in self.rows]


def _duplicate_deliveries(net) -> Dict[int, int]:
    """Per-uid duplicate broadcast deliveries over host links.

    In a loop-free flood each host link carries a given logical
    broadcast at most once (host→bridge for the origin's own link,
    bridge→host elsewhere); any second delivery of the same uid on the
    same link means the frame looped back.
    """
    fabric = {link.name for link in net.fabric_links()}
    host_links = {link.name for link in net.links.values()
                  if link.name not in fabric}
    counts: Dict[tuple, int] = {}
    for rec in net.sim.tracer.records:
        if rec.kind != DELIVERED or rec.link not in host_links:
            continue
        if rec.dst != "ff:ff:ff:ff:ff:ff":
            continue
        key = (rec.frame_uid, rec.link)
        counts[key] = counts.get(key, 0) + 1
    duplicates: Dict[int, int] = {}
    for (uid, _link), count in counts.items():
        if count > 1:
            duplicates[uid] = duplicates.get(uid, 0) + count - 1
    return duplicates


def run_protocol(protocol: ProtocolSpec, topology_name: str = "grid",
                 seed: int = 0, storm_budget: int = 200_000) -> LoopfreeRow:
    """Broadcast probes + all-pairs unicast on a loopy topology."""
    builders: Dict[str, Callable] = {
        "grid": lambda sim, factory: grid(sim, factory, 3, 3,
                                          latency_jitter=5e-6, seed=seed),
        "ring": lambda sim, factory: ring(sim, factory, 6),
    }
    builder = builders[topology_name]
    net = build_and_warm(builder, protocol, seed=seed,
                         keep_trace_records=True)
    net.sim.tracer.reset()

    # Phase 1: one broadcast from each host (gratuitous ARP).
    hosts = sorted(net.hosts)
    for index, name in enumerate(hosts):
        net.sim.schedule(index * 0.01, net.host(name).gratuitous_arp)
    net.run(len(hosts) * 0.01 + 1.0)

    sent_before = net.sim.tracer.frames_sent
    storm = sent_before > storm_budget

    duplicates_per_uid = _duplicate_deliveries(net)
    duplicates = sum(duplicates_per_uid.values())

    # Phase 2: all-pairs unicast to exercise link utilisation. Only
    # data frames count — control traffic (BPDUs, LSPs) legitimately
    # crosses blocked links.
    if not storm:
        matrix = TrafficMatrix(net)
        matrix.all_pairs(packets=5, interval=2e-3, size=400)
        matrix.start()
        net.run(1.0)
    load = fabric_load(net, ethertype=ETHERTYPE_IPV4)

    return LoopfreeRow(
        protocol=protocol.name, topology=topology_name,
        broadcast_copies_per_bridge_max=max(duplicates_per_uid.values())
        if duplicates_per_uid else 0,
        duplicate_deliveries=duplicates, storm=storm,
        used_links=load.used_links, total_links=load.total_links)


def run(topologies: List[str] = ["grid", "ring"], seed: int = 0,
        protocols: Optional[List[ProtocolSpec]] = None) -> LoopfreeResult:
    chosen = protocols if protocols is not None else [
        spec("arppath"), spec("stp"), spec("spb")]
    result = LoopfreeResult()
    for protocol in chosen:
        for name in topologies:
            result.rows.append(run_protocol(protocol, topology_name=name,
                                            seed=seed))
    return result


def _loopfree_scenario(seeds: List[int], topologies: List[str],
                       protocols: List[str],
                       stp_scale: Optional[float]) -> LoopfreeResult:
    chosen = registry.protocol_specs(protocols, stp_scale=stp_scale)
    return registry.seeded(
        lambda seed: run(topologies=topologies, seed=seed,
                         protocols=chosen))(seeds)


registry.register(registry.Scenario(
    name="loopfree",
    title="EXP-P2: loop freedom and link utilisation",
    params=(
        registry.Param("topologies", str, ["grid", "ring"], nargs="+",
                       choices=("grid", "ring"),
                       help="loopy topologies to test"),
        registry.Param("protocols", str, ["arppath", "stp", "spb"],
                       nargs="+", choices=("arppath", "stp", "spb"),
                       help="protocols to compare"),
        registry.Param("stp_scale", float, None,
                       help="STP timer scale factor (omitted = IEEE "
                            "default timers)"),
        registry.seeds_param(),
    ),
    run=_loopfree_scenario,
    smoke={"topologies": ["ring"], "protocols": ["arppath"]},
))
