"""Tests for the shared Dataplane pipeline (switching/base.py).

Every bridge family must route identical inputs through the same
classification hooks — classification lives in one place, protocol
policy in the hooks. A golden-trace test pins ARP-Path discovery
filtering to the exact pre-refactor behaviour.
"""

import pytest

from repro.core.bridge import ArpPathBridge
from repro.frames import arp as arp_proto
from repro.frames.arp import ArpPacket
from repro.frames.control import ArpPathControl, HELLO_MULTICAST
from repro.frames.ethernet import (ETHERTYPE_ARP, ETHERTYPE_ARPPATH,
                                   ETHERTYPE_BPDU, ETHERTYPE_IPV4,
                                   ETHERTYPE_LSP, EthernetFrame,
                                   STP_MULTICAST)
from repro.frames import control as ctl_proto
from repro.frames.ipv4 import IPv4Address
from repro.frames.mac import BROADCAST, MAC, mac_for_bridge, mac_for_host
from repro.netsim.engine import Simulator
from repro.spb.bridge import SpbBridge
from repro.spb.lsp import SPB_MULTICAST, SpbHello
from repro.stp.bpdu import TcnBpdu
from repro.stp.bridge import StpBridge
from repro.switching.base import Bridge, Dataplane
from repro.switching.learning import LearningSwitch
from repro.topology import arppath, netfpga_demo

SRC = mac_for_host(7)
DST = mac_for_host(8)
BRIDGE_MAC = mac_for_bridge(42)


def control_frame_for(family):
    """A frame of *family*'s own control protocol."""
    if family is ArpPathBridge:
        return EthernetFrame(dst=HELLO_MULTICAST, src=SRC,
                             ethertype=ETHERTYPE_ARPPATH,
                             payload=ctl_proto.make_hello(SRC, seq=1))
    if family is StpBridge:
        return EthernetFrame(dst=STP_MULTICAST, src=SRC,
                             ethertype=ETHERTYPE_BPDU,
                             payload=TcnBpdu(bridge=None))
    if family is SpbBridge:
        return EthernetFrame(dst=SPB_MULTICAST, src=SRC,
                             ethertype=ETHERTYPE_LSP,
                             payload=SpbHello(origin=SRC, seq=1))
    return None  # LearningSwitch has no control protocol


def arp_broadcast():
    pkt = arp_proto.make_request(SRC, IPv4Address(0x0A000001),
                                 IPv4Address(0x0A000002))
    return EthernetFrame(dst=BROADCAST, src=SRC, ethertype=ETHERTYPE_ARP,
                         payload=pkt)


def ip_broadcast():
    return EthernetFrame(dst=BROADCAST, src=SRC, ethertype=ETHERTYPE_IPV4,
                         payload=b"x")


def ip_unicast():
    return EthernetFrame(dst=DST, src=SRC, ethertype=ETHERTYPE_IPV4,
                         payload=b"x")


FAMILIES = [ArpPathBridge, SpbBridge, StpBridge, LearningSwitch]


def build(family):
    sim = Simulator(seed=1)
    bridge = family(sim, "B", BRIDGE_MAC)
    bridge.add_ports(2)
    return bridge


def spy_hooks(bridge):
    """Replace every pipeline hook with a recorder; admit gates pass."""
    calls = []
    for hook in ("on_control", "on_arp", "on_broadcast", "on_unicast"):
        setattr(bridge, hook,
                lambda port, frame, _name=hook: calls.append(_name))
    bridge.admit_frame = lambda port, frame: True
    bridge.admit_data = lambda port, frame: True
    return calls


class TestHookRouting:
    """Identical inputs reach the same hook in every family."""

    @pytest.mark.parametrize("family", FAMILIES,
                             ids=lambda f: f.__name__)
    def test_control_frame_hits_on_control(self, family):
        frame = control_frame_for(family)
        if frame is None:
            pytest.skip("family has no control protocol")
        bridge = build(family)
        calls = spy_hooks(bridge)
        bridge.handle_frame(bridge.ports[0], frame)
        assert calls == ["on_control"]

    @pytest.mark.parametrize("family", FAMILIES,
                             ids=lambda f: f.__name__)
    def test_arp_broadcast_hits_on_arp(self, family):
        bridge = build(family)
        calls = spy_hooks(bridge)
        bridge.handle_frame(bridge.ports[0], arp_broadcast())
        assert calls == ["on_arp"]

    @pytest.mark.parametrize("family", FAMILIES,
                             ids=lambda f: f.__name__)
    def test_ip_broadcast_hits_on_broadcast(self, family):
        bridge = build(family)
        calls = spy_hooks(bridge)
        bridge.handle_frame(bridge.ports[0], ip_broadcast())
        assert calls == ["on_broadcast"]

    @pytest.mark.parametrize("family", FAMILIES,
                             ids=lambda f: f.__name__)
    def test_unicast_hits_on_unicast(self, family):
        bridge = build(family)
        calls = spy_hooks(bridge)
        bridge.handle_frame(bridge.ports[0], ip_unicast())
        assert calls == ["on_unicast"]

    @pytest.mark.parametrize("family", FAMILIES,
                             ids=lambda f: f.__name__)
    def test_received_counter_increments(self, family):
        bridge = build(family)
        spy_hooks(bridge)
        bridge.handle_frame(bridge.ports[0], ip_unicast())
        assert bridge.counters.received == 1


class TestClassification:
    def test_default_on_arp_falls_back_to_broadcast(self):
        """Families without ARP special-casing treat ARP broadcasts as
        ordinary broadcast (STP/SPB/learning pre-refactor behaviour)."""
        bridge = build(LearningSwitch)
        seen = []
        bridge.on_broadcast = lambda port, frame: seen.append("broadcast")
        bridge.handle_frame(bridge.ports[0], arp_broadcast())
        assert seen == ["broadcast"]

    def test_unicast_arp_is_not_discovery(self):
        plane = Dataplane()
        pkt = arp_proto.make_reply(SRC, IPv4Address(0x0A000001),
                                   DST, IPv4Address(0x0A000002))
        frame = EthernetFrame(dst=DST, src=SRC, ethertype=ETHERTYPE_ARP,
                              payload=pkt)
        assert not plane.is_arp_discovery(frame)
        assert plane.is_arp_discovery(arp_broadcast())

    def test_control_payload_type_is_checked(self):
        """An ARP-Path-ethertype frame with a foreign payload is data,
        not control (pre-refactor fallthrough semantics)."""
        bridge = build(ArpPathBridge)
        calls = spy_hooks(bridge)
        impostor = EthernetFrame(dst=DST, src=SRC,
                                 ethertype=ETHERTYPE_ARPPATH,
                                 payload=b"not-a-control-message")
        bridge.handle_frame(bridge.ports[0], impostor)
        assert calls == ["on_unicast"]

    def test_admit_frame_gates_everything(self):
        """ArpPathBridge drops its own frames before classification."""
        bridge = build(ArpPathBridge)
        calls = []
        for hook in ("on_control", "on_arp", "on_broadcast", "on_unicast"):
            setattr(bridge, hook,
                    lambda port, frame, _name=hook: calls.append(_name))
        own = EthernetFrame(dst=DST, src=BRIDGE_MAC,
                            ethertype=ETHERTYPE_IPV4, payload=b"")
        bridge.handle_frame(bridge.ports[0], own)
        assert calls == []
        assert bridge.counters.received == 1

    def test_stp_admit_data_gate_blocks_data_not_control(self):
        """A blocking STP port drops data but still processes BPDUs."""
        bridge = build(StpBridge)
        data_calls = []
        bridge.on_broadcast = \
            lambda port, frame: data_calls.append("broadcast")
        control_calls = []
        bridge.on_control = lambda port, frame: control_calls.append("bpdu")
        # Ports start DISABLED (not started): can_learn is False.
        bridge.handle_frame(bridge.ports[0], ip_broadcast())
        assert data_calls == []
        assert bridge.stp_counters.discards_not_forwarding == 1
        bridge.handle_frame(bridge.ports[0], control_frame_for(StpBridge))
        assert control_calls == ["bpdu"]


class TestDiscoveryFilteringGolden:
    """ARP-Path discovery filtering is byte-identical to the
    pre-refactor dispatch ladder.

    The golden values below were captured from the seed implementation
    (per-class dispatch in ArpPathBridge.handle_frame) on the NetFPGA
    demo topology with seed 42: one A→B ping after a 5 s warm-up. The
    race outcome — who filters how many slow copies, which port each
    bridge locks, the frame economy on the wire — must not move.
    """

    GOLDEN = {
        "NF1": {"discovery_frames": 2, "discovery_filtered": 1,
                "filtered": 1, "flooded_copies": 3, "forwarded": 3,
                "port_a": "NF1.p3", "port_b": "NF1.p0"},
        "NF2": {"discovery_frames": 1, "discovery_filtered": 0,
                "filtered": 0, "flooded_copies": 1, "forwarded": 3,
                "port_a": "NF2.p0", "port_b": "NF2.p1"},
        "NF3": {"discovery_frames": 3, "discovery_filtered": 2,
                "filtered": 2, "flooded_copies": 3, "forwarded": 3,
                "port_a": "NF3.p0", "port_b": "NF3.p3"},
        "NF4": {"discovery_frames": 2, "discovery_filtered": 1,
                "filtered": 1, "flooded_copies": 1, "forwarded": 0,
                "port_a": None, "port_b": None},
    }
    GOLDEN_TRACER = {"sent": 117, "delivered": 105}
    GOLDEN_RTT_NS = 98624

    def test_demo_race_matches_golden_trace(self):
        sim = Simulator(seed=42, trace_hops=True)
        net = netfpga_demo(sim, arppath())
        net.run(5.0)
        rtts = []
        a, b = net.host("A"), net.host("B")
        a.ping(b.ip, on_reply=lambda seq, rtt: rtts.append(rtt))
        net.run(2.0)

        assert rtts and round(rtts[0] * 1e9) == self.GOLDEN_RTT_NS
        assert sim.tracer.frames_sent == self.GOLDEN_TRACER["sent"]
        assert sim.tracer.frames_delivered == self.GOLDEN_TRACER["delivered"]
        for name, want in self.GOLDEN.items():
            bridge = net.bridge(name)
            apc = bridge.apc.snapshot()
            assert apc["discovery_frames"] == want["discovery_frames"], name
            assert apc["discovery_filtered"] == want["discovery_filtered"], \
                name
            assert bridge.counters.filtered == want["filtered"], name
            assert bridge.counters.flooded_copies == want["flooded_copies"], \
                name
            assert bridge.counters.forwarded == want["forwarded"], name
            entry_a = bridge.table.get(a.mac, sim.now)
            entry_b = bridge.table.get(b.mac, sim.now)
            assert (entry_a.port.name if entry_a else None) \
                == want["port_a"], name
            assert (entry_b.port.name if entry_b else None) \
                == want["port_b"], name
            if entry_a is not None:
                assert entry_a.is_learnt
