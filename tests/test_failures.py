"""Tests for the failure injector."""

import pytest

from repro.failures.injector import (ACTION_DOWN, ACTION_UP, FailureInjector,
                                     FailureRecord)
from repro.topology import arppath, netfpga_demo


@pytest.fixture
def demo(sim):
    net = netfpga_demo(sim, arppath())
    net.start()
    return net


class TestPrimitives:
    def test_link_down_executes_at_time(self, demo):
        injector = FailureInjector(demo)
        injector.link_down("NF1-NF2", at=1.0)
        demo.run(2.0)
        assert not demo.link_between("NF1", "NF2").up
        assert injector.records == [
            FailureRecord(time=1.0, link="NF1-NF2", action=ACTION_DOWN)]

    def test_link_up_restores(self, demo):
        injector = FailureInjector(demo)
        injector.link_down("NF1-NF2", at=1.0)
        injector.link_up("NF1-NF2", at=2.0)
        demo.run(3.0)
        assert demo.link_between("NF1", "NF2").up
        assert [r.action for r in injector.records] \
            == [ACTION_DOWN, ACTION_UP]

    def test_flap(self, demo):
        injector = FailureInjector(demo)
        injector.flap("NF2-NF3", at=1.0, down_for=0.5)
        demo.run(1.2)
        assert not demo.link_between("NF2", "NF3").up
        demo.run(1.0)
        assert demo.link_between("NF2", "NF3").up

    def test_unknown_link_rejected(self, demo):
        injector = FailureInjector(demo)
        with pytest.raises(KeyError):
            injector.link_down("NF9-NF10", at=1.0)

    def test_bridge_crash_downs_all_links(self, demo):
        injector = FailureInjector(demo)
        affected = injector.bridge_crash("NF1", at=1.0)
        demo.run(2.0)
        assert len(affected) == 4  # 3 fabric + host A
        for name in affected:
            assert not demo.links[name].up


class TestScripts:
    def test_successive_failures_times(self, demo):
        injector = FailureInjector(demo)
        times = injector.successive_failures(["NF1-NF2", "NF2-NF3"],
                                             start=1.0, spacing=2.0)
        assert times == [1.0, 3.0]
        demo.run(4.0)
        assert len(injector.downs()) == 2

    def test_successive_with_restore(self, demo):
        injector = FailureInjector(demo)
        injector.successive_failures(["NF1-NF2", "NF2-NF3"], start=1.0,
                                     spacing=2.0, restore_after=1.0)
        demo.run(5.0)
        assert demo.link_between("NF1", "NF2").up
        assert demo.link_between("NF2", "NF3").up
        assert len(injector) == 4

    def test_records_in_time_order(self, demo):
        injector = FailureInjector(demo)
        injector.link_down("NF2-NF3", at=2.0)
        injector.link_down("NF1-NF2", at=1.0)
        demo.run(3.0)
        times = [r.time for r in injector.records]
        assert times == sorted(times)
