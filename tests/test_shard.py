"""Tests for the sharded parallel engine (PR 6).

The acceptance bar is the determinism contract from ROADMAP item 1:
sharded and single-process runs produce **byte-identical experiment
records at any shard count**. Rows here are frozen-field dataclasses
built from primitives, so ``==`` over :class:`ScaleRow` /
:class:`ChurnRow` *is* byte-identity of the records.

Also pinned: the per-shard seed derivation (part of the determinism
contract — re-deriving differently would silently change any future
experiment drawing from ``sim.rng``), the BFS-band partition, the
``run_below`` window primitive, and the ``audit_pending_events``
cross-check against the O(1) counter.
"""

import pytest

from repro.experiments import churn, scale
from repro.experiments.registry import protocol_specs
from repro.frames.ethernet import EthernetFrame
from repro.frames.mac import MAC
from repro.netsim.engine import Simulator
from repro.netsim.errors import TopologyError
from repro.netsim.shard import (ShardedSimulator, ShardWorkerError,
                                derive_shard_seed, migration_lookahead,
                                run_sharded)
from repro.netsim.sync import ShardTransportError, pack_frame
from repro.topology import arppath, grid
from repro.topology.partition import partition_network


def arppath_spec():
    return protocol_specs(["arppath"], stp_scale=0.1)[0]


class TestDeriveShardSeed:
    def test_identity_at_shard_zero(self):
        for seed in (0, 1, 7, 12345, 2**31):
            assert derive_shard_seed(seed, 0) == seed

    def test_pinned_values(self):
        # The derivation is part of the determinism contract: these
        # exact values must never change (seed ^ golden-ratio mix).
        assert derive_shard_seed(0, 1) == 2654435769
        assert derive_shard_seed(0, 2) == 1013904242
        assert derive_shard_seed(7, 0) == 7
        assert derive_shard_seed(5, 1) == 2654435772

    def test_siblings_never_collide(self):
        seeds = [derive_shard_seed(0, k) for k in range(16)]
        assert len(set(seeds)) == 16


class TestPartition:
    def test_plan_is_deterministic(self, sim):
        net = grid(sim, arppath(), 3, 3, hosts_at_corners=True)
        first = partition_network(net, 3)
        second = partition_network(net, 3)
        assert first.node_shard == second.node_shard
        assert first.cut_links == second.cut_links
        assert first.lookahead == second.lookahead

    def test_hosts_ride_with_access_bridge(self, sim):
        net = grid(sim, arppath(), 3, 3, hosts_at_corners=True)
        plan = partition_network(net, 3)
        for name, host in net.hosts.items():
            access = host.port.peer.node.name
            assert plan.shard_of(name) == plan.shard_of(access)

    def test_host_links_never_cut(self, sim):
        net = grid(sim, arppath(), 3, 3, hosts_at_corners=True)
        plan = partition_network(net, 4)
        for link_name in plan.cut_links:
            wire = net.links[link_name]
            assert wire.port_a.node.name in net.bridges
            assert wire.port_b.node.name in net.bridges

    def test_single_shard_cuts_nothing(self, sim):
        net = grid(sim, arppath(), 3, 3, hosts_at_corners=True)
        plan = partition_network(net, 1)
        assert plan.cut_links == ()
        assert plan.lookahead == float("inf")

    def test_more_shards_than_bridges_refused(self, sim):
        net = grid(sim, arppath(), 2, 2)
        with pytest.raises(TopologyError):
            partition_network(net, 5)


class TestMigrationLookahead:
    def test_minimum_over_all_links(self, sim):
        net = grid(sim, arppath(), 2, 2, hosts_at_corners=True)
        expected = min(wire.latency for wire in net.links.values())
        assert migration_lookahead(net) == expected

    def test_zero_latency_link_refused(self, sim):
        net = grid(sim, arppath(), 2, 2, hosts_at_corners=True)
        next(iter(net.links.values())).latency = 0.0
        with pytest.raises(TopologyError):
            migration_lookahead(net)


class TestScaleParity:
    """Sharded scale rows are byte-identical to single-process rows."""

    @pytest.mark.parametrize("shards", [2, 4])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_grid_rows_identical(self, shards, seed):
        spec = arppath_spec()
        direct = scale.run_case(spec, "grid", 16, seed=seed)
        sharded = scale.run_case_sharded(spec, "grid", 16, seed=seed,
                                         shards=shards, mode="thread")
        assert sharded == direct

    def test_stp_display_name_rebuilds_by_key(self):
        # Scaled STP's display name is "stp(x0.1)", not a registry key;
        # workers must rebuild the spec from ProtocolSpec.key. This was
        # a real crash: any sharded run including stp died with
        # "unknown protocol: stp(x0.1)".
        spec = protocol_specs(["stp"], stp_scale=0.1)[0]
        assert spec.key == "stp"
        direct = scale.run_case(spec, "grid", 9, seed=0)
        sharded = scale.run_case_sharded(spec, "grid", 9, seed=0,
                                         shards=2, mode="thread")
        assert sharded == direct

    def test_learning_line_rows_identical(self):
        spec = protocol_specs(["learning"], stp_scale=0.1)[0]
        direct = scale.run_case(spec, "line", 16, seed=0)
        sharded = scale.run_case_sharded(spec, "line", 16, seed=0,
                                         shards=2, mode="thread")
        assert sharded == direct

    def test_process_mode_rows_identical(self):
        # The fork path: frames and results cross real process
        # boundaries, so this also proves everything shipped is
        # picklable and value-semantic.
        spec = arppath_spec()
        direct = scale.run_case(spec, "grid", 9, seed=0)
        sharded = scale.run_case_sharded(spec, "grid", 9, seed=0,
                                         shards=2, mode="process")
        assert sharded == direct

    def test_shards_one_is_passthrough(self):
        spec = arppath_spec()
        assert scale.run_case_sharded(spec, "grid", 9, seed=0,
                                      shards=1) \
            == scale.run_case(spec, "grid", 9, seed=0)


class TestChurnParity:
    """Dynamics crossing the cut: flaps, crashes, migrations."""

    @pytest.mark.parametrize("shards", [2, 4])
    def test_flaps_rows_identical(self, shards):
        spec = arppath_spec()
        kwargs = dict(topology="grid", flap_rate=0.5, down_time=0.3,
                      duration=4.0, fps=25.0, seed=0)
        direct = churn.run_protocol(spec, **kwargs)
        sharded = churn.run_protocol_sharded(spec, shards=shards,
                                             mode="thread", **kwargs)
        assert sharded == direct

    def test_crashes_and_migrations_rows_identical(self):
        spec = arppath_spec()
        kwargs = dict(topology="grid", flap_rate=0.5, down_time=0.3,
                      duration=4.0, crashes=1, migrations=2, fps=25.0,
                      seed=1)
        direct = churn.run_protocol(spec, **kwargs)
        sharded = churn.run_protocol_sharded(spec, shards=2,
                                             mode="thread", **kwargs)
        assert sharded == direct

    def test_scripted_failures_refused_sharded(self):
        with pytest.raises(ValueError, match="scripted_failures"):
            churn.run(topology="grid", protocols=["arppath"],
                      scripted_failures=1, shards=2)


class TestShardTransport:
    def test_unregistered_object_payload_refused(self):
        frame = EthernetFrame(dst=MAC(1), src=MAC(2), ethertype=0x1234,
                              payload=object())
        with pytest.raises(ShardTransportError):
            pack_frame(frame)


class TestRunSharded:
    def test_invalid_shard_count(self):
        with pytest.raises(ValueError):
            run_sharded(lambda *a: None, 0)
        with pytest.raises(ValueError):
            ShardedSimulator(0)

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            run_sharded(lambda *a: None, 2, mode="fiber")

    def test_single_shard_runs_inline(self):
        calls = []

        def worker(shard_id, shard_count, endpoint):
            calls.append((shard_id, shard_count, endpoint))
            return shard_id

        assert run_sharded(worker, 1) == [0]
        assert calls == [(0, 1, None)]

    def test_worker_failure_raises_with_traceback(self):
        def worker(shard_id, shard_count, endpoint):
            raise RuntimeError(f"boom in shard {shard_id}")

        with pytest.raises(ShardWorkerError, match="boom in shard"):
            run_sharded(worker, 2, mode="thread")


class TestRunBelow:
    def test_strictly_below_bound(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(2.0, fired.append, "b")
        sim.schedule(3.0, fired.append, "c")
        sim.run_below(2.0)
        # The event at exactly the bound must NOT fire: the window only
        # guarantees knowledge of remote events below it.
        assert fired == ["a"]
        assert sim.now == 2.0
        sim.run_below(3.0 + 1e-9)
        assert fired == ["a", "b", "c"]

    def test_jumps_clock_when_idle(self):
        sim = Simulator()
        sim.run_below(5.0)
        assert sim.now == 5.0

    def test_noop_at_or_before_now(self):
        sim = Simulator()
        sim.run_for(2.0)
        sim.run_below(2.0)
        sim.run_below(1.0)
        assert sim.now == 2.0

    def test_pours_wheel_timers_in_window(self):
        sim = Simulator()
        fired = []
        sim.schedule_timer(0.5, fired.append, "timer")
        sim.schedule_timer(5.0, fired.append, "late")
        sim.run_below(1.0)
        assert fired == ["timer"]
        assert sim.pending_events == 1  # the late timer survives


class TestAuditPendingEvents:
    """The O(n) audit agrees with the O(1) counter through bulk
    scheduling, timer-wheel pours and cancellations."""

    def test_bulk_and_timers_and_cancels(self):
        sim = Simulator()
        sink = []
        bulk = sim.schedule_bulk(
            [(0.1 * i, sink.append, i) for i in range(10)])
        timers = [sim.schedule_timer(0.05 + 0.2 * i, sink.append, 100 + i)
                  for i in range(5)]
        assert sim.pending_events == 15
        assert sim.audit_pending_events() == 15

        bulk[3].cancel()
        timers[0].cancel()
        timers[4].cancel()
        assert sim.audit_pending_events() == sim.pending_events == 12

        # Run partway: pours move timers from the wheel to the heap —
        # the audit must count both homes without double-counting.
        sim.run(until=0.45)
        assert sim.audit_pending_events() == sim.pending_events

        sim.run(until=10.0)
        assert sim.audit_pending_events() == sim.pending_events == 0
        assert len(sink) == 12

    def test_audit_after_run_below_window(self):
        sim = Simulator()
        sink = []
        sim.schedule_bulk([(0.2, sink.append, "a"), (0.8, sink.append, "b")])
        sim.schedule_timer(0.5, sink.append, "t")
        sim.run_below(0.5)
        assert sink == ["a"]
        assert sim.audit_pending_events() == sim.pending_events == 2


def _wedged_worker(shard_id, shard_count, endpoint):
    # Shard 0 wedges before its first round; the others block forever
    # in recv waiting for its horizon message.
    import time as _time
    if shard_id == 0:
        _time.sleep(3600.0)
        return
    for peer in endpoint.peers:
        endpoint.send(peer, (0.0, False, []))
    for peer in endpoint.peers:
        endpoint.recv(peer)


class TestStallWatchdog:
    def test_thread_mesh_stall_raises_with_snapshot(self):
        from repro.netsim.shard import ShardStallError
        with pytest.raises(ShardStallError) as excinfo:
            run_sharded(_wedged_worker, 2, mode="thread",
                        stall_budget=0.5)
        assert sorted(excinfo.value.snapshot) == [0, 1]
        # snapshot rows carry the per-shard progress fields
        for fields in excinfo.value.snapshot.values():
            assert {"rounds", "horizon", "staged"} <= set(fields)

    def test_process_mesh_stall_raises_with_snapshot(self):
        from repro.netsim.shard import ShardStallError
        with pytest.raises(ShardStallError) as excinfo:
            run_sharded(_wedged_worker, 2, mode="process",
                        stall_budget=0.5)
        assert sorted(excinfo.value.snapshot) == [0, 1]

    def test_stall_error_is_a_shard_worker_error(self):
        from repro.netsim.shard import ShardStallError
        assert issubclass(ShardStallError, ShardWorkerError)

    def test_fingerprint_ignores_round_counter(self):
        # A shard spinning rounds without advancing its horizon is a
        # livelock, and must still count as stalled.
        from repro.netsim.shard import ProgressBoard
        board = ProgressBoard(2)
        board.update(0, rounds=1, horizon=1.0, now=0.5, staged=3)
        before = board.fingerprint()
        board.update(0, rounds=99, horizon=1.0, now=0.5, staged=3)
        assert board.fingerprint() == before
        board.update(0, rounds=100, horizon=2.0, now=0.5, staged=3)
        assert board.fingerprint() != before

    def test_healthy_mesh_never_trips_the_watchdog(self):
        def worker(shard_id, shard_count, endpoint):
            return shard_id

        assert run_sharded(worker, 2, mode="thread",
                           stall_budget=30.0) == [0, 1]
