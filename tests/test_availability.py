"""Tests for the availability/downtime metrics (churn observables)."""

import pytest

from repro.metrics.availability import (Availability, detect_outages,
                                        measure_availability)

#: A 10 Hz probe stream.
INTERVAL = 0.1


def steady(start: float, end: float, interval: float = INTERVAL):
    """Arrival times of an unbroken stream over [start, end]."""
    times = []
    t = start
    while t <= end:
        times.append(round(t, 10))
        t += interval
    return times


class TestDetectOutages:
    def test_unbroken_stream_has_none(self):
        assert detect_outages(steady(0.0, 10.0), INTERVAL, 0.0, 10.0) == []

    def test_gap_above_threshold_detected(self):
        arrivals = [t for t in steady(0.0, 10.0) if not 3.0 < t < 5.0]
        outages = detect_outages(arrivals, INTERVAL, 0.0, 10.0)
        assert len(outages) == 1
        assert outages[0].start == pytest.approx(3.0)
        assert outages[0].end == pytest.approx(5.0)
        assert outages[0].repaired

    def test_gap_below_threshold_ignored(self):
        # 2 missing intervals = 0.2s gap < 2.5 * 0.1s threshold.
        arrivals = [0.0, 0.1, 0.2, 0.4, 0.5]
        assert detect_outages(arrivals, INTERVAL, 0.0, 0.5) == []

    def test_no_arrivals_is_one_unrepaired_outage(self):
        outages = detect_outages([], INTERVAL, 0.0, 10.0)
        assert len(outages) == 1
        assert outages[0].duration == pytest.approx(10.0)
        assert not outages[0].repaired

    def test_head_gap_counts(self):
        outages = detect_outages(steady(4.0, 10.0), INTERVAL, 0.0, 10.0)
        assert len(outages) == 1
        assert outages[0].start == pytest.approx(0.0)
        assert outages[0].end == pytest.approx(4.0)

    def test_tail_gap_is_unrepaired(self):
        outages = detect_outages(steady(0.0, 6.0), INTERVAL, 0.0, 10.0)
        assert len(outages) == 1
        assert not outages[0].repaired

    def test_arrivals_outside_window_ignored(self):
        arrivals = steady(0.0, 20.0)
        assert detect_outages(arrivals, INTERVAL, 5.0, 15.0) == []

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError):
            detect_outages([], INTERVAL, 5.0, 4.0)

    def test_bad_interval_rejected(self):
        with pytest.raises(ValueError):
            detect_outages([], 0.0, 0.0, 1.0)


class TestMeasureAvailability:
    def test_perfect_stream(self):
        stats = measure_availability(steady(0.0, 10.0), INTERVAL, 0.0, 10.0)
        assert stats.availability == 1.0
        assert stats.downtime == 0.0
        assert stats.outages == 0

    def test_dead_stream(self):
        stats = measure_availability([], INTERVAL, 0.0, 10.0)
        assert stats.availability == pytest.approx(0.0, abs=0.02)
        assert stats.unrepaired == 1

    def test_single_outage_accounting(self):
        arrivals = [t for t in steady(0.0, 10.0) if not 3.0 < t < 5.0]
        stats = measure_availability(arrivals, INTERVAL, 0.0, 10.0)
        # The 2s gap minus the one interval that passes anyway.
        assert stats.downtime == pytest.approx(2.0 - INTERVAL)
        assert stats.availability == pytest.approx(1 - 1.9 / 10.0)
        assert stats.outages == 1
        assert stats.mttr == pytest.approx(2.0)
        assert stats.worst_outage == pytest.approx(2.0)

    def test_worst_and_mean_over_multiple_outages(self):
        arrivals = [t for t in steady(0.0, 20.0)
                    if not 3.0 < t < 4.0 and not 10.0 < t < 13.0]
        stats = measure_availability(arrivals, INTERVAL, 0.0, 20.0)
        assert stats.outages == 2
        assert stats.worst_outage == pytest.approx(3.0)
        assert stats.mttr == pytest.approx(2.0)

    def test_unrepaired_outage_excluded_from_repair_series(self):
        """A window-truncated outage has no known repair time: it must
        show up in downtime/unrepaired, never in mttr/worst_outage."""
        arrivals = steady(0.0, 1.0)  # stream dies at t=1, window to 10
        stats = measure_availability(arrivals, INTERVAL, 0.0, 10.0)
        assert stats.outages == 1 and stats.unrepaired == 1
        assert stats.repaired == 0
        assert stats.downtime == pytest.approx(9.0 - INTERVAL)
        row = stats.as_row()
        assert row["mttr"] is None and row["worst_outage"] is None

    def test_mixed_outages_use_only_repaired_durations(self):
        arrivals = [t for t in steady(0.0, 6.0) if not 2.0 < t < 3.0]
        stats = measure_availability(arrivals, INTERVAL, 0.0, 10.0)
        assert stats.outages == 2 and stats.unrepaired == 1
        assert stats.mttr == pytest.approx(1.0)  # the repaired one only
        assert stats.worst_outage == pytest.approx(1.0)

    def test_as_row_is_flat_and_stable(self):
        stats = measure_availability(steady(0.0, 10.0), INTERVAL, 0.0, 10.0)
        row = stats.as_row()
        assert list(row) == ["availability", "downtime", "outages",
                             "unrepaired", "mttr", "worst_outage"]
        assert row["mttr"] is None  # no outages -> no repair series

    def test_empty_window_is_fully_available(self):
        stats = Availability(window=0.0, downtime=0.0, outages=0,
                             unrepaired=0, mttr=0.0, worst_outage=0.0)
        assert stats.availability == 1.0
