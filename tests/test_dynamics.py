"""Tests for the churn subsystem: the event timeline and the Network
dynamics primitives (detach / migrate / crash / restart)."""

import pytest

from repro.netsim.dynamics import (BRIDGE_CRASH, BRIDGE_RESTART, ChurnEvent,
                                   EventTimeline, HOST_MIGRATE, LINK_DOWN,
                                   LINK_UP)
from repro.netsim.engine import Simulator
from repro.netsim.errors import SchedulingError, TopologyError
from repro.topology import arppath, learning, line, netfpga_demo, pair

from repro.testing import ping_once


@pytest.fixture
def demo(sim):
    net = netfpga_demo(sim, arppath())
    net.run(5.0)
    return net


class TestChurnEvent:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            ChurnEvent(1.0, "meteor_strike", "NF1")

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            ChurnEvent(-1.0, LINK_DOWN, "NF1-NF2")


class TestTimelineScripting:
    def test_flap_adds_down_then_up(self, demo):
        timeline = EventTimeline(demo)
        timeline.add_flap("NF1-NF2", at=6.0, down_for=0.5)
        kinds = [(e.kind, e.time) for e in timeline.events]
        assert kinds == [(LINK_DOWN, 6.0), (LINK_UP, 6.5)]

    def test_nonpositive_down_for_rejected(self, demo):
        timeline = EventTimeline(demo)
        with pytest.raises(SchedulingError):
            timeline.add_flap("NF1-NF2", at=6.0, down_for=0.0)

    def test_random_churn_is_deterministic(self, demo):
        first = EventTimeline(demo)
        second = EventTimeline(demo)
        for timeline in (first, second):
            timeline.random_churn(seed=7, start=6.0, duration=10.0,
                                  flap_rate=1.0, crashes=2, migrations=1)
        assert first.events == second.events
        assert len(first.events) > 0

    def test_different_seeds_differ(self, demo):
        first = EventTimeline(demo)
        first.random_churn(seed=1, start=6.0, duration=10.0, flap_rate=2.0)
        second = EventTimeline(demo)
        second.random_churn(seed=2, start=6.0, duration=10.0, flap_rate=2.0)
        assert first.events != second.events

    def test_zero_rate_generates_nothing(self, demo):
        timeline = EventTimeline(demo)
        added = timeline.random_churn(seed=0, start=6.0, duration=10.0,
                                      flap_rate=0.0)
        assert added == 0 and timeline.events == []

    def test_flaps_respect_link_whitelist(self, demo):
        timeline = EventTimeline(demo)
        timeline.random_churn(seed=3, start=6.0, duration=20.0,
                              flap_rate=2.0, links=["NF1-NF2"])
        assert {e.target for e in timeline.events} == {"NF1-NF2"}

    def test_flaps_default_to_fabric_links(self, demo):
        timeline = EventTimeline(demo)
        timeline.random_churn(seed=3, start=6.0, duration=20.0,
                              flap_rate=2.0)
        fabric = {wire.name for wire in demo.fabric_links()}
        assert {e.target for e in timeline.events} <= fabric

    def test_migration_needs_two_bridges(self, sim):
        net = pair(sim, arppath())
        net.run(2.0)
        timeline = EventTimeline(net)
        # Two bridges exist, so one migration target is always available.
        timeline.random_churn(seed=0, start=3.0, duration=2.0, migrations=2)
        moves = [e for e in timeline.events if e.kind == HOST_MIGRATE]
        assert len(moves) == 2


class TestTimelineExecution:
    def test_events_fire_at_scheduled_times(self, demo):
        timeline = EventTimeline(demo)
        timeline.add_flap("NF1-NF2", at=6.0, down_for=0.5)
        timeline.arm()
        wire = demo.links["NF1-NF2"]
        demo.run(6.2 - demo.sim.now)
        assert not wire.up
        demo.run(0.5)
        assert wire.up
        assert [e.kind for e in timeline.executed] == [LINK_DOWN, LINK_UP]
        assert timeline.executed[0].time == pytest.approx(6.0)
        assert timeline.counts["flaps"] == 1

    def test_arm_twice_rejected(self, demo):
        timeline = EventTimeline(demo)
        timeline.arm()
        with pytest.raises(SchedulingError):
            timeline.arm()

    def test_add_after_arm_rejected(self, demo):
        timeline = EventTimeline(demo)
        timeline.arm()
        with pytest.raises(SchedulingError):
            timeline.add_flap("NF1-NF2", at=6.0, down_for=0.5)

    def test_past_event_rejected(self, demo):
        timeline = EventTimeline(demo)
        timeline.add_flap("NF1-NF2", at=1.0, down_for=0.5)  # now is 5.0
        with pytest.raises(SchedulingError):
            timeline.arm()

    def test_events_go_through_the_wheel(self, demo):
        before = len(demo.sim.wheel)
        timeline = EventTimeline(demo)
        timeline.add_flap("NF1-NF2", at=6.0, down_for=0.5)
        timeline.arm()
        assert len(demo.sim.wheel) == before + 2

    def test_traffic_flows_again_after_flap(self, demo):
        timeline = EventTimeline(demo)
        timeline.add_flap("NF1-NF2", at=6.0, down_for=0.5)
        timeline.arm()
        demo.run(2.0)
        assert ping_once(demo, "A", "B") is not None

    def test_overlapping_outages_restart_once(self, demo):
        """Two overlapping outages of one bridge must end in exactly
        one restart — and must not leak a duplicate hello timer."""
        timeline = EventTimeline(demo)
        timeline.add_bridge_outage("NF2", at=6.0, down_for=2.0)
        timeline.add_bridge_outage("NF2", at=6.5, down_for=0.5)  # inside
        timeline.arm()
        demo.run(6.8 - demo.sim.now)
        # First restart instant passed, but the outer outage still runs.
        bridge_links = [w for w in demo.links.values()
                        if w.port_a.node.name == "NF2"
                        or w.port_b.node.name == "NF2"]
        assert all(not w.up for w in bridge_links)
        demo.run(8.5 - demo.sim.now)
        assert all(w.up for w in bridge_links)
        assert timeline.counts["crashes"] == 2
        assert timeline.counts["restarts"] == 1
        # One periodic hello process: seq advances ~1/s, not 2/s.
        bridge = demo.bridge("NF2")
        seq_before = bridge._hello_seq
        demo.run(3.0)
        assert bridge._hello_seq - seq_before <= 4

    def test_flap_up_during_crash_is_deferred(self, demo):
        """A flap's LINK_UP on a dead bridge's link must not revive the
        link (stale pre-crash state would forward frames); carrier
        returns with the bridge's restart instead."""
        timeline = EventTimeline(demo)
        timeline.add_flap("NF1-NF2", at=6.0, down_for=1.0)  # up at 7.0
        timeline.add_bridge_outage("NF2", at=6.5, down_for=2.0)  # to 8.5
        timeline.arm()
        wire = demo.links["NF1-NF2"]
        demo.run(7.2 - demo.sim.now)
        assert not wire.up  # up event fired at 7.0 but NF2 is dead
        demo.run(8.7 - demo.sim.now)
        assert wire.up  # restored by the restart

    def test_overlapping_flaps_of_one_link_restore_once(self, demo):
        """A nested shorter flap must not revive a link while an
        earlier, longer flap window is still open."""
        timeline = EventTimeline(demo)
        timeline.add_flap("NF1-NF2", at=6.0, down_for=4.0)  # to 10.0
        timeline.add_flap("NF1-NF2", at=7.0, down_for=1.0)  # inside
        timeline.arm()
        wire = demo.links["NF1-NF2"]
        demo.run(8.5 - demo.sim.now)
        assert not wire.up  # nested LINK_UP at 8.0 must not revive it
        demo.run(10.2 - demo.sim.now)
        assert wire.up

    def test_flap_window_survives_bridge_restart(self, demo):
        """A restart must not restore a link whose flap window is
        still open; carrier returns at the flap's own LINK_UP."""
        timeline = EventTimeline(demo)
        timeline.add_bridge_outage("NF2", at=6.5, down_for=1.0)  # to 7.5
        timeline.add_flap("NF1-NF2", at=6.0, down_for=3.0)  # to 9.0
        timeline.arm()
        wire = demo.links["NF1-NF2"]
        demo.run(7.8 - demo.sim.now)  # restart done, flap still open
        assert not wire.up
        demo.run(9.2 - demo.sim.now)
        assert wire.up

    def test_migration_to_crashed_bridge_waits_for_restart(self, demo):
        """Plugging into a powered-off switch gives no carrier until
        the bridge restarts (and never exposes stale crash state)."""
        timeline = EventTimeline(demo)
        timeline.add_bridge_outage("NF2", at=6.0, down_for=2.0)  # to 8.0
        timeline.add_migration("A", at=7.0, to_bridge="NF2")
        timeline.arm()
        demo.run(7.5 - demo.sim.now)
        host_link = demo.host("A").port.link
        assert host_link is not None and not host_link.up
        demo.run(8.2 - demo.sim.now)
        assert demo.host("A").port.link.up
        assert demo.bridge_for_host("A").name == "NF2"

    def test_hold_down_pins_link_against_flap_restore(self, demo):
        """A scripted permanent cut (hold_down) must survive an
        overlapping random flap's LINK_UP."""
        timeline = EventTimeline(demo)
        timeline.add_flap("NF1-NF2", at=7.0, down_for=0.5)  # up at 7.5
        timeline.arm()
        wire = demo.links["NF1-NF2"]
        demo.sim.at(6.0, timeline.hold_down, "NF1-NF2")
        demo.run(8.0 - demo.sim.now)
        assert not wire.up  # the flap's LINK_UP must not revive the cut

    def test_unpaired_restart_respects_open_flap_window(self, demo):
        """A scripted restart without a matching crash restores the
        bridge's links — except one inside an open flap window."""
        timeline = EventTimeline(demo)
        timeline.add_flap("NF1-NF2", at=6.0, down_for=4.0)  # to 10.0
        timeline.add(ChurnEvent(7.0, BRIDGE_RESTART, "NF2"))
        timeline.arm()
        wire = demo.links["NF1-NF2"]
        demo.run(7.5 - demo.sim.now)
        assert not wire.up  # restart must not cut the flap short
        demo.run(10.2 - demo.sim.now)
        assert wire.up

    def test_flap_on_unregistered_link_is_skipped(self, pair_net):
        """A flap scheduled on a host link that a migration has since
        unregistered must be skipped, not crash the run."""
        timeline = EventTimeline(pair_net)
        timeline.add_flap("H1-B1", at=6.0, down_for=0.5)
        timeline.arm()
        pair_net.migrate_host("H1", "B0")  # deletes link H1-B1
        pair_net.run(2.0)  # both flap events fire harmlessly
        assert timeline.counts["flaps"] == 0

    def test_double_unpaired_restart_keeps_crash_accounting(self, demo):
        """Scripted restarts without crashes must not drive the crash
        depth negative and disable later crashed-bridge deferrals."""
        timeline = EventTimeline(demo)
        timeline.add(ChurnEvent(6.0, BRIDGE_RESTART, "NF2"))
        timeline.add(ChurnEvent(6.1, BRIDGE_RESTART, "NF2"))
        timeline.add_bridge_outage("NF2", at=7.0, down_for=2.0)  # to 9.0
        timeline.add_flap("NF1-NF2", at=7.2, down_for=0.5)  # up at 7.7
        timeline.arm()
        wire = demo.links["NF1-NF2"]
        demo.run(8.0 - demo.sim.now)
        assert not wire.up  # NF2 is crashed; the flap's up is deferred
        demo.run(9.2 - demo.sim.now)
        assert wire.up

    def test_zero_mean_down_time_rejected(self, demo):
        timeline = EventTimeline(demo)
        with pytest.raises(SchedulingError):
            timeline.random_churn(seed=0, start=6.0, duration=5.0,
                                  flap_rate=1.0, mean_down_time=0.0)

    def test_negative_flap_rate_rejected(self, demo):
        timeline = EventTimeline(demo)
        with pytest.raises(SchedulingError):
            timeline.random_churn(seed=0, start=6.0, duration=5.0,
                                  flap_rate=-1.0)

    def test_crash_then_restart_round_trip(self, demo):
        timeline = EventTimeline(demo)
        timeline.add_bridge_outage("NF2", at=6.0, down_for=1.0)
        timeline.arm()
        demo.run(6.5 - demo.sim.now)
        bridge_links = [w for w in demo.links.values()
                        if w.port_a.node.name == "NF2"
                        or w.port_b.node.name == "NF2"]
        assert all(not w.up for w in bridge_links)
        demo.run(1.0)
        assert all(w.up for w in bridge_links)
        assert timeline.counts["crashes"] == 1
        assert timeline.counts["restarts"] == 1
        assert ping_once(demo, "A", "B") is not None


class TestNetworkPrimitives:
    def test_detach_unregisters_link(self, pair_net):
        assert ping_once(pair_net, "H0", "H1") is not None
        bridge = pair_net.detach("H0")
        assert bridge == "B0"
        assert "H0-B0" not in pair_net.links
        assert pair_net.host("H0").port.link is None
        assert ping_once(pair_net, "H0", "H1") is None

    def test_detach_unattached_rejected(self, pair_net):
        pair_net.detach("H0")
        with pytest.raises(TopologyError):
            pair_net.detach("H0")

    def test_migrate_host_reaches_new_bridge(self, pair_net):
        # Ping within the GARP's lock window (0.8s): the announcement
        # LOCKS the host at its new bridge and the unicast confirms it.
        pair_net.migrate_host("H1", "B0")
        pair_net.run(0.1)
        assert pair_net.bridge_for_host("H1").name == "B0"
        assert ping_once(pair_net, "H0", "H1") is not None

    def test_migrate_back_and_forth(self, pair_net):
        pair_net.migrate_host("H1", "B0")
        pair_net.run(0.1)
        pair_net.migrate_host("H1", "B1")
        # Let the stale locks from the first move expire (0.8s), then
        # the migrated host talks: its ARP discovery rebuilds the path
        # in both directions.
        pair_net.run(1.0)
        assert pair_net.bridge_for_host("H1").name == "B1"
        assert ping_once(pair_net, "H1", "H0") is not None
        assert ping_once(pair_net, "H0", "H1") is not None

    def test_crash_takes_links_down_and_reports_them(self, pair_net):
        affected = pair_net.crash_bridge("B1")
        assert set(affected) == {"B0-B1", "H1-B1"}
        assert not pair_net.links["B0-B1"].up

    def test_migrate_preserves_access_link_parameters(self, pair_net):
        """The host moved, its NIC didn't: the new access link keeps
        the old latency/bandwidth unless explicitly overridden."""
        old = pair_net.host("H1").port.link
        old_latency, old_bandwidth = old.latency, old.bandwidth
        wire = pair_net.migrate_host("H1", "B0")
        assert wire.latency == old_latency
        assert wire.bandwidth == old_bandwidth

    def test_migrate_latency_override_wins(self, pair_net):
        wire = pair_net.migrate_host("H1", "B0", latency=5e-6)
        assert wire.latency == pytest.approx(5e-6)

    def test_migrate_to_unknown_bridge_leaves_host_attached(self,
                                                            pair_net):
        """A failed migration must not have detached the host first."""
        with pytest.raises(TopologyError):
            pair_net.migrate_host("H1", "nosuch")
        assert pair_net.host("H1").port.link is not None
        assert pair_net.bridge_for_host("H1").name == "B1"

    def test_crash_only_reports_previously_up_links(self, pair_net):
        pair_net.links["B0-B1"].take_down()
        affected = pair_net.crash_bridge("B1")
        assert affected == ["H1-B1"]

    def test_restart_wipes_arppath_table(self, pair_net):
        assert ping_once(pair_net, "H0", "H1") is not None
        bridge = pair_net.bridge("B1")
        assert len(bridge.table.entries(pair_net.sim.now)) > 0
        affected = pair_net.crash_bridge("B1")
        pair_net.run(0.5)
        pair_net.restart_bridge("B1", links=affected)
        assert bridge.table.entries(pair_net.sim.now) == []
        pair_net.run(1.0)
        # H1's first frame misses at the rebooted B1 and triggers Path
        # Repair (B0 still holds H0's learnt entry and answers); the
        # exchange re-learns both directions.
        assert ping_once(pair_net, "H1", "H0") is not None
        assert ping_once(pair_net, "H0", "H1") is not None

    def test_restart_wipes_learning_fdb(self, sim):
        net = line(sim, learning(), 2)
        net.run(1.0)
        assert ping_once(net, "H0", "H1") is not None
        bridge = net.bridge("B0")
        assert len(bridge.fdb) > 0
        net.crash_bridge("B0")
        net.run(0.1)
        net.restart_bridge("B0")
        assert len(bridge.fdb) == 0
        net.run(0.5)
        assert ping_once(net, "H0", "H1") is not None

    def test_restarted_bridge_reclassifies_ports(self, demo):
        """After a power cycle the hello exchange restores port roles."""
        bridge = demo.bridge("NF2")
        affected = demo.crash_bridge("NF2")
        demo.run(0.5)
        demo.restart_bridge("NF2", links=affected)
        assert bridge.neighbors == {}
        demo.run(3.0)  # a couple of hello intervals
        assert len(bridge.neighbors) == 2  # NF1 and NF3
