"""Tests for the link-state shortest-path bridging baseline."""

import pytest

from repro.frames.mac import mac_for_bridge, mac_for_host
from repro.netsim.engine import Simulator
from repro.spb.bridge import SpbBridge
from repro.spb.lsp import Adjacency, LinkStatePacket, SpbHello
from repro.topology import grid, line, pair, ring, spb
from repro.topology.builder import Network

from repro.testing import ping_once


@pytest.fixture
def spb_ring(sim):
    net = ring(sim, spb(), 4)
    net.run(8.0)
    return net


class TestLsp:
    def test_newer_than(self):
        origin = mac_for_bridge(0)
        old = LinkStatePacket(origin=origin, seq=1)
        new = LinkStatePacket(origin=origin, seq=2)
        assert new.newer_than(old)
        assert not old.newer_than(new)

    def test_wire_size_grows(self):
        origin = mac_for_bridge(0)
        empty = LinkStatePacket(origin=origin, seq=1)
        full = LinkStatePacket(origin=origin, seq=1,
                               adjacencies=(Adjacency(mac_for_bridge(1)),),
                               hosts=(mac_for_host(0),))
        assert full.wire_size > empty.wire_size

    def test_rejects_negative_seq(self):
        with pytest.raises(ValueError):
            LinkStatePacket(origin=mac_for_bridge(0), seq=-1)

    def test_adjacency_rejects_bad_cost(self):
        with pytest.raises(ValueError):
            Adjacency(mac_for_bridge(0), cost=0)


class TestAdjacency:
    def test_neighbors_discovered(self, spb_ring):
        b0 = spb_ring.bridge("B0")
        neighbor_macs = {b0.neighbor_on(p) for p in b0.attached_ports
                         if b0.is_bridge_port(p)}
        expected = {spb_ring.bridge("B1").mac, spb_ring.bridge("B3").mac}
        assert neighbor_macs == expected

    def test_host_ports_classified(self, spb_ring):
        b0 = spb_ring.bridge("B0")
        host_port = spb_ring.host("H0").port.peer
        assert b0.is_host_port(host_port)

    def test_lsdb_converges_everywhere(self, spb_ring):
        for name in ("B0", "B1", "B2", "B3"):
            assert len(spb_ring.bridge(name).lsdb_summary()) == 4

    def test_hosts_advertised(self, spb_ring):
        # Hosts are advertised once they first transmit.
        spb_ring.host("H0").gratuitous_arp()
        spb_ring.run(1.0)
        b2 = spb_ring.bridge("B2")
        assert b2.attachment_bridge(spb_ring.host("H0").mac) \
            == spb_ring.bridge("B0").mac


class TestForwarding:
    def test_end_to_end_ping(self, spb_ring):
        assert ping_once(spb_ring, "H0", "H2", timeout=4.0) is not None

    def test_no_broadcast_storm(self, spb_ring):
        sim = spb_ring.sim
        sent_before = sim.tracer.frames_sent
        spb_ring.host("H0").gratuitous_arp()
        spb_ring.run(1.0)
        assert sim.tracer.frames_sent - sent_before < 200

    def test_broadcast_reaches_all_hosts_once(self, spb_ring):
        counts_before = {name: host.counters.arp_requests_received
                         for name, host in spb_ring.hosts.items()}
        spb_ring.host("H0").gratuitous_arp()
        spb_ring.run(1.0)
        for name, host in spb_ring.hosts.items():
            if name == "H0":
                continue
            assert host.counters.arp_requests_received \
                == counts_before[name] + 1

    def test_unknown_unicast_dropped_not_flooded(self, spb_ring):
        from repro.frames.ethernet import ETHERTYPE_IPV4, EthernetFrame
        h0 = spb_ring.host("H0")
        ghost = mac_for_host(77)
        h0.port.send(EthernetFrame(dst=ghost, src=h0.mac,
                                   ethertype=ETHERTYPE_IPV4, payload=b""))
        spb_ring.run(0.5)
        drops = sum(spb_ring.bridge(n).spb_counters.unknown_unicast_drops
                    for n in ("B0", "B1", "B2", "B3"))
        assert drops == 1

    def test_shortest_hop_path_used(self, sim):
        """SPB minimises hop count (administrative cost), not latency."""
        net = ring(sim, spb(), 5)
        net.run(8.0)
        # H0 on B0, H1 on B1: direct link is 1 hop vs 4 the long way.
        rtt = ping_once(net, "H0", "H1", timeout=4.0)
        assert rtt is not None
        assert rtt < 100e-6


class TestFailover:
    def test_reconvergence_after_link_failure(self, spb_ring):
        net = spb_ring
        assert ping_once(net, "H0", "H1", timeout=4.0) is not None
        net.link_between("B0", "B1").take_down()
        net.run(5.0)  # re-flood + SPF
        assert ping_once(net, "H0", "H1", timeout=4.0) is not None

    def test_lsdb_reflects_dead_adjacency(self, spb_ring):
        net = spb_ring
        net.link_between("B0", "B1").take_down()
        net.run(3.0)
        b2 = net.bridge("B2")
        b0_lsp = b2.lsdb_summary()[str(net.bridge("B0").mac)]
        assert b0_lsp["adjacencies"] == 1  # only B3 left

    def test_host_moves_with_relearn(self, sim):
        """A host that falls silent ages out and is re-advertised on
        its new attachment after it speaks again."""
        net = ring(sim, spb(host_aging=2.0), 4)
        net.run(8.0)
        h0 = net.host("H0")
        assert ping_once(net, "H0", "H1", timeout=4.0) is not None
        net.run(5.0)  # H0 silent: aged out everywhere
        h0.gratuitous_arp()
        net.run(2.0)
        b2 = net.bridge("B2")
        assert b2.attachment_bridge(h0.mac) == net.bridge("B0").mac


class TestControlPlaneCost:
    def test_lsps_flood_network_wide(self, spb_ring):
        """The complexity the paper's intro criticises: every topology
        event costs network-wide flooding."""
        flooded = sum(spb_ring.bridge(n).spb_counters.lsps_flooded
                      for n in ("B0", "B1", "B2", "B3"))
        assert flooded > 10

    def test_spf_runs_on_change(self, spb_ring):
        net = spb_ring
        runs_before = sum(net.bridge(n).spb_counters.spf_runs
                          for n in ("B0", "B1", "B2", "B3"))
        net.link_between("B2", "B3").take_down()
        net.run(2.0)
        ping_once(net, "H0", "H1", timeout=2.0)
        runs_after = sum(net.bridge(n).spb_counters.spf_runs
                         for n in ("B0", "B1", "B2", "B3"))
        assert runs_after > runs_before

    def test_stale_lsps_ignored(self, sim):
        net = pair(sim, spb())
        net.run(8.0)
        b0, b1 = net.bridge("B0"), net.bridge("B1")
        stale_before = b1.spb_counters.lsps_stale
        # Replay B0's own current LSP at B1: same seq = stale.
        lsp, _t = b1._lsdb[b0.mac]
        b1._handle_lsp(b1.attached_ports[0], lsp)
        assert b1.spb_counters.lsps_stale == stale_before + 1


class TestSymmetricTieBreaking:
    def test_all_bridges_agree_on_trees(self, sim):
        """Every bridge computes the same SPT for a given root — the
        802.1aq congruence property our RPF check relies on."""
        net = grid(sim, spb(), 3, 3, hosts_at_corners=True)
        net.run(10.0)
        bridges = list(net.bridges.values())
        root = bridges[0].mac
        trees = []
        for bridge in bridges:
            spf = bridge._spf(root)
            trees.append({str(k): (str(v) if v else None)
                          for k, v in spf.parent.items()})
        assert all(t == trees[0] for t in trees[1:])
