"""Tests for the ARP proxy (paper §2.2 broadcast suppression)."""

import pytest

from repro.core.proxy import ArpProxy
from repro.frames import arp as arp_proto
from repro.frames.ipv4 import IPv4Address, ip_for_host
from repro.frames.mac import mac_for_host

M0, M1 = mac_for_host(0), mac_for_host(1)
IP0, IP1 = ip_for_host(0), ip_for_host(1)


@pytest.fixture
def proxy():
    return ArpProxy(timeout=10.0)


class TestSnooping:
    def test_snoop_learns_sender(self, proxy):
        proxy.snoop(arp_proto.make_request(M0, IP0, IP1), now=0.0)
        assert proxy.lookup(IP0, now=1.0) == M0

    def test_snoop_reply_learns_sender(self, proxy):
        proxy.snoop(arp_proto.make_reply(M1, IP1, M0, IP0), now=0.0)
        assert proxy.lookup(IP1, now=1.0) == M1

    def test_snoop_ignores_zero_ip(self, proxy):
        probe = arp_proto.make_request(M0, IPv4Address(0), IP1)
        proxy.snoop(probe, now=0.0)
        assert len(proxy) == 0

    def test_binding_expires(self, proxy):
        proxy.snoop(arp_proto.make_request(M0, IP0, IP1), now=0.0)
        assert proxy.lookup(IP0, now=10.0) is None

    def test_snoop_refreshes(self, proxy):
        proxy.snoop(arp_proto.make_request(M0, IP0, IP1), now=0.0)
        proxy.snoop(arp_proto.make_request(M0, IP0, IP1), now=8.0)
        assert proxy.lookup(IP0, now=15.0) == M0


class TestAnswering:
    def test_cache_hit_answers(self, proxy):
        proxy.snoop(arp_proto.make_reply(M1, IP1, M0, IP0), now=0.0)
        request = arp_proto.make_request(M0, IP0, IP1)
        answer = proxy.answer(request, now=1.0)
        assert answer is not None
        assert answer.is_reply
        assert answer.sha == M1 and answer.spa == IP1
        assert answer.tha == M0 and answer.tpa == IP0

    def test_cache_miss_returns_none(self, proxy):
        request = arp_proto.make_request(M0, IP0, IP1)
        assert proxy.answer(request, now=0.0) is None
        assert proxy.counters.misses == 1

    def test_gratuitous_never_answered(self, proxy):
        proxy.snoop(arp_proto.make_reply(M0, IP0, M1, IP1), now=0.0)
        probe = arp_proto.make_gratuitous(M0, IP0)
        assert proxy.answer(probe, now=0.0) is None

    def test_replies_never_answered(self, proxy):
        proxy.snoop(arp_proto.make_reply(M1, IP1, M0, IP0), now=0.0)
        reply = arp_proto.make_reply(M0, IP0, M1, IP1)
        assert proxy.answer(reply, now=0.0) is None

    def test_self_resolution_not_answered(self, proxy):
        """Asking for an IP that maps to your own MAC (duplicate address
        detection style) gets no proxy answer."""
        proxy.snoop(arp_proto.make_request(M0, IP0, IP1), now=0.0)
        request = arp_proto.make_request(M0, IP1, IP0)
        # Target IP0 maps to M0 == requester MAC.
        assert proxy.answer(request, now=0.0) is None

    def test_answer_counter(self, proxy):
        proxy.snoop(arp_proto.make_reply(M1, IP1, M0, IP0), now=0.0)
        proxy.answer(arp_proto.make_request(M0, IP0, IP1), now=0.0)
        assert proxy.counters.answered == 1


class TestInvalidation:
    def test_invalidate(self, proxy):
        proxy.snoop(arp_proto.make_request(M0, IP0, IP1), now=0.0)
        proxy.invalidate(IP0)
        assert proxy.lookup(IP0, now=0.0) is None

    def test_invalidate_unknown_is_noop(self, proxy):
        proxy.invalidate(IP0)
