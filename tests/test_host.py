"""Tests for the end-host stack (ARP resolution, UDP, ICMP).

Hosts talk through a plain learning switch here — the point is the host
stack itself, independent of any bridging protocol.
"""

import pytest

from repro.frames.ethernet import ETHERTYPE_ARP
from repro.netsim.engine import Simulator
from repro.netsim.link import Link
from repro.topology import learning
from repro.topology.builder import Network


@pytest.fixture
def lan(sim):
    """Two hosts on one learning switch."""
    net = Network(sim, bridge_factory=learning())
    net.add_bridge("SW")
    net.add_host("H0")
    net.add_host("H1")
    net.attach("H0", "SW", latency=1e-6)
    net.attach("H1", "SW", latency=1e-6)
    net.start()
    return net


class TestArpResolution:
    def test_first_ip_packet_triggers_arp(self, lan):
        h0, h1 = lan.host("H0"), lan.host("H1")
        h0.send_udp(h1.ip, 1000, 2000, b"hi")
        lan.run(1.0)
        assert h0.counters.arp_requests_sent == 1
        assert h1.counters.arp_requests_received == 1
        assert h0.counters.arp_replies_received == 1

    def test_packet_delivered_after_resolution(self, lan):
        h0, h1 = lan.host("H0"), lan.host("H1")
        got = []
        h1.bind_udp(2000, lambda sip, sp, payload, pkt: got.append(payload))
        h0.send_udp(h1.ip, 1000, 2000, b"hi")
        lan.run(1.0)
        assert got == [b"hi"]

    def test_cached_resolution_skips_arp(self, lan):
        h0, h1 = lan.host("H0"), lan.host("H1")
        h0.send_udp(h1.ip, 1000, 2000, b"one")
        lan.run(1.0)
        h0.send_udp(h1.ip, 1000, 2000, b"two")
        lan.run(1.0)
        assert h0.counters.arp_requests_sent == 1

    def test_multiple_packets_parked_then_flushed(self, lan):
        h0, h1 = lan.host("H0"), lan.host("H1")
        got = []
        h1.bind_udp(2000, lambda sip, sp, payload, pkt: got.append(payload))
        for index in range(3):
            h0.send_udp(h1.ip, 1000, 2000, bytes([index]))
        lan.run(1.0)
        assert got == [b"\x00", b"\x01", b"\x02"]
        assert h0.counters.arp_requests_sent == 1

    def test_unresolvable_address_gives_up(self, lan):
        from repro.frames.ipv4 import IPv4Address
        h0 = lan.host("H0")
        h0.send_udp(IPv4Address("10.9.9.9"), 1000, 2000, b"void")
        lan.run(10.0)
        assert h0.counters.resolution_failures == 1
        # Retried the configured number of times.
        assert h0.counters.arp_requests_sent == 1 + h0.arp_cache.max_retries

    def test_gratuitous_arp_populates_peers(self, lan):
        h0, h1 = lan.host("H0"), lan.host("H1")
        h0.gratuitous_arp()
        lan.run(1.0)
        assert h1.arp_cache.lookup(h0.ip, lan.sim.now) == h0.mac

    def test_opportunistic_learning_from_request(self, lan):
        h0, h1 = lan.host("H0"), lan.host("H1")
        h0.send_udp(h1.ip, 1, 2, b"")
        lan.run(1.0)
        # H1 learnt H0's binding from the request itself.
        assert h1.arp_cache.lookup(h0.ip, lan.sim.now) == h0.mac


class TestUdp:
    def test_unbound_port_counted(self, lan):
        h0, h1 = lan.host("H0"), lan.host("H1")
        h0.send_udp(h1.ip, 1000, 4242, b"nobody home")
        lan.run(1.0)
        assert h1.counters.udp_unbound == 1

    def test_double_bind_rejected(self, lan):
        h1 = lan.host("H1")
        h1.bind_udp(5000, lambda *a: None)
        with pytest.raises(ValueError):
            h1.bind_udp(5000, lambda *a: None)

    def test_unbind_allows_rebind(self, lan):
        h1 = lan.host("H1")
        h1.bind_udp(5000, lambda *a: None)
        h1.unbind_udp(5000)
        h1.bind_udp(5000, lambda *a: None)

    def test_handler_gets_source_info(self, lan):
        h0, h1 = lan.host("H0"), lan.host("H1")
        seen = []
        h1.bind_udp(2000, lambda sip, sp, payload, pkt:
                    seen.append((sip, sp)))
        h0.send_udp(h1.ip, 1234, 2000, b"x")
        lan.run(1.0)
        assert seen == [(h0.ip, 1234)]


class TestPing:
    def test_rtt_measured(self, lan):
        h0, h1 = lan.host("H0"), lan.host("H1")
        rtts = []
        h0.ping(h1.ip, seq=1, on_reply=lambda seq, rtt: rtts.append(rtt))
        lan.run(1.0)
        assert len(rtts) == 1 and rtts[0] > 0

    def test_seq_passed_through(self, lan):
        h0, h1 = lan.host("H0"), lan.host("H1")
        seqs = []
        h0.ping(h1.ip, seq=7, on_reply=lambda seq, rtt: seqs.append(seq))
        lan.run(1.0)
        assert seqs == [7]

    def test_echo_counters(self, lan):
        h0, h1 = lan.host("H0"), lan.host("H1")
        h0.ping(h1.ip)
        lan.run(1.0)
        assert h1.counters.echo_requests_received == 1
        assert h0.counters.echo_replies_received == 1

    def test_concurrent_pings_matched_by_ident(self, lan):
        h0, h1 = lan.host("H0"), lan.host("H1")
        replies = []
        h0.ping(h1.ip, seq=1, on_reply=lambda s, r: replies.append(("a", s)))
        h0.ping(h1.ip, seq=1, on_reply=lambda s, r: replies.append(("b", s)))
        lan.run(1.0)
        assert sorted(replies) == [("a", 1), ("b", 1)]


class TestFiltering:
    def test_foreign_unicast_ignored(self, lan, sim):
        """A frame unicast to another MAC is dropped by the NIC filter."""
        from repro.frames.ethernet import ETHERTYPE_IPV4, EthernetFrame
        from repro.frames.ipv4 import IPv4Packet, PROTO_UDP
        from repro.frames.udp import UdpDatagram
        h0, h1 = lan.host("H0"), lan.host("H1")
        rogue = IPv4Packet(src=h0.ip, dst=h1.ip, proto=PROTO_UDP,
                           payload=UdpDatagram(1, 2))
        # Address the frame to a MAC that is not H1.
        h0.port.send(EthernetFrame(dst=h0.mac, src=h0.mac,
                                   ethertype=ETHERTYPE_IPV4, payload=rogue))
        lan.run(1.0)
        assert h1.counters.ip_received == 0

    def test_ip_for_other_address_counted_foreign(self, lan):
        from repro.frames.ethernet import ETHERTYPE_IPV4, EthernetFrame
        from repro.frames.ipv4 import IPv4Address, IPv4Packet, PROTO_UDP
        from repro.frames.udp import UdpDatagram
        h0, h1 = lan.host("H0"), lan.host("H1")
        wrong_ip = IPv4Packet(src=h0.ip, dst=IPv4Address("10.99.99.99"),
                              proto=PROTO_UDP, payload=UdpDatagram(1, 2))
        h0.port.send(EthernetFrame(dst=h1.mac, src=h0.mac,
                                   ethertype=ETHERTYPE_IPV4,
                                   payload=wrong_ip))
        lan.run(1.0)
        assert h1.counters.ip_foreign == 1
        assert h1.counters.ip_received == 0

    def test_own_frames_ignored(self, lan):
        """A reflected frame with our own source MAC is dropped."""
        h0 = lan.host("H0")
        before = h0.counters.arp_requests_received
        from repro.frames.arp import make_request
        from repro.frames.ethernet import EthernetFrame
        from repro.frames.mac import BROADCAST
        probe = make_request(h0.mac, h0.ip, h0.ip)
        h0.handle_frame(h0.port, EthernetFrame(
            dst=BROADCAST, src=h0.mac, ethertype=ETHERTYPE_ARP,
            payload=probe))
        assert h0.counters.arp_requests_received == before

    def test_ip_listeners_invoked(self, lan):
        h0, h1 = lan.host("H0"), lan.host("H1")
        seen = []
        h1.ip_listeners.append(lambda pkt: seen.append(pkt.src))
        h0.send_udp(h1.ip, 1, 2, b"")
        lan.run(1.0)
        assert seen == [h0.ip]
