"""Tests for the parallel sweep runner and seed aggregation."""

import pytest

from repro.experiments import registry, runner
from repro.metrics.stats import aggregate, aggregate_rows

#: A grid every test can afford: 2 seeds of the tiny proxy case.
TINY_AXES = {"rows": [2], "cols": [2], "rounds": [1]}


class TestGridExpansion:
    def test_scenario_times_seed_times_axis(self):
        cells = runner.expand_grid(["proxy"], seeds=[0, 1],
                                   axes={"rounds": [1, 2]})
        assert len(cells) == 4
        assert [c.index for c in cells] == [0, 1, 2, 3]
        seen = {(c.seed, dict(c.overrides)["rounds"]) for c in cells}
        assert seen == {(0, 1), (0, 2), (1, 1), (1, 2)}

    def test_list_param_axis_becomes_singleton(self):
        cells = runner.expand_grid(["stretch"], seeds=[0],
                                   axes={"protocols": ["arppath", "stp"]})
        values = sorted(dict(c.overrides)["protocols"] for c in cells)
        assert values == [("arppath",), ("stp",)]

    def test_unknown_axis_raises(self):
        with pytest.raises(KeyError):
            runner.expand_grid(["proxy"], seeds=[0], axes={"bogus": [1]})

    def test_unsweepable_axis_raises(self):
        with pytest.raises(ValueError):
            runner.expand_grid(["proxy"], seeds=[0], axes={"seeds": [1]})


class TestExecution:
    @pytest.fixture(scope="class")
    def serial_report(self):
        cells = runner.expand_grid(["proxy"], seeds=[0, 1], axes=TINY_AXES)
        return runner.SweepRunner(cells, jobs=1).run()

    def test_rows_tagged_with_cell_identity(self, serial_report):
        rows = serial_report.rows()
        assert rows
        for row in rows:
            assert row["scenario"] == "proxy"
            assert row["seed"] in (0, 1)
            assert row["rounds"] == 1

    def test_parallel_matches_serial(self, serial_report):
        cells = runner.expand_grid(["proxy"], seeds=[0, 1], axes=TINY_AXES)
        parallel = runner.SweepRunner(cells, jobs=2).run()
        assert parallel.rows() == serial_report.rows()
        assert parallel.summary_rows() == serial_report.summary_rows()

    def test_summary_aggregates_over_seeds(self, serial_report):
        summary = serial_report.summary_rows()
        for row in summary:
            assert row["n_runs"] == 2
            assert "seed" not in row
            assert "arp_link_frames_mean" in row

    def test_failing_cell_reported_not_raised(self):
        bad = runner.SweepCell(index=0, scenario="proxy", seed=0,
                               overrides=(("rows", -1),))
        result = runner.execute_cell(bad)
        assert not result.ok
        assert result.error and result.rows == []

    def test_payload_shape(self, serial_report):
        payload = serial_report.as_payload()
        assert set(payload) == {"cells", "rows", "summary"}
        assert payload["cells"][0]["scenario"] == "proxy"
        assert payload["cells"][0]["error"] is None


class TestAggregation:
    def test_aggregate_single_value_has_zero_ci(self):
        stats = aggregate([2.5])
        assert stats.n == 1 and stats.mean == 2.5 and stats.ci95 == 0.0

    def test_aggregate_known_ci(self):
        # n=4, sample stdev 1, t(3)=3.182 -> half-width 1.591
        stats = aggregate([1.0, 2.0, 3.0, 2.0])
        assert stats.n == 4
        assert stats.mean == 2.0
        assert stats.ci95 == pytest.approx(3.182 * stats.stdev / 2.0)

    def test_rows_group_on_string_fields_not_seed(self):
        rows = [{"protocol": "a", "seed": 0, "value": 1.0},
                {"protocol": "a", "seed": 1, "value": 3.0},
                {"protocol": "b", "seed": 0, "value": 10.0}]
        summary = aggregate_rows(rows)
        assert len(summary) == 2
        a_row = next(r for r in summary if r["protocol"] == "a")
        assert a_row["n_runs"] == 2
        assert a_row["value_mean"] == 2.0

    def test_numeric_key_fields_split_groups(self):
        rows = [{"case": 1, "seed": 0, "value": 1.0},
                {"case": 2, "seed": 0, "value": 9.0}]
        merged = aggregate_rows(rows)
        split = aggregate_rows(rows, key_fields=("case",))
        assert len(merged) == 1
        assert len(split) == 2

    def test_bools_are_keys_not_metrics(self):
        rows = [{"proxy": True, "seed": 0, "value": 1.0},
                {"proxy": False, "seed": 0, "value": 2.0}]
        assert len(aggregate_rows(rows)) == 2

    def test_all_none_column_stays_identity(self):
        rows = [{"protocol": "a", "seed": 0, "value": None},
                {"protocol": "a", "seed": 1, "value": None}]
        summary = aggregate_rows(rows)
        assert len(summary) == 1
        # "value" is numeric in no row, so it stays an identity column
        # shared by both rows and produces no metric pair.
        assert summary[0]["n_runs"] == 2
        assert "value_mean" not in summary[0]

    def test_partially_none_metric_does_not_fragment_group(self):
        # An outage that never recovered is None for one seed and
        # numeric for another; the group must stay whole and average
        # over the seeds that produced a number.
        rows = [{"protocol": "stp", "failure_index": 1, "link": "NF1-NF2",
                 "outage": 0.5, "seed": 0},
                {"protocol": "stp", "failure_index": 1, "link": "NF1-NF2",
                 "outage": None, "seed": 1}]
        summary = aggregate_rows(rows, key_fields=("failure_index",))
        assert len(summary) == 1
        assert summary[0]["n_runs"] == 2
        assert summary[0]["outage_mean"] == 0.5
