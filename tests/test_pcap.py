"""Tests for the pcap exporter."""

import struct

import pytest

from repro.frames.codec import decode_frame
from repro.frames.ethernet import ETHERTYPE_ARP
from repro.netsim.pcap import (PCAP_MAGIC, PcapRecorder, pcap_global_header,
                               pcap_record, read_pcap)


class TestFormat:
    def test_global_header_layout(self):
        header = pcap_global_header()
        assert len(header) == 24
        magic, major, minor = struct.unpack_from("<IHH", header)
        assert magic == PCAP_MAGIC
        assert (major, minor) == (2, 4)

    def test_record_layout(self):
        record = pcap_record(1.5, b"abcd")
        seconds, micros, caplen, origlen = struct.unpack_from("<IIII",
                                                              record)
        assert (seconds, micros) == (1, 500_000)
        assert caplen == origlen == 4
        assert record[16:] == b"abcd"

    def test_record_microsecond_carry(self):
        record = pcap_record(0.9999999, b"")
        seconds, micros, _c, _o = struct.unpack_from("<IIII", record)
        assert (seconds, micros) == (1, 0)

    def test_read_round_trip(self):
        data = pcap_global_header() + pcap_record(2.25, b"xy") \
            + pcap_record(3.0, b"z")
        packets = read_pcap(data)
        assert len(packets) == 2
        assert packets[0] == (pytest.approx(2.25), b"xy")
        assert packets[1] == (pytest.approx(3.0), b"z")

    def test_read_rejects_bad_magic(self):
        data = b"\x00" * 24
        with pytest.raises(ValueError):
            read_pcap(data)

    def test_read_rejects_truncation(self):
        data = pcap_global_header() + pcap_record(1.0, b"abcd")
        with pytest.raises(ValueError):
            read_pcap(data[:-2])


class TestRecorder:
    def test_captures_transmissions(self, pair_net):
        recorder = PcapRecorder(list(pair_net.links.values()))
        pair_net.host("H0").gratuitous_arp()
        pair_net.run(0.5)
        recorder.close()
        assert len(recorder) >= 2  # host link + fabric link

    def test_captured_frames_decode(self, pair_net):
        recorder = PcapRecorder([pair_net.link_between("H0", "B0")])
        pair_net.host("H0").gratuitous_arp()
        pair_net.run(0.5)
        recorder.close()
        _ts, raw = recorder.packets[0]
        frame = decode_frame(raw)
        assert frame.ethertype == ETHERTYPE_ARP
        assert frame.src == pair_net.host("H0").mac

    def test_timestamps_monotone(self, pair_net):
        recorder = PcapRecorder(list(pair_net.links.values()))
        pair_net.host("H0").send_udp(pair_net.host("H1").ip, 1, 2, b"x")
        pair_net.run(1.0)
        recorder.close()
        times = [t for t, _raw in recorder.packets]
        assert times == sorted(times)

    def test_full_file_round_trip(self, pair_net, tmp_path):
        recorder = PcapRecorder(list(pair_net.links.values()))
        pair_net.host("H0").send_udp(pair_net.host("H1").ip, 1, 2, b"x")
        pair_net.run(1.0)
        recorder.close()
        path = tmp_path / "capture.pcap"
        count = recorder.save(str(path))
        packets = read_pcap(path.read_bytes())
        assert len(packets) == count == len(recorder)

    def test_close_detaches(self, pair_net):
        recorder = PcapRecorder([pair_net.link_between("H0", "B0")])
        recorder.close()
        pair_net.host("H0").gratuitous_arp()
        pair_net.run(0.5)
        assert len(recorder) == 0

    def test_close_idempotent(self, pair_net):
        recorder = PcapRecorder([pair_net.link_between("H0", "B0")])
        recorder.close()
        recorder.close()

    def test_needs_links(self):
        with pytest.raises(ValueError):
            PcapRecorder([])

    def test_snaplen_truncates(self, pair_net):
        recorder = PcapRecorder([pair_net.link_between("H0", "B0")],
                                snaplen=20)
        pair_net.host("H0").gratuitous_arp()
        pair_net.run(0.5)
        recorder.close()
        assert all(len(raw) <= 20 for _t, raw in recorder.packets)
