"""Tests for Ethernet frames, ARP, ICMP, UDP and ARP-Path control."""

import pytest

from repro.frames import arp as arp_proto
from repro.frames import control as ctl_proto
from repro.frames.arp import ARP_WIRE_SIZE, ArpPacket, OP_REPLY, OP_REQUEST
from repro.frames.control import (ArpPathControl, CONTROL_WIRE_SIZE,
                                  HELLO_MULTICAST, OP_HELLO, OP_PATH_FAIL,
                                  OP_PATH_REPLY, OP_PATH_REQUEST)
from repro.frames.ethernet import (ETH_MIN_FRAME, ETHERTYPE_ARP,
                                   ETHERTYPE_IPV4, EthernetFrame,
                                   broadcast_frame)
from repro.frames.icmp import IcmpEcho, TYPE_ECHO_REPLY, make_echo_request
from repro.frames.ipv4 import ip_for_host
from repro.frames.mac import BROADCAST, MAC, ZERO, mac_for_host
from repro.frames.udp import UDP_HEADER_LEN, UdpDatagram

H0, H1 = mac_for_host(0), mac_for_host(1)
IP0, IP1 = ip_for_host(0), ip_for_host(1)


class TestEthernetFrame:
    def test_minimum_wire_size(self):
        frame = EthernetFrame(dst=H1, src=H0, ethertype=ETHERTYPE_IPV4,
                              payload=b"")
        assert frame.wire_size == ETH_MIN_FRAME

    def test_wire_size_grows_with_payload(self):
        frame = EthernetFrame(dst=H1, src=H0, ethertype=ETHERTYPE_IPV4,
                              payload=b"x" * 1000)
        assert frame.wire_size == 14 + 1000 + 4

    def test_broadcast_flag(self):
        assert broadcast_frame(H0, ETHERTYPE_ARP, b"").is_broadcast

    def test_unicast_flag(self):
        frame = EthernetFrame(dst=H1, src=H0, ethertype=ETHERTYPE_IPV4)
        assert frame.is_unicast and not frame.is_multicast

    def test_multicast_flag(self):
        frame = EthernetFrame(dst=MAC("01:00:5e:00:00:05"), src=H0,
                              ethertype=ETHERTYPE_IPV4)
        assert frame.is_multicast and not frame.is_broadcast

    def test_uids_are_unique(self):
        first = EthernetFrame(dst=H1, src=H0, ethertype=ETHERTYPE_IPV4)
        second = EthernetFrame(dst=H1, src=H0, ethertype=ETHERTYPE_IPV4)
        assert first.uid != second.uid

    def test_clone_shares_uid(self):
        frame = EthernetFrame(dst=H1, src=H0, ethertype=ETHERTYPE_IPV4)
        assert frame.clone().uid == frame.uid

    def test_clone_has_independent_trace(self):
        frame = EthernetFrame(dst=H1, src=H0, ethertype=ETHERTYPE_IPV4)
        frame.record_hop("B1", 0, 1.0)
        copy = frame.clone()
        copy.record_hop("B2", 1, 2.0)
        assert frame.path_nodes() == ["B1"]
        assert copy.path_nodes() == ["B1", "B2"]

    def test_with_payload_keeps_identity(self):
        frame = EthernetFrame(dst=H1, src=H0, ethertype=ETHERTYPE_IPV4,
                              payload=b"one")
        other = frame.with_payload(b"two")
        assert other.uid == frame.uid
        assert other.payload == b"two"
        assert frame.payload == b"one"

    def test_str_mentions_kind(self):
        frame = broadcast_frame(H0, ETHERTYPE_ARP, b"")
        assert "ARP" in str(frame)


class TestFrameKindInterning:
    """The cached classification code (the dataplane's per-hop
    dispatch key) and its sharing/invalidation rules."""

    def test_arp_discovery_kind(self):
        from repro.frames.ethernet import KIND_ARP_DISCOVERY
        frame = broadcast_frame(H0, ETHERTYPE_ARP,
                                arp_proto.make_request(H0, IP0, IP1))
        assert frame.kind() == KIND_ARP_DISCOVERY

    def test_broadcast_non_arp_kind(self):
        from repro.frames.ethernet import KIND_MULTICAST
        assert broadcast_frame(H0, ETHERTYPE_IPV4, b"").kind() \
            == KIND_MULTICAST

    def test_unicast_kind(self):
        from repro.frames.ethernet import KIND_UNICAST
        frame = EthernetFrame(dst=H1, src=H0, ethertype=ETHERTYPE_IPV4)
        assert frame.kind() == KIND_UNICAST

    def test_clone_inherits_cached_kind(self):
        frame = broadcast_frame(H0, ETHERTYPE_ARP,
                                arp_proto.make_request(H0, IP0, IP1))
        code = frame.kind()
        copy = frame.clone()
        assert copy._kind == code  # no re-classification per hop

    def test_clone_before_classification_stays_lazy(self):
        frame = EthernetFrame(dst=H1, src=H0, ethertype=ETHERTYPE_IPV4)
        copy = frame.clone()
        assert copy._kind is None
        assert copy.kind() == frame.kind()

    def test_with_payload_invalidates_cache(self):
        """A new payload can change the classification (e.g. an ARP
        ethertype with a non-ARP payload is not a discovery)."""
        from repro.frames.ethernet import (KIND_ARP_DISCOVERY,
                                           KIND_MULTICAST)
        frame = broadcast_frame(H0, ETHERTYPE_ARP,
                                arp_proto.make_request(H0, IP0, IP1))
        assert frame.kind() == KIND_ARP_DISCOVERY
        swapped = frame.with_payload(b"opaque")
        assert swapped.kind() == KIND_MULTICAST

    def test_no_instance_dict(self):
        frame = EthernetFrame(dst=H1, src=H0, ethertype=ETHERTYPE_IPV4)
        assert not hasattr(frame, "__dict__")


class TestArp:
    def test_request_fields(self):
        request = arp_proto.make_request(H0, IP0, IP1)
        assert request.is_request
        assert request.sha == H0 and request.spa == IP0
        assert request.tha == ZERO and request.tpa == IP1

    def test_reply_fields(self):
        reply = arp_proto.make_reply(H1, IP1, H0, IP0)
        assert reply.is_reply
        assert reply.sha == H1 and reply.tha == H0

    def test_gratuitous_targets_self(self):
        probe = arp_proto.make_gratuitous(H0, IP0)
        assert probe.is_request and probe.tpa == probe.spa

    def test_wire_size(self):
        assert arp_proto.make_request(H0, IP0, IP1).wire_size == ARP_WIRE_SIZE

    def test_rejects_unknown_op(self):
        with pytest.raises(ValueError):
            ArpPacket(op=3, sha=H0, spa=IP0, tha=H1, tpa=IP1)

    def test_str_readable(self):
        assert "who-has" in str(arp_proto.make_request(H0, IP0, IP1))
        assert "is-at" in str(arp_proto.make_reply(H1, IP1, H0, IP0))


class TestControl:
    def test_hello_is_link_local(self):
        hello = ctl_proto.make_hello(H0, seq=3)
        assert hello.is_hello and hello.ttl == 1

    def test_hello_multicast_is_group(self):
        assert HELLO_MULTICAST.is_multicast

    def test_path_request(self):
        msg = ctl_proto.make_path_request(H0, H0, H1, seq=7)
        assert msg.is_path_request and msg.seq == 7

    def test_path_reply(self):
        msg = ctl_proto.make_path_reply(H0, H0, H1, seq=7)
        assert msg.is_path_reply

    def test_path_fail(self):
        msg = ctl_proto.make_path_fail(H0, H0, H1, seq=7)
        assert msg.is_path_fail

    def test_relayed_decrements_ttl(self):
        msg = ctl_proto.make_path_request(H0, H0, H1, seq=1)
        assert msg.relayed().ttl == msg.ttl - 1

    def test_relayed_preserves_identity(self):
        msg = ctl_proto.make_path_request(H0, H0, H1, seq=1)
        relayed = msg.relayed()
        assert (relayed.origin, relayed.source, relayed.target,
                relayed.seq) == (msg.origin, msg.source, msg.target, msg.seq)

    def test_relay_exhausted_rejected(self):
        msg = ArpPathControl(op=OP_PATH_REQUEST, origin=H0, source=H0,
                             target=H1, ttl=0)
        with pytest.raises(ValueError):
            msg.relayed()

    def test_rejects_bad_op(self):
        with pytest.raises(ValueError):
            ArpPathControl(op=99, origin=H0, source=H0, target=H1)

    def test_rejects_negative_seq(self):
        with pytest.raises(ValueError):
            ArpPathControl(op=OP_HELLO, origin=H0, source=H0, target=H1,
                           seq=-1)

    def test_wire_size(self):
        msg = ctl_proto.make_path_fail(H0, H0, H1, seq=0)
        assert msg.wire_size == CONTROL_WIRE_SIZE

    def test_op_names(self):
        assert ctl_proto.make_hello(H0).op_name == "HELLO"
        assert ctl_proto.make_path_request(H0, H0, H1, 0).op_name \
            == "PATH_REQUEST"

    def test_frozen(self):
        msg = ctl_proto.make_hello(H0)
        with pytest.raises(AttributeError):
            msg.seq = 5


class TestIcmp:
    def test_request_reply_pairing(self):
        request = make_echo_request(ident=1, seq=2, payload=b"abc")
        reply = request.reply()
        assert reply.is_reply
        assert (reply.ident, reply.seq, reply.payload) == (1, 2, b"abc")

    def test_reply_of_reply_rejected(self):
        reply = IcmpEcho(icmp_type=TYPE_ECHO_REPLY, ident=1, seq=1)
        with pytest.raises(ValueError):
            reply.reply()

    def test_wire_size(self):
        echo = make_echo_request(ident=1, seq=1, payload=b"x" * 56)
        assert echo.wire_size == 8 + 56

    def test_rejects_bad_type(self):
        with pytest.raises(ValueError):
            IcmpEcho(icmp_type=3, ident=0, seq=0)

    def test_rejects_out_of_range_ident(self):
        with pytest.raises(ValueError):
            IcmpEcho(icmp_type=TYPE_ECHO_REPLY, ident=1 << 16, seq=0)


class TestUdp:
    def test_wire_size(self):
        dgram = UdpDatagram(sport=1000, dport=2000, payload=b"x" * 100)
        assert dgram.wire_size == UDP_HEADER_LEN + 100

    def test_rejects_bad_port(self):
        with pytest.raises(ValueError):
            UdpDatagram(sport=-1, dport=0)
        with pytest.raises(ValueError):
            UdpDatagram(sport=0, dport=1 << 16)

    def test_empty_payload(self):
        assert UdpDatagram(sport=1, dport=2).wire_size == UDP_HEADER_LEN
