"""Tests for the traffic workloads (video, ping, request/response, matrix)."""

import pytest

from repro.netsim.engine import Simulator
from repro.topology import arppath, fat_tree, pair
from repro.traffic.matrix import TrafficMatrix, all_pairs_arp_warmup
from repro.traffic.ping import PingSeries, ping_between
from repro.traffic.reqresp import RequesterApp, ResponderApp
from repro.traffic.video import (VideoChunk, VideoSink, VideoSource,
                                 stream_between)


class TestVideoChunk:
    def test_wire_size(self):
        assert VideoChunk(seq=0, sent_at=0.0, size=1400).wire_size == 1400

    def test_validation(self):
        with pytest.raises(ValueError):
            VideoChunk(seq=-1, sent_at=0.0)
        with pytest.raises(ValueError):
            VideoChunk(seq=0, sent_at=0.0, size=0)


class TestVideoStream:
    def test_stream_delivers_in_order(self, pair_net):
        source, sink = stream_between(pair_net.host("H0"),
                                      pair_net.host("H1"), fps=50.0)
        source.start()
        pair_net.run(1.0)
        source.stop()
        pair_net.run(0.2)
        assert sink.received == source.sent
        assert sink.seqs == sorted(sink.seqs)
        assert sink.reordered == 0 and sink.duplicates == 0

    def test_latency_measured(self, pair_net):
        source, sink = stream_between(pair_net.host("H0"),
                                      pair_net.host("H1"), fps=50.0)
        source.start()
        pair_net.run(0.5)
        source.stop()
        assert all(lat > 0 for lat in sink.latencies)

    def test_no_interruptions_on_healthy_net(self, pair_net):
        source, sink = stream_between(pair_net.host("H0"),
                                      pair_net.host("H1"), fps=50.0)
        source.start()
        pair_net.run(1.0)
        source.stop()
        assert sink.interruptions() == []

    def test_interruption_detected_with_repair(self, pair_net):
        """Repair buffers the outage: a stall is visible but nothing is
        lost — the chunks arrive late, in order."""
        source, sink = stream_between(pair_net.host("H0"),
                                      pair_net.host("H1"), fps=50.0)
        source.start()
        pair_net.run(0.5)
        wire = pair_net.link_between("B0", "B1")
        wire.take_down()
        pair_net.run(0.2)
        wire.bring_up()
        pair_net.run(1.0)  # repair revives the stream
        source.stop()
        stalls = sink.interruptions()
        assert len(stalls) == 1
        assert stalls[0].duration >= 0.2
        assert stalls[0].chunks_lost == 0  # buffered, not dropped

    def test_chunk_loss_counted_without_repair(self, sim):
        from repro.topology import arppath, pair
        from repro.testing import fast_config
        net = pair(sim, arppath(fast_config(repair_enabled=False)))
        net.run(3.0)
        # Establish the path before streaming.
        net.host("H0").ping(net.host("H1").ip)
        net.run(1.0)
        source, sink = stream_between(net.host("H0"), net.host("H1"),
                                      fps=50.0)
        source.start()
        net.run(0.5)
        fail_at = net.sim.now
        net.link_between("B0", "B1").take_down()
        net.run(2.0)
        source.stop()
        # No repair: the stream dies at the failure and loss accumulates.
        assert sink.arrivals[-1] <= fail_at + 0.1
        assert sink.lost_chunks(source.sent) > 0

    def test_disruption_after(self, pair_net):
        source, sink = stream_between(pair_net.host("H0"),
                                      pair_net.host("H1"), fps=50.0)
        source.start()
        pair_net.run(0.5)
        fail_at = pair_net.sim.now
        wire = pair_net.link_between("B0", "B1")
        wire.take_down()
        pair_net.run(0.2)
        wire.bring_up()
        pair_net.run(1.0)
        source.stop()
        stall = sink.disruption_after(fail_at)
        assert stall is not None

    def test_lost_chunks_accounting(self, pair_net):
        source, sink = stream_between(pair_net.host("H0"),
                                      pair_net.host("H1"), fps=50.0)
        source.start()
        pair_net.run(1.0)
        source.stop()
        pair_net.run(0.2)
        assert sink.lost_chunks(source.sent) == 0

    def test_double_start_rejected(self, pair_net):
        source, _sink = stream_between(pair_net.host("H0"),
                                       pair_net.host("H1"))
        source.start()
        with pytest.raises(RuntimeError):
            source.start()

    def test_bad_fps_rejected(self, pair_net):
        with pytest.raises(ValueError):
            VideoSource(pair_net.host("H0"), pair_net.host("H1").ip, fps=0)


class TestPingSeries:
    def test_all_probes_answered(self, pair_net):
        series = ping_between(pair_net, "H0", "H1", count=5, interval=0.05)
        pair_net.run(2.0)
        assert len(series.rtts) == 5
        assert series.losses == 0

    def test_results_ordered_by_seq(self, pair_net):
        series = ping_between(pair_net, "H0", "H1", count=5, interval=0.05)
        pair_net.run(2.0)
        assert [r.seq for r in series.results] == list(range(5))

    def test_losses_detected(self, pair_net):
        # Cut the fabric permanently after the second probe.
        pair_net.sim.schedule(
            0.06, pair_net.link_between("B0", "B1").take_down)
        series = ping_between(pair_net, "H0", "H1", count=5, interval=0.05,
                              timeout=0.5)
        pair_net.run(3.0)
        assert series.losses >= 2
        assert series.loss_rate > 0

    def test_first_success_after(self, pair_net):
        series = ping_between(pair_net, "H0", "H1", count=5, interval=0.05)
        pair_net.run(2.0)
        assert series.first_success_after(0.0) is not None
        assert series.first_success_after(1e9) is None

    def test_validation(self, pair_net):
        host = pair_net.host("H0")
        with pytest.raises(ValueError):
            PingSeries(host, pair_net.host("H1").ip, count=0)
        with pytest.raises(ValueError):
            PingSeries(host, pair_net.host("H1").ip, interval=0)

    def test_finalize_idempotent(self, pair_net):
        series = ping_between(pair_net, "H0", "H1", count=2, interval=0.05)
        pair_net.run(2.0)
        results_before = list(series.results)
        series.finalize()
        assert series.results == results_before


class TestRequestResponse:
    def test_exchange_completes(self, pair_net):
        server = ResponderApp(pair_net.host("H1"))
        client = RequesterApp(pair_net.host("H0"), pair_net.host("H1").ip,
                              response_size=2000)
        client.send_request()
        pair_net.run(1.0)
        assert server.requests_served == 1
        assert len(client.completion_times) == 1
        assert client.outstanding == 0

    def test_send_many(self, pair_net):
        ResponderApp(pair_net.host("H1"))
        client = RequesterApp(pair_net.host("H0"), pair_net.host("H1").ip)
        client.send_many(5, interval=0.01)
        pair_net.run(1.0)
        assert len(client.completion_times) == 5

    def test_completion_time_scales_with_size(self, pair_net):
        ResponderApp(pair_net.host("H1"))
        small = RequesterApp(pair_net.host("H0"), pair_net.host("H1").ip,
                             client_port=30001, response_size=100)
        big = RequesterApp(pair_net.host("H0"), pair_net.host("H1").ip,
                           client_port=30002, response_size=100_000)
        small.send_request()
        pair_net.run(1.0)
        big.send_request()
        pair_net.run(1.0)
        assert big.completion_times[0] > small.completion_times[0]


class TestTrafficMatrix:
    def test_all_pairs_count(self, sim):
        net = fat_tree(sim, arppath(), pods=2, hosts_per_edge=2)
        net.run(5.0)
        matrix = TrafficMatrix(net)
        flows = matrix.all_pairs(packets=2)
        assert len(flows) == 4 * 3

    def test_flows_deliver(self, sim):
        net = fat_tree(sim, arppath(), pods=2, hosts_per_edge=1)
        net.run(5.0)
        matrix = TrafficMatrix(net)
        matrix.all_pairs(packets=5, interval=1e-3, size=200)
        matrix.start()
        net.run(2.0)
        assert matrix.delivery_rate == 1.0
        assert matrix.total_sent == 2 * 5

    def test_latencies_recorded(self, sim):
        net = fat_tree(sim, arppath(), pods=2, hosts_per_edge=1)
        net.run(5.0)
        matrix = TrafficMatrix(net)
        matrix.all_pairs(packets=3, interval=1e-3)
        matrix.start()
        net.run(2.0)
        assert len(matrix.flow_latencies()) == matrix.total_received

    def test_random_pairs(self, sim):
        net = fat_tree(sim, arppath(), pods=4, hosts_per_edge=2)
        net.run(5.0)
        matrix = TrafficMatrix(net)
        flows = matrix.random_pairs(10, packets=1)
        assert len(flows) == 10
        assert len({(f.src, f.dst) for f in flows}) == 10

    def test_random_pairs_overflow_rejected(self, sim):
        net = fat_tree(sim, arppath(), pods=2, hosts_per_edge=1)
        net.run(1.0)
        matrix = TrafficMatrix(net)
        with pytest.raises(ValueError):
            matrix.random_pairs(100)

    def test_self_flow_rejected(self, sim):
        net = pair(sim, arppath())
        matrix = TrafficMatrix(net)
        with pytest.raises(ValueError):
            matrix.add_flow("H0", "H0")

    def test_warmup_resolves_everyone(self, sim):
        net = fat_tree(sim, arppath(), pods=2, hosts_per_edge=1)
        net.run(5.0)
        all_pairs_arp_warmup(net, spacing=2e-3)
        h0 = net.host("H0")
        h1 = net.host("H1")
        assert h0.arp_cache.lookup(h1.ip, sim.now) == h1.mac
        assert h1.arp_cache.lookup(h0.ip, sim.now) == h0.mac
