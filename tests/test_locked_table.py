"""Tests for the locked address table (the paper's core data structure)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.table import EntryState, LockedAddressTable
from repro.frames.mac import MAC, mac_for_host

M0, M1, M2 = mac_for_host(0), mac_for_host(1), mac_for_host(2)


class FakePort:
    def __init__(self, index):
        self.index = index

    def __repr__(self):
        return f"<FakePort {self.index}>"


P0, P1 = FakePort(0), FakePort(1)


@pytest.fixture
def table():
    return LockedAddressTable(lock_timeout=1.0, learnt_timeout=10.0,
                              guard_timeout=0.5)


class TestLocking:
    def test_lock_creates_locked_entry(self, table):
        entry = table.lock(M0, P0, now=0.0)
        assert entry.state is EntryState.LOCKED
        assert entry.port is P0

    def test_lock_expires_after_lock_timeout(self, table):
        table.lock(M0, P0, now=0.0)
        assert table.get(M0, now=0.5) is not None
        assert table.get(M0, now=1.0) is None

    def test_lock_arms_race_guard(self, table):
        entry = table.lock(M0, P0, now=0.0)
        assert entry.race_active(0.5)
        assert not entry.race_active(1.0)

    def test_relock_replaces_port(self, table):
        table.lock(M0, P0, now=0.0)
        entry = table.lock(M0, P1, now=2.0)
        assert entry.port is P1
        assert table.counters.relocks == 1
        assert table.counters.locks == 1

    def test_expired_entries_reaped_on_access(self, table):
        table.lock(M0, P0, now=0.0)
        table.get(M0, now=5.0)
        assert len(table) == 0


class TestLearning:
    def test_learn_creates_learnt_entry(self, table):
        entry = table.learn(M0, P0, now=0.0)
        assert entry.state is EntryState.LEARNT

    def test_learn_expires_after_learnt_timeout(self, table):
        table.learn(M0, P0, now=0.0)
        assert table.get(M0, now=9.9) is not None
        assert table.get(M0, now=10.0) is None

    def test_learn_same_port_refreshes(self, table):
        table.learn(M0, P0, now=0.0)
        table.learn(M0, P0, now=8.0)
        assert table.get(M0, now=17.0) is not None

    def test_learn_other_port_blocked_while_entry_lives(self, table):
        """Paths are sticky: unicast from another port can't move them."""
        table.learn(M0, P0, now=0.0)
        entry = table.learn(M0, P1, now=1.0)
        assert entry.port is P0
        assert table.counters.blocked_moves == 1

    def test_learn_after_expiry_moves(self, table):
        table.learn(M0, P0, now=0.0)
        entry = table.learn(M0, P1, now=20.0)
        assert entry.port is P1

    def test_learn_upgrades_locked_same_port(self, table):
        table.lock(M0, P0, now=0.0)
        entry = table.learn(M0, P0, now=0.1)
        assert entry.state is EntryState.LEARNT

    def test_learn_preserves_race_guard(self, table):
        """A unicast confirm must not erase the race window."""
        table.lock(M0, P0, now=0.0)
        entry = table.learn(M0, P0, now=0.1)
        assert entry.race_active(0.5)

    def test_learn_without_lock_has_no_guard(self, table):
        entry = table.learn(M0, P0, now=0.0)
        assert not entry.race_active(0.0)

    def test_created_time_preserved_across_upgrade(self, table):
        table.lock(M0, P0, now=0.0)
        entry = table.learn(M0, P0, now=0.5)
        assert entry.created == 0.0


class TestConfirm:
    def test_confirm_upgrades_locked(self, table):
        table.lock(M0, P0, now=0.0)
        entry = table.confirm(M0, now=0.5)
        assert entry.state is EntryState.LEARNT

    def test_confirm_extends_to_learnt_timeout(self, table):
        table.lock(M0, P0, now=0.0)
        table.confirm(M0, now=0.5)
        assert table.get(M0, now=5.0) is not None

    def test_confirm_refreshes_learnt(self, table):
        table.learn(M0, P0, now=0.0)
        table.confirm(M0, now=8.0)
        assert table.get(M0, now=17.0) is not None

    def test_confirm_missing_returns_none(self, table):
        assert table.confirm(M0, now=0.0) is None

    def test_counters_distinguish_confirm_and_refresh(self, table):
        table.lock(M0, P0, now=0.0)
        table.confirm(M0, now=0.1)
        table.confirm(M0, now=0.2)
        assert table.counters.confirms == 1
        assert table.counters.refreshes == 1


class TestRefreshLock:
    def test_rearms_lock_timer(self, table):
        table.lock(M0, P0, now=0.0)
        table.refresh_lock(M0, now=0.9)
        assert table.get(M0, now=1.5) is not None

    def test_rearms_race_guard(self, table):
        table.lock(M0, P0, now=0.0)
        entry = table.refresh_lock(M0, now=0.9)
        assert entry.race_active(1.5)

    def test_learnt_entry_keeps_learnt_timeout(self, table):
        table.learn(M0, P0, now=0.0)
        table.refresh_lock(M0, now=1.0)
        assert table.get(M0, now=10.5) is not None

    def test_missing_returns_none(self, table):
        assert table.refresh_lock(M0, now=0.0) is None


class TestRemoveAndFlush:
    def test_remove(self, table):
        table.learn(M0, P0, now=0.0)
        assert table.remove(M0) is True
        assert table.remove(M0) is False

    def test_flush_port_erases_only_that_port(self, table):
        table.learn(M0, P0, now=0.0)
        table.learn(M1, P1, now=0.0)
        assert table.flush_port(P0) == 1
        assert M0 not in table and M1 in table

    def test_flush_port_erases_guards(self, table):
        table.set_guard(M0, P0, now=0.0)
        table.flush_port(P0)
        assert table.guard_port(M0, now=0.0) is None

    def test_flush_all(self, table):
        table.learn(M0, P0, now=0.0)
        table.set_guard(M1, P1, now=0.0)
        table.flush()
        assert len(table) == 0
        assert table.guard_port(M1, now=0.0) is None

    def test_expire_sweep(self, table):
        table.lock(M0, P0, now=0.0)
        table.learn(M1, P1, now=0.0)
        assert table.expire(now=2.0) == 1  # lock gone, learnt alive
        assert M1 in table


class TestGuards:
    def test_guard_lifecycle(self, table):
        table.set_guard(M0, P0, now=0.0)
        assert table.guard_port(M0, now=0.4) is P0
        assert table.guard_port(M0, now=0.5) is None

    def test_guard_does_not_create_path_entry(self, table):
        table.set_guard(M0, P0, now=0.0)
        assert table.get(M0, now=0.1) is None

    def test_guard_replaced(self, table):
        table.set_guard(M0, P0, now=0.0)
        table.set_guard(M0, P1, now=0.1)
        assert table.guard_port(M0, now=0.2) is P1


class TestIntrospection:
    def test_occupancy(self, table):
        table.lock(M0, P0, now=0.0)
        table.learn(M1, P1, now=0.0)
        table.set_guard(M2, P0, now=0.0)
        occ = table.occupancy(now=0.1)
        assert occ == {"locked": 1, "learnt": 1, "guards": 1}

    def test_entries_filtered_by_time(self, table):
        table.lock(M0, P0, now=0.0)
        table.learn(M1, P1, now=0.0)
        assert len(table.entries()) == 2
        assert len(table.entries(now=2.0)) == 1

    def test_contains(self, table):
        table.lock(M0, P0, now=0.0)
        assert M0 in table and M1 not in table


class TestPropertyBased:
    @given(ops=st.lists(
        st.tuples(st.sampled_from(["lock", "learn", "confirm", "remove"]),
                  st.integers(min_value=0, max_value=3),
                  st.integers(min_value=0, max_value=1)),
        max_size=40))
    def test_entry_port_is_always_a_real_port(self, ops):
        """Whatever the operation sequence, live entries stay coherent."""
        table = LockedAddressTable(lock_timeout=1.0, learnt_timeout=5.0,
                                   guard_timeout=0.5)
        ports = [FakePort(0), FakePort(1)]
        now = 0.0
        for op, mac_index, port_index in ops:
            now += 0.1
            mac = mac_for_host(mac_index)
            port = ports[port_index]
            if op == "lock":
                table.lock(mac, port, now)
            elif op == "learn":
                table.learn(mac, port, now)
            elif op == "confirm":
                table.confirm(mac, now)
            else:
                table.remove(mac)
            for entry in table.entries(now=now):
                assert entry.port in ports
                assert entry.expires > now

    @given(st.integers(min_value=0, max_value=100))
    def test_lock_timeout_always_respected(self, steps):
        table = LockedAddressTable(lock_timeout=1.0, learnt_timeout=5.0,
                                   guard_timeout=0.5)
        table.lock(M0, P0, now=0.0)
        entry = table.get(M0, now=steps * 0.02)
        if steps * 0.02 >= 1.0:
            assert entry is None
        else:
            assert entry is not None
