"""Property-based system tests: the paper's invariants over random
topologies and workloads.

Each property is checked over randomly generated connected graphs with
heterogeneous latencies — the setting where loop freedom and
minimum-latency selection are non-trivial.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.frames.ethernet import ETHERTYPE_ARP
from repro.metrics.paths import PathObserver
from repro.netsim.engine import Simulator
from repro.netsim.tracer import DELIVERED
from repro.topology import arppath, random_graph

SLOW = settings(max_examples=10, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


def build(seed, n=7, hosts=3, edge_prob=0.4):
    sim = Simulator(seed=seed, trace_hops=True)
    net = random_graph(sim, arppath(), n, extra_edge_prob=edge_prob,
                       seed=seed, hosts=hosts)
    net.run(5.0)
    return net


class TestLoopFreedom:
    @SLOW
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_broadcast_terminates(self, seed):
        """One broadcast on any loopy graph causes a bounded number of
        transmissions (each bridge floods each race copy at most once)."""
        net = build(seed)
        sim = net.sim
        sent_before = sim.tracer.count("sent", ETHERTYPE_ARP)
        net.host("H0").gratuitous_arp()
        net.run(2.0)
        copies = sim.tracer.count("sent", ETHERTYPE_ARP) - sent_before
        links = len(net.links)
        # At most one copy per link per direction, plus the host hop.
        assert copies <= 2 * links

    @SLOW
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_each_host_receives_broadcast_exactly_once(self, seed):
        net = build(seed)
        before = {name: host.counters.arp_requests_received
                  for name, host in net.hosts.items()}
        net.host("H0").gratuitous_arp()
        net.run(2.0)
        for name, host in net.hosts.items():
            if name == "H0":
                continue
            received = host.counters.arp_requests_received - before[name]
            assert received == 1, f"{name} saw {received} copies"


def arrival_time(net, nodes, frame_bits):
    """What a race copy pays along *nodes*: propagation latency plus
    store-and-forward serialization at every hop."""
    total = 0.0
    for a, b in zip(nodes, nodes[1:]):
        wire = net.link_between(a, b)
        total += wire.latency
        if wire.bandwidth is not None:
            total += frame_bits / wire.bandwidth
    return total


class TestMinimumLatency:
    @SLOW
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_chosen_path_is_optimal(self, seed):
        """The ARP race finds the minimum *arrival time* path on an
        idle network — the race's actual metric: propagation latency
        plus per-hop store-and-forward serialization. (A fewer-hop
        path can legitimately beat one with marginally lower summed
        latency; hypothesis found seed 23 doing exactly that. Pure
        propagation-latency stretch is what the stretch experiment
        measures.)"""
        import networkx as nx

        from repro.frames import arp as arp_proto
        from repro.frames.ethernet import ETHERTYPE_ARP, EthernetFrame
        from repro.frames.mac import BROADCAST
        from repro.topology import graph_of

        net = build(seed)
        observer = PathObserver(net, "H1")
        rtts = []
        h0, h1 = net.host("H0"), net.host("H1")
        h0.ping(h1.ip, on_reply=lambda s, r: rtts.append(r))
        net.run(3.0)
        assert rtts, f"no connectivity on seed {seed}"
        bridges = observer.last_bridge_path()
        assert bridges is not None

        request = EthernetFrame(
            dst=BROADCAST, src=h0.mac, ethertype=ETHERTYPE_ARP,
            payload=arp_proto.make_request(h0.mac, h0.ip, h1.ip))
        frame_bits = request.wire_size * 8

        def weight(u, v, data):
            wire = net.links[data["link"]]
            ser = 0.0 if wire.bandwidth is None \
                else frame_bits / wire.bandwidth
            return data["latency"] + ser

        observed = arrival_time(net, ("H0",) + bridges + ("H1",),
                                frame_bits)
        oracle = nx.shortest_path_length(graph_of(net), "H0", "H1",
                                         weight=weight)
        assert observed == pytest.approx(oracle, rel=1e-9), \
            f"arrival-time stretch {observed / oracle:.3f} on seed {seed}"


class TestSymmetry:
    @SLOW
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_forward_and_reverse_paths_match(self, seed):
        """Paths are symmetric by construction (paper §2.1.2)."""
        net = build(seed)
        fwd_observer = PathObserver(net, "H1")
        rev_observer = PathObserver(net, "H0")
        rtts = []
        net.host("H0").ping(net.host("H1").ip,
                            on_reply=lambda s, r: rtts.append(r))
        net.run(3.0)
        assert rtts
        fwd = fwd_observer.last_bridge_path()
        rev = rev_observer.last_bridge_path()
        assert fwd is not None and rev is not None
        assert fwd == tuple(reversed(rev))


class TestRepairProperty:
    @SLOW
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_any_single_link_failure_is_survivable(self, seed):
        """After any single fabric-link failure that leaves the graph
        connected, traffic recovers via Path Repair."""
        import networkx as nx
        from repro.topology.builder import graph_of
        net = build(seed, edge_prob=0.5)
        got = []
        sink = net.host("H1")
        sink.bind_udp(7000, lambda sip, sp, p, pkt: got.append(p))
        source = net.host("H0")
        source.send_udp(sink.ip, 7000, 7000, b"prime")
        net.run(2.0)
        if got != [b"prime"]:
            return  # pathological graph; connectivity covered elsewhere
        # Pick the first fabric link on the current path whose removal
        # keeps the graph connected.
        fabric = net.fabric_links()
        for wire in fabric:
            graph = graph_of(net)
            graph.remove_edge(wire.port_a.node.name, wire.port_b.node.name)
            if nx.is_connected(graph) and "H0" in graph and "H1" in graph:
                wire.take_down()
                break
        else:
            return  # every link is a bridge edge: nothing to test
        # The first post-failure frame triggers the repair; it may be
        # part of the bounded in-flight loss when the new path avoids
        # the detecting bridge. The conversation itself must recover:
        source.send_udp(sink.ip, 7000, 7000, b"trigger")
        net.run(2.0)
        source.send_udp(sink.ip, 7000, 7000, b"after")
        net.run(2.0)
        assert b"after" in got, f"no recovery on seed {seed}"


_macs = st.integers(min_value=0, max_value=(1 << 48) - 1)
_ips = st.integers(min_value=0, max_value=(1 << 32) - 1)
_ports = st.integers(min_value=0, max_value=0xFFFF)


class TestCodecRoundTrip:
    """The ``__slots__`` frame classes still round-trip through
    :mod:`repro.frames.codec` byte-identically: encode → decode →
    re-encode reproduces the exact wire bytes, and the decoded payload
    compares equal to the original (value semantics survived the
    dataclass → slots conversion)."""

    @staticmethod
    def roundtrip(frame):
        from repro.frames.codec import decode_frame, encode_frame

        wire = encode_frame(frame)
        decoded = decode_frame(wire)
        assert encode_frame(decoded) == wire
        return decoded

    @settings(max_examples=50, deadline=None)
    @given(op=st.sampled_from([1, 2]), sha=_macs, spa=_ips, tha=_macs,
           tpa=_ips, dst=_macs, src=_macs)
    def test_arp_frames(self, op, sha, spa, tha, tpa, dst, src):
        from repro.frames.arp import ArpPacket
        from repro.frames.ethernet import ETHERTYPE_ARP, EthernetFrame
        from repro.frames.ipv4 import IPv4Address
        from repro.frames.mac import MAC

        payload = ArpPacket(op=op, sha=MAC(sha), spa=IPv4Address(spa),
                            tha=MAC(tha), tpa=IPv4Address(tpa))
        frame = EthernetFrame(dst=MAC(dst), src=MAC(src),
                              ethertype=ETHERTYPE_ARP, payload=payload)
        decoded = self.roundtrip(frame)
        assert decoded.payload == payload

    @settings(max_examples=50, deadline=None)
    @given(op=st.sampled_from([1, 2, 3, 4]), origin=_macs, source=_macs,
           target=_macs, seq=st.integers(min_value=0, max_value=2**32 - 1),
           ttl=_ports)
    def test_control_frames(self, op, origin, source, target, seq, ttl):
        from repro.frames.control import ArpPathControl
        from repro.frames.ethernet import (ETHERTYPE_ARPPATH,
                                           EthernetFrame)
        from repro.frames.mac import MAC

        payload = ArpPathControl(op=op, origin=MAC(origin),
                                 source=MAC(source), target=MAC(target),
                                 seq=seq, ttl=ttl)
        frame = EthernetFrame(dst=MAC(0), src=MAC(1),
                              ethertype=ETHERTYPE_ARPPATH,
                              payload=payload)
        decoded = self.roundtrip(frame)
        assert decoded.payload == payload

    @settings(max_examples=50, deadline=None)
    @given(src=_ips, dst=_ips, sport=_ports, dport=_ports,
           body=st.binary(max_size=64),
           ttl=st.integers(min_value=0, max_value=255),
           ident=_ports)
    def test_udp_frames(self, src, dst, sport, dport, body, ttl, ident):
        from repro.frames.ethernet import ETHERTYPE_IPV4, EthernetFrame
        from repro.frames.ipv4 import (IPv4Address, IPv4Packet,
                                       PROTO_UDP)
        from repro.frames.mac import MAC
        from repro.frames.udp import UdpDatagram

        packet = IPv4Packet(src=IPv4Address(src), dst=IPv4Address(dst),
                            proto=PROTO_UDP,
                            payload=UdpDatagram(sport=sport, dport=dport,
                                                payload=body),
                            ttl=ttl, ident=ident)
        frame = EthernetFrame(dst=MAC(2), src=MAC(3),
                              ethertype=ETHERTYPE_IPV4, payload=packet)
        decoded = self.roundtrip(frame)
        assert decoded.payload == packet

    @settings(max_examples=50, deadline=None)
    @given(icmp_type=st.sampled_from([0, 8]), ident=_ports, seq=_ports,
           body=st.binary(max_size=64), src=_ips, dst=_ips)
    def test_icmp_frames(self, icmp_type, ident, seq, body, src, dst):
        from repro.frames.ethernet import ETHERTYPE_IPV4, EthernetFrame
        from repro.frames.icmp import IcmpEcho
        from repro.frames.ipv4 import (IPv4Address, IPv4Packet,
                                       PROTO_ICMP)
        from repro.frames.mac import MAC

        packet = IPv4Packet(src=IPv4Address(src), dst=IPv4Address(dst),
                            proto=PROTO_ICMP,
                            payload=IcmpEcho(icmp_type=icmp_type,
                                             ident=ident, seq=seq,
                                             payload=body))
        frame = EthernetFrame(dst=MAC(4), src=MAC(5),
                              ethertype=ETHERTYPE_IPV4, payload=packet)
        decoded = self.roundtrip(frame)
        assert decoded.payload == packet

    def test_frame_classes_have_no_dict(self):
        """The slimming contract: no per-instance ``__dict__`` on any
        frame-layer class."""
        from repro.frames import (ArpPacket, ArpPathControl,
                                  EthernetFrame, IcmpEcho, IPv4Packet,
                                  MAC, UdpDatagram, make_hello)
        from repro.frames.ipv4 import IPv4Address

        frame = EthernetFrame(dst=MAC(0xFFFFFFFFFFFF), src=MAC(1),
                              ethertype=0x0800, payload=b"x")
        instances = [
            frame,
            make_hello(MAC(1)),
            IcmpEcho(icmp_type=8, ident=1, seq=1),
            UdpDatagram(sport=1, dport=2),
            IPv4Packet(src=IPv4Address(1), dst=IPv4Address(2), proto=17,
                       payload=b""),
            ArpPacket(op=1, sha=MAC(1), spa=IPv4Address(1), tha=MAC(2),
                      tpa=IPv4Address(2)),
        ]
        for instance in instances:
            assert not hasattr(instance, "__dict__"), type(instance)
        assert isinstance(instances[1], ArpPathControl)


class TestDeterminism:
    @SLOW
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_same_seed_identical_outcome(self, seed):
        def run_once():
            net = build(seed)
            rtts = []
            net.host("H0").ping(net.host("H1").ip,
                                on_reply=lambda s, r: rtts.append(r))
            net.run(3.0)
            return (tuple(rtts), net.sim.events_processed,
                    net.sim.tracer.frames_sent)

        assert run_once() == run_once()
