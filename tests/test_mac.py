"""Tests for repro.frames.mac."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.frames.mac import (BROADCAST, MAC, ZERO, mac_for_bridge,
                              mac_for_host)


class TestConstruction:
    def test_from_colon_string(self):
        assert MAC("00:11:22:33:44:55").value == 0x001122334455

    def test_from_dash_string(self):
        assert MAC("00-11-22-33-44-55").value == 0x001122334455

    def test_from_bare_string(self):
        assert MAC("001122334455").value == 0x001122334455

    def test_from_uppercase(self):
        assert MAC("AA:BB:CC:DD:EE:FF").value == 0xAABBCCDDEEFF

    def test_from_int(self):
        assert MAC(0xFFFFFFFFFFFF) == BROADCAST

    def test_from_bytes(self):
        assert MAC(b"\x00\x11\x22\x33\x44\x55").value == 0x001122334455

    def test_from_mac_copies(self):
        original = MAC("00:11:22:33:44:55")
        assert MAC(original) == original

    def test_strips_whitespace(self):
        assert MAC("  00:11:22:33:44:55  ").value == 0x001122334455

    def test_rejects_mixed_separators(self):
        with pytest.raises(ValueError):
            MAC("00:11-22:33-44:55")

    def test_rejects_short_string(self):
        with pytest.raises(ValueError):
            MAC("00:11:22:33:44")

    def test_rejects_long_string(self):
        with pytest.raises(ValueError):
            MAC("00:11:22:33:44:55:66")

    def test_rejects_negative_int(self):
        with pytest.raises(ValueError):
            MAC(-1)

    def test_rejects_oversized_int(self):
        with pytest.raises(ValueError):
            MAC(1 << 48)

    def test_rejects_wrong_byte_count(self):
        with pytest.raises(ValueError):
            MAC(b"\x00\x11\x22")

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            MAC(3.14)

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            MAC("not-a-mac")


class TestProperties:
    def test_broadcast_is_broadcast(self):
        assert BROADCAST.is_broadcast

    def test_broadcast_is_multicast(self):
        assert BROADCAST.is_multicast

    def test_broadcast_not_unicast(self):
        assert not BROADCAST.is_unicast

    def test_zero_is_unicast(self):
        assert ZERO.is_unicast

    def test_group_bit_means_multicast(self):
        assert MAC("01:00:5e:00:00:01").is_multicast

    def test_group_bit_clear_means_unicast(self):
        assert MAC("00:11:22:33:44:55").is_unicast

    def test_local_bit(self):
        assert MAC("02:00:00:00:00:01").is_local
        assert not MAC("00:11:22:33:44:55").is_local

    def test_round_trip_bytes(self):
        original = MAC("de:ad:be:ef:00:01")
        assert MAC(original.to_bytes()) == original

    def test_str_is_canonical(self):
        assert str(MAC("AA-BB-CC-DD-EE-FF")) == "aa:bb:cc:dd:ee:ff"

    def test_repr_round_trips_via_str(self):
        original = MAC("aa:bb:cc:dd:ee:ff")
        assert "aa:bb:cc:dd:ee:ff" in repr(original)

    def test_int_conversion(self):
        assert int(MAC("00:00:00:00:00:2a")) == 42


class TestOrdering:
    def test_equality(self):
        assert MAC("00:11:22:33:44:55") == MAC("001122334455")

    def test_inequality_other_type(self):
        assert MAC(0) != "00:00:00:00:00:00"

    def test_hashable_and_stable(self):
        table = {MAC("00:00:00:00:00:01"): "a"}
        assert table[MAC(1)] == "a"

    def test_total_order(self):
        low, high = MAC(1), MAC(2)
        assert low < high
        assert low <= high
        assert high > low
        assert high >= low

    def test_sortable(self):
        macs = [MAC(3), MAC(1), MAC(2)]
        assert sorted(macs) == [MAC(1), MAC(2), MAC(3)]


class TestDeterministicAllocators:
    def test_host_prefix(self):
        assert str(mac_for_host(0)).startswith("02:00:00")

    def test_bridge_prefix(self):
        assert str(mac_for_bridge(0)).startswith("02:00:01")

    def test_host_and_bridge_never_collide(self):
        hosts = {mac_for_host(i) for i in range(256)}
        bridges = {mac_for_bridge(i) for i in range(256)}
        assert not hosts & bridges

    def test_hosts_are_unicast_local(self):
        sample = mac_for_host(7)
        assert sample.is_unicast and sample.is_local

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            mac_for_host(1 << 24)
        with pytest.raises(ValueError):
            mac_for_bridge(-1)


class TestPropertyBased:
    @given(st.integers(min_value=0, max_value=(1 << 48) - 1))
    def test_int_round_trip(self, value):
        assert MAC(value).value == value

    @given(st.integers(min_value=0, max_value=(1 << 48) - 1))
    def test_str_round_trip(self, value):
        original = MAC(value)
        assert MAC(str(original)) == original

    @given(st.integers(min_value=0, max_value=(1 << 48) - 1))
    def test_bytes_round_trip(self, value):
        original = MAC(value)
        assert MAC(original.to_bytes()) == original

    @given(st.integers(min_value=0, max_value=(1 << 48) - 1))
    def test_multicast_matches_group_bit(self, value):
        assert MAC(value).is_multicast == bool(value >> 40 & 0x01)
