"""End-to-end tests for Path Repair (paper §2.1.4).

The PathFail → PathRequest → PathReply exchange, exercised inside real
simulated networks with injected failures.
"""

import pytest

from repro.core.bridge import ArpPathBridge
from repro.frames.ethernet import EthernetFrame, ETHERTYPE_IPV4
from repro.netsim.engine import Simulator
from repro.topology import arppath, line, netfpga_demo, pair, ring
from repro.topology.builder import Network

from repro.testing import fast_config


def established_stream(net, src="H0", dst="H1"):
    """Resolve ARP and pass one datagram so the path is LEARNT."""
    source, sink = net.host(src), net.host(dst)
    got = []
    sink.bind_udp(7000, lambda sip, sp, payload, pkt: got.append(payload))
    source.send_udp(sink.ip, 7000, 7000, b"prime")
    net.run(1.0)
    assert got == [b"prime"]
    return source, sink, got


class TestRepairAfterLinkFailure:
    def test_stream_survives_failure(self, sim):
        net = line(sim, arppath(fast_config()), 3)
        net.run(3.0)
        source, sink, got = established_stream(net)
        # No redundancy in a line: bring link down and back up; the
        # repair triggered by the next frame must rebuild the path.
        net.link_between("B0", "B1").take_down()
        net.run(0.1)
        net.link_between("B0", "B1").bring_up()
        net.run(0.5)
        source.send_udp(sink.ip, 7000, 7000, b"after")
        net.run(1.0)
        assert b"after" in got

    def test_repair_uses_alternate_path(self, demo_net):
        source, sink, got = established_stream(demo_net, "A", "B")
        # ARP-Path chose a ring path; cut its first hop.
        nf1 = demo_net.bridge("NF1")
        b_port = nf1.path_port_for(sink.mac)
        assert b_port is not None
        b_port.link.take_down()
        source.send_udp(sink.ip, 7000, 7000, b"rerouted")
        demo_net.run(1.0)
        assert b"rerouted" in got
        assert sum(b.repair.counters.completed
                   for b in demo_net.bridges.values()) >= 1

    def test_repair_time_recorded(self, demo_net):
        source, sink, _got = established_stream(demo_net, "A", "B")
        nf1 = demo_net.bridge("NF1")
        nf1.path_port_for(sink.mac).link.take_down()
        source.send_udp(sink.ip, 7000, 7000, b"x")
        demo_net.run(1.0)
        times = [t for b in demo_net.bridges.values()
                 for t in b.repair.repair_times]
        assert len(times) == 1
        assert 0 < times[0] < 0.1

    def test_first_frame_is_buffered_and_delivered(self, demo_net):
        """The frame that triggered the repair is not lost."""
        source, sink, got = established_stream(demo_net, "A", "B")
        nf1 = demo_net.bridge("NF1")
        nf1.path_port_for(sink.mac).link.take_down()
        source.send_udp(sink.ip, 7000, 7000, b"triggering")
        demo_net.run(1.0)
        assert b"triggering" in got

    def test_bidirectional_traffic_after_repair(self, demo_net):
        source, sink, got = established_stream(demo_net, "A", "B")
        back = []
        source.bind_udp(7001, lambda sip, sp, payload, pkt:
                        back.append(payload))
        nf1 = demo_net.bridge("NF1")
        nf1.path_port_for(sink.mac).link.take_down()
        source.send_udp(sink.ip, 7000, 7000, b"fwd")
        demo_net.run(1.0)
        sink.send_udp(source.ip, 7001, 7001, b"rev")
        demo_net.run(1.0)
        assert b"rev" in back


class TestPathFailRouting:
    def test_midpath_failure_sends_pathfail_to_edge(self, sim):
        """Failure deep in the fabric: the detecting bridge is not the
        edge, so a PathFail must relay back before the repair starts."""
        net = line(sim, arppath(fast_config()), 4)
        net.run(3.0)
        source, sink, got = established_stream(net)
        # Cut between B2 and B3 (the far end); B2 detects on next frame.
        net.link_between("B2", "B3").take_down()
        net.run(0.1)
        net.link_between("B2", "B3").bring_up()
        net.run(0.5)
        source.send_udp(sink.ip, 7000, 7000, b"post-fail")
        net.run(2.0)
        assert b"post-fail" in got
        fails = sum(b.repair.counters.fails_sent + b.apc.path_fails_seen
                    for b in net.bridges.values())
        assert fails > 0

    def test_expired_entry_triggers_repair_not_flood(self, sim):
        """A unicast miss from entry expiry at the edge repairs silently.

        Only the source edge bridge's entry is aged out (the realistic
        transient — learnt timeouts exceed host ARP timeouts, so the
        whole fabric never forgets a live host at once).
        """
        net = pair(sim, arppath(fast_config()))
        net.run(3.0)
        source, sink, got = established_stream(net)
        b0 = net.bridge("B0")
        assert b0.table.remove(sink.mac)  # simulate expiry at the edge
        flooded_before = b0.counters.flooded_frames
        source.send_udp(sink.ip, 7000, 7000, b"revived")
        net.run(1.0)
        assert b"revived" in got
        assert sum(b.repair.counters.started
                   for b in net.bridges.values()) >= 1
        # The data frame itself was never blind-flooded.
        assert b0.counters.flooded_frames <= flooded_before + 1


class TestRepairBuffering:
    def test_frames_buffered_during_repair(self, demo_net):
        source, sink, got = established_stream(demo_net, "A", "B")
        nf1 = demo_net.bridge("NF1")
        nf1.path_port_for(sink.mac).link.take_down()
        # Burst of frames while the repair runs.
        for index in range(5):
            source.send_udp(sink.ip, 7000, 7000, bytes([index]))
        demo_net.run(1.0)
        payloads = [p for p in got if p != b"prime"]
        assert payloads == [bytes([i]) for i in range(5)]

    def test_buffer_overflow_drops_extras(self, sim):
        config = fast_config(repair_buffer_size=2,
                             repair_retry_timeout=0.5)
        net = netfpga_demo(sim, arppath(config))
        net.run(3.0)
        source, sink, got = established_stream(net, "A", "B")
        nf1 = net.bridge("NF1")
        nf1.path_port_for(sink.mac).link.take_down()
        for index in range(6):
            source.send_udp(sink.ip, 7000, 7000, bytes([index]))
        net.run(2.0)
        delivered = [p for p in got if p != b"prime"]
        assert len(delivered) <= 3  # trigger frame + 2 buffered


class TestRepairExhaustion:
    def test_unreachable_target_abandons(self, sim):
        """Destination completely cut off: retries exhaust, buffer drops."""
        config = fast_config(repair_retries=2, repair_retry_timeout=0.05)
        net = pair(sim, arppath(config))
        net.run(3.0)
        source, sink, _got = established_stream(net)
        # Isolate H1 entirely.
        net.link_between("H1", "B1").take_down()
        net.link_between("B0", "B1").take_down()
        source.send_udp(sink.ip, 7000, 7000, b"void")
        net.run(2.0)
        abandoned = sum(b.repair.counters.abandoned
                        for b in net.bridges.values())
        assert abandoned >= 1
        pending = sum(len(b.repair) for b in net.bridges.values())
        assert pending == 0

    def test_retries_rebroadcast(self, sim):
        config = fast_config(repair_retries=3, repair_retry_timeout=0.05)
        net = pair(sim, arppath(config))
        net.run(3.0)
        source, sink, _got = established_stream(net)
        net.link_between("H1", "B1").take_down()
        net.link_between("B0", "B1").take_down()
        source.send_udp(sink.ip, 7000, 7000, b"void")
        net.run(2.0)
        retries = sum(b.repair.counters.retries
                      for b in net.bridges.values())
        assert retries == 3


class TestSuccessiveFailures:
    def test_demo_scenario(self, sim):
        """The paper's §3.2 script: repeated failures, stream survives
        as long as connectivity remains."""
        net = netfpga_demo(sim, arppath())
        net.run(5.0)
        source, sink, got = established_stream(net, "A", "B")
        sent = [1]

        def tick():
            source.send_udp(sink.ip, 7000, 7000, b"s%d" % sent[0])
            sent[0] += 1

        timer = sim.schedule_periodic(0.02, tick)
        net.run(0.5)
        net.link_between("NF1", "NF2").take_down()
        net.run(1.0)
        net.link_between("NF4", "NF1").take_down()
        net.run(1.0)
        timer.stop()
        net.run(0.5)
        # Only the cross link remains: traffic still flows.
        received = len(got) - 1  # minus the priming datagram
        assert received >= sent[0] - 1 - 4  # at most a few lost in repair

    def test_repair_after_repair(self, demo_net):
        source, sink, got = established_stream(demo_net, "A", "B")
        nf1 = demo_net.bridge("NF1")
        for marker in (b"one", b"two"):
            port = nf1.path_port_for(sink.mac)
            assert port is not None
            port.link.take_down()
            source.send_udp(sink.ip, 7000, 7000, marker)
            demo_net.run(2.0)
            assert marker in got
        completed = sum(b.repair.counters.completed
                        for b in demo_net.bridges.values())
        assert completed == 2


class TestHostTransparency:
    def test_hosts_receive_no_control_frames(self, demo_net):
        """Repair control traffic must never surface at host sockets."""
        source, sink, _got = established_stream(demo_net, "A", "B")
        nf1 = demo_net.bridge("NF1")
        nf1.path_port_for(sink.mac).link.take_down()
        source.send_udp(sink.ip, 7000, 7000, b"x")
        demo_net.run(1.0)
        for host in demo_net.hosts.values():
            assert host.counters.udp_unbound == 0
            assert host.counters.ip_foreign == 0
