"""Tests for the declarative topology loader."""

import json

import pytest

from repro.core.bridge import ArpPathBridge
from repro.netsim.errors import TopologyError
from repro.stp.bridge import StpBridge
from repro.topology.loader import from_json, from_spec

from repro.testing import ping_once

DEMO_SPEC = {
    "bridges": ["B0", "B1"],
    "hosts": ["H0", "H1"],
    "links": [{"a": "B0", "b": "B1", "latency_us": 10}],
    "attach": [
        {"host": "H0", "bridge": "B0", "latency_us": 1},
        {"host": "H1", "bridge": "B1", "latency_us": 1},
    ],
}


class TestFromSpec:
    def test_builds_working_network(self, sim):
        net = from_spec(sim, DEMO_SPEC)
        net.run(5.0)
        assert ping_once(net, "H0", "H1") is not None

    def test_latency_units_are_microseconds(self, sim):
        net = from_spec(sim, DEMO_SPEC)
        assert net.link_between("B0", "B1").latency == pytest.approx(10e-6)

    def test_bandwidth_units_are_gbps(self, sim):
        spec = dict(DEMO_SPEC)
        spec["links"] = [{"a": "B0", "b": "B1", "bandwidth_gbps": 10}]
        net = from_spec(sim, spec)
        assert net.link_between("B0", "B1").bandwidth == pytest.approx(1e10)

    def test_null_bandwidth_means_infinite(self, sim):
        spec = dict(DEMO_SPEC)
        spec["links"] = [{"a": "B0", "b": "B1", "bandwidth_gbps": None}]
        net = from_spec(sim, spec)
        assert net.link_between("B0", "B1").bandwidth is None

    def test_default_protocol(self, sim):
        net = from_spec(sim, DEMO_SPEC)
        assert isinstance(net.bridge("B0"), ArpPathBridge)

    def test_per_bridge_protocol(self, sim):
        spec = dict(DEMO_SPEC)
        spec["bridges"] = {"B0": {}, "B1": {"protocol": "stp"}}
        net = from_spec(sim, spec)
        assert isinstance(net.bridge("B0"), ArpPathBridge)
        assert isinstance(net.bridge("B1"), StpBridge)

    def test_protocol_options_forwarded(self, sim):
        spec = dict(DEMO_SPEC)
        spec["bridges"] = {"B0": {}, "B1": {"protocol": "stp",
                                            "priority": 0x1000}}
        net = from_spec(sim, spec)
        assert net.bridge("B1").bid.priority == 0x1000

    def test_options_without_protocol_rejected(self, sim):
        spec = dict(DEMO_SPEC)
        spec["bridges"] = {"B0": {"priority": 1}, "B1": {}}
        with pytest.raises(TopologyError):
            from_spec(sim, spec)

    def test_static_roles_flag(self, sim):
        spec = dict(DEMO_SPEC)
        spec["static_roles"] = True
        net = from_spec(sim, spec)
        b0 = net.bridge("B0")
        host_port = net.host("H0").port.peer
        assert b0.is_host_port(host_port)

    def test_unknown_top_level_key_rejected(self, sim):
        with pytest.raises(TopologyError):
            from_spec(sim, {"bridgez": []})

    def test_unknown_link_key_rejected(self, sim):
        spec = dict(DEMO_SPEC)
        spec["links"] = [{"a": "B0", "b": "B1", "latency": 10}]
        with pytest.raises(TopologyError):
            from_spec(sim, spec)

    def test_unknown_attach_key_rejected(self, sim):
        spec = dict(DEMO_SPEC)
        spec["attach"] = [{"host": "H0", "bridge": "B0", "speed": 1}]
        with pytest.raises(TopologyError):
            from_spec(sim, spec)

    def test_named_links(self, sim):
        spec = dict(DEMO_SPEC)
        spec["links"] = [{"a": "B0", "b": "B1", "name": "trunk"}]
        net = from_spec(sim, spec)
        assert "trunk" in net.links

    def test_misspelled_bridge_option_names_the_keys(self, sim):
        """A factory-level typo must fail as a TopologyError naming the
        bad option, not as a bare TypeError from deep inside."""
        spec = dict(DEMO_SPEC)
        spec["bridges"] = {"B0": {}, "B1": {"protocol": "stp",
                                            "prioritee": 0x1000}}
        with pytest.raises(TopologyError, match="prioritee"):
            from_spec(sim, spec)

    def test_link_option_on_bridge_entry_rejected(self, sim):
        spec = dict(DEMO_SPEC)
        spec["bridges"] = {"B0": {}, "B1": {"protocol": "arppath",
                                            "latency_us": 10}}
        with pytest.raises(TopologyError, match="latency_us"):
            from_spec(sim, spec)

    def test_non_string_host_entry_rejected(self, sim):
        spec = dict(DEMO_SPEC)
        spec["hosts"] = [{"name": "H0"}, "H1"]
        with pytest.raises(TopologyError, match="plain names"):
            from_spec(sim, spec)

    def test_link_missing_endpoint_rejected(self, sim):
        spec = dict(DEMO_SPEC)
        spec["links"] = [{"a": "B0", "latency_us": 10}]
        with pytest.raises(TopologyError, match="'b'"):
            from_spec(sim, spec)

    def test_attach_missing_bridge_rejected(self, sim):
        spec = dict(DEMO_SPEC)
        spec["attach"] = [{"host": "H0"}]
        with pytest.raises(TopologyError, match="'bridge'"):
            from_spec(sim, spec)


class TestFromJson:
    def test_loads_file(self, sim, tmp_path):
        path = tmp_path / "topo.json"
        path.write_text(json.dumps(DEMO_SPEC))
        net = from_json(sim, str(path))
        net.run(5.0)
        assert ping_once(net, "H0", "H1") is not None

    def test_invalid_json_raises_topology_error(self, sim, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text('{"bridges": ["B0",}')
        with pytest.raises(TopologyError, match="invalid JSON"):
            from_json(sim, str(path))

    def test_non_object_top_level_rejected(self, sim, tmp_path):
        path = tmp_path / "list.json"
        path.write_text('["B0", "B1"]')
        with pytest.raises(TopologyError, match="JSON object"):
            from_json(sim, str(path))

    def test_unknown_key_in_file_named(self, sim, tmp_path):
        path = tmp_path / "typo.json"
        spec = dict(DEMO_SPEC)
        spec["linkz"] = []
        path.write_text(json.dumps(spec))
        with pytest.raises(TopologyError, match="linkz"):
            from_json(sim, str(path))
